//! `bench_serve` — runs the serving-layer harness and writes
//! `BENCH_serve.json` (warm multi-tenant registry throughput vs a fresh
//! engine per request, the eviction-pressure sweep, restart-rehydration,
//! the concurrent-client sweep over the NDJSON server, and the saturation
//! sweep of 32–128 pipelined keep-alive connections), so the serving
//! performance trajectory is recorded alongside the code.
//!
//! ```text
//! cargo run --release -p qvsec-bench --bin bench_serve -- \
//!     [--out BENCH_serve.json] [--iters 3] [--tenants 6] [--threads N]
//! ```

use qvsec_bench::serve::{render_report, run_serve_bench, DEFAULT_TENANTS};
use std::process::ExitCode;

const USAGE: &str = "\
bench_serve — multi-tenant serving benchmark, emits BENCH_serve.json

USAGE:
    bench_serve [--out <FILE>] [--iters <N>] [--tenants <N>] [--samples <N>] [--threads <N>]

OPTIONS:
    --out <FILE>      Output path (default BENCH_serve.json)
    --iters <N>       Iterations per measurement, best-of (default 3)
    --tenants <N>     Tenants driven through the registry (default 6)
    --samples <N>     Monte-Carlo pool size for the prob workload (default 8192)
    --threads <N>     Worker threads for the engine's parallel stages
                      (default: cores)
    -h, --help        Show this help
";

fn main() -> ExitCode {
    let mut out = String::from("BENCH_serve.json");
    let mut iters = 3usize;
    let mut tenants = DEFAULT_TENANTS;
    let mut samples = 8192usize;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let parse_fail = |what: &str| {
            eprintln!("error: bad value for {what}\n");
            eprint!("{USAGE}");
            ExitCode::from(2)
        };
        match arg.as_str() {
            "--out" => match argv.next() {
                Some(path) => out = path,
                None => return parse_fail("--out"),
            },
            "--iters" => match argv.next().and_then(|s| s.parse().ok()) {
                Some(n) => iters = n,
                None => return parse_fail("--iters"),
            },
            "--tenants" => match argv.next().and_then(|s| s.parse().ok()) {
                Some(n) => tenants = n,
                None => return parse_fail("--tenants"),
            },
            "--samples" => match argv.next().and_then(|s| s.parse().ok()) {
                Some(n) => samples = n,
                None => return parse_fail("--samples"),
            },
            "--threads" => match argv.next().and_then(|s| s.parse().ok()) {
                Some(n) => {
                    if rayon::ThreadPoolBuilder::new()
                        .num_threads(n)
                        .build_global()
                        .is_err()
                    {
                        eprintln!("error: cannot configure {n} worker threads");
                        return ExitCode::FAILURE;
                    }
                }
                None => return parse_fail("--threads"),
            },
            "-h" | "--help" => {
                eprint!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown option `{other}`\n");
                eprint!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let report = run_serve_bench(iters, tenants, samples);
    print!("{}", render_report(&report));
    if !report.all_verdicts_match {
        eprintln!("error: a registry verdict diverged from the stateless baseline — not writing");
        return ExitCode::FAILURE;
    }
    if !report.eviction_verdicts_match {
        eprintln!("error: a budgeted drive diverged from the unbounded one — not writing");
        return ExitCode::FAILURE;
    }
    if !report.concurrent.points.iter().all(|p| p.responses_match) {
        eprintln!("error: a concurrent drive diverged from the single-client one — not writing");
        return ExitCode::FAILURE;
    }
    if !report
        .saturation
        .points
        .iter()
        .all(|p| p.responses_match && p.dropped_responses == 0)
    {
        eprintln!("error: a saturation drive dropped or rewrote responses — not writing");
        return ExitCode::FAILURE;
    }
    if !report.instrumentation.responses_match {
        eprintln!("error: enabling tracing changed a response byte — not writing");
        return ExitCode::FAILURE;
    }
    if report.instrumentation.retained_throughput < 0.95 {
        // The committed-artifact gate (serve_bench_smoke) holds recordings
        // at >= 95%; a measurement on a noisy box still gets written so
        // the number can be inspected, with a loud warning here.
        eprintln!(
            "warning: the telemetry plane cost more than 5% of req/s ({:.1}% retained)",
            report.instrumentation.retained_throughput * 100.0
        );
    }
    match serde_json::to_string_pretty(&report) {
        Ok(text) => {
            if let Err(e) = std::fs::write(&out, text + "\n") {
                eprintln!("error: cannot write `{out}`: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot serialize report: {e}");
            ExitCode::FAILURE
        }
    }
}
