//! `bench_crit` — runs the `crit(Q)` kernel harness and writes
//! `BENCH_crit.json` (wall-clock seq vs. kernel + pruning counters), so the
//! repository's performance trajectory is recorded alongside the code.
//!
//! ```text
//! cargo run --release -p qvsec-bench --bin bench_crit -- \
//!     [--out BENCH_crit.json] [--sizes 16,20,24] [--iters 5]
//! ```

use qvsec_bench::crit::{render_report, run_crit_bench, DEFAULT_DOMAIN_SIZES};
use std::process::ExitCode;

const USAGE: &str = "\
bench_crit — crit(Q) kernel benchmark, emits BENCH_crit.json

USAGE:
    bench_crit [--out <FILE>] [--sizes <N,N,...>] [--iters <N>]

OPTIONS:
    --out <FILE>      Output path (default BENCH_crit.json)
    --sizes <N,...>   Comma-separated active-domain sizes (default 16,20,24)
    --iters <N>       Iterations per measurement, best-of (default 5)
    -h, --help        Show this help
";

fn main() -> ExitCode {
    let mut out = String::from("BENCH_crit.json");
    let mut sizes: Vec<usize> = DEFAULT_DOMAIN_SIZES.to_vec();
    let mut iters = 5usize;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let parse_fail = |what: &str| {
            eprintln!("error: bad value for {what}\n");
            eprint!("{USAGE}");
            ExitCode::from(2)
        };
        match arg.as_str() {
            "--out" => match argv.next() {
                Some(path) => out = path,
                None => return parse_fail("--out"),
            },
            "--sizes" => match argv.next().map(|s| {
                s.split(',')
                    .map(|n| n.trim().parse::<usize>())
                    .collect::<Result<Vec<_>, _>>()
            }) {
                Some(Ok(parsed)) if !parsed.is_empty() => sizes = parsed,
                _ => return parse_fail("--sizes"),
            },
            "--iters" => match argv.next().and_then(|s| s.parse().ok()) {
                Some(n) => iters = n,
                None => return parse_fail("--iters"),
            },
            "-h" | "--help" => {
                eprint!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown option `{other}`\n");
                eprint!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let report = run_crit_bench(&sizes, iters);
    print!("{}", render_report(&report));
    if report.workloads.iter().any(|w| !w.verdicts_match) {
        eprintln!("error: kernel and sequential baseline disagree — not writing a report");
        return ExitCode::FAILURE;
    }
    match serde_json::to_string_pretty(&report) {
        Ok(text) => {
            if let Err(e) = std::fs::write(&out, text + "\n") {
                eprintln!("error: cannot write `{out}`: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot serialize report: {e}");
            ExitCode::FAILURE
        }
    }
}
