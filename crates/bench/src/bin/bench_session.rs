//! `bench_session` — runs the session harness and writes
//! `BENCH_session.json` (warm session steps vs. fresh-engine audits of the
//! same cumulative prefix, with per-step cache-reuse counters), so the
//! serving-path performance trajectory is recorded alongside the code.
//!
//! ```text
//! cargo run --release -p qvsec-bench --bin bench_session -- \
//!     [--out BENCH_session.json] [--iters 3] [--threads N]
//! ```

use qvsec_bench::session::{render_report, run_session_bench};
use std::process::ExitCode;

const USAGE: &str = "\
bench_session — session warm-path benchmark, emits BENCH_session.json

USAGE:
    bench_session [--out <FILE>] [--iters <N>] [--threads <N>]

OPTIONS:
    --out <FILE>      Output path (default BENCH_session.json)
    --iters <N>       Iterations per measurement, best-of (default 3)
    --threads <N>     Worker threads for the engine's parallel stages
                      (default: cores)
    -h, --help        Show this help
";

fn main() -> ExitCode {
    let mut out = String::from("BENCH_session.json");
    let mut iters = 3usize;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let parse_fail = |what: &str| {
            eprintln!("error: bad value for {what}\n");
            eprint!("{USAGE}");
            ExitCode::from(2)
        };
        match arg.as_str() {
            "--out" => match argv.next() {
                Some(path) => out = path,
                None => return parse_fail("--out"),
            },
            "--iters" => match argv.next().and_then(|s| s.parse().ok()) {
                Some(n) => iters = n,
                None => return parse_fail("--iters"),
            },
            "--threads" => match argv.next().and_then(|s| s.parse().ok()) {
                Some(n) => {
                    if rayon::ThreadPoolBuilder::new()
                        .num_threads(n)
                        .build_global()
                        .is_err()
                    {
                        eprintln!("error: cannot configure {n} worker threads");
                        return ExitCode::FAILURE;
                    }
                }
                None => return parse_fail("--threads"),
            },
            "-h" | "--help" => {
                eprint!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown option `{other}`\n");
                eprint!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let report = run_session_bench(iters);
    print!("{}", render_report(&report));
    if !report.all_verdicts_match {
        eprintln!(
            "error: a session step diverged from the stateless baseline — not writing a report"
        );
        return ExitCode::FAILURE;
    }
    if !report.warm_steps_all_hit_cache {
        eprintln!("error: a warm step served nothing from cache — not writing a report");
        return ExitCode::FAILURE;
    }
    match serde_json::to_string_pretty(&report) {
        Ok(text) => {
            if let Err(e) = std::fs::write(&out, text + "\n") {
                eprintln!("error: cannot write `{out}`: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot serialize report: {e}");
            ExitCode::FAILURE
        }
    }
}
