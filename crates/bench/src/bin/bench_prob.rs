//! `bench_prob` — runs the probabilistic-kernel harness and writes
//! `BENCH_prob.json` (wall-clock enumeration baseline vs. shared-sample
//! kernel + Monte-Carlo pool-reuse stats), so the Probabilistic-stage
//! performance trajectory is recorded alongside the code.
//!
//! ```text
//! cargo run --release -p qvsec-bench --bin bench_prob -- \
//!     [--out BENCH_prob.json] [--sizes 3,4] [--iters 3] \
//!     [--samples 8192] [--threads N]
//! ```

use qvsec_bench::prob::{render_report, run_prob_bench, DEFAULT_DOMAIN_SIZES, DEFAULT_MC_SAMPLES};
use std::process::ExitCode;

const USAGE: &str = "\
bench_prob — probabilistic kernel benchmark, emits BENCH_prob.json

USAGE:
    bench_prob [--out <FILE>] [--sizes <N,N,...>] [--iters <N>]
               [--samples <N>] [--threads <N>]

OPTIONS:
    --out <FILE>      Output path (default BENCH_prob.json)
    --sizes <N,...>   Comma-separated binary-relation domain sizes
                      (default 3,4; |D|^2 must stay enumerable, i.e. <= 4)
    --iters <N>       Iterations per measurement, best-of (default 3)
    --samples <N>     Monte-Carlo pool size (default 8192)
    --threads <N>     Worker threads for streaming/sampling (default: cores)
    -h, --help        Show this help
";

fn main() -> ExitCode {
    let mut out = String::from("BENCH_prob.json");
    let mut sizes: Vec<usize> = DEFAULT_DOMAIN_SIZES.to_vec();
    let mut iters = 3usize;
    let mut samples = DEFAULT_MC_SAMPLES;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let parse_fail = |what: &str| {
            eprintln!("error: bad value for {what}\n");
            eprint!("{USAGE}");
            ExitCode::from(2)
        };
        match arg.as_str() {
            "--out" => match argv.next() {
                Some(path) => out = path,
                None => return parse_fail("--out"),
            },
            "--sizes" => match argv.next().map(|s| {
                s.split(',')
                    .map(|n| n.trim().parse::<usize>())
                    .collect::<Result<Vec<_>, _>>()
            }) {
                Some(Ok(parsed)) if !parsed.is_empty() => sizes = parsed,
                _ => return parse_fail("--sizes"),
            },
            "--iters" => match argv.next().and_then(|s| s.parse().ok()) {
                Some(n) => iters = n,
                None => return parse_fail("--iters"),
            },
            "--samples" => match argv.next().and_then(|s| s.parse().ok()) {
                Some(n) => samples = n,
                None => return parse_fail("--samples"),
            },
            "--threads" => match argv.next().and_then(|s| s.parse().ok()) {
                Some(n) => {
                    if rayon::ThreadPoolBuilder::new()
                        .num_threads(n)
                        .build_global()
                        .is_err()
                    {
                        eprintln!("error: cannot configure {n} worker threads");
                        return ExitCode::FAILURE;
                    }
                }
                None => return parse_fail("--threads"),
            },
            "-h" | "--help" => {
                eprint!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown option `{other}`\n");
                eprint!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if sizes
        .iter()
        .any(|&s| s * s > qvsec_data::bitset::MAX_ENUMERABLE)
    {
        eprintln!(
            "error: --sizes must keep |D|^2 enumerable (<= {})",
            qvsec_data::bitset::MAX_ENUMERABLE
        );
        return ExitCode::from(2);
    }
    let report = run_prob_bench(&sizes, iters, samples);
    print!("{}", render_report(&report));
    if report.workloads.iter().any(|w| !w.verdicts_match) {
        eprintln!("error: kernel and enumeration baseline disagree — not writing a report");
        return ExitCode::FAILURE;
    }
    if !report.mc.determinism_ok {
        eprintln!("error: Monte-Carlo reports are not seed-deterministic — not writing a report");
        return ExitCode::FAILURE;
    }
    match serde_json::to_string_pretty(&report) {
        Ok(text) => {
            if let Err(e) = std::fs::write(&out, text + "\n") {
                eprintln!("error: cannot write `{out}`: {e}");
                return ExitCode::FAILURE;
            }
            println!("wrote {out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot serialize report: {e}");
            ExitCode::FAILURE
        }
    }
}
