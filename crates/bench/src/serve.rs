//! The serving-layer benchmark harness behind `BENCH_serve.json`.
//!
//! Measures the tentpole claim of `qvsec-serve`: a warm multi-tenant
//! [`SessionRegistry`] — T tenants publishing through **one** shared
//! engine — serves the whole request stream several times faster than the
//! stateless deployment shape (a **fresh engine per request**, recompiling
//! every artifact, redrawing every pool), with byte-identical verdicts.
//! Tenant 1 warms the artifact store; tenants 2..T are served almost
//! entirely from it, which is exactly what a server fronting many curators
//! of one schema sees.
//!
//! A second axis sweeps **eviction pressure**: the same multi-tenant drive
//! under shrinking engine byte budgets must keep verdicts identical to the
//! unbounded run while the eviction counters climb — the bounded caches
//! trade wall-clock for memory, never correctness.
//!
//! A third axis drives **concurrent clients**: N real client threads over
//! the NDJSON TCP server, each serving a disjoint slice of the tenants.
//! The sharded memo locks have to show up here as throughput — and the
//! per-tenant response streams have to stay identical (modulo cache
//! counters, the only fields that legitimately depend on interleaving) to
//! the single-client drive at every thread count.
//!
//! The binary `bench_serve` runs this harness and writes
//! `BENCH_serve.json`, mirroring the other committed bench artifacts.

use crate::session::{depth_name, employee_collusion_workload, prob_collusion_workload, Workload};
use qvsec::engine::{AuditOptions, AuditRequest};
use qvsec_cq::ConjunctiveQuery;
use qvsec_serve::{
    drive_scripts, request_lines, RegistryConfig, Server, ServerConfig, ServerStats,
    SessionRegistry,
};
use qvsec_store::{MemStore, StoreBackend};
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::sync::Arc;
use std::thread;
use std::time::Instant;

/// Default number of tenants driven through the registry.
pub const DEFAULT_TENANTS: usize = 6;

/// One workload's registry-vs-fresh-engines measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeWorkloadReport {
    /// Workload label, e.g. `collusion-exact/employee`.
    pub name: String,
    /// Audit depth the tenants run at.
    pub depth: String,
    /// Total requests in the stream (tenants × publish steps).
    pub requests: usize,
    /// Best-of-N wall clock of the stateless shape: a fresh engine per
    /// request auditing the tenant's cumulative prefix, nanoseconds.
    pub cold_nanos: u64,
    /// Best-of-N wall clock of the shared registry serving the same
    /// stream (engine build included), nanoseconds.
    pub warm_nanos: u64,
    /// `cold_nanos / warm_nanos`.
    pub speedup: f64,
    /// Whether every registry report is byte-identical (modulo the request
    /// label) to the fresh engine's.
    pub verdicts_match: bool,
}

/// One point of the eviction-pressure sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvictionPoint {
    /// Engine byte budget (`None` = unbounded).
    pub budget_bytes: Option<usize>,
    /// Best-of-N wall clock of the multi-tenant drive under this budget.
    pub warm_nanos: u64,
    /// Entries evicted during one drive.
    pub evictions: u64,
    /// Approximate bytes evicted during one drive.
    pub evicted_bytes: u64,
    /// Approximate bytes resident after the drive.
    pub resident_bytes: u64,
    /// Whether every verdict matched the unbounded drive.
    pub verdicts_match: bool,
}

/// The restart-rehydration measurement: how fast a crashed server over a
/// warm durable store gets back to its exact pre-crash serving state,
/// against the storeless alternative of re-driving the whole request
/// stream through a fresh engine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RestartReport {
    /// Tenants whose state the restart recovers.
    pub tenants: usize,
    /// Requests the storeless rebuild has to replay.
    pub requests: usize,
    /// Journal records the rehydration replays instead.
    pub journal_records: u64,
    /// Best-of-N wall clock of the storeless rebuild: a fresh engine plus
    /// re-driving the full request stream, nanoseconds.
    pub fresh_nanos: u64,
    /// Best-of-N wall clock of a cold restart over the warm store: engine
    /// build, artifact prewarm, journal replay, first stats answer,
    /// nanoseconds.
    pub rehydrate_nanos: u64,
    /// `fresh_nanos / rehydrate_nanos`.
    pub speedup: f64,
    /// Whether the rehydrated registry's stats are byte-identical to the
    /// pre-crash registry's.
    pub stats_match: bool,
}

/// One client-thread count of the concurrent-serving sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConcurrentPoint {
    /// Real client threads driving the server (server workers match).
    pub client_threads: usize,
    /// Best-of-N wall clock of the full drive — server build, every
    /// tenant's script, shutdown — nanoseconds.
    pub nanos: u64,
    /// Requests per second over one drive.
    pub throughput_rps: f64,
    /// Single-client wall clock over this point's (`nanos` ≥ 1).
    pub speedup_vs_1: f64,
    /// Whether every tenant's response stream was byte-identical to the
    /// single-client drive after dropping the cache-counter objects.
    pub responses_match: bool,
}

/// The concurrent-client measurement: N client threads over the NDJSON
/// TCP server, tenants partitioned round-robin across clients.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConcurrentReport {
    /// Cores available on the recording machine
    /// ([`std::thread::available_parallelism`]) — speedup floors only
    /// bind when this is at least the client count.
    pub cores: usize,
    /// Tenants driven through the server.
    pub tenants: usize,
    /// Total request lines across all tenant scripts.
    pub requests: usize,
    /// One point per swept client-thread count.
    pub points: Vec<ConcurrentPoint>,
}

/// One connection count of the saturation sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SaturationPoint {
    /// Concurrent keep-alive connections held open for the whole drive.
    pub connections: usize,
    /// Total requests across every connection's script.
    pub requests: usize,
    /// Best-of-N wall clock of the drive (connections up to last response),
    /// nanoseconds.
    pub nanos: u64,
    /// Requests per second over the best drive.
    pub throughput_rps: f64,
    /// Median per-request latency over the best drive, microseconds.
    pub p50_micros: u64,
    /// 99th-percentile per-request latency over the best drive,
    /// microseconds.
    pub p99_micros: u64,
    /// This point's throughput over the single-connection point's (≥ 1 is
    /// the saturation claim; floors only bind when cores allow).
    pub speedup_vs_1: f64,
    /// Requests that never got a response (must be 0: keep-alive
    /// connections under the default lifecycle are never shed).
    pub dropped_responses: usize,
    /// Whether every connection's response stream was byte-identical to a
    /// sequential one-connection-at-a-time drive of the same scripts
    /// (cache counters stripped).
    pub responses_match: bool,
    /// The server's connection counters after the verification drive.
    pub server: ServerStats,
}

/// The saturation measurement: 32–128 concurrent pipethrough keep-alive
/// connections against one server, each replaying a tenant-disjoint
/// script.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SaturationReport {
    /// Cores available on the recording machine — throughput floors only
    /// bind when this is at least 4.
    pub cores: usize,
    /// Requests each connection's script carries.
    pub requests_per_connection: usize,
    /// One point per swept connection count.
    pub points: Vec<SaturationPoint>,
}

/// The instrumentation-overhead measurement: the same embedded
/// multi-tenant drive with the telemetry plane fully enabled — span
/// tracing on, every span feeding the latency histograms — against the
/// default path with tracing off. The responses must be byte-identical
/// either way, and the enabled drive must retain at least 95% of the
/// disabled drive's throughput.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InstrumentationReport {
    /// Requests per drive (tenants × script length).
    pub requests: usize,
    /// Best-of-N wall clock with tracing off, nanoseconds.
    pub off_nanos: u64,
    /// Best-of-N wall clock with tracing on, nanoseconds.
    pub on_nanos: u64,
    /// Requests per second with tracing off.
    pub off_rps: f64,
    /// Requests per second with tracing on.
    pub on_rps: f64,
    /// `on_rps / off_rps` — the throughput retained with the telemetry
    /// plane fully enabled (1.0 = free; the gate holds this at ≥ 0.95).
    pub retained_throughput: f64,
    /// Whether the traced drive's responses were byte-identical to the
    /// untraced drive's.
    pub responses_match: bool,
}

/// The full harness report serialized into `BENCH_serve.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeBenchReport {
    /// Worker threads available to the engine's parallel stages.
    pub threads: usize,
    /// Iterations per measurement (best-of).
    pub iterations: usize,
    /// Tenants driven through the registry per workload.
    pub tenants: usize,
    /// Per-workload measurements.
    pub workloads: Vec<ServeWorkloadReport>,
    /// Geometric mean of the per-workload speedups.
    pub geomean_speedup: f64,
    /// Whether every workload's verdicts matched the stateless baseline.
    pub all_verdicts_match: bool,
    /// The eviction-pressure sweep (run on the first workload).
    pub eviction_sweep: Vec<EvictionPoint>,
    /// Whether every budgeted drive matched the unbounded one.
    pub eviction_verdicts_match: bool,
    /// The restart-rehydration measurement (run on the probabilistic
    /// workload, where re-auditing is what a store saves).
    pub restart: RestartReport,
    /// The concurrent-client sweep over the NDJSON server (run on the
    /// probabilistic workload, where each request carries real work).
    pub concurrent: ConcurrentReport,
    /// The saturation sweep: 32–128 concurrent keep-alive connections over
    /// the NDJSON server (run on the cheap exact workload, so the front
    /// end — accept gate, reader threads, in-flight queues — is what gets
    /// measured, not the audits).
    pub saturation: SaturationReport,
    /// The instrumentation-overhead measurement (run on the cheap exact
    /// workload — the worst case for relative overhead, since every span
    /// wraps near-free work).
    pub instrumentation: InstrumentationReport,
}

fn best_of<F: FnMut()>(iterations: usize, mut f: F) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..iterations.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_nanos() as u64);
    }
    best
}

/// A serialized report with the request/session label removed (the only
/// field that legitimately differs between serving shapes).
fn unlabelled(report: &qvsec::AuditReport) -> String {
    let value = serde_json::to_value(report).expect("reports serialize");
    let Value::Object(entries) = value else {
        panic!("reports serialize to objects")
    };
    let kept: Vec<_> = entries.into_iter().filter(|(k, _)| k != "name").collect();
    serde_json::to_string(&Value::Object(kept)).expect("rendering is infallible")
}

/// Drives `tenants` tenants through a fresh registry over a fresh engine.
/// With `collect` the unlabelled per-request reports come back in stream
/// order (the verification pass); the timed passes skip the serialization
/// so it cannot dilute the measured ratio. The workloads themselves are
/// shared with the session harness (`crate::session`), so both committed
/// artifacts measure the same audit streams.
fn drive_registry(
    workload: &Workload,
    tenants: usize,
    budget: Option<usize>,
    collect: bool,
) -> (Vec<String>, u64, u64, u64) {
    let engine = Arc::new(workload.engine_with_budget(budget));
    let registry = SessionRegistry::new(Arc::clone(&engine));
    let mut reports = Vec::new();
    for t in 0..tenants {
        let tenant = format!("tenant-{t:03}");
        registry.open(&tenant, &workload.secret).expect("open");
        for (who, view) in &workload.steps {
            let report = registry
                .publish(&tenant, None, Some(who.clone()), view.clone())
                .expect("bench workloads audit cleanly");
            if collect {
                reports.push(unlabelled(&report.report));
            }
        }
    }
    let stats = engine.cache_stats();
    (
        reports,
        stats.evictions,
        stats.evicted_bytes,
        stats.resident_bytes,
    )
}

/// The stateless shape: a fresh engine per request, each auditing the
/// tenant's cumulative prefix.
fn drive_fresh_engines(workload: &Workload, tenants: usize, collect: bool) -> Vec<String> {
    let mut reports = Vec::new();
    for t in 0..tenants {
        let tenant = format!("tenant-{t:03}");
        let mut published: Vec<ConjunctiveQuery> = Vec::new();
        for (k, (_, view)) in workload.steps.iter().enumerate() {
            published.push(view.clone());
            let request = AuditRequest {
                name: format!("{tenant}#{}", k + 1),
                secret: workload.secret.clone(),
                views: qvsec_cq::ViewSet::from_views(published.clone()),
                options: AuditOptions::default(),
            };
            let report = workload
                .engine_with_budget(None)
                .audit(&request)
                .expect("audits");
            if collect {
                reports.push(unlabelled(&report));
            }
        }
    }
    reports
}

/// Drives the workload's full multi-tenant publish stream through
/// `registry` (the state a restart must recover).
fn drive_stream(registry: &SessionRegistry, workload: &Workload, tenants: usize) {
    for t in 0..tenants {
        let tenant = format!("tenant-{t:03}");
        registry.open(&tenant, &workload.secret).expect("open");
        for (who, view) in &workload.steps {
            registry
                .publish(&tenant, None, Some(who.clone()), view.clone())
                .expect("bench workloads audit cleanly");
        }
    }
}

/// A cold restart over `store`: store-backed engine build (which prewarms
/// the artifact caches), journal replay, and the first stats answer.
fn restart_registry(workload: &Workload, store: &Arc<dyn StoreBackend>) -> String {
    let engine = Arc::new(workload.engine_with_store(Arc::clone(store)));
    let registry =
        SessionRegistry::with_store(engine, RegistryConfig::default(), Arc::clone(store))
            .expect("replay from store");
    serde_json::to_string(&registry.stats()).expect("stats serialize")
}

/// Measures restart-rehydration: seed a durable registry with the full
/// stream, "crash" it, then race a cold restart over the warm store
/// against a storeless rebuild that re-drives the stream from scratch.
fn run_restart(workload: &Workload, tenants: usize, iterations: usize) -> RestartReport {
    let store: Arc<dyn StoreBackend> = Arc::new(MemStore::new());
    let seeded = {
        let engine = Arc::new(workload.engine_with_store(Arc::clone(&store)));
        let registry =
            SessionRegistry::with_store(engine, RegistryConfig::default(), Arc::clone(&store))
                .expect("fresh store replays empty");
        drive_stream(&registry, workload, tenants);
        registry.stats()
    };
    let seeded_json = serde_json::to_string(&seeded).expect("stats serialize");
    // Replay is read-only, so the verification pass and every timed pass
    // rehydrate the same journal.
    let stats_match = restart_registry(workload, &store) == seeded_json;
    let rehydrate_nanos = best_of(iterations, || {
        restart_registry(workload, &store);
    });
    let fresh_nanos = best_of(iterations, || {
        let engine = Arc::new(workload.engine_with_budget(None));
        let registry = SessionRegistry::new(Arc::clone(&engine));
        drive_stream(&registry, workload, tenants);
    });
    RestartReport {
        tenants,
        requests: tenants * (workload.steps.len() + 1),
        journal_records: seeded.journal_records,
        fresh_nanos,
        rehydrate_nanos,
        speedup: fresh_nanos as f64 / rehydrate_nanos.max(1) as f64,
        stats_match,
    }
}

/// One protocol request line with string fields, serialized through the
/// JSON printer so query text is escaped like any client would send it.
fn wire_line(fields: &[(&str, &str)]) -> String {
    let entries = fields
        .iter()
        .map(|(k, v)| ((*k).to_string(), Value::Str((*v).to_string())))
        .collect();
    serde_json::to_string(&Value::Object(entries)).expect("rendering is infallible")
}

/// One NDJSON script per tenant: open, the workload's publish steps, and a
/// tenant-distinct chain view (length `1 + t % 4`) so concurrent clients
/// carry fresh compile work into different memo shards instead of racing
/// on pure cache hits.
fn tenant_scripts(workload: &Workload, tenants: usize) -> Vec<Vec<String>> {
    let secret = workload
        .secret
        .display(&workload.schema, &workload.domain)
        .to_string();
    let steps: Vec<(String, String)> = workload
        .steps
        .iter()
        .map(|(who, view)| {
            (
                who.clone(),
                view.display(&workload.schema, &workload.domain).to_string(),
            )
        })
        .collect();
    (0..tenants)
        .map(|t| {
            let tenant = format!("tenant-{t:03}");
            let mut lines = vec![wire_line(&[
                ("op", "open"),
                ("tenant", &tenant),
                ("secret", &secret),
            ])];
            for (who, view) in &steps {
                lines.push(wire_line(&[
                    ("op", "publish"),
                    ("tenant", &tenant),
                    ("view", view),
                    ("name", who),
                ]));
            }
            let n = 1 + t % 4;
            let body: Vec<String> = (0..n).map(|i| format!("R(v{i}, v{})", i + 1)).collect();
            let chain = format!("C{n}(v0) :- {}", body.join(", "));
            lines.push(wire_line(&[
                ("op", "publish"),
                ("tenant", &tenant),
                ("view", &chain),
                ("name", "chain"),
            ]));
            lines
        })
        .collect()
}

/// Drives every tenant script through a fresh server with `clients` real
/// client threads (client `c` serves tenants `c, c + clients, ...`) and
/// `clients` server workers. Returns the raw response lines in tenant
/// order, independent of which client carried them.
fn drive_concurrent(
    workload: &Workload,
    scripts: &[Vec<String>],
    clients: usize,
) -> Vec<Vec<String>> {
    let engine = Arc::new(workload.engine_with_budget(None));
    let registry = Arc::new(SessionRegistry::new(engine));
    let server = Server::bind(registry, "127.0.0.1:0", clients).expect("bind loopback");
    let handle = server.handle().expect("server handle");
    let addr = handle.addr().to_string();
    let join = thread::spawn(move || server.run());
    let collected: Vec<(usize, Vec<String>)> = thread::scope(|scope| {
        let addr = addr.as_str();
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    for t in (c..scripts.len()).step_by(clients) {
                        let lines = request_lines(addr, &scripts[t]).expect("client request");
                        out.push((t, lines));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    handle.shutdown();
    join.join().expect("server thread").expect("server run");
    let mut responses = vec![Vec::new(); scripts.len()];
    for (t, lines) in collected {
        responses[t] = lines;
    }
    responses
}

/// Drops every `cache` member — engine-wide hit/miss/eviction counters,
/// the only response fields that legitimately depend on how concurrent
/// requests interleave — so the rest must be byte-identical.
fn strip_cache_counters(value: Value) -> Value {
    match value {
        Value::Object(entries) => Value::Object(
            entries
                .into_iter()
                .filter(|(k, _)| k != "cache")
                .map(|(k, v)| (k, strip_cache_counters(v)))
                .collect(),
        ),
        Value::Array(items) => Value::Array(items.into_iter().map(strip_cache_counters).collect()),
        other => other,
    }
}

fn canonical_responses(per_tenant: &[Vec<String>]) -> Vec<Vec<String>> {
    per_tenant
        .iter()
        .map(|lines| {
            lines
                .iter()
                .map(|line| {
                    let value = serde_json::parse(line).expect("responses are JSON");
                    serde_json::to_string(&strip_cache_counters(value))
                        .expect("rendering is infallible")
                })
                .collect()
        })
        .collect()
}

/// The concurrent-client sweep: 1, 2 and 4 client threads over the same
/// tenant scripts, verified against the single-client drive.
fn run_concurrent(workload: &Workload, tenants: usize, iterations: usize) -> ConcurrentReport {
    let scripts = tenant_scripts(workload, tenants);
    let requests: usize = scripts.iter().map(Vec::len).sum();
    let baseline = canonical_responses(&drive_concurrent(workload, &scripts, 1));
    let mut points = Vec::new();
    let mut single_nanos = 0u64;
    for clients in [1usize, 2, 4] {
        let responses_match =
            canonical_responses(&drive_concurrent(workload, &scripts, clients)) == baseline;
        let nanos = best_of(iterations, || {
            drive_concurrent(workload, &scripts, clients);
        });
        if clients == 1 {
            single_nanos = nanos;
        }
        points.push(ConcurrentPoint {
            client_threads: clients,
            nanos,
            throughput_rps: requests as f64 * 1e9 / nanos.max(1) as f64,
            speedup_vs_1: single_nanos as f64 / nanos.max(1) as f64,
            responses_match,
        });
    }
    ConcurrentReport {
        cores: thread::available_parallelism().map_or(1, |n| n.get()),
        tenants,
        requests,
        points,
    }
}

/// Runs the concurrent-client sweep standalone on the probabilistic
/// collusion workload — the thread-invariance smoke tests call this
/// directly so they need not pay for the full harness.
pub fn run_concurrent_bench(
    iterations: usize,
    tenants: usize,
    mc_samples: usize,
) -> ConcurrentReport {
    run_concurrent(&prob_collusion_workload(3, mc_samples), tenants, iterations)
}

/// One cheap keep-alive script per connection: open a connection-disjoint
/// tenant, publish the workload's steps, then one candidate re-asking the
/// first view. Every op is tenant-local, so a concurrent drive and a
/// sequential one must answer identically (modulo cache counters).
fn saturation_scripts(workload: &Workload, connections: usize) -> Vec<Vec<String>> {
    let secret = workload
        .secret
        .display(&workload.schema, &workload.domain)
        .to_string();
    let steps: Vec<(String, String)> = workload
        .steps
        .iter()
        .map(|(who, view)| {
            (
                who.clone(),
                view.display(&workload.schema, &workload.domain).to_string(),
            )
        })
        .collect();
    (0..connections)
        .map(|c| {
            let tenant = format!("sat-{c:03}");
            let mut lines = vec![wire_line(&[
                ("op", "open"),
                ("tenant", &tenant),
                ("secret", &secret),
            ])];
            for (who, view) in &steps {
                lines.push(wire_line(&[
                    ("op", "publish"),
                    ("tenant", &tenant),
                    ("view", view),
                    ("name", who),
                ]));
            }
            lines.push(wire_line(&[
                ("op", "candidate"),
                ("tenant", &tenant),
                ("view", &steps[0].1),
            ]));
            lines
        })
        .collect()
}

/// One saturation drive: a fresh server sized for the connection count,
/// every script driven concurrently over its own keep-alive connection.
/// Returns the drive outcome, the server's counters and the wall clock of
/// the drive itself (server build and shutdown excluded).
fn drive_saturation(
    workload: &Workload,
    scripts: &[Vec<String>],
) -> (qvsec_serve::DriveOutcome, ServerStats, u64) {
    let engine = Arc::new(workload.engine_with_budget(None));
    let registry = Arc::new(SessionRegistry::new(engine));
    let server = Server::bind_with(
        registry,
        "127.0.0.1:0",
        ServerConfig {
            max_connections: scripts.len().max(4),
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let handle = server.handle().expect("server handle");
    let addr = handle.addr().to_string();
    let join = thread::spawn(move || server.run());
    let start = Instant::now();
    let outcome = drive_scripts(&addr, scripts);
    let nanos = start.elapsed().as_nanos() as u64;
    handle.shutdown();
    join.join().expect("server thread").expect("server run");
    // Counters are final only once every connection thread has exited —
    // i.e. after the drain `run()` performs — so snapshot after the join.
    let stats = handle.stats();
    (outcome, stats, nanos)
}

/// A sequential ground-truth drive of the same scripts: one connection at
/// a time against a fresh server, canonicalized for comparison.
fn sequential_baseline(workload: &Workload, scripts: &[Vec<String>]) -> Vec<Vec<String>> {
    let engine = Arc::new(workload.engine_with_budget(None));
    let registry = Arc::new(SessionRegistry::new(engine));
    let server = Server::bind(registry, "127.0.0.1:0", 4).expect("bind loopback");
    let handle = server.handle().expect("server handle");
    let addr = handle.addr().to_string();
    let join = thread::spawn(move || server.run());
    let responses: Vec<Vec<String>> = scripts
        .iter()
        .map(|script| request_lines(&addr, script).expect("sequential drive"))
        .collect();
    handle.shutdown();
    join.join().expect("server thread").expect("server run");
    canonical_responses(&responses)
}

fn percentile_micros(sorted_nanos: &[u64], p: f64) -> u64 {
    if sorted_nanos.is_empty() {
        return 0;
    }
    let rank = ((sorted_nanos.len() - 1) as f64 * p).round() as usize;
    sorted_nanos[rank] / 1_000
}

/// The saturation sweep over `connection_counts` (the first count is the
/// speedup baseline). Each point verifies against a sequential drive, then
/// keeps the latency distribution and counters of the best-of-N timed
/// drive.
fn run_saturation(
    workload: &Workload,
    iterations: usize,
    connection_counts: &[usize],
) -> SaturationReport {
    let mut points = Vec::new();
    let mut single_rps = 0.0f64;
    for &connections in connection_counts {
        let scripts = saturation_scripts(workload, connections);
        let requests: usize = scripts.iter().map(Vec::len).sum();
        let baseline = sequential_baseline(workload, &scripts);
        let (verify_outcome, verify_stats, mut best_nanos) = drive_saturation(workload, &scripts);
        let responses_match = verify_outcome.dropped == 0
            && canonical_responses(&verify_outcome.responses) == baseline;
        let mut best_latencies = verify_outcome.latencies_nanos.clone();
        let mut dropped = verify_outcome.dropped;
        for _ in 1..iterations.max(1) {
            let (outcome, _, nanos) = drive_saturation(workload, &scripts);
            if nanos < best_nanos {
                best_nanos = nanos;
                best_latencies = outcome.latencies_nanos.clone();
                dropped = outcome.dropped;
            }
        }
        best_latencies.sort_unstable();
        let throughput_rps = requests as f64 * 1e9 / best_nanos.max(1) as f64;
        if points.is_empty() {
            single_rps = throughput_rps;
        }
        points.push(SaturationPoint {
            connections,
            requests,
            nanos: best_nanos,
            throughput_rps,
            p50_micros: percentile_micros(&best_latencies, 0.50),
            p99_micros: percentile_micros(&best_latencies, 0.99),
            speedup_vs_1: throughput_rps / single_rps.max(1e-9),
            dropped_responses: dropped,
            responses_match,
            server: verify_stats,
        });
    }
    SaturationReport {
        cores: thread::available_parallelism().map_or(1, |n| n.get()),
        requests_per_connection: workload.steps.len() + 2,
        points,
    }
}

/// Runs the saturation sweep standalone on the cheap exact workload — the
/// smoke tests call this directly with a reduced connection list so they
/// need not pay for the full harness.
pub fn run_saturation_bench(iterations: usize, connection_counts: &[usize]) -> SaturationReport {
    run_saturation(
        &employee_collusion_workload(64),
        iterations,
        connection_counts,
    )
}

/// Drives every tenant script through the embedded dispatcher over a
/// fresh registry — the full instrumented request path (span enters,
/// counters, histograms) without TCP scheduling noise. With `collect`
/// the exact response bytes come back in stream order.
fn drive_embedded(workload: &Workload, scripts: &[Vec<String>], collect: bool) -> Vec<String> {
    let engine = Arc::new(workload.engine_with_budget(None));
    let registry = SessionRegistry::new(engine);
    let mut responses = Vec::new();
    for script in scripts {
        for line in script {
            let (value, _) = qvsec_serve::handle_request(&registry, line);
            if collect {
                responses.push(serde_json::to_string(&value).expect("rendering is infallible"));
            }
        }
    }
    responses
}

/// Measures the cost of the telemetry plane: the same embedded drive with
/// span tracing off and fully on. Verifies byte-identity first (the
/// observability-transparency claim), then times both shapes. Leaves the
/// process-global tracing flag off.
fn run_instrumentation(
    workload: &Workload,
    tenants: usize,
    iterations: usize,
) -> InstrumentationReport {
    let scripts = tenant_scripts(workload, tenants);
    let requests: usize = scripts.iter().map(Vec::len).sum();
    qvsec_obs::set_tracing(false);
    let off_responses = drive_embedded(workload, &scripts, true);
    qvsec_obs::set_tracing(true);
    let on_responses = drive_embedded(workload, &scripts, true);
    let responses_match = off_responses == on_responses;
    // Each timed pass repeats the drive to amortize clock granularity, and
    // the off/on passes interleave so frequency drift and cache warmth hit
    // both shapes equally — a 1% real effect must not drown in 10% noise.
    const REPEATS: usize = 4;
    let mut off_nanos = u64::MAX;
    let mut on_nanos = u64::MAX;
    for _ in 0..iterations.max(1) {
        qvsec_obs::set_tracing(false);
        let start = Instant::now();
        for _ in 0..REPEATS {
            drive_embedded(workload, &scripts, false);
        }
        off_nanos = off_nanos.min(start.elapsed().as_nanos() as u64 / REPEATS as u64);
        qvsec_obs::set_tracing(true);
        let start = Instant::now();
        for _ in 0..REPEATS {
            drive_embedded(workload, &scripts, false);
        }
        on_nanos = on_nanos.min(start.elapsed().as_nanos() as u64 / REPEATS as u64);
    }
    qvsec_obs::set_tracing(false);
    let off_rps = requests as f64 * 1e9 / off_nanos.max(1) as f64;
    let on_rps = requests as f64 * 1e9 / on_nanos.max(1) as f64;
    InstrumentationReport {
        requests,
        off_nanos,
        on_nanos,
        off_rps,
        on_rps,
        retained_throughput: on_rps / off_rps.max(1e-9),
        responses_match,
    }
}

/// Runs the instrumentation-overhead measurement standalone on the cheap
/// exact workload — the transparency smoke tests call this directly so
/// they need not pay for the full harness.
pub fn run_instrumentation_bench(iterations: usize, tenants: usize) -> InstrumentationReport {
    run_instrumentation(&employee_collusion_workload(64), tenants, iterations)
}

/// Runs the harness: registry-vs-fresh-engines per workload, then the
/// eviction-pressure sweep on the employee workload.
pub fn run_serve_bench(iterations: usize, tenants: usize, mc_samples: usize) -> ServeBenchReport {
    let workloads = [
        employee_collusion_workload(mc_samples),
        prob_collusion_workload(3, mc_samples),
    ];
    let mut reports = Vec::with_capacity(workloads.len());
    for w in &workloads {
        let (warm_reports, ..) = drive_registry(w, tenants, None, true);
        let cold_reports = drive_fresh_engines(w, tenants, true);
        let verdicts_match = warm_reports == cold_reports;
        let warm_nanos = best_of(iterations, || {
            drive_registry(w, tenants, None, false);
        });
        let cold_nanos = best_of(iterations, || {
            drive_fresh_engines(w, tenants, false);
        });
        reports.push(ServeWorkloadReport {
            name: w.name.clone(),
            depth: depth_name(w.depth).to_string(),
            requests: tenants * w.steps.len(),
            cold_nanos,
            warm_nanos,
            speedup: cold_nanos as f64 / warm_nanos.max(1) as f64,
            verdicts_match,
        });
    }
    let geomean_speedup = {
        let logs: Vec<f64> = reports.iter().map(|r| r.speedup.ln()).collect();
        (logs.iter().sum::<f64>() / logs.len() as f64).exp()
    };

    // Eviction pressure: shrink the budget on the employee workload; the
    // verdicts must track the unbounded drive at every point.
    let sweep_workload = &workloads[0];
    let (unbounded_reports, ..) = drive_registry(sweep_workload, tenants, None, true);
    let mut eviction_sweep = Vec::new();
    for budget in [None, Some(64 * 1024), Some(4 * 1024)] {
        let (reports_b, evictions, evicted_bytes, resident_bytes) =
            drive_registry(sweep_workload, tenants, budget, true);
        let warm_nanos = best_of(iterations, || {
            drive_registry(sweep_workload, tenants, budget, false);
        });
        eviction_sweep.push(EvictionPoint {
            budget_bytes: budget,
            warm_nanos,
            evictions,
            evicted_bytes,
            resident_bytes,
            verdicts_match: reports_b == unbounded_reports,
        });
    }

    // Restart-rehydration is measured on the probabilistic workload: the
    // rebuild cost a store avoids is re-running the expensive audits, so
    // that is where crash recovery has to prove itself (on the cheap exact
    // workload, replaying the journal costs more than re-auditing).
    let restart = run_restart(&workloads[1], tenants, iterations);

    // Concurrent clients are measured on the probabilistic workload too:
    // its requests carry enough per-request work for parallel serving to
    // matter, and the chain views exercise distinct memo shards.
    let concurrent = run_concurrent(&workloads[1], tenants, iterations);

    // Saturation runs on the cheap exact workload: with near-free audits,
    // req/s and tail latency measure the front end itself.
    let saturation = run_saturation(&workloads[0], iterations, &[1, 32, 64, 128]);

    // Instrumentation overhead runs on the same cheap workload — every
    // span wraps near-free work, so the relative cost is at its worst.
    let instrumentation = run_instrumentation(&workloads[0], tenants, iterations.max(5));

    ServeBenchReport {
        threads: rayon::current_num_threads(),
        iterations: iterations.max(1),
        tenants,
        geomean_speedup,
        all_verdicts_match: reports.iter().all(|r| r.verdicts_match),
        workloads: reports,
        eviction_verdicts_match: eviction_sweep.iter().all(|p| p.verdicts_match),
        eviction_sweep,
        restart,
        concurrent,
        saturation,
        instrumentation,
    }
}

/// Renders a compact human-readable table of the report.
pub fn render_report(report: &ServeBenchReport) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "warm multi-tenant registry vs fresh engine per request ({} tenants, {} threads, best of {}):",
        report.tenants, report.threads, report.iterations
    );
    let _ = writeln!(
        out,
        "{:<26} {:<14} {:>9} {:>12} {:>12} {:>8} {:>6}",
        "workload", "depth", "requests", "cold µs", "warm µs", "speedup", "match"
    );
    for w in &report.workloads {
        let _ = writeln!(
            out,
            "{:<26} {:<14} {:>9} {:>12.1} {:>12.1} {:>7.1}x {:>6}",
            w.name,
            w.depth,
            w.requests,
            w.cold_nanos as f64 / 1000.0,
            w.warm_nanos as f64 / 1000.0,
            w.speedup,
            w.verdicts_match,
        );
    }
    let _ = writeln!(
        out,
        "geomean speedup {:.2}x, verdicts match: {}",
        report.geomean_speedup, report.all_verdicts_match
    );
    let _ = writeln!(
        out,
        "eviction-pressure sweep ({}):",
        report.workloads[0].name
    );
    let _ = writeln!(
        out,
        "{:<16} {:>12} {:>10} {:>14} {:>14} {:>6}",
        "budget", "warm µs", "evictions", "evicted B", "resident B", "match"
    );
    for p in &report.eviction_sweep {
        let budget = match p.budget_bytes {
            Some(b) => format!("{b}"),
            None => "unbounded".to_string(),
        };
        let _ = writeln!(
            out,
            "{:<16} {:>12.1} {:>10} {:>14} {:>14} {:>6}",
            budget,
            p.warm_nanos as f64 / 1000.0,
            p.evictions,
            p.evicted_bytes,
            p.resident_bytes,
            p.verdicts_match,
        );
    }
    let r = &report.restart;
    let _ = writeln!(
        out,
        "restart-rehydration ({} tenants, {} journal records): storeless rebuild {:.1} µs, \
         cold restart over warm store {:.1} µs, {:.1}x, stats match: {}",
        r.tenants,
        r.journal_records,
        r.fresh_nanos as f64 / 1000.0,
        r.rehydrate_nanos as f64 / 1000.0,
        r.speedup,
        r.stats_match,
    );
    let c = &report.concurrent;
    let _ = writeln!(
        out,
        "concurrent clients over the NDJSON server ({} tenants, {} requests, {} cores):",
        c.tenants, c.requests, c.cores
    );
    let _ = writeln!(
        out,
        "{:<16} {:>12} {:>12} {:>12} {:>6}",
        "client threads", "drive µs", "req/s", "vs 1 client", "match"
    );
    for p in &c.points {
        let _ = writeln!(
            out,
            "{:<16} {:>12.1} {:>12.0} {:>11.2}x {:>6}",
            p.client_threads,
            p.nanos as f64 / 1000.0,
            p.throughput_rps,
            p.speedup_vs_1,
            p.responses_match,
        );
    }
    let s = &report.saturation;
    let _ = writeln!(
        out,
        "saturation: pipelined keep-alive connections ({} requests/conn, {} cores):",
        s.requests_per_connection, s.cores
    );
    let _ = writeln!(
        out,
        "{:<12} {:>9} {:>12} {:>10} {:>10} {:>11} {:>8} {:>6}",
        "connections", "requests", "req/s", "p50 µs", "p99 µs", "vs 1 conn", "dropped", "match"
    );
    for p in &s.points {
        let _ = writeln!(
            out,
            "{:<12} {:>9} {:>12.0} {:>10} {:>10} {:>10.2}x {:>8} {:>6}",
            p.connections,
            p.requests,
            p.throughput_rps,
            p.p50_micros,
            p.p99_micros,
            p.speedup_vs_1,
            p.dropped_responses,
            p.responses_match,
        );
    }
    let i = &report.instrumentation;
    let _ = writeln!(
        out,
        "instrumentation overhead ({} requests, embedded drive): off {:.0} req/s, \
         tracing+metrics on {:.0} req/s, {:.1}% retained, responses match: {}",
        i.requests,
        i.off_rps,
        i.on_rps,
        i.retained_throughput * 100.0,
        i.responses_match,
    );
    out
}
