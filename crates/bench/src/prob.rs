//! The probabilistic-kernel benchmark harness behind `BENCH_prob.json`.
//!
//! Measures the shared-sample kernel ([`qvsec_prob::ProbKernel`]) against
//! the preserved enumeration baseline — the exact code the engine's
//! `Probabilistic` stage ran before the kernel existed:
//! [`qvsec_prob::check_independence`] + [`qvsec::leakage_exact`] +
//! [`qvsec::report::is_totally_disclosed`], each of which re-enumerates the
//! `2^n` instances of the tuple space (the leakage pass once per
//! `(answer, view-answer)` pair). The kernel serves all three verdicts from
//! **one** streamed pass over `u64` world masks, which is where the speedup
//! comes from.
//!
//! Workloads are the four Table 1 rows over their support dictionaries plus
//! projection/collusion pairs over a binary relation at growing domain
//! sizes. Every workload asserts `verdicts_match`: independence report,
//! leakage report and total-disclosure flag byte-equal between kernel and
//! baseline.
//!
//! The binary `bench_prob` runs this harness and writes `BENCH_prob.json`,
//! mirroring `BENCH_crit.json`.

use qvsec::leakage::{leakage_exact, LeakageReport};
use qvsec::report::is_totally_disclosed;
use qvsec_cq::{parse_query, ConjunctiveQuery, ViewSet};
use qvsec_data::{Dictionary, Domain, Schema, TupleSpace};
use qvsec_prob::independence::check_independence;
use qvsec_prob::kernel::{KernelConfig, ProbKernel};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// Default domain sizes for the binary-relation workloads (`|D|²` tuples,
/// so `2^9` and `2^16` worlds).
pub const DEFAULT_DOMAIN_SIZES: &[usize] = &[3, 4];

/// Default shared-pool size for the Monte-Carlo section.
pub const DEFAULT_MC_SAMPLES: usize = 8192;

/// One Probabilistic-stage measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProbWorkloadReport {
    /// Workload label, e.g. `proj-pair/domain4`.
    pub name: String,
    /// Tuples in the dictionary's space.
    pub space_size: usize,
    /// Worlds enumerated (`2^space_size`).
    pub worlds: u64,
    /// Number of views.
    pub views: usize,
    /// Best-of-N wall clock of the enumeration baseline, nanoseconds.
    pub seq_nanos: u64,
    /// Best-of-N wall clock of the streaming kernel, nanoseconds.
    pub kernel_nanos: u64,
    /// `seq_nanos / kernel_nanos`.
    pub speedup: f64,
    /// Whether kernel and baseline produced identical verdicts
    /// (independence report, leakage report, total disclosure).
    pub verdicts_match: bool,
    /// The (shared) independence verdict.
    pub independent: bool,
    /// The (shared) `leak(S, V̄)` as an `f64`.
    pub max_leak: f64,
    /// The (shared) total-disclosure verdict.
    pub totally_disclosed: bool,
}

/// The Monte-Carlo section: demonstrates the shared pool on a space too
/// large to enumerate (no exact baseline exists there — the pre-kernel
/// engine refused such audits).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct McPoolReport {
    /// Tuples in the oversized space.
    pub space_size: usize,
    /// Pool size.
    pub samples: usize,
    /// Pool seed.
    pub seed: u64,
    /// Audits served from the one pool.
    pub audits: usize,
    /// Worlds drawn (once).
    pub samples_drawn: u64,
    /// Worlds served from the pool instead of redrawn.
    pub samples_reused: u64,
    /// Exact→Monte-Carlo cutovers observed.
    pub cutovers: u64,
    /// Estimated independence verdict of the audited pair.
    pub independent: bool,
    /// Estimated `leak(S, V̄)`.
    pub max_leak_estimate: f64,
    /// Whether two kernels with the same seed produced identical reports.
    pub determinism_ok: bool,
}

/// The full harness report serialized into `BENCH_prob.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProbBenchReport {
    /// Worker threads available to the parallel streaming/sampling.
    pub threads: usize,
    /// Iterations per measurement (best-of).
    pub iterations: usize,
    /// Domain sizes of the binary-relation workloads.
    pub domain_sizes: Vec<usize>,
    /// Per-workload measurements.
    pub workloads: Vec<ProbWorkloadReport>,
    /// Smallest per-workload speedup.
    pub min_speedup: f64,
    /// Geometric mean of per-workload speedups.
    pub geomean_speedup: f64,
    /// The shared-pool Monte-Carlo section.
    pub mc: McPoolReport,
}

fn best_of<F: FnMut()>(iterations: usize, mut f: F) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..iterations.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_nanos() as u64);
    }
    best
}

/// The enumeration baseline: exactly the three passes the pre-kernel
/// engine ran at `AuditDepth::Probabilistic`.
fn baseline(
    secret: &ConjunctiveQuery,
    views: &ViewSet,
    dict: &Dictionary,
) -> (qvsec_prob::IndependenceReport, LeakageReport, bool) {
    let ind = check_independence(secret, views, dict).unwrap();
    let leak = leakage_exact(secret, views, dict).unwrap();
    let total = is_totally_disclosed(secret, views, dict).unwrap();
    (ind, leak, total)
}

fn run_workload(
    name: String,
    secret: &ConjunctiveQuery,
    views: &ViewSet,
    dict: &Dictionary,
    iterations: usize,
) -> ProbWorkloadReport {
    // Correctness first, outside the timed region.
    let arc_dict = Arc::new(dict.clone());
    let kernel = ProbKernel::new(Arc::clone(&arc_dict), KernelConfig::default());
    let audit = kernel.evaluate(secret, views).unwrap();
    let (base_ind, base_leak, base_total) = baseline(secret, views, dict);
    let kernel_leak = LeakageReport::from(audit.leakage.clone());
    let verdicts_match = audit.independence.independent == base_ind.independent
        && audit.independence.violations == base_ind.violations
        && audit.independence.pairs_checked == base_ind.pairs_checked
        && kernel_leak.max_leak == base_leak.max_leak
        && kernel_leak.witness == base_leak.witness
        && kernel_leak.positive_entries == base_leak.positive_entries
        && kernel_leak.pairs_checked == base_leak.pairs_checked
        && audit.totally_disclosed == base_total;

    let seq_nanos = best_of(iterations, || {
        baseline(secret, views, dict);
    });
    let kernel_nanos = best_of(iterations, || {
        let k = ProbKernel::new(Arc::clone(&arc_dict), KernelConfig::default());
        k.evaluate(secret, views).unwrap();
    });
    ProbWorkloadReport {
        name,
        space_size: dict.len(),
        worlds: 1u64 << dict.len(),
        views: views.len(),
        seq_nanos,
        kernel_nanos,
        speedup: seq_nanos as f64 / kernel_nanos.max(1) as f64,
        verdicts_match,
        independent: base_ind.independent,
        max_leak: base_leak.max_leak_f64(),
        totally_disclosed: base_total,
    }
}

fn binary_schema() -> Schema {
    let mut schema = Schema::new();
    schema.add_relation("R", &["x", "y"]);
    schema
}

/// The shared-pool Monte-Carlo section over a space no exact procedure can
/// enumerate (`|D|² > MAX_ENUMERABLE` tuples).
fn run_mc_section(samples: usize) -> McPoolReport {
    let schema = binary_schema();
    let mut domain = Domain::with_size(6); // 36 tuples
    let s = parse_query("S(y) :- R(x, y)", &schema, &mut domain).unwrap();
    let v = parse_query("V(x) :- R(x, y)", &schema, &mut domain).unwrap();
    let views = ViewSet::single(v);
    let space = TupleSpace::full_with_cap(&schema, &domain, 4096).unwrap();
    let dict = Arc::new(Dictionary::uniform(space, qvsec_data::Ratio::new(1, 6)).unwrap());
    let config = KernelConfig {
        exact_cutover: qvsec_data::bitset::MAX_ENUMERABLE,
        samples,
        seed: 42,
        ..KernelConfig::default()
    };
    let kernel = ProbKernel::new(Arc::clone(&dict), config);
    assert!(!kernel.is_exact());
    let first = kernel.evaluate(&s, &views).unwrap();
    let second = kernel.evaluate(&s, &views).unwrap();
    let stats = kernel.stats();
    // A fresh kernel with the same seed must reproduce the report exactly.
    let other = ProbKernel::new(Arc::clone(&dict), config);
    let replay = other.evaluate(&s, &views).unwrap();
    let determinism_ok = first.independence.violations == second.independence.violations
        && first.independence.violations == replay.independence.violations
        && first.leakage == second.leakage
        && first.leakage == replay.leakage
        && first.totally_disclosed == replay.totally_disclosed;
    McPoolReport {
        space_size: dict.len(),
        samples,
        seed: 42,
        audits: 2,
        samples_drawn: stats.samples_drawn,
        samples_reused: stats.samples_reused,
        cutovers: stats.cutovers,
        independent: first.independence.independent,
        max_leak_estimate: first.leakage.max_leak.to_f64(),
        determinism_ok,
    }
}

/// Runs the harness: Table 1 rows over support dictionaries, then
/// projection and collusion workloads over the binary relation at each
/// domain size (collusion only at the smallest size — its baseline cost is
/// quadratic in the answer count), then the Monte-Carlo pool section.
pub fn run_prob_bench(
    domain_sizes: &[usize],
    iterations: usize,
    mc_samples: usize,
) -> ProbBenchReport {
    let mut workloads = Vec::new();

    for row in qvsec_workload::paper::table1() {
        let mut queries: Vec<&ConjunctiveQuery> = vec![&row.secret];
        queries.extend(row.views.iter());
        let dict = crate::support_dictionary(&queries, &row.domain);
        workloads.push(run_workload(
            format!("table1-row{}/support{}", row.id, dict.len()),
            &row.secret,
            &row.views,
            &dict,
            iterations,
        ));
    }

    let schema = binary_schema();
    for (k, &size) in domain_sizes.iter().enumerate() {
        let mut domain = Domain::with_size(size);
        let s = parse_query("S(y) :- R(x, y)", &schema, &mut domain).unwrap();
        let v = parse_query("V(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let space = TupleSpace::full(&schema, &domain).unwrap();
        assert!(
            space.len() <= qvsec_data::bitset::MAX_ENUMERABLE,
            "domain size {size} exceeds the enumerable baseline"
        );
        let dict = Dictionary::half(space);
        workloads.push(run_workload(
            format!("proj-pair/domain{size}"),
            &s,
            &ViewSet::single(v),
            &dict,
            iterations,
        ));
        if k == 0 {
            let s2 = parse_query("S2(x, y) :- R(x, y)", &schema, &mut domain).unwrap();
            let v1 = parse_query("V1(x) :- R(x, y)", &schema, &mut domain).unwrap();
            let v2 = parse_query("V2(y) :- R(x, y)", &schema, &mut domain).unwrap();
            let space = TupleSpace::full(&schema, &domain).unwrap();
            let dict = Dictionary::half(space);
            workloads.push(run_workload(
                format!("collusion/domain{size}"),
                &s2,
                &ViewSet::from_views(vec![v1, v2]),
                &dict,
                iterations,
            ));
        }
    }

    let speedups: Vec<f64> = workloads.iter().map(|w| w.speedup).collect();
    let min_speedup = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
    let geomean_speedup =
        (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len().max(1) as f64).exp();
    ProbBenchReport {
        threads: rayon::current_num_threads(),
        iterations: iterations.max(1),
        domain_sizes: domain_sizes.to_vec(),
        workloads,
        min_speedup,
        geomean_speedup,
        mc: run_mc_section(mc_samples),
    }
}

/// Renders a compact human-readable table of the report.
pub fn render_report(report: &ProbBenchReport) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "probabilistic kernel vs enumeration baseline ({} threads, best of {}):",
        report.threads, report.iterations
    );
    let _ = writeln!(
        out,
        "{:<26} {:>6} {:>8} {:>12} {:>12} {:>8}  {:>6}",
        "workload", "tuples", "worlds", "seq µs", "kernel µs", "speedup", "match"
    );
    for w in &report.workloads {
        let _ = writeln!(
            out,
            "{:<26} {:>6} {:>8} {:>12.1} {:>12.1} {:>7.1}x  {:>6}",
            w.name,
            w.space_size,
            w.worlds,
            w.seq_nanos as f64 / 1000.0,
            w.kernel_nanos as f64 / 1000.0,
            w.speedup,
            w.verdicts_match,
        );
    }
    let _ = writeln!(
        out,
        "min speedup {:.2}x, geometric mean {:.2}x",
        report.min_speedup, report.geomean_speedup
    );
    let _ = writeln!(
        out,
        "mc pool: {} tuples, {} samples (seed {}), drawn {} / reused {} over {} audits, deterministic: {}",
        report.mc.space_size,
        report.mc.samples,
        report.mc.seed,
        report.mc.samples_drawn,
        report.mc.samples_reused,
        report.mc.audits,
        report.mc.determinism_ok,
    );
    out
}
