//! The `crit(Q)` kernel benchmark harness behind `BENCH_crit.json`.
//!
//! Measures the parallel, pruned kernel
//! ([`qvsec::critical::critical_tuples_traced`]) against the preserved
//! pre-kernel sequential path ([`qvsec::critical::critical_tuples_seq`]) on
//! the Table 1 workloads — each row's secret and views, exactly the
//! critical-tuple sets the engine's `Exact` stage computes — over a range of
//! active-domain sizes. Alongside wall-clock, every workload records the
//! kernel's pruning counters (candidates examined vs. pruned), so the
//! benchmark trajectory captures *why* the kernel is fast, not just that it
//! is.
//!
//! The binary `bench_crit` runs this harness and writes the report to
//! `BENCH_crit.json`; `cargo bench -p qvsec-bench --bench crit_kernel` runs
//! the criterion version of the same comparison.

use qvsec::critical::{critical_tuples_seq, critical_tuples_traced, CritStats, CritStatsSnapshot};
use qvsec_cq::ConjunctiveQuery;
use qvsec_data::Domain;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Candidate cap used by the harness (far above the largest workload).
pub const HARNESS_CANDIDATE_CAP: usize = 250_000;

/// Default active-domain sizes: the Table 1 queries have 3 symbols, so every
/// size is past the Proposition 4.9 bound; the smallest still gives each
/// workload hundreds of candidates (`size³` per subgoal), enough that the
/// measurement is not dominated by sub-100µs timer noise.
pub const DEFAULT_DOMAIN_SIZES: &[usize] = &[16, 20, 24];

/// One (Table 1 row, domain size) measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CritWorkloadReport {
    /// Workload label, e.g. `table1-row2/domain12`.
    pub name: String,
    /// Active-domain size the crit sets were computed over.
    pub domain_size: usize,
    /// Number of queries (secret + views).
    pub queries: usize,
    /// Total critical tuples found (identical for both paths).
    pub critical_tuples: usize,
    /// Best-of-N wall clock of the sequential pre-kernel path, nanoseconds.
    pub seq_nanos: u64,
    /// Best-of-N wall clock of the parallel, pruned kernel, nanoseconds.
    pub kernel_nanos: u64,
    /// `seq_nanos / kernel_nanos`.
    pub speedup: f64,
    /// Whether the two paths produced byte-identical crit sets.
    pub verdicts_match: bool,
    /// Kernel pruning counters for one run of this workload.
    pub pruning: CritStatsSnapshot,
}

/// The full harness report serialized into `BENCH_crit.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CritBenchReport {
    /// Worker threads available to the parallel filter.
    pub threads: usize,
    /// Iterations per measurement (best-of).
    pub iterations: usize,
    /// Domain sizes exercised.
    pub domain_sizes: Vec<usize>,
    /// Per-workload measurements.
    pub workloads: Vec<CritWorkloadReport>,
    /// Smallest per-workload speedup.
    pub min_speedup: f64,
    /// Geometric mean of per-workload speedups.
    pub geomean_speedup: f64,
}

fn best_of<F: FnMut()>(iterations: usize, mut f: F) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..iterations.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_nanos() as u64);
    }
    best
}

fn run_workload(
    name: String,
    queries: &[&ConjunctiveQuery],
    domain: &Domain,
    iterations: usize,
) -> CritWorkloadReport {
    // Correctness + counters first, outside the timed region.
    let stats = CritStats::new();
    let kernel_sets: Vec<_> = queries
        .iter()
        .map(|q| critical_tuples_traced(q, domain, HARNESS_CANDIDATE_CAP, &stats).unwrap())
        .collect();
    let seq_sets: Vec<_> = queries
        .iter()
        .map(|q| critical_tuples_seq(q, domain, HARNESS_CANDIDATE_CAP).unwrap())
        .collect();
    let verdicts_match = kernel_sets == seq_sets;

    let seq_nanos = best_of(iterations, || {
        for q in queries {
            critical_tuples_seq(q, domain, HARNESS_CANDIDATE_CAP).unwrap();
        }
    });
    let kernel_nanos = best_of(iterations, || {
        let throwaway = CritStats::new();
        for q in queries {
            critical_tuples_traced(q, domain, HARNESS_CANDIDATE_CAP, &throwaway).unwrap();
        }
    });
    CritWorkloadReport {
        name,
        domain_size: domain.len(),
        queries: queries.len(),
        critical_tuples: kernel_sets.iter().map(|s| s.len()).sum(),
        seq_nanos,
        kernel_nanos,
        speedup: seq_nanos as f64 / kernel_nanos.max(1) as f64,
        verdicts_match,
        pruning: stats.snapshot(),
    }
}

/// Runs the harness over every Table 1 row at each domain size.
pub fn run_crit_bench(domain_sizes: &[usize], iterations: usize) -> CritBenchReport {
    let mut workloads = Vec::new();
    for row in qvsec_workload::paper::table1() {
        let mut queries: Vec<&ConjunctiveQuery> = vec![&row.secret];
        queries.extend(row.views.iter());
        for &size in domain_sizes {
            let mut domain = row.domain.clone();
            domain.pad_to(size);
            workloads.push(run_workload(
                format!("table1-row{}/domain{}", row.id, domain.len()),
                &queries,
                &domain,
                iterations,
            ));
        }
    }
    let speedups: Vec<f64> = workloads.iter().map(|w| w.speedup).collect();
    let min_speedup = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
    let geomean_speedup =
        (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len().max(1) as f64).exp();
    CritBenchReport {
        threads: rayon::current_num_threads(),
        iterations: iterations.max(1),
        domain_sizes: domain_sizes.to_vec(),
        workloads,
        min_speedup,
        geomean_speedup,
    }
}

/// Renders a compact human-readable table of the report.
pub fn render_report(report: &CritBenchReport) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "crit(Q) kernel vs sequential baseline ({} threads, best of {}):",
        report.threads, report.iterations
    );
    let _ = writeln!(
        out,
        "{:<24} {:>10} {:>12} {:>12} {:>8}  {:>10} {:>10}",
        "workload", "candidates", "seq µs", "kernel µs", "speedup", "collapsed", "decided"
    );
    for w in &report.workloads {
        let _ = writeln!(
            out,
            "{:<24} {:>10} {:>12.1} {:>12.1} {:>7.1}x  {:>10} {:>10}",
            w.name,
            w.pruning.candidates_examined,
            w.seq_nanos as f64 / 1000.0,
            w.kernel_nanos as f64 / 1000.0,
            w.speedup,
            w.pruning.pruned_by_symmetry,
            w.pruning.decisions_run,
        );
    }
    let _ = writeln!(
        out,
        "min speedup {:.2}x, geometric mean {:.2}x",
        report.min_speedup, report.geomean_speedup
    );
    out
}
