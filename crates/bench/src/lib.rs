//! # qvsec-bench — benchmark harness
//!
//! Criterion benches regenerating every table and worked example of the
//! paper (see `DESIGN.md` §4 for the experiment index and `EXPERIMENTS.md`
//! for the recorded paper-vs-measured comparison). Each bench prints the
//! values it reproduces (classifications, probabilities, leakage, exponents)
//! once at start-up and then measures the runtime of the decision procedures
//! that produce them.
//!
//! Run all benches with `cargo bench --workspace`; individual targets:
//!
//! ```text
//! cargo bench -p qvsec-bench --bench table1
//! cargo bench -p qvsec-bench --bench critical_tuples
//! cargo bench -p qvsec-bench --bench crit_kernel
//! cargo bench -p qvsec-bench --bench security_decision
//! cargo bench -p qvsec-bench --bench probability
//! cargo bench -p qvsec-bench --bench leakage
//! cargo bench -p qvsec-bench --bench prior_knowledge
//! cargo bench -p qvsec-bench --bench practical_security
//! ```
//!
//! The [`crit`] module is the JSON-emitting harness behind `BENCH_crit.json`
//! (run it with `cargo run --release -p qvsec-bench --bin bench_crit`): the
//! kernel-vs-sequential `crit(Q)` comparison with pruning counters, recorded
//! so the performance trajectory lives in the repository. The [`prob`]
//! module is its Probabilistic-stage sibling behind `BENCH_prob.json` (run
//! with `--bin bench_prob`): shared-sample kernel vs. the preserved
//! enumeration baseline, plus a Monte-Carlo pool-reuse section. Both
//! binaries accept `--threads N` to pin the worker count; this crate's
//! `README.md` records the per-thread scaling notes.

pub mod crit;
pub mod prob;
pub mod serve;
pub mod session;

/// The uniform per-tuple probability used by the dictionary-based benches.
pub fn default_tuple_probability() -> qvsec_data::Ratio {
    qvsec_data::Ratio::new(1, 2)
}

/// Builds the support-set dictionary used by the Table 1 and leakage benches:
/// the queries' support over the row's domain padded to two constants, with
/// uniform probability 1/2.
pub fn support_dictionary(
    queries: &[&qvsec_cq::ConjunctiveQuery],
    domain: &qvsec_data::Domain,
) -> qvsec_data::Dictionary {
    let mut padded = domain.clone();
    padded.pad_to(2);
    let space =
        qvsec_prob::lineage::support_space(queries, &padded, 1 << 12).expect("small support");
    qvsec_data::Dictionary::uniform(space, default_tuple_probability()).expect("valid dictionary")
}

/// An [`qvsec::AuditEngine`] over the given schema and domain, without a
/// dictionary — the shared setup for the dictionary-free benches.
pub fn engine(schema: &qvsec_data::Schema, domain: &qvsec_data::Domain) -> qvsec::AuditEngine {
    qvsec::AuditEngine::builder(schema.clone(), domain.clone()).build()
}

/// The engine auditing one Table 1 row at full (probabilistic) depth: the
/// row's domain padded to two constants, the support dictionary over the
/// row's queries, and the 1/10 minute-vs-partial threshold the reproduction
/// uses. This replaces the per-bench copies of that setup.
pub fn table1_row_engine(
    row: &qvsec_workload::Table1Row,
) -> (qvsec::AuditEngine, qvsec::AuditRequest) {
    let mut queries: Vec<&qvsec_cq::ConjunctiveQuery> = vec![&row.secret];
    queries.extend(row.views.iter());
    let dict = support_dictionary(&queries, &row.domain);
    let mut domain = row.domain.clone();
    domain.pad_to(2);
    let engine = qvsec::AuditEngine::builder(qvsec_workload::schemas::employee_schema(), domain)
        .dictionary(dict)
        .minute_threshold(qvsec_data::Ratio::new(1, 10))
        .default_depth(qvsec::AuditDepth::Probabilistic)
        .build();
    let request = qvsec::AuditRequest::new(row.secret.clone(), row.views.clone())
        .named(format!("table1-row{}", row.id));
    (engine, request)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvsec_workload::paper::table1;

    #[test]
    fn support_dictionary_is_enumerable_for_every_table1_row() {
        for row in table1() {
            let mut queries: Vec<&qvsec_cq::ConjunctiveQuery> = vec![&row.secret];
            queries.extend(row.views.iter());
            let dict = support_dictionary(&queries, &row.domain);
            assert!(dict.len() <= qvsec_data::bitset::MAX_ENUMERABLE);
        }
    }
}
