//! The session benchmark harness behind `BENCH_session.json`.
//!
//! Measures the tentpole claim of the session API: publishing views
//! **incrementally** through one [`qvsec::AuditSession`] serves every step
//! after the first from the engine's compiled artifacts (crit-set memo,
//! candidate spaces, class verdicts, witness-mask compilations, the shared
//! Monte-Carlo pool), where a stateless deployment re-audits the whole
//! published prefix on a **fresh engine** per request — recompiling
//! everything, redrawing the pool.
//!
//! Per step `k` the harness records:
//!
//! * `warm_nanos` — best-of-N latency of `audit_candidate` at the session's
//!   current prefix (identical work to the `publish` that follows, engine
//!   caches warm from steps `< k`);
//! * `cold_nanos` — best-of-N latency of a fresh engine auditing the same
//!   cumulative request from scratch;
//! * the committing publish's cache-delta counters, and whether its report
//!   is **byte-identical** to the fresh engine's (it must be — the session
//!   is an optimization layer, not a different semantics).
//!
//! The binary `bench_session` runs this harness and writes
//! `BENCH_session.json`, mirroring `BENCH_crit.json` / `BENCH_prob.json`.

use qvsec::engine::{AuditDepth, AuditEngine, AuditOptions, AuditRequest, CacheStatsSnapshot};
use qvsec_cq::{parse_query, ConjunctiveQuery, ViewSet};
use qvsec_data::{Dictionary, Domain, Ratio, Schema, TupleSpace};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// One measured publication step.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionStepReport {
    /// 1-based step number.
    pub step: usize,
    /// The published view's label.
    pub view: String,
    /// Best-of-N wall clock of a fresh engine auditing the cumulative
    /// prefix, nanoseconds.
    pub cold_nanos: u64,
    /// Best-of-N wall clock of the warm session answering the same
    /// question, nanoseconds.
    pub warm_nanos: u64,
    /// `cold_nanos / warm_nanos`.
    pub speedup: f64,
    /// Whether the session's cumulative report is byte-identical to the
    /// fresh engine's.
    pub verdicts_match: bool,
    /// The committing publish's cache-reuse delta.
    pub cache: CacheStatsSnapshot,
}

/// One workload: a secret published against a fixed view sequence.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionWorkloadReport {
    /// Workload label, e.g. `collusion-prob/domain3`.
    pub name: String,
    /// Audit depth the session runs at.
    pub depth: String,
    /// Per-step measurements, in publication order.
    pub steps: Vec<SessionStepReport>,
    /// Geometric mean of the warm-step speedups (steps ≥ 2 — step 1 has
    /// nothing to reuse beyond within-audit sharing).
    pub warm_geomean_speedup: f64,
}

/// The full harness report serialized into `BENCH_session.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionBenchReport {
    /// Worker threads available to the engine's parallel stages.
    pub threads: usize,
    /// Iterations per measurement (best-of).
    pub iterations: usize,
    /// Per-workload measurements.
    pub workloads: Vec<SessionWorkloadReport>,
    /// Geometric mean of all warm-step (≥ 2) speedups across workloads.
    pub geomean_warm_speedup: f64,
    /// Whether every step of every workload matched the stateless baseline.
    pub all_verdicts_match: bool,
    /// Whether every step from 2 onward served something from cache
    /// (crit/space memo, class verdicts, compile cache or pooled samples).
    pub warm_steps_all_hit_cache: bool,
}

fn best_of<F: FnMut()>(iterations: usize, mut f: F) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..iterations.max(1) {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_nanos() as u64);
    }
    best
}

/// A workload definition: how to build the engine, and what to publish.
/// Shared with the serving harness (`crate::serve`), so `BENCH_session.json`
/// and `BENCH_serve.json` measure exactly the same workloads.
pub(crate) struct Workload {
    pub(crate) name: String,
    pub(crate) depth: AuditDepth,
    pub(crate) schema: Schema,
    pub(crate) domain: Domain,
    pub(crate) dictionary: Option<Dictionary>,
    pub(crate) mc_samples: usize,
    /// Serving knob: cap on reported leak-entry / violation lists (the
    /// probabilistic workloads set it, mirroring a server's configuration;
    /// verdict fields are unaffected and warm and cold engines share it).
    pub(crate) report_cap: Option<usize>,
    pub(crate) secret: ConjunctiveQuery,
    pub(crate) steps: Vec<(String, ConjunctiveQuery)>,
}

impl Workload {
    fn engine(&self) -> AuditEngine {
        self.engine_with_budget(None)
    }

    /// An engine for this workload, optionally bounded by a total cache
    /// byte budget (the serve harness's eviction-pressure sweep).
    pub(crate) fn engine_with_budget(&self, budget: Option<usize>) -> AuditEngine {
        self.builder_with_budget(budget).build()
    }

    /// A store-backed engine (the serve harness's restart-rehydration
    /// measurement): artifacts write through to `store` and prewarm from
    /// it on the next build.
    pub(crate) fn engine_with_store(
        &self,
        store: std::sync::Arc<dyn qvsec_store::StoreBackend>,
    ) -> AuditEngine {
        self.builder_with_budget(None).store(store).build()
    }

    fn builder_with_budget(&self, budget: Option<usize>) -> qvsec::engine::AuditEngineBuilder {
        let mut builder = AuditEngine::builder(self.schema.clone(), self.domain.clone())
            .default_depth(self.depth)
            .mc_samples(self.mc_samples);
        if let Some(dict) = &self.dictionary {
            builder = builder.dictionary(dict.clone());
        }
        if let Some(cap) = self.report_cap {
            builder = builder.report_cap(cap);
        }
        if let Some(total) = budget {
            builder = builder.cache_budget_bytes(total);
        }
        builder
    }
}

/// Default shared-pool size for the Monte-Carlo workload.
pub const DEFAULT_MC_SAMPLES: usize = 8192;

/// Report cap the probabilistic workloads serve under (the serving-layer
/// configuration: verdicts, max leak and witnesses are exact, the reported
/// entry lists are bounded and materialized lazily).
pub const DEFAULT_REPORT_CAP: usize = 16;

pub(crate) fn depth_name(depth: AuditDepth) -> &'static str {
    match depth {
        AuditDepth::Fast => "fast",
        AuditDepth::Exact => "exact",
        AuditDepth::Probabilistic => "probabilistic",
    }
}

fn run_workload(workload: &Workload, iterations: usize) -> SessionWorkloadReport {
    let engine = Arc::new(workload.engine());
    let mut session = engine
        .open_session(workload.secret.clone())
        .named(workload.name.clone());
    let mut steps = Vec::with_capacity(workload.steps.len());
    let mut published: Vec<ConjunctiveQuery> = Vec::new();
    for (k, (view_name, view)) in workload.steps.iter().enumerate() {
        // Warm latency: the candidate audit runs exactly the work `publish`
        // will, over caches warmed by the previous steps (the first
        // candidate call itself warms this step's new artifacts; best-of
        // keeps the steady-state figure).
        let warm_nanos = best_of(iterations, || {
            session.audit_candidate(view).unwrap();
        });
        let report = session
            .publish_named(view_name.clone(), view.clone())
            .unwrap();
        published.push(view.clone());

        // Cold baseline: a fresh engine per request — the stateless serving
        // shape — audits the same cumulative prefix.
        let request = AuditRequest {
            name: report.report.name.clone(),
            secret: workload.secret.clone(),
            views: ViewSet::from_views(published.clone()),
            options: AuditOptions::default(),
        };
        let fresh_report = workload.engine().audit(&request).unwrap();
        let cold_nanos = best_of(iterations, || {
            workload.engine().audit(&request).unwrap();
        });
        let verdicts_match = serde_json::to_string(&report.report).unwrap()
            == serde_json::to_string(&fresh_report).unwrap();
        steps.push(SessionStepReport {
            step: k + 1,
            view: view_name.clone(),
            cold_nanos,
            warm_nanos,
            speedup: cold_nanos as f64 / warm_nanos.max(1) as f64,
            verdicts_match,
            cache: report.cache,
        });
    }
    let warm: Vec<f64> = steps.iter().skip(1).map(|s| s.speedup).collect();
    let warm_geomean_speedup = if warm.is_empty() {
        1.0
    } else {
        (warm.iter().map(|s| s.ln()).sum::<f64>() / warm.len() as f64).exp()
    };
    SessionWorkloadReport {
        name: workload.name.clone(),
        depth: depth_name(workload.depth).to_string(),
        steps,
        warm_geomean_speedup,
    }
}

pub(crate) fn employee_collusion_workload(mc_samples: usize) -> Workload {
    let schema = qvsec_workload::schemas::employee_schema();
    let mut domain = Domain::new();
    let secret = parse_query("S(n, p) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
    let steps = vec![
        (
            "bob".to_string(),
            parse_query("VBob(n, d) :- Employee(n, d, p)", &schema, &mut domain).unwrap(),
        ),
        (
            "carol".to_string(),
            parse_query("VCarol(d, p) :- Employee(n, d, p)", &schema, &mut domain).unwrap(),
        ),
        (
            "dana".to_string(),
            parse_query("VDana(n) :- Employee(n, 'Mgmt', p)", &schema, &mut domain).unwrap(),
        ),
    ];
    Workload {
        name: "collusion-exact/employee".to_string(),
        depth: AuditDepth::Exact,
        schema,
        domain,
        dictionary: None,
        mc_samples,
        report_cap: None,
        secret,
        steps,
    }
}

fn binary_schema() -> Schema {
    let mut schema = Schema::new();
    schema.add_relation("R", &["x", "y"]);
    schema
}

/// The §6 collusion pair over a binary relation at an exactly-enumerable
/// domain size, plus an α-renamed republication of the first view (served
/// 100% from the compile and crit memos).
pub(crate) fn prob_collusion_workload(size: usize, mc_samples: usize) -> Workload {
    let schema = binary_schema();
    let mut domain = Domain::with_size(size);
    let secret = parse_query("S(x, y) :- R(x, y)", &schema, &mut domain).unwrap();
    let v1 = parse_query("V1(x) :- R(x, y)", &schema, &mut domain).unwrap();
    let v2 = parse_query("V2(y) :- R(x, y)", &schema, &mut domain).unwrap();
    let republished = parse_query("W(u) :- R(u, w)", &schema, &mut domain).unwrap();
    let space = TupleSpace::full(&schema, &domain).unwrap();
    let dictionary = Some(Dictionary::half(space));
    Workload {
        name: format!("collusion-prob/domain{size}"),
        depth: AuditDepth::Probabilistic,
        schema,
        domain,
        dictionary,
        mc_samples,
        report_cap: Some(DEFAULT_REPORT_CAP),
        secret,
        steps: vec![
            ("v1".to_string(), v1),
            ("v2".to_string(), v2),
            ("v1-republished".to_string(), republished),
        ],
    }
}

/// The same pair over a space too large to enumerate: every fresh engine
/// redraws the full Monte-Carlo pool, the session draws it once.
pub(crate) fn mc_collusion_workload(size: usize, mc_samples: usize) -> Workload {
    let schema = binary_schema();
    let mut domain = Domain::with_size(size);
    let secret = parse_query("S(y) :- R(x, y)", &schema, &mut domain).unwrap();
    let v1 = parse_query("V1(x) :- R(x, y)", &schema, &mut domain).unwrap();
    let v2 = parse_query("V2(x) :- R(x, 'c0')", &schema, &mut domain).unwrap();
    let space = TupleSpace::full_with_cap(&schema, &domain, 4096).unwrap();
    let dictionary =
        Some(Dictionary::uniform(space, Ratio::new(1, size as i128)).expect("valid probability"));
    Workload {
        name: format!("collusion-mc/domain{size}"),
        depth: AuditDepth::Probabilistic,
        schema,
        domain,
        dictionary,
        mc_samples,
        report_cap: Some(DEFAULT_REPORT_CAP),
        secret,
        steps: vec![("v1".to_string(), v1), ("v2".to_string(), v2)],
    }
}

/// Runs the harness over the three collusion workloads.
pub fn run_session_bench(iterations: usize) -> SessionBenchReport {
    run_session_bench_with(iterations, DEFAULT_MC_SAMPLES)
}

/// [`run_session_bench`] with an explicit Monte-Carlo pool size (the smoke
/// tests shrink it so the dev-profile run stays fast).
pub fn run_session_bench_with(iterations: usize, mc_samples: usize) -> SessionBenchReport {
    let workloads = [
        employee_collusion_workload(mc_samples),
        prob_collusion_workload(3, mc_samples),
        mc_collusion_workload(6, mc_samples),
    ];
    let reports: Vec<SessionWorkloadReport> = workloads
        .iter()
        .map(|w| run_workload(w, iterations))
        .collect();
    let warm: Vec<f64> = reports
        .iter()
        .flat_map(|w| w.steps.iter().skip(1).map(|s| s.speedup))
        .collect();
    let geomean_warm_speedup = if warm.is_empty() {
        1.0
    } else {
        (warm.iter().map(|s| s.ln()).sum::<f64>() / warm.len() as f64).exp()
    };
    SessionBenchReport {
        threads: rayon::current_num_threads(),
        iterations: iterations.max(1),
        geomean_warm_speedup,
        all_verdicts_match: reports
            .iter()
            .all(|w| w.steps.iter().all(|s| s.verdicts_match)),
        warm_steps_all_hit_cache: reports
            .iter()
            .all(|w| w.steps.iter().skip(1).all(|s| s.cache.any_reuse())),
        workloads: reports,
    }
}

/// Renders a compact human-readable table of the report.
pub fn render_report(report: &SessionBenchReport) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "warm session steps vs fresh-engine audits ({} threads, best of {}):",
        report.threads, report.iterations
    );
    let _ = writeln!(
        out,
        "{:<26} {:>4} {:<16} {:>12} {:>12} {:>8} {:>6} {:>6} {:>6}",
        "workload", "step", "view", "cold µs", "warm µs", "speedup", "crit", "cmpl", "match"
    );
    for w in &report.workloads {
        for s in &w.steps {
            let _ = writeln!(
                out,
                "{:<26} {:>4} {:<16} {:>12.1} {:>12.1} {:>7.1}x {:>6} {:>6} {:>6}",
                w.name,
                s.step,
                s.view,
                s.cold_nanos as f64 / 1000.0,
                s.warm_nanos as f64 / 1000.0,
                s.speedup,
                s.cache.crit_cache_hits,
                s.cache.compile_cache_hits,
                s.verdicts_match,
            );
        }
    }
    let _ = writeln!(
        out,
        "geomean warm-step (>=2) speedup {:.2}x, verdicts match: {}, warm cache hits: {}",
        report.geomean_warm_speedup, report.all_verdicts_match, report.warm_steps_all_hit_cache
    );
    out
}
