//! Smoke tests for the serving-layer bench harness and the committed
//! `BENCH_serve.json` artifact.

use qvsec_bench::serve::{render_report, run_serve_bench, ServeBenchReport};

#[test]
fn harness_matches_the_stateless_baseline_and_survives_eviction_pressure() {
    // Tiny run: 3 tenants, one iteration, small Monte-Carlo pool — a
    // correctness smoke test, not a measurement.
    let report = run_serve_bench(1, 3, 256);
    assert_eq!(report.tenants, 3);
    assert_eq!(report.workloads.len(), 2);
    assert!(report.all_verdicts_match, "a registry verdict diverged");
    for w in &report.workloads {
        assert_eq!(w.requests, 3 * 3, "3 tenants x 3 collusion steps");
        assert!(w.cold_nanos > 0 && w.warm_nanos > 0);
        assert!(w.verdicts_match, "{}: divergence", w.name);
    }
    // The sweep: unbounded never evicts, the 4 KiB point must; every
    // point's verdicts track the unbounded drive.
    assert_eq!(report.eviction_sweep.len(), 3);
    assert!(report.eviction_verdicts_match);
    let unbounded = &report.eviction_sweep[0];
    assert_eq!(unbounded.budget_bytes, None);
    assert_eq!(unbounded.evictions, 0);
    assert!(unbounded.resident_bytes > 0);
    let tightest = report.eviction_sweep.last().unwrap();
    assert_eq!(tightest.budget_bytes, Some(4096));
    assert!(
        tightest.evictions > 0,
        "a 4 KiB budget must evict under the multi-tenant drive"
    );
    assert!(
        tightest.resident_bytes < unbounded.resident_bytes,
        "the budget must actually bound residency"
    );

    // Restart-rehydration: the rehydrated registry must be byte-identical
    // to the pre-crash one, with one journal record per open and publish.
    let restart = &report.restart;
    assert!(
        restart.stats_match,
        "a cold restart over the warm store diverged from the pre-crash registry"
    );
    assert_eq!(restart.tenants, 3);
    assert_eq!(restart.journal_records, 3 * (3 + 1));
    assert!(restart.fresh_nanos > 0 && restart.rehydrate_nanos > 0);

    let rendered = render_report(&report);
    assert!(rendered.contains("eviction-pressure sweep"));
    assert!(rendered.contains("restart-rehydration"));
    let json = serde_json::to_string(&report).unwrap();
    let back: ServeBenchReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.workloads.len(), report.workloads.len());
}

#[test]
fn committed_bench_serve_json_holds_the_acceptance_criteria() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    let text = std::fs::read_to_string(path)
        .expect("BENCH_serve.json is committed at the repository root");
    let report: ServeBenchReport = serde_json::from_str(&text).expect("BENCH_serve.json parses");
    assert!(report.threads >= 1);
    assert!(report.tenants >= 4);
    assert!(
        report.all_verdicts_match,
        "committed run had a registry/stateless divergence"
    );
    assert!(
        report.eviction_verdicts_match,
        "committed run had a budgeted/unbounded divergence"
    );
    // The acceptance floor: warm multi-tenant serving at least 3x over a
    // fresh engine per request on the collusion workload.
    let collusion = report
        .workloads
        .iter()
        .find(|w| w.name == "collusion-exact/employee")
        .expect("the collusion workload is recorded");
    assert!(
        collusion.speedup >= 3.0,
        "committed multi-tenant speedup below the 3x floor: {:.2}x",
        collusion.speedup
    );
    // Eviction pressure was demonstrated, transparently.
    assert!(report
        .eviction_sweep
        .iter()
        .any(|p| p.budget_bytes.is_some() && p.evictions > 0));
    assert!(report.eviction_sweep.iter().all(|p| p.verdicts_match));
    // The restart floor: rehydrating from the warm store must recover the
    // probabilistic workload's serving state at least 5x faster than
    // re-driving the stream through a fresh engine, byte-identically.
    assert!(
        report.restart.stats_match,
        "committed restart run diverged from the pre-crash registry"
    );
    assert!(
        report.restart.speedup >= 5.0,
        "committed restart-rehydration speedup below the 5x floor: {:.2}x",
        report.restart.speedup
    );
}
