//! Smoke tests for the serving-layer bench harness and the committed
//! `BENCH_serve.json` artifact.

use qvsec_bench::serve::{
    render_report, run_concurrent_bench, run_instrumentation_bench, run_saturation_bench,
    run_serve_bench, ServeBenchReport,
};

#[test]
fn harness_matches_the_stateless_baseline_and_survives_eviction_pressure() {
    // Tiny run: 3 tenants, one iteration, small Monte-Carlo pool — a
    // correctness smoke test, not a measurement.
    let report = run_serve_bench(1, 3, 256);
    assert_eq!(report.tenants, 3);
    assert_eq!(report.workloads.len(), 2);
    assert!(report.all_verdicts_match, "a registry verdict diverged");
    for w in &report.workloads {
        assert_eq!(w.requests, 3 * 3, "3 tenants x 3 collusion steps");
        assert!(w.cold_nanos > 0 && w.warm_nanos > 0);
        assert!(w.verdicts_match, "{}: divergence", w.name);
    }
    // The sweep: unbounded never evicts, the 4 KiB point must; every
    // point's verdicts track the unbounded drive.
    assert_eq!(report.eviction_sweep.len(), 3);
    assert!(report.eviction_verdicts_match);
    let unbounded = &report.eviction_sweep[0];
    assert_eq!(unbounded.budget_bytes, None);
    assert_eq!(unbounded.evictions, 0);
    assert!(unbounded.resident_bytes > 0);
    let tightest = report.eviction_sweep.last().unwrap();
    assert_eq!(tightest.budget_bytes, Some(4096));
    assert!(
        tightest.evictions > 0,
        "a 4 KiB budget must evict under the multi-tenant drive"
    );
    assert!(
        tightest.resident_bytes < unbounded.resident_bytes,
        "the budget must actually bound residency"
    );

    // Restart-rehydration: the rehydrated registry must be byte-identical
    // to the pre-crash one, with one journal record per open and publish.
    let restart = &report.restart;
    assert!(
        restart.stats_match,
        "a cold restart over the warm store diverged from the pre-crash registry"
    );
    assert_eq!(restart.tenants, 3);
    assert_eq!(restart.journal_records, 3 * (3 + 1));
    assert!(restart.fresh_nanos > 0 && restart.rehydrate_nanos > 0);

    // The concurrent sweep rode along: every client count answered the
    // tenants byte-identically to the single-client drive.
    let concurrent = &report.concurrent;
    assert_eq!(concurrent.tenants, 3);
    assert_eq!(
        concurrent
            .points
            .iter()
            .map(|p| p.client_threads)
            .collect::<Vec<_>>(),
        vec![1, 2, 4]
    );
    for p in &concurrent.points {
        assert!(p.nanos > 0 && p.throughput_rps > 0.0);
        assert!(
            p.responses_match,
            "{} clients diverged from the single-client drive",
            p.client_threads
        );
    }

    // The saturation sweep rode along: keep-alive pipelined connections
    // never drop a response and never rewrite one.
    let saturation = &report.saturation;
    assert_eq!(
        saturation
            .points
            .iter()
            .map(|p| p.connections)
            .collect::<Vec<_>>(),
        vec![1, 32, 64, 128]
    );
    for p in &saturation.points {
        assert_eq!(
            p.dropped_responses, 0,
            "{} keep-alive connections shed responses",
            p.connections
        );
        assert!(
            p.responses_match,
            "{} concurrent connections diverged from the sequential drive",
            p.connections
        );
        assert_eq!(
            p.requests,
            p.connections * saturation.requests_per_connection
        );
        assert!(p.nanos > 0 && p.throughput_rps > 0.0);
        assert_eq!(p.server.accepted, p.connections as u64);
        assert_eq!(p.server.responses_written as usize, p.requests);
    }

    // The instrumentation sweep rode along: fully-enabled telemetry must
    // not change a response byte.
    let instrumentation = &report.instrumentation;
    assert!(
        instrumentation.responses_match,
        "enabling tracing changed a response byte"
    );
    // open + 3 collusion publishes + 1 chain view per tenant.
    assert_eq!(instrumentation.requests, 3 * 5);
    assert!(instrumentation.off_nanos > 0 && instrumentation.on_nanos > 0);

    let rendered = render_report(&report);
    assert!(rendered.contains("eviction-pressure sweep"));
    assert!(rendered.contains("restart-rehydration"));
    assert!(rendered.contains("concurrent clients"));
    assert!(rendered.contains("saturation"));
    assert!(rendered.contains("instrumentation overhead"));
    let json = serde_json::to_string(&report).unwrap();
    let back: ServeBenchReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.workloads.len(), report.workloads.len());
}

#[test]
fn saturation_drive_is_lossless_and_order_preserving() {
    // Standalone sweep at a smoke-test scale: the pipelined front end must
    // deliver every response, in order, with the queue fully drained.
    let report = run_saturation_bench(1, &[1, 8]);
    assert_eq!(report.points.len(), 2);
    for p in &report.points {
        assert_eq!(p.dropped_responses, 0);
        assert!(p.responses_match, "{} connections diverged", p.connections);
        assert!(p.p99_micros >= p.p50_micros);
        assert_eq!(p.server.queue_depth, 0, "in-flight queue not drained");
        assert!(p.server.inflight_peak >= 1);
    }
}

#[test]
fn concurrent_clients_are_thread_invariant() {
    // The regression the sharded memos must never reintroduce: request
    // interleavings at 1, 2 and 4 real client threads must produce
    // byte-identical per-tenant response streams (cache counters aside).
    let report = run_concurrent_bench(1, 4, 128);
    assert_eq!(report.tenants, 4);
    // open + 3 collusion publishes + 1 tenant-distinct chain per tenant.
    assert_eq!(report.requests, 4 * 5);
    assert!(report.cores >= 1);
    assert_eq!(report.points.len(), 3);
    for p in &report.points {
        assert!(
            p.responses_match,
            "{} client threads changed a tenant's responses",
            p.client_threads
        );
    }
}

#[test]
fn telemetry_plane_is_byte_transparent_under_the_bench_drive() {
    // Standalone overhead measurement at smoke scale: whatever the clock
    // says, the responses must be byte-identical with tracing on.
    let report = run_instrumentation_bench(1, 3);
    assert!(report.responses_match, "tracing changed a response byte");
    assert_eq!(report.requests, 3 * 5);
    assert!(report.off_rps > 0.0 && report.on_rps > 0.0);
    assert!(report.retained_throughput > 0.0);
}

#[test]
fn committed_bench_serve_json_holds_the_acceptance_criteria() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    let text = std::fs::read_to_string(path)
        .expect("BENCH_serve.json is committed at the repository root");
    let report: ServeBenchReport = serde_json::from_str(&text).expect("BENCH_serve.json parses");
    assert!(report.threads >= 1);
    assert!(report.tenants >= 4);
    assert!(
        report.all_verdicts_match,
        "committed run had a registry/stateless divergence"
    );
    assert!(
        report.eviction_verdicts_match,
        "committed run had a budgeted/unbounded divergence"
    );
    // The acceptance floor: warm multi-tenant serving at least 3x over a
    // fresh engine per request on the collusion workload.
    let collusion = report
        .workloads
        .iter()
        .find(|w| w.name == "collusion-exact/employee")
        .expect("the collusion workload is recorded");
    assert!(
        collusion.speedup >= 3.0,
        "committed multi-tenant speedup below the 3x floor: {:.2}x",
        collusion.speedup
    );
    // Eviction pressure was demonstrated, transparently.
    assert!(report
        .eviction_sweep
        .iter()
        .any(|p| p.budget_bytes.is_some() && p.evictions > 0));
    assert!(report.eviction_sweep.iter().all(|p| p.verdicts_match));
    // Restart-rehydration: byte-identity is the binding claim. The old
    // 5x speedup floor measured how much re-auditing the store avoided;
    // the packed-signature kernel cut the storeless rebuild from ~395 ms
    // to ~2.5 ms at bench sizes, so rehydration's advantage now only
    // shows on streams too large for this harness — the recording keeps
    // the honest ratio (~1x) and the gate keeps it from regressing into
    // a rehydration that costs multiples of a rebuild.
    assert!(
        report.restart.stats_match,
        "committed restart run diverged from the pre-crash registry"
    );
    assert!(
        report.restart.speedup >= 0.5,
        "committed restart-rehydration now costs over 2x a storeless rebuild: {:.2}x",
        report.restart.speedup
    );
    // The concurrent-serving floor: byte-identity is unconditional; the
    // 2x-at-4-clients throughput floor only binds when the recording
    // machine actually had 4 cores to serve with.
    let concurrent = &report.concurrent;
    assert!(
        concurrent.points.iter().all(|p| p.responses_match),
        "committed concurrent run diverged from the single-client drive"
    );
    if concurrent.cores >= 4 {
        let four = concurrent
            .points
            .iter()
            .find(|p| p.client_threads == 4)
            .expect("the 4-client point is recorded");
        assert!(
            four.speedup_vs_1 >= 2.0,
            "committed 4-client serving speedup below the 2x floor: {:.2}x",
            four.speedup_vs_1
        );
    }
    // The saturation floor: losslessness and byte-identity are
    // unconditional at every recorded connection count; the 2x-at-32-
    // connections throughput floor only binds on a machine with at least
    // 4 cores to absorb the concurrency.
    let saturation = &report.saturation;
    assert!(
        saturation
            .points
            .iter()
            .map(|p| p.connections)
            .any(|c| c >= 32),
        "the saturation sweep must reach at least 32 connections"
    );
    for p in &saturation.points {
        assert_eq!(
            p.dropped_responses, 0,
            "committed saturation run shed responses at {} connections",
            p.connections
        );
        assert!(
            p.responses_match,
            "committed saturation run diverged from the sequential drive at {} connections",
            p.connections
        );
    }
    // The instrumentation gate: byte-identity is unconditional, and the
    // committed recording must show the telemetry plane costing at most
    // 5% of req/s on the cheap workload (its relative worst case).
    assert!(
        report.instrumentation.responses_match,
        "committed run had a traced/untraced response divergence"
    );
    assert!(
        report.instrumentation.retained_throughput >= 0.95,
        "committed telemetry overhead exceeds the 5% gate: {:.1}% retained",
        report.instrumentation.retained_throughput * 100.0
    );
    if saturation.cores >= 4 {
        let thirty_two = saturation
            .points
            .iter()
            .find(|p| p.connections == 32)
            .expect("the 32-connection point is recorded");
        assert!(
            thirty_two.speedup_vs_1 >= 2.0,
            "committed 32-connection saturation throughput below the 2x floor: {:.2}x",
            thirty_two.speedup_vs_1
        );
    }
}
