//! Smoke tests for the probabilistic-kernel bench harness and the committed
//! `BENCH_prob.json` artifact.

use qvsec_bench::prob::{run_prob_bench, ProbBenchReport};

#[test]
fn harness_runs_matches_the_baseline_and_reports_pool_reuse() {
    // Tiny size, single iteration, small pool: a correctness smoke test,
    // not a measurement.
    let report = run_prob_bench(&[2], 1, 500);
    assert_eq!(report.domain_sizes, vec![2]);
    // 4 Table 1 rows + proj-pair + collusion at the single size.
    assert_eq!(report.workloads.len(), 6);
    for w in &report.workloads {
        assert!(w.verdicts_match, "{}: kernel and baseline disagree", w.name);
        assert_eq!(w.worlds, 1u64 << w.space_size);
        assert!(w.seq_nanos > 0 && w.kernel_nanos > 0);
    }
    // The Table 1 verdict pattern survives the kernel: row 1 totally
    // disclosed, rows 1-3 dependent, row 4 independent with zero leakage.
    let by_name = |n: &str| {
        report
            .workloads
            .iter()
            .find(|w| w.name.starts_with(n))
            .unwrap()
    };
    assert!(by_name("table1-row1").totally_disclosed);
    assert!(!by_name("table1-row1").independent);
    assert!(by_name("table1-row4").independent);
    assert_eq!(by_name("table1-row4").max_leak, 0.0);
    assert!(by_name("collusion").max_leak > 0.0);
    // The Monte-Carlo pool was drawn once and reused across passes/audits.
    assert_eq!(report.mc.samples_drawn, 500);
    assert!(report.mc.samples_reused >= 4 * 500);
    assert_eq!(report.mc.cutovers, 2);
    assert!(report.mc.determinism_ok);
    // Round-trips through JSON with the estimator fields intact.
    let json = serde_json::to_string(&report).unwrap();
    for key in [
        "verdicts_match",
        "seq_nanos",
        "kernel_nanos",
        "speedup",
        "samples_drawn",
        "samples_reused",
        "determinism_ok",
        "geomean_speedup",
    ] {
        assert!(json.contains(key), "missing `{key}` in harness JSON");
    }
    let back: ProbBenchReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.workloads.len(), report.workloads.len());
}

#[test]
fn committed_bench_prob_json_parses_and_meets_the_speedup_floor() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_prob.json");
    let text =
        std::fs::read_to_string(path).expect("BENCH_prob.json is committed at the repository root");
    let report: ProbBenchReport = serde_json::from_str(&text).expect("BENCH_prob.json parses");
    assert!(!report.workloads.is_empty());
    assert!(report.threads >= 1);
    for w in &report.workloads {
        assert!(
            w.verdicts_match,
            "{}: committed run had a verdict mismatch",
            w.name
        );
    }
    assert!(
        report.geomean_speedup >= 5.0,
        "committed kernel run must hold the 5x geomean floor, got {}",
        report.geomean_speedup
    );
    assert!(
        report.min_speedup >= 1.0,
        "committed kernel run must not be slower than the baseline anywhere"
    );
    assert!(report.mc.determinism_ok);
    assert!(
        report.mc.samples_reused >= 2 * report.mc.samples_drawn,
        "the committed trajectory must show the shared pool at work"
    );
    // The quadratic leakage aggregation capped this workload at ~5.3x;
    // indexing signatures by secret-answer bit (plus the clone-free
    // independence pair walk) lifted it — the committed artifact must hold
    // the improvement.
    let collusion = report
        .workloads
        .iter()
        .find(|w| w.name.starts_with("collusion"))
        .expect("the collusion workload is recorded");
    assert!(
        collusion.speedup >= 5.5,
        "committed collusion speedup regressed to {:.2}x (quadratic-era level was ~5.3x)",
        collusion.speedup
    );
}
