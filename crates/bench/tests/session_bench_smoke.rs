//! Smoke tests for the session bench harness and the committed
//! `BENCH_session.json` artifact.

use qvsec_bench::session::{render_report, run_session_bench_with, SessionBenchReport};

#[test]
fn harness_runs_warm_steps_hit_cache_and_match_the_stateless_baseline() {
    // Single iteration, tiny Monte-Carlo pool: a correctness smoke test,
    // not a measurement.
    let report = run_session_bench_with(1, 512);
    assert_eq!(report.workloads.len(), 3);
    assert!(report.all_verdicts_match, "a session step diverged");
    assert!(
        report.warm_steps_all_hit_cache,
        "a warm step served nothing from cache"
    );
    for w in &report.workloads {
        assert!(w.steps.len() >= 2, "{}: needs warm steps", w.name);
        for s in &w.steps {
            assert!(s.verdicts_match, "{} step {}: divergence", w.name, s.step);
            assert!(s.cold_nanos > 0 && s.warm_nanos > 0);
            if s.step >= 2 {
                assert!(
                    s.cache.crit_cache_hits > 0,
                    "{} step {}: no crit-cache hits: {:?}",
                    w.name,
                    s.step,
                    s.cache
                );
            }
        }
    }
    // Warm probabilistic steps are served from the kernel's whole-audit
    // memo: no compilation, no pooled column, no marginal walk — the
    // verdict comes straight back.
    let prob = &report.workloads[1];
    assert!(
        prob.steps[1].cache.kernel_audit_hits > 0,
        "warm probabilistic step must hit the audit memo: {:?}",
        prob.steps[1].cache
    );
    let mc = &report.workloads[2];
    assert!(
        mc.steps[1].cache.kernel_audit_hits > 0,
        "warm MC step must hit the audit memo: {:?}",
        mc.steps[1].cache
    );
    // The α-renamed republication is served entirely from the memo.
    let republished = prob.steps.last().unwrap();
    assert_eq!(republished.cache.crit_cache_misses, 0);
    assert_eq!(republished.cache.queries_compiled, 0);

    let rendered = render_report(&report);
    assert!(rendered.contains("geomean"));
    let json = serde_json::to_string(&report).unwrap();
    let back: SessionBenchReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.workloads.len(), report.workloads.len());
}

#[test]
fn committed_bench_session_json_parses_and_holds_the_acceptance_criteria() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_session.json");
    let text = std::fs::read_to_string(path)
        .expect("BENCH_session.json is committed at the repository root");
    let report: SessionBenchReport =
        serde_json::from_str(&text).expect("BENCH_session.json parses");
    assert!(!report.workloads.is_empty());
    assert!(report.threads >= 1);
    assert!(
        report.all_verdicts_match,
        "committed run had a session/stateless divergence"
    );
    assert!(
        report.warm_steps_all_hit_cache,
        "committed run shows a warm step without cache reuse"
    );
    assert!(
        report.geomean_warm_speedup >= 1.5,
        "committed warm steps must beat fresh-engine audits, got {:.2}x",
        report.geomean_warm_speedup
    );
    // Per-workload floors after the packed-signature marginal work: the
    // exact workload's warm steps are served almost entirely from memo
    // (>= 4x), and the probabilistic workloads — whose warm ratio sat at
    // ~1x when every warm step re-ran the decoding analysis — now hold
    // >= 2x comfortably (recorded: ~28x at domain3, ~235x on the
    // Monte-Carlo workload) because the shared signature tail runs over
    // packed accumulators and repeat audits hit the whole-audit memo.
    for w in &report.workloads {
        let floor = if w.depth == "exact" { 4.0 } else { 2.0 };
        assert!(
            w.warm_geomean_speedup >= floor,
            "{}: committed warm geomean {:.2}x below the {:.1}x floor",
            w.name,
            w.warm_geomean_speedup,
            floor
        );
    }
    for w in &report.workloads {
        for s in w.steps.iter().filter(|s| s.step >= 2) {
            assert!(
                s.cache.crit_cache_hits > 0 || s.cache.compile_cache_hits > 0,
                "{} step {}: committed warm step shows no compile/crit hits",
                w.name,
                s.step
            );
        }
    }
}
