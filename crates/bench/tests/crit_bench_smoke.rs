//! Smoke tests for the `crit(Q)` bench harness and the committed
//! `BENCH_crit.json` artifact.

use qvsec_bench::crit::{run_crit_bench, CritBenchReport};

#[test]
fn harness_runs_and_reports_pruning_counters() {
    // Tiny sizes, single iteration: this is a correctness smoke test, not a
    // measurement.
    let report = run_crit_bench(&[4, 5], 1);
    assert_eq!(report.domain_sizes, vec![4, 5]);
    assert_eq!(report.workloads.len(), 4 * 2, "4 Table 1 rows × 2 sizes");
    for w in &report.workloads {
        assert!(w.verdicts_match, "{}: kernel and baseline disagree", w.name);
        assert!(
            w.pruning.candidates_examined > 0,
            "{}: no candidates",
            w.name
        );
        assert!(
            w.pruning.decisions_run + w.pruning.pruned_by_symmetry >= w.pruning.candidates_examined,
            "{}: every candidate is decided or collapsed",
            w.name
        );
        assert!(w.seq_nanos > 0 && w.kernel_nanos > 0);
    }
    // The report round-trips through JSON with the pruning counters intact.
    let json = serde_json::to_string(&report).unwrap();
    for key in [
        "candidates_examined",
        "pruned_by_symmetry",
        "pruned_by_prefilter",
        "pruned_by_comparisons",
        "instances_frozen",
        "seq_nanos",
        "kernel_nanos",
        "speedup",
    ] {
        assert!(json.contains(key), "missing `{key}` in harness JSON");
    }
    let back: CritBenchReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.workloads.len(), report.workloads.len());
}

#[test]
fn committed_bench_crit_json_parses_and_contains_the_counters() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_crit.json");
    let text =
        std::fs::read_to_string(path).expect("BENCH_crit.json is committed at the repository root");
    let report: CritBenchReport = serde_json::from_str(&text).expect("BENCH_crit.json parses");
    assert!(!report.workloads.is_empty());
    assert!(report.threads >= 1);
    for w in &report.workloads {
        assert!(
            w.verdicts_match,
            "{}: committed run had a verdict mismatch",
            w.name
        );
        assert!(w.pruning.candidates_examined > 0);
    }
    assert!(
        report
            .workloads
            .iter()
            .any(|w| w.pruning.pruned_by_symmetry > 0),
        "the committed trajectory must show pruning at work"
    );
    assert!(
        report.min_speedup >= 1.0,
        "committed kernel run must not be slower than the baseline"
    );
}
