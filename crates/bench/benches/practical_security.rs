//! Experiment S6.2 — practical security under the expected-size model.
//!
//! Prints the asymptotic exponents `d` of `μ_n[Q] ≈ c/n^d` for a family of
//! boolean queries, the resulting perfect / practically-secure /
//! practical-disclosure classification, and Monte-Carlo estimates of
//! `μ_n[Q]` at growing domain sizes that validate the exponents. Then
//! benches the exponent computation and the estimators.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qvsec::practical::{
    asymptotic_table, asymptotics, estimate_mu_n, practical_security, PracticalVerdict,
};
use qvsec_cq::parse_query;
use qvsec_data::Domain;
use qvsec_workload::schemas::binary_schema;

const EXPECTED_SIZE: f64 = 4.0;

fn queries() -> Vec<qvsec_cq::ConjunctiveQuery> {
    let schema = binary_schema();
    let mut domain = Domain::new();
    [
        "Edge() :- R(x, y)",
        "Loop() :- R(x, x)",
        "Path2() :- R(x, y), R(y, z)",
        "Triangle() :- R(x, y), R(y, z), R(z, x)",
        "Constant() :- R('a', 'b')",
        "OutEdgeOfA() :- R('a', x)",
    ]
    .iter()
    .map(|t| parse_query(t, &schema, &mut domain).unwrap())
    .collect()
}

fn print_reproduction() {
    let schema = binary_schema();
    let qs = queries();
    println!("\n=== Section 6.2: asymptotic exponents (μ_n[Q] ≈ c/n^d, expected size S = {EXPECTED_SIZE}) ===");
    println!("{:<14} {:>4} {:>10}", "query", "d", "c (est.)");
    for row in asymptotic_table(&qs, &schema, EXPECTED_SIZE).unwrap() {
        println!(
            "{:<14} {:>4} {:>10.2}",
            row.name, row.exponent, row.coefficient
        );
    }

    println!("\nMonte-Carlo validation of the decay (samples = 4000):");
    println!(
        "{:<14} {:>10} {:>10} {:>10}",
        "query", "n=8", "n=16", "n=32"
    );
    for q in qs.iter().take(4) {
        let estimates: Vec<f64> = [8usize, 16, 32]
            .iter()
            .map(|&n| estimate_mu_n(q, &schema, n, EXPECTED_SIZE as u32, 4000, 11).unwrap())
            .collect();
        println!(
            "{:<14} {:>10.4} {:>10.4} {:>10.4}",
            q.name, estimates[0], estimates[1], estimates[2]
        );
    }

    println!("\nPractical-security classification of view/secret pairs:");
    let mut domain = Domain::new();
    let pairs = [
        ("Constant() :- R('a', 'b')", "Edge() :- R(x, y)"),
        ("Constant() :- R('a', 'b')", "OutEdgeOfA() :- R('a', x)"),
        ("Constant() :- R('a', 'b')", "Constant2() :- R('a', 'b')"),
    ];
    for (s_text, v_text) in pairs {
        let s = parse_query(s_text, &schema, &mut domain).unwrap();
        let v = parse_query(v_text, &schema, &mut domain).unwrap();
        let verdict = practical_security(&s, &v, &schema, EXPECTED_SIZE).unwrap();
        let rendered = match verdict {
            PracticalVerdict::PracticallySecure => "practically secure (limit 0)".to_string(),
            PracticalVerdict::PracticalDisclosure { estimated_limit } => {
                format!("practical disclosure (limit ≈ {estimated_limit:.2})")
            }
        };
        println!("  secret {:<28} view {:<28} -> {rendered}", s_text, v_text);
    }
    println!();
}

fn bench_practical(c: &mut Criterion) {
    let schema = binary_schema();
    let qs = queries();

    let mut group = c.benchmark_group("practical/exponent");
    for q in &qs {
        group.bench_with_input(BenchmarkId::from_parameter(&q.name), q, |b, q| {
            b.iter(|| asymptotics(q, &schema, EXPECTED_SIZE).unwrap().exponent)
        });
    }
    group.finish();

    let mut group = c.benchmark_group("practical/mu_n_estimation");
    group.sample_size(10);
    for n in [8usize, 16, 32] {
        let q = &qs[1]; // the self-loop query, exponent 1
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| estimate_mu_n(q, &schema, n, EXPECTED_SIZE as u32, 1000, 3).unwrap())
        });
    }
    group.finish();

    c.bench_function("practical/classification", |b| {
        let mut domain = Domain::new();
        let s = parse_query("S() :- R('a', 'b')", &schema, &mut domain).unwrap();
        let v = parse_query("V() :- R(x, y)", &schema, &mut domain).unwrap();
        b.iter(|| practical_security(&s, &v, &schema, EXPECTED_SIZE).unwrap())
    });
}

fn all(c: &mut Criterion) {
    print_reproduction();
    bench_practical(c);
}

criterion_group!(benches, all);
criterion_main!(benches);
