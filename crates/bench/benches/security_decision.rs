//! Experiment SCALE — runtime of the security decision procedures.
//!
//! The paper proves the decision problem Πᵖ₂-complete (Theorem 4.11); this
//! bench measures how the implemented procedures actually scale with the
//! number of subgoals and the domain size, and how the three decision paths
//! compare: the Section 4.2 fast check, the Theorem 4.5 critical-tuple
//! criterion, and the exhaustive Definition 4.1 statistical check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qvsec::fast_check::fast_check;
use qvsec::security::secure_boolean_via_polynomials;
use qvsec::{AuditDepth, AuditRequest};
use qvsec_cq::{parse_query, ViewSet};
use qvsec_data::{Dictionary, Domain, TupleSpace};
use qvsec_prob::independence::check_independence;
use qvsec_prob::lineage::support_space;
use qvsec_workload::generators::{boolean_chain_query, star_query};
use qvsec_workload::schemas::{ab_domain, binary_schema, employee_schema};

fn bench_decision_paths(c: &mut Criterion) {
    // Example 4.2 (insecure) and Example 4.3 (secure) pairs.
    let schema = binary_schema();
    let mut domain = ab_domain();
    let pairs = [
        ("example_4_2", "S(y) :- R(x, y)", "V(x) :- R(x, y)"),
        ("example_4_3", "S(y) :- R(y, 'a')", "V(x) :- R(x, 'b')"),
    ];
    println!("\n=== Decision-path comparison on the Section 4 examples ===");
    for (name, s_text, v_text) in pairs {
        let s = parse_query(s_text, &schema, &mut domain).unwrap();
        let v = parse_query(v_text, &schema, &mut domain).unwrap();
        let views = ViewSet::single(v.clone());
        let dict = Dictionary::half(TupleSpace::full(&schema, &domain).unwrap());

        let engine = qvsec_bench::engine(&schema, &domain);
        let request = AuditRequest::new(s.clone(), views.clone()).with_depth(AuditDepth::Exact);
        let fast = fast_check(&s, &views).is_certainly_secure();
        let exact = engine.audit(&request).unwrap().secure == Some(true);
        let stats = check_independence(&s, &views, &dict).unwrap().independent;
        println!("  {name}: fast={fast} criterion={exact} statistics={stats}");

        let mut group = c.benchmark_group(format!("security/{name}"));
        group.bench_function("fast_check", |b| b.iter(|| fast_check(&s, &views)));
        // Fresh engine per iteration: measure the Theorem 4.5 computation,
        // not a crit-cache hit.
        group.bench_function("criterion", |b| {
            b.iter(|| {
                qvsec_bench::engine(&schema, &domain)
                    .audit(&request)
                    .unwrap()
                    .secure
            })
        });
        group.bench_function("criterion_warm_cache", |b| {
            b.iter(|| engine.audit(&request).unwrap().secure)
        });
        group.bench_function("statistics", |b| {
            b.iter(|| check_independence(&s, &views, &dict).unwrap().independent)
        });
        if s.is_boolean() && v.is_boolean() {
            let space = support_space(&[&s, &v], &domain, 1 << 12).unwrap();
            group.bench_function("polynomials", |b| {
                b.iter(|| secure_boolean_via_polynomials(&s, &v, &space).unwrap())
            });
        }
        group.finish();
    }
    println!();
}

fn bench_subgoal_scaling(c: &mut Criterion) {
    // chain secret vs star view over R/2: subgoal count drives the cost of
    // the exact criterion while the fast check stays flat.
    let schema = binary_schema();
    let mut group = c.benchmark_group("security/criterion_vs_chain_length");
    for length in [1usize, 2, 3, 4] {
        let secret = boolean_chain_query(&schema, length);
        let view = star_query(&schema, length);
        let views = ViewSet::single(view);
        let domain = Domain::with_size(secret.symbol_count().max(2));
        let request =
            AuditRequest::new(secret.clone(), views.clone()).with_depth(AuditDepth::Exact);
        group.bench_with_input(BenchmarkId::from_parameter(length), &length, |b, _| {
            b.iter(|| {
                qvsec_bench::engine(&schema, &domain)
                    .audit(&request)
                    .unwrap()
                    .secure
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("security/fast_check_vs_chain_length");
    for length in [1usize, 2, 4, 8, 16] {
        let secret = boolean_chain_query(&schema, length);
        let view = star_query(&schema, length);
        let views = ViewSet::single(view);
        group.bench_with_input(BenchmarkId::from_parameter(length), &length, |b, _| {
            b.iter(|| fast_check(&secret, &views))
        });
    }
    group.finish();
}

fn bench_collusion_audit(c: &mut Criterion) {
    // Multi-view audits over the Employee schema: cost per additional view.
    let schema = employee_schema();
    let mut domain = Domain::new();
    let secret = parse_query("S(n, p) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
    let all_views = [
        parse_query("V1(n, d) :- Employee(n, d, p)", &schema, &mut domain).unwrap(),
        parse_query("V2(d, p) :- Employee(n, d, p)", &schema, &mut domain).unwrap(),
        parse_query("V3(n) :- Employee(n, 'Mgmt', p)", &schema, &mut domain).unwrap(),
        parse_query("V4(d) :- Employee(n, d, p)", &schema, &mut domain).unwrap(),
    ];
    // One engine across all view-set sizes: each view's crit set is
    // memoized the first time it appears and reused for every larger set.
    let engine = qvsec_bench::engine(&schema, &domain);
    let mut group = c.benchmark_group("security/views_per_audit");
    for k in 1..=all_views.len() {
        let views = ViewSet::from_views(all_views[..k].to_vec());
        let request = AuditRequest::new(secret.clone(), views).with_depth(AuditDepth::Exact);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| engine.audit(&request).unwrap().secure)
        });
    }
    group.finish();
}

fn all(c: &mut Criterion) {
    bench_decision_paths(c);
    bench_subgoal_scaling(c);
    bench_collusion_audit(c);
}

criterion_group!(benches, all);
criterion_main!(benches);
