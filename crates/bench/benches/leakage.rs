//! Experiments E6.2, E6.3 and INTRO — measuring disclosures.
//!
//! Prints the reproduced leakage values of the Section 6.1 examples
//! (department view vs name-department view vs full collusion) and the
//! Theorem 6.1 ε values, then benches the exact and Monte-Carlo leakage
//! computations.

use criterion::{criterion_group, criterion_main, Criterion};
use qvsec::leakage::{epsilon_for, leakage_estimate, leakage_exact, theorem_6_1_bound};
use qvsec_cq::{parse_query, ViewSet};
use qvsec_data::{Dictionary, Domain, Schema, TupleSpace};

fn setup() -> (Schema, Domain, Dictionary) {
    let mut schema = Schema::new();
    schema.add_relation("Emp", &["name", "department", "phone"]);
    let domain = Domain::with_constants(["a", "b"]);
    let dict = Dictionary::half(TupleSpace::full(&schema, &domain).unwrap());
    (schema, domain, dict)
}

fn print_reproduction() {
    let (schema, mut domain, dict) = setup();
    let s = parse_query("S(n, p) :- Emp(n, d, p)", &schema, &mut domain).unwrap();
    let v_d = parse_query("Vd(d) :- Emp(n, d, p)", &schema, &mut domain).unwrap();
    let v_nd = parse_query("Vnd(n, d) :- Emp(n, d, p)", &schema, &mut domain).unwrap();
    let v_dp = parse_query("Vdp(d, p) :- Emp(n, d, p)", &schema, &mut domain).unwrap();

    println!("\n=== Section 6.1 leakage reproduction (secret: name-phone association) ===");
    println!(
        "{:<40} {:>12} {:>12}",
        "published views", "leak(S,V)", "ε (Thm 6.1)"
    );
    let a = domain.get("a").unwrap();
    let b = domain.get("b").unwrap();
    let rows: Vec<(&str, ViewSet, Vec<Vec<_>>)> = vec![
        (
            "V(d)  — Example 6.2",
            ViewSet::single(v_d.clone()),
            vec![vec![a]],
        ),
        (
            "V(n,d) — Example 6.3",
            ViewSet::single(v_nd.clone()),
            vec![vec![a, a]],
        ),
        (
            "V(n,d) + V'(d,p) — collusion",
            ViewSet::from_views(vec![v_nd.clone(), v_dp.clone()]),
            vec![vec![a, a], vec![a, b]],
        ),
    ];
    for (label, views, view_answers) in &rows {
        let leak = leakage_exact(&s, views, &dict).unwrap().max_leak_f64();
        let eps = epsilon_for(&s, views, &dict, &domain, &[a, b], view_answers)
            .unwrap()
            .map(|e| e.to_f64())
            .unwrap_or(f64::NAN);
        println!("{label:<40} {leak:>12.4} {eps:>12.4}");
        if let Some(eps_ratio) =
            epsilon_for(&s, views, &dict, &domain, &[a, b], view_answers).unwrap()
        {
            if let Some(bound) = theorem_6_1_bound(eps_ratio) {
                println!(
                    "{:<40} {:>12} {:>12.4}",
                    "",
                    "Thm 6.1 bound:",
                    bound.to_f64()
                );
            }
        }
    }
    println!("(the paper's qualitative claim: leakage grows from the department view to the\n name-department view and again under collusion — compare the first column)\n");
}

fn bench_leakage(c: &mut Criterion) {
    let (schema, mut domain, dict) = setup();
    let s = parse_query("S(n, p) :- Emp(n, d, p)", &schema, &mut domain).unwrap();
    let v_d = parse_query("Vd(d) :- Emp(n, d, p)", &schema, &mut domain).unwrap();
    let v_nd = parse_query("Vnd(n, d) :- Emp(n, d, p)", &schema, &mut domain).unwrap();
    let v_dp = parse_query("Vdp(d, p) :- Emp(n, d, p)", &schema, &mut domain).unwrap();
    let a = domain.get("a").unwrap();
    let b = domain.get("b").unwrap();

    let mut group = c.benchmark_group("leakage/exact");
    group.sample_size(10);
    group.bench_function("example_6_2_single_view", |bch| {
        let views = ViewSet::single(v_d.clone());
        bch.iter(|| leakage_exact(&s, &views, &dict).unwrap().max_leak);
    });
    group.bench_function("example_6_3_collusion", |bch| {
        let views = ViewSet::from_views(vec![v_nd.clone(), v_dp.clone()]);
        bch.iter(|| leakage_exact(&s, &views, &dict).unwrap().max_leak);
    });
    group.finish();

    let mut group = c.benchmark_group("leakage/epsilon");
    group.bench_function("theorem_6_1_epsilon", |bch| {
        let views = ViewSet::single(v_d.clone());
        bch.iter(|| {
            epsilon_for(&s, &views, &dict, &domain, &[a, b], &[vec![a]])
                .unwrap()
                .unwrap()
        });
    });
    group.finish();

    let mut group = c.benchmark_group("leakage/monte_carlo");
    group.sample_size(10);
    group.bench_function("estimate_2000_samples", |bch| {
        let views = ViewSet::single(v_nd.clone());
        bch.iter(|| {
            leakage_estimate(&s, &views, &dict, &[a, b], &[vec![a, a]], 2000, 7).unwrap_or(0.0)
        });
    });
    group.finish();
}

fn all(c: &mut Criterion) {
    print_reproduction();
    bench_leakage(c);
}

criterion_group!(benches, all);
criterion_main!(benches);
