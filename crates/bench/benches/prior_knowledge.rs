//! Experiments A1–A5 — security under prior knowledge (Section 5.2).
//!
//! Prints the reproduced verdicts of the five applications and benches the
//! corresponding decision procedures: the Eq. (8) polynomial identity, the
//! Corollary 5.3 key-constraint check, protective-knowledge construction and
//! relative security with respect to prior views.

use criterion::{criterion_group, criterion_main, Criterion};
use qvsec::prior::{
    protective_knowledge_absent, secure_given_knowledge_all_distributions_boolean,
    secure_given_prior_view_boolean, secure_given_prior_views_dict, secure_under_keys,
    CardinalityConstraint, Knowledge,
};
use qvsec::security::secure_for_all_distributions;
use qvsec_cq::{parse_query, ViewSet};
use qvsec_data::{Dictionary, Domain, Schema, TupleSpace};
use qvsec_prob::lineage::support_space;

fn print_reproduction() {
    println!("\n=== Section 5.2 applications (paper claim vs measured) ===");

    // Application 2: keys
    let mut schema = Schema::new();
    let r = schema.add_relation("R", &["key", "value"]);
    schema.add_key(r, &[0]).unwrap();
    let mut domain = Domain::with_constants(["a", "b", "c"]);
    let s = parse_query("S() :- R('a', 'b')", &schema, &mut domain).unwrap();
    let v = parse_query("V() :- R('a', 'c')", &schema, &mut domain).unwrap();
    let space = support_space(&[&s, &v], &domain, 100).unwrap();
    let plain = secure_for_all_distributions(&s, &ViewSet::single(v.clone()), &schema, &domain)
        .unwrap()
        .secure;
    let keyed = secure_under_keys(&s, &ViewSet::single(v.clone()), &schema, &space)
        .unwrap()
        .secure;
    println!("  A2 keys        : without K secure = {plain} (paper: yes), with key constraint secure = {keyed} (paper: no)");

    // Application 3: cardinality
    let mut schema2 = Schema::new();
    schema2.add_relation("R", &["x", "y"]);
    let mut domain2 = Domain::with_constants(["a", "b"]);
    let s2 = parse_query("S() :- R('a', 'a')", &schema2, &mut domain2).unwrap();
    let v2 = parse_query("V() :- R('b', 'b')", &schema2, &mut domain2).unwrap();
    let space2 = TupleSpace::full(&schema2, &domain2).unwrap();
    let with_card = secure_given_knowledge_all_distributions_boolean(
        &s2,
        &v2,
        &Knowledge::Cardinality(CardinalityConstraint::AtMost(1)),
        &space2,
    )
    .unwrap();
    println!(
        "  A3 cardinality : with |I| ≤ 1 known, secure = {with_card} (paper: no query is secure)"
    );

    // Application 4: protective disclosure
    let s3 = parse_query("S() :- R('a', x)", &schema2, &mut domain2).unwrap();
    let v3 = parse_query("V() :- R(x, 'b')", &schema2, &mut domain2).unwrap();
    let k = protective_knowledge_absent(&s3, &ViewSet::single(v3.clone()), &domain2).unwrap();
    let space3 = support_space(&[&s3, &v3], &domain2, 100).unwrap();
    let protected =
        secure_given_knowledge_all_distributions_boolean(&s3, &v3, &k, &space3).unwrap();
    println!("  A4 protection  : after announcing the common critical tuple, secure = {protected} (paper: yes)");

    // Application 5: prior views
    let mut schema3 = Schema::new();
    schema3.add_relation("R1", &["x", "y"]);
    schema3.add_relation("R2", &["x", "y"]);
    let mut domain3 = Domain::with_constants(["a", "b"]);
    let u = parse_query("U() :- R1('a', x), R2('a', y)", &schema3, &mut domain3).unwrap();
    let s5 = parse_query("S() :- R1(z1, z2), R2('a', 'b')", &schema3, &mut domain3).unwrap();
    let v5 = parse_query("V() :- R1('a', 'b'), R2(w1, w2)", &schema3, &mut domain3).unwrap();
    let space5 = support_space(&[&u, &s5, &v5], &domain3, 1 << 10).unwrap();
    let relative = secure_given_prior_view_boolean(&u, &s5, &v5, &space5).unwrap();
    println!("  A5 prior view  : U : S | V = {relative} (paper: yes, V adds no disclosure)\n");
}

fn bench_prior_knowledge(c: &mut Criterion) {
    // polynomial identity (Eq. 8) on the protective-disclosure instance
    let mut schema = Schema::new();
    schema.add_relation("R", &["x", "y"]);
    let mut domain = Domain::with_constants(["a", "b"]);
    let s = parse_query("S() :- R('a', x)", &schema, &mut domain).unwrap();
    let v = parse_query("V() :- R(x, 'b')", &schema, &mut domain).unwrap();
    let k = protective_knowledge_absent(&s, &ViewSet::single(v.clone()), &domain).unwrap();
    let space = support_space(&[&s, &v], &domain, 100).unwrap();
    c.bench_function("prior/eq8_polynomial_identity", |b| {
        b.iter(|| secure_given_knowledge_all_distributions_boolean(&s, &v, &k, &space).unwrap())
    });
    c.bench_function("prior/protective_knowledge_construction", |b| {
        b.iter(|| protective_knowledge_absent(&s, &ViewSet::single(v.clone()), &domain).unwrap())
    });

    // Corollary 5.3 over the keyed schema
    let mut keyed = Schema::new();
    let r = keyed.add_relation("R", &["key", "value"]);
    keyed.add_key(r, &[0]).unwrap();
    let mut kdomain = Domain::with_constants(["a", "b", "c"]);
    let ks = parse_query("S() :- R('a', 'b')", &keyed, &mut kdomain).unwrap();
    let kv = parse_query("V() :- R('a', 'c')", &keyed, &mut kdomain).unwrap();
    let kspace = support_space(&[&ks, &kv], &kdomain, 100).unwrap();
    c.bench_function("prior/corollary_5_3_keys", |b| {
        b.iter(|| {
            secure_under_keys(&ks, &ViewSet::single(kv.clone()), &keyed, &kspace)
                .unwrap()
                .secure
        })
    });

    // relative security over a dictionary
    let mut rschema = Schema::new();
    rschema.add_relation("R", &["x", "y"]);
    let mut rdomain = Domain::with_constants(["a", "b"]);
    let prior = parse_query("U(x) :- R(x, y)", &rschema, &mut rdomain).unwrap();
    let view = parse_query("V(x) :- R(x, y)", &rschema, &mut rdomain).unwrap();
    let secret = parse_query("S(y) :- R(x, y)", &rschema, &mut rdomain).unwrap();
    let dict = Dictionary::half(TupleSpace::full(&rschema, &rdomain).unwrap());
    let mut group = c.benchmark_group("prior/relative_security_dict");
    group.sample_size(20);
    group.bench_function("prior_view_conditioning", |b| {
        b.iter(|| {
            secure_given_prior_views_dict(
                &ViewSet::single(prior.clone()),
                &secret,
                &ViewSet::single(view.clone()),
                &dict,
            )
            .unwrap()
        })
    });
    group.finish();
}

fn all(c: &mut Criterion) {
    print_reproduction();
    bench_prior_knowledge(c);
}

criterion_group!(benches, all);
criterion_main!(benches);
