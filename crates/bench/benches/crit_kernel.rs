//! Experiment SCALE-K: the parallel, pruned `crit(Q)` kernel vs. the
//! preserved pre-kernel sequential path on the Table 1 workloads.
//!
//! Prints the pruning counters once at start-up (candidates examined vs.
//! symmetry-collapsed vs. actually decided), then benches both paths per
//! Table 1 row over growing active domains. `bench_crit` (the qvsec-bench
//! binary) records the same comparison into `BENCH_crit.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qvsec::critical::{critical_tuples_seq, critical_tuples_traced, CritStats};
use qvsec_cq::ConjunctiveQuery;
use qvsec_workload::paper::table1;

const CAP: usize = 250_000;

fn print_pruning_counters() {
    println!("\n=== crit(Q) kernel pruning on the Table 1 workloads (domain 12) ===");
    for row in table1() {
        let mut queries: Vec<&ConjunctiveQuery> = vec![&row.secret];
        queries.extend(row.views.iter());
        let mut domain = row.domain.clone();
        domain.pad_to(12);
        let stats = CritStats::new();
        for q in &queries {
            let kernel = critical_tuples_traced(q, &domain, CAP, &stats).unwrap();
            let seq = critical_tuples_seq(q, &domain, CAP).unwrap();
            assert_eq!(kernel, seq, "kernel must match the sequential baseline");
        }
        let snap = stats.snapshot();
        println!(
            "  row{}: {} candidates, {} collapsed by symmetry, {} decided, {} frozen",
            row.id,
            snap.candidates_examined,
            snap.pruned_by_symmetry,
            snap.decisions_run,
            snap.instances_frozen
        );
    }
    println!();
}

fn bench_kernel_vs_seq(c: &mut Criterion) {
    for row in table1() {
        let mut queries: Vec<&ConjunctiveQuery> = vec![&row.secret];
        queries.extend(row.views.iter());
        let mut group = c.benchmark_group(format!("crit_kernel/table1-row{}", row.id));
        group.sample_size(10);
        for size in [8usize, 12] {
            let mut domain = row.domain.clone();
            domain.pad_to(size);
            group.bench_with_input(BenchmarkId::new("seq", size), &size, |b, _| {
                b.iter(|| {
                    for q in &queries {
                        critical_tuples_seq(q, &domain, CAP).unwrap();
                    }
                });
            });
            group.bench_with_input(BenchmarkId::new("kernel", size), &size, |b, _| {
                b.iter(|| {
                    let stats = CritStats::new();
                    for q in &queries {
                        critical_tuples_traced(q, &domain, CAP, &stats).unwrap();
                    }
                });
            });
        }
        group.finish();
    }
}

fn all(c: &mut Criterion) {
    print_pruning_counters();
    bench_kernel_vs_seq(c);
}

criterion_group!(benches, all);
criterion_main!(benches);
