//! Experiments E4.6/E4.7, A-RED and SCALE (critical-tuple side).
//!
//! Prints the critical-tuple sets of the Section 4 examples, then benches:
//! the fine-instance criticality decision, the brute-force reference, the
//! full `crit(Q)` computation as the query grows (chain queries), and the
//! criticality decision on Appendix A reduction instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qvsec::cnf::{ForallExists3Cnf, Literal};
use qvsec::critical::{critical_tuples, is_critical};
use qvsec::critical_bruteforce::is_critical_bruteforce;
use qvsec::hardness::reduce;
use qvsec_cq::parse_query;
use qvsec_data::{Domain, Tuple, TupleSpace};
use qvsec_workload::generators::boolean_chain_query;
use qvsec_workload::schemas::{ab_domain, binary_schema};

fn print_reproduction() {
    let schema = binary_schema();
    let mut domain = ab_domain();
    println!("\n=== Critical tuples of the Section 4 examples ===");
    for text in [
        "V(x) :- R(x, y)",
        "S(y) :- R(x, y)",
        "V(x) :- R(x, 'b')",
        "S(y) :- R(y, 'a')",
        "Q() :- R('a', x), R(x, x)",
    ] {
        let q = parse_query(text, &schema, &mut domain).unwrap();
        let crit = critical_tuples(&q, &domain).unwrap();
        let rendered: Vec<String> = crit
            .iter()
            .map(|t| t.display(&schema, &domain).to_string())
            .collect();
        println!("  crit({text:<28}) = {{{}}}", rendered.join(", "));
    }
    println!();
}

fn bench_is_critical(c: &mut Criterion) {
    let schema = binary_schema();
    let mut domain = ab_domain();
    let q = parse_query("Q() :- R('a', x), R(x, x)", &schema, &mut domain).unwrap();
    let t_aa = Tuple::from_names(&schema, &domain, "R", &["a", "a"]).unwrap();
    let space = TupleSpace::full(&schema, &domain).unwrap();

    let mut group = c.benchmark_group("critical/is_critical");
    group.bench_function("fine_instance", |b| {
        b.iter(|| is_critical(&q, &t_aa, &domain));
    });
    group.bench_function("brute_force", |b| {
        b.iter(|| is_critical_bruteforce(&q, &t_aa, &space).unwrap());
    });
    group.finish();
}

fn bench_crit_set_scaling(c: &mut Criterion) {
    let schema = binary_schema();
    let mut group = c.benchmark_group("critical/crit_set_chain_length");
    for length in [1usize, 2, 3, 4] {
        let q = boolean_chain_query(&schema, length);
        let domain = Domain::with_size(q.symbol_count().max(2));
        group.bench_with_input(BenchmarkId::from_parameter(length), &length, |b, _| {
            b.iter(|| critical_tuples(&q, &domain).unwrap().len());
        });
    }
    group.finish();

    let mut group = c.benchmark_group("critical/crit_set_domain_size");
    let q = boolean_chain_query(&schema, 2);
    for size in [2usize, 3, 4, 6] {
        let domain = Domain::with_size(size);
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| critical_tuples(&q, &domain).unwrap().len());
        });
    }
    group.finish();
}

fn bench_hardness_instances(c: &mut Criterion) {
    // Appendix A reduction instances: satisfiable and unsatisfiable formulas
    // of growing size.
    let formulas = vec![
        (
            "sat_2vars",
            ForallExists3Cnf::existential(
                2,
                vec![
                    vec![Literal::y(0), Literal::y(1)],
                    vec![Literal::not_y(0), Literal::y(1)],
                ],
            ),
        ),
        (
            "unsat_2vars",
            ForallExists3Cnf::existential(
                2,
                vec![
                    vec![Literal::y(0), Literal::y(1)],
                    vec![Literal::not_y(0), Literal::y(1)],
                    vec![Literal::y(0), Literal::not_y(1)],
                    vec![Literal::not_y(0), Literal::not_y(1)],
                ],
            ),
        ),
        (
            "sat_3vars",
            ForallExists3Cnf::existential(
                3,
                vec![
                    vec![Literal::y(0), Literal::y(1), Literal::y(2)],
                    vec![Literal::not_y(0), Literal::y(1)],
                    vec![Literal::not_y(1), Literal::y(2)],
                ],
            ),
        ),
    ];
    println!("=== Appendix A reduction instances ===");
    for (name, formula) in &formulas {
        let inst = reduce(formula).unwrap();
        println!(
            "  {name}: satisfiable = {}, query has {} subgoals, tuple critical = {}",
            formula.is_satisfiable(),
            inst.query.atoms.len(),
            is_critical(&inst.query, &inst.tuple, &inst.domain)
        );
    }
    println!();
    let mut group = c.benchmark_group("critical/hardness_reduction");
    for (name, formula) in &formulas {
        let inst = reduce(formula).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &inst, |b, inst| {
            b.iter(|| is_critical(&inst.query, &inst.tuple, &inst.domain));
        });
    }
    group.finish();
}

fn all(c: &mut Criterion) {
    print_reproduction();
    bench_is_critical(c);
    bench_crit_set_scaling(c);
    bench_hardness_instances(c);
}

criterion_group!(benches, all);
criterion_main!(benches);
