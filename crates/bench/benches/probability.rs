//! Experiments E4.2, E4.3 and E4.12 — exact probabilities and event
//! polynomials.
//!
//! Prints the probabilities of the worked examples (3/16 vs 1/3; 1/4 vs 1/4)
//! and the Example 4.12 polynomial, then benches the exact probability
//! engine: answer-distribution computation, conditional probabilities,
//! polynomial construction, and how they scale with the tuple-space size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qvsec_cq::eval::AnswerSet;
use qvsec_cq::{evaluate, parse_query, ViewSet};
use qvsec_data::{Dictionary, Domain, Ratio, Schema, TupleSpace};
use qvsec_prob::independence::check_independence;
use qvsec_prob::poly::event_polynomial;
use qvsec_prob::probability::{answer_distribution, conditional_probability};
use qvsec_workload::paper::{example_4_12, example_4_2, example_4_3};
use qvsec_workload::schemas::binary_schema;

fn print_reproduction() {
    let schema = binary_schema();
    println!("\n=== Worked-example probabilities ===");
    {
        let (s, v, domain) = example_4_2();
        let dict = Dictionary::half(TupleSpace::full(&schema, &domain).unwrap());
        let a = domain.get("a").unwrap();
        let b = domain.get("b").unwrap();
        let s_target: AnswerSet = [vec![a]].into_iter().collect();
        let v_target: AnswerSet = [vec![b]].into_iter().collect();
        let prior = answer_distribution(&s, &dict).unwrap()[&s_target];
        let posterior = conditional_probability(
            &dict,
            |i| evaluate(&s, i) == s_target,
            |i| evaluate(&v, i) == v_target,
        )
        .unwrap()
        .unwrap();
        println!("  Example 4.2: P[S={{(a)}}] = {prior} (paper: 3/16), P[S={{(a)}} | V={{(b)}}] = {posterior} (paper: 1/3)");
    }
    {
        let (s, v, domain) = example_4_3();
        let dict = Dictionary::half(TupleSpace::full(&schema, &domain).unwrap());
        let a = domain.get("a").unwrap();
        let b = domain.get("b").unwrap();
        let s_target: AnswerSet = [vec![a]].into_iter().collect();
        let v_target: AnswerSet = [vec![b]].into_iter().collect();
        let prior = answer_distribution(&s, &dict).unwrap()[&s_target];
        let posterior = conditional_probability(
            &dict,
            |i| evaluate(&s, i) == s_target,
            |i| evaluate(&v, i) == v_target,
        )
        .unwrap()
        .unwrap();
        println!("  Example 4.3: P[S={{(a)}}] = {prior} (paper: 1/4), P[S={{(a)}} | V={{(b)}}] = {posterior} (paper: 1/4)");
    }
    {
        let (q, domain) = example_4_12();
        let space = TupleSpace::full(&schema, &domain).unwrap();
        let f = event_polynomial(&q, &space).unwrap();
        println!("  Example 4.12: f_Q = {f} (paper: x1 + x2·x4 − x1·x2·x4, 1-based)");
    }
    println!();
}

fn bench_exact_probabilities(c: &mut Criterion) {
    let schema = binary_schema();
    let (s, v, domain) = example_4_2();
    let dict = Dictionary::half(TupleSpace::full(&schema, &domain).unwrap());

    let mut group = c.benchmark_group("probability/example_4_2");
    group.bench_function("answer_distribution", |b| {
        b.iter(|| answer_distribution(&s, &dict).unwrap().len())
    });
    group.bench_function("independence_check", |b| {
        b.iter(|| {
            check_independence(&s, &ViewSet::single(v.clone()), &dict)
                .unwrap()
                .independent
        })
    });
    group.finish();
}

fn bench_polynomial_construction(c: &mut Criterion) {
    let (q, domain) = example_4_12();
    let schema = binary_schema();
    let space = TupleSpace::full(&schema, &domain).unwrap();
    c.bench_function("probability/event_polynomial_example_4_12", |b| {
        b.iter(|| event_polynomial(&q, &space).unwrap().num_terms())
    });
}

fn bench_space_scaling(c: &mut Criterion) {
    // cost of exact enumeration as the tuple space grows: P[Q] for the
    // boolean triangle query over domains of 2..3 constants (4..9 tuples)
    // plus a restricted 16-tuple support.
    let schema: Schema = binary_schema();
    let mut group = c.benchmark_group("probability/exact_vs_space_size");
    group.sample_size(10);
    for size in [2usize, 3, 4] {
        let domain = Domain::with_size(size);
        let space = TupleSpace::full(&schema, &domain).unwrap();
        if space.len() > qvsec_data::bitset::MAX_ENUMERABLE {
            continue;
        }
        let mut d = domain.clone();
        let q = parse_query("Q() :- R(x, y), R(y, z)", &schema, &mut d).unwrap();
        let dict = Dictionary::uniform(space, Ratio::new(1, 2)).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(dict.len()), &dict, |b, dict| {
            b.iter(|| {
                qvsec_prob::probability::boolean_probability(&q, dict)
                    .unwrap()
                    .to_f64()
            })
        });
    }
    group.finish();
}

fn all(c: &mut Criterion) {
    print_reproduction();
    bench_exact_probabilities(c);
    bench_polynomial_construction(c);
    bench_space_scaling(c);
}

criterion_group!(benches, all);
criterion_main!(benches);
