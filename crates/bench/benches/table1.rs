//! Experiment T1 — Table 1: the disclosure spectrum.
//!
//! Prints the reproduced classification of the four query/view pairs and
//! benches the decision procedures that produce it (the fast Section 4.2
//! check, the exact Theorem 4.5 criterion, and the full dictionary-based
//! analysis).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qvsec::analysis::SecurityAnalyzer;
use qvsec::fast_check::fast_check;
use qvsec::security::secure_for_all_distributions;
use qvsec_bench::support_dictionary;
use qvsec_data::Ratio;
use qvsec_workload::paper::table1;
use qvsec_workload::schemas::employee_schema;

fn print_reproduction() {
    let schema = employee_schema();
    println!("\n=== Table 1 reproduction (paper verdict vs measured) ===");
    println!(
        "{:<4} {:<14} {:<10} {:<14} {:<10} {:<12}",
        "row", "paper class", "paper S|V", "measured", "secure", "leak(S,V)"
    );
    for row in table1() {
        let mut queries: Vec<&qvsec_cq::ConjunctiveQuery> = vec![&row.secret];
        queries.extend(row.views.iter());
        let dict = support_dictionary(&queries, &row.domain);
        let mut domain = row.domain.clone();
        domain.pad_to(2);
        let analysis = SecurityAnalyzer::new(&schema, &domain)
            .with_minute_threshold(Ratio::new(1, 10))
            .analyze_with_dictionary(&row.secret, &row.views, &dict)
            .expect("analysis succeeds");
        println!(
            "{:<4} {:<14} {:<10} {:<14} {:<10} {:<12.4}",
            row.id,
            row.disclosure.to_string(),
            if row.secure { "Yes" } else { "No" },
            analysis.class.to_string(),
            if analysis.security.secure { "Yes" } else { "No" },
            analysis.leakage.as_ref().map(|l| l.max_leak_f64()).unwrap_or(f64::NAN),
        );
    }
    println!();
}

fn bench_table1(c: &mut Criterion) {
    print_reproduction();
    let schema = employee_schema();
    let rows = table1();

    let mut group = c.benchmark_group("table1/fast_check");
    for row in &rows {
        group.bench_with_input(BenchmarkId::from_parameter(row.id), row, |b, row| {
            b.iter(|| fast_check(&row.secret, &row.views));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("table1/theorem_4_5");
    for row in &rows {
        group.bench_with_input(BenchmarkId::from_parameter(row.id), row, |b, row| {
            b.iter(|| {
                secure_for_all_distributions(&row.secret, &row.views, &schema, &row.domain)
                    .unwrap()
                    .secure
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("table1/full_analysis");
    group.sample_size(10);
    for row in &rows {
        let mut queries: Vec<&qvsec_cq::ConjunctiveQuery> = vec![&row.secret];
        queries.extend(row.views.iter());
        let dict = support_dictionary(&queries, &row.domain);
        let mut domain = row.domain.clone();
        domain.pad_to(2);
        group.bench_with_input(BenchmarkId::from_parameter(row.id), row, |b, row| {
            let analyzer = SecurityAnalyzer::new(&schema, &domain);
            b.iter(|| {
                analyzer
                    .analyze_with_dictionary(&row.secret, &row.views, &dict)
                    .unwrap()
                    .class
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
