//! Experiment T1 — Table 1: the disclosure spectrum.
//!
//! Prints the reproduced classification of the four query/view pairs and
//! benches the decision procedures that produce it (the fast Section 4.2
//! check, the exact Theorem 4.5 criterion, and the full dictionary-based
//! analysis).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qvsec::fast_check::fast_check;
use qvsec::{AuditDepth, AuditRequest};
use qvsec_bench::table1_row_engine;
use qvsec_workload::paper::table1;

fn print_reproduction() {
    println!("\n=== Table 1 reproduction (paper verdict vs measured) ===");
    println!(
        "{:<4} {:<14} {:<10} {:<14} {:<10} {:<12}",
        "row", "paper class", "paper S|V", "measured", "secure", "leak(S,V)"
    );
    for row in table1() {
        let (engine, request) = table1_row_engine(&row);
        let report = engine.audit(&request).expect("analysis succeeds");
        println!(
            "{:<4} {:<14} {:<10} {:<14} {:<10} {:<12.4}",
            row.id,
            row.disclosure.to_string(),
            if row.secure { "Yes" } else { "No" },
            report.class.to_string(),
            if report.secure == Some(true) {
                "Yes"
            } else {
                "No"
            },
            report
                .leakage
                .as_ref()
                .map(|l| l.max_leak_f64())
                .unwrap_or(f64::NAN),
        );
    }
    println!();
}

fn bench_table1(c: &mut Criterion) {
    print_reproduction();
    let rows = table1();

    let mut group = c.benchmark_group("table1/fast_check");
    for row in &rows {
        group.bench_with_input(BenchmarkId::from_parameter(row.id), row, |b, row| {
            b.iter(|| fast_check(&row.secret, &row.views));
        });
    }
    group.finish();

    // Cold path: a fresh engine per iteration so every audit recomputes its
    // crit(Q) sets (engine construction itself is a few Arc clones).
    let mut group = c.benchmark_group("table1/theorem_4_5");
    for row in &rows {
        let request = table1_row_engine(row).1.with_depth(AuditDepth::Exact);
        group.bench_with_input(BenchmarkId::from_parameter(row.id), row, |b, row| {
            b.iter(|| {
                let engine = table1_row_engine(row).0;
                engine.audit(&request).unwrap().secure
            });
        });
    }
    group.finish();

    // The same exact-depth audits served from a warm crit(Q) memo cache.
    let mut group = c.benchmark_group("table1/theorem_4_5_warm_cache");
    for row in &rows {
        let (engine, request) = table1_row_engine(row);
        let request = request.with_depth(AuditDepth::Exact);
        engine.audit(&request).unwrap(); // warm the cache
        group.bench_with_input(BenchmarkId::from_parameter(row.id), row, |b, _| {
            b.iter(|| engine.audit(&request).unwrap().secure);
        });
    }
    group.finish();

    let mut group = c.benchmark_group("table1/full_analysis");
    group.sample_size(10);
    for row in &rows {
        let (engine, request) = table1_row_engine(row);
        group.bench_with_input(BenchmarkId::from_parameter(row.id), row, |b, _| {
            b.iter(|| engine.audit(&request).unwrap().class);
        });
    }
    group.finish();

    // Whole-workload batch through one engine, the service-shaped hot path.
    // All rows are re-parsed against one shared domain so the engine's
    // constant indices line up across requests.
    let mut group = c.benchmark_group("table1/audit_batch");
    group.sample_size(10);
    let schema = qvsec_workload::schemas::employee_schema();
    let mut shared_domain = qvsec_data::Domain::new();
    let requests: Vec<AuditRequest> = rows
        .iter()
        .map(|row| {
            let secret = qvsec_cq::parse_query(
                &row.secret.display(&schema, &row.domain).to_string(),
                &schema,
                &mut shared_domain,
            )
            .expect("row secret re-parses");
            let mut views = qvsec_cq::ViewSet::new();
            for v in row.views.iter() {
                views.push(
                    qvsec_cq::parse_query(
                        &v.display(&schema, &row.domain).to_string(),
                        &schema,
                        &mut shared_domain,
                    )
                    .expect("row view re-parses"),
                );
            }
            AuditRequest::new(secret, views)
                .named(format!("table1-row{}", row.id))
                .with_depth(AuditDepth::Exact)
        })
        .collect();
    let engine = qvsec::AuditEngine::builder(schema, shared_domain).build();
    group.bench_function("4rows", |b| {
        b.iter(|| engine.try_audit_batch(&requests).unwrap().len())
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
