//! The append-only log backend.
//!
//! One file per namespace under the store's root directory. Every
//! [`append_batch`](crate::StoreBackend::append_batch) becomes exactly one
//! **record**:
//!
//! ```text
//! [u32 LE payload_len] [u32 LE fnv1a-32(payload)] [payload]
//! payload = op*   op = [u8 tag (0=put, 1=delete)]
//!                      [u32 LE key_len]  [key bytes]
//!                      [u32 LE val_len]  [val bytes]      (puts only)
//! ```
//!
//! Atomicity falls out of the framing: a crash mid-write leaves a torn
//! final record whose length or checksum cannot validate, and reopening
//! truncates the file back to the last valid record boundary — the batch
//! is recovered whole or not at all, never partially. The live state is a
//! replay of every surviving record in file order.
//!
//! A namespace file growing past the compaction threshold is rewritten to
//! a single record holding its live entries (written to a temp file,
//! synced, then renamed over the original — the same atomic-replace
//! discipline as the KV shim), so deletes and overwrites do not pin disk
//! forever.

use crate::{encode_component, fnv1a_32, Result, StoreBackend, StoreError, StoreOp};
use std::collections::{BTreeMap, HashMap};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

const TAG_PUT: u8 = 0;
const TAG_DELETE: u8 = 1;
const FRAME_HEADER: usize = 8;

/// One namespace's replayed state plus its open append handle.
#[derive(Debug)]
struct NsState {
    map: BTreeMap<String, Vec<u8>>,
    file: File,
    file_bytes: u64,
}

/// Append-only-file store with checksummed records and tail-truncation
/// recovery; record framing and compaction are documented in the
/// module-level docs above.
#[derive(Debug)]
pub struct LogStore {
    root: PathBuf,
    compact_threshold: u64,
    spaces: Mutex<HashMap<String, NsState>>,
}

fn encode_ops(ops: &[StoreOp]) -> Vec<u8> {
    let mut payload = Vec::new();
    for op in ops {
        match op {
            StoreOp::Put { key, value } => {
                payload.push(TAG_PUT);
                payload.extend_from_slice(&(key.len() as u32).to_le_bytes());
                payload.extend_from_slice(key.as_bytes());
                payload.extend_from_slice(&(value.len() as u32).to_le_bytes());
                payload.extend_from_slice(value);
            }
            StoreOp::Delete { key } => {
                payload.push(TAG_DELETE);
                payload.extend_from_slice(&(key.len() as u32).to_le_bytes());
                payload.extend_from_slice(key.as_bytes());
            }
        }
    }
    payload
}

fn read_u32(bytes: &[u8], at: usize) -> Option<u32> {
    bytes
        .get(at..at + 4)
        .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

/// Decodes one record payload into ops. `None` marks a malformed payload
/// (treated like a torn tail: the record and everything after it is
/// discarded).
fn decode_ops(payload: &[u8]) -> Option<Vec<StoreOp>> {
    let mut ops = Vec::new();
    let mut at = 0;
    while at < payload.len() {
        let tag = payload[at];
        at += 1;
        let key_len = read_u32(payload, at)? as usize;
        at += 4;
        let key = String::from_utf8(payload.get(at..at + key_len)?.to_vec()).ok()?;
        at += key_len;
        match tag {
            TAG_PUT => {
                let val_len = read_u32(payload, at)? as usize;
                at += 4;
                let value = payload.get(at..at + val_len)?.to_vec();
                at += val_len;
                ops.push(StoreOp::Put { key, value });
            }
            TAG_DELETE => ops.push(StoreOp::Delete { key }),
            _ => return None,
        }
    }
    Some(ops)
}

/// Replays `bytes` record by record. Returns the live map and the offset of
/// the first invalid byte (== `bytes.len()` for a clean file).
fn replay(bytes: &[u8]) -> (BTreeMap<String, Vec<u8>>, u64) {
    let mut map = BTreeMap::new();
    let mut at = 0usize;
    while let Some(payload_len) = read_u32(bytes, at) {
        let payload_len = payload_len as usize;
        let Some(checksum) = read_u32(bytes, at + 4) else {
            break;
        };
        let start = at + FRAME_HEADER;
        let Some(payload) = bytes.get(start..start + payload_len) else {
            break; // torn tail: the record was not fully written
        };
        if fnv1a_32(payload) != checksum {
            break; // torn or corrupted record
        }
        let Some(ops) = decode_ops(payload) else {
            break;
        };
        for op in ops {
            match op {
                StoreOp::Put { key, value } => {
                    map.insert(key, value);
                }
                StoreOp::Delete { key } => {
                    map.remove(&key);
                }
            }
        }
        at = start + payload_len;
    }
    (map, at as u64)
}

impl LogStore {
    /// Opens (creating if needed) a log store rooted at `root`. Namespace
    /// files are replayed lazily on first touch. `compact_threshold` of `0`
    /// disables compaction.
    pub fn open(root: impl Into<PathBuf>, compact_threshold: u64) -> Result<LogStore> {
        let root = root.into();
        std::fs::create_dir_all(&root)
            .map_err(|e| StoreError::Io(format!("create {}: {e}", root.display())))?;
        Ok(LogStore {
            root,
            compact_threshold,
            spaces: Mutex::new(HashMap::new()),
        })
    }

    fn ns_path(&self, ns: &str) -> PathBuf {
        self.root.join(format!("{}.log", encode_component(ns)))
    }

    /// Loads (replaying + truncating any torn tail) or returns the cached
    /// state of `ns`. The caller holds the `spaces` lock.
    fn load<'a>(
        &self,
        spaces: &'a mut HashMap<String, NsState>,
        ns: &str,
    ) -> Result<&'a mut NsState> {
        if !spaces.contains_key(ns) {
            let path = self.ns_path(ns);
            let mut file = OpenOptions::new()
                .read(true)
                .create(true)
                .append(true)
                .open(&path)
                .map_err(|e| StoreError::Io(format!("open {}: {e}", path.display())))?;
            let mut bytes = Vec::new();
            file.read_to_end(&mut bytes)
                .map_err(|e| StoreError::Io(format!("read {}: {e}", path.display())))?;
            let (map, valid_end) = replay(&bytes);
            if valid_end < bytes.len() as u64 {
                // Torn tail: drop the invalid suffix so the next append
                // starts on a clean record boundary.
                truncate_to(&path, valid_end)?;
                file = OpenOptions::new()
                    .read(true)
                    .append(true)
                    .open(&path)
                    .map_err(|e| StoreError::Io(format!("reopen {}: {e}", path.display())))?;
            }
            spaces.insert(
                ns.to_string(),
                NsState {
                    map,
                    file,
                    file_bytes: valid_end,
                },
            );
        }
        Ok(spaces.get_mut(ns).expect("just inserted"))
    }

    /// Rewrites `ns` to a single record of its live entries.
    fn compact(&self, ns: &str, state: &mut NsState) -> Result<()> {
        let ops: Vec<StoreOp> = state
            .map
            .iter()
            .map(|(k, v)| StoreOp::put(k.clone(), v.clone()))
            .collect();
        let frame = frame_record(&ops);
        let path = self.ns_path(ns);
        let tmp = self.root.join(format!("{}.compact", encode_component(ns)));
        {
            let mut out = File::create(&tmp)
                .map_err(|e| StoreError::Io(format!("create {}: {e}", tmp.display())))?;
            out.write_all(&frame)
                .and_then(|_| out.sync_all())
                .map_err(|e| StoreError::Io(format!("write {}: {e}", tmp.display())))?;
        }
        std::fs::rename(&tmp, &path)
            .map_err(|e| StoreError::Io(format!("rename {}: {e}", path.display())))?;
        state.file = OpenOptions::new()
            .read(true)
            .append(true)
            .open(&path)
            .map_err(|e| StoreError::Io(format!("reopen {}: {e}", path.display())))?;
        state.file_bytes = frame.len() as u64;
        Ok(())
    }
}

fn frame_record(ops: &[StoreOp]) -> Vec<u8> {
    let payload = encode_ops(ops);
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&fnv1a_32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

fn truncate_to(path: &Path, len: u64) -> Result<()> {
    let file = OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| StoreError::Io(format!("open {}: {e}", path.display())))?;
    file.set_len(len)
        .map_err(|e| StoreError::Io(format!("truncate {}: {e}", path.display())))?;
    Ok(())
}

impl StoreBackend for LogStore {
    fn get(&self, ns: &str, key: &str) -> Result<Option<Vec<u8>>> {
        let mut spaces = self.spaces.lock().expect("log store poisoned");
        Ok(self.load(&mut spaces, ns)?.map.get(key).cloned())
    }

    fn scan(&self, ns: &str) -> Result<Vec<(String, Vec<u8>)>> {
        let mut spaces = self.spaces.lock().expect("log store poisoned");
        Ok(self
            .load(&mut spaces, ns)?
            .map
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect())
    }

    fn append_batch(&self, ns: &str, ops: Vec<StoreOp>) -> Result<()> {
        if ops.is_empty() {
            return Ok(());
        }
        let _span = qvsec_obs::Span::enter("store.append");
        qvsec_obs::counter("store.appends").inc();
        let mut spaces = self.spaces.lock().expect("log store poisoned");
        let threshold = self.compact_threshold;
        let frame = frame_record(&ops);
        qvsec_obs::counter("store.appended_bytes").add(frame.len() as u64);
        let state = self.load(&mut spaces, ns)?;
        state
            .file
            .write_all(&frame)
            .map_err(|e| StoreError::Io(format!("append {ns}: {e}")))?;
        state.file_bytes += frame.len() as u64;
        for op in ops {
            match op {
                StoreOp::Put { key, value } => {
                    state.map.insert(key, value);
                }
                StoreOp::Delete { key } => {
                    state.map.remove(&key);
                }
            }
        }
        if threshold > 0 && state.file_bytes > threshold {
            self.compact(ns, state)?;
        }
        Ok(())
    }

    fn flush(&self) -> Result<()> {
        let _span = qvsec_obs::Span::enter("store.flush");
        qvsec_obs::counter("store.flushes").inc();
        let spaces = self.spaces.lock().expect("log store poisoned");
        for (ns, state) in spaces.iter() {
            state
                .file
                .sync_all()
                .map_err(|e| StoreError::Io(format!("sync {ns}: {e}")))?;
        }
        Ok(())
    }

    fn backend_name(&self) -> &'static str {
        "log"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::scratch_dir;

    fn reopen(dir: &Path) -> LogStore {
        LogStore::open(dir.to_path_buf(), 0).unwrap()
    }

    #[test]
    fn state_survives_reopen() {
        let dir = scratch_dir("log-reopen");
        {
            let store = reopen(&dir);
            store
                .append_batch(
                    "a/b",
                    vec![
                        StoreOp::put("k1", b"v1".to_vec()),
                        StoreOp::put("k2", b"v2".to_vec()),
                    ],
                )
                .unwrap();
            store
                .append_batch("a/b", vec![StoreOp::delete("k1")])
                .unwrap();
            store.flush().unwrap();
        }
        let store = reopen(&dir);
        assert_eq!(store.get("a/b", "k1").unwrap(), None);
        assert_eq!(store.get("a/b", "k2").unwrap(), Some(b"v2".to_vec()));
        assert_eq!(store.scan("a/b").unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_at_every_byte_offset_recovers_a_record_prefix() {
        let dir = scratch_dir("log-torn");
        let store = reopen(&dir);
        // Three batches → three records; remember state after each.
        store
            .append_batch("ns", vec![StoreOp::put("a", b"1".to_vec())])
            .unwrap();
        store
            .append_batch(
                "ns",
                vec![StoreOp::put("b", b"22".to_vec()), StoreOp::delete("a")],
            )
            .unwrap();
        store
            .append_batch("ns", vec![StoreOp::put("c", b"333".to_vec())])
            .unwrap();
        store.flush().unwrap();
        let path = dir.join("ns.log");
        let full = std::fs::read(&path).unwrap();
        // Record boundaries, recomputed from the framing.
        let mut boundaries = vec![0usize];
        let mut at = 0usize;
        while at < full.len() {
            let len = u32::from_le_bytes(full[at..at + 4].try_into().unwrap()) as usize;
            at += FRAME_HEADER + len;
            boundaries.push(at);
        }
        drop(store);
        for cut in 0..=full.len() {
            // Simulate a crash that left only the first `cut` bytes.
            std::fs::write(&path, &full[..cut]).unwrap();
            let store = reopen(&dir);
            let entries = store.scan("ns").unwrap();
            // Recovery lands on the last whole record at or before the cut.
            let records = boundaries.iter().filter(|b| **b <= cut).count() - 1;
            let expected: Vec<(String, Vec<u8>)> = match records {
                0 => vec![],
                1 => vec![("a".into(), b"1".to_vec())],
                2 => vec![("b".into(), b"22".to_vec())],
                _ => vec![("b".into(), b"22".to_vec()), ("c".into(), b"333".to_vec())],
            };
            assert_eq!(entries, expected, "cut at byte {cut}");
            // The truncated store accepts appends cleanly.
            store
                .append_batch("ns", vec![StoreOp::put("z", b"9".to_vec())])
                .unwrap();
            assert_eq!(store.get("ns", "z").unwrap(), Some(b"9".to_vec()));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_corrupted_checksum_truncates_that_record_and_its_suffix() {
        let dir = scratch_dir("log-corrupt");
        let store = reopen(&dir);
        store
            .append_batch("ns", vec![StoreOp::put("a", b"1".to_vec())])
            .unwrap();
        store
            .append_batch("ns", vec![StoreOp::put("b", b"2".to_vec())])
            .unwrap();
        store.flush().unwrap();
        drop(store);
        let path = dir.join("ns.log");
        let mut bytes = std::fs::read(&path).unwrap();
        let first_len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize + FRAME_HEADER;
        // Flip a payload byte of the *second* record.
        bytes[first_len + FRAME_HEADER] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let store = reopen(&dir);
        assert_eq!(store.get("ns", "a").unwrap(), Some(b"1".to_vec()));
        assert_eq!(store.get("ns", "b").unwrap(), None, "bad record dropped");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_shrinks_the_file_and_preserves_live_state() {
        let dir = scratch_dir("log-compact");
        // Threshold small enough that churn triggers compaction.
        let store = LogStore::open(dir.clone(), 256).unwrap();
        for round in 0..64 {
            store
                .append_batch(
                    "ns",
                    vec![StoreOp::put("hot", format!("value-{round}").into_bytes())],
                )
                .unwrap();
        }
        store.flush().unwrap();
        let size = std::fs::metadata(dir.join("ns.log")).unwrap().len();
        assert!(size <= 256 + 64, "file stays near one live record: {size}");
        assert_eq!(
            store.get("ns", "hot").unwrap(),
            Some(b"value-63".to_vec()),
            "live value survives compaction"
        );
        drop(store);
        let store = reopen(&dir);
        assert_eq!(store.get("ns", "hot").unwrap(), Some(b"value-63".to_vec()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn namespaces_map_to_disjoint_files() {
        let dir = scratch_dir("log-ns");
        let store = reopen(&dir);
        store
            .append_batch("x/y", vec![StoreOp::put("k", b"1".to_vec())])
            .unwrap();
        store
            .append_batch("x%2fy", vec![StoreOp::put("k", b"2".to_vec())])
            .unwrap();
        assert_eq!(store.get("x/y", "k").unwrap(), Some(b"1".to_vec()));
        assert_eq!(store.get("x%2fy", "k").unwrap(), Some(b"2".to_vec()));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
