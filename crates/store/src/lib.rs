//! # qvsec-store — pluggable durable persistence
//!
//! The paper's audit question is cumulative: whether the next view is safe
//! depends on *every* view already published, so a serving process that
//! loses session history on restart silently invalidates the security
//! guarantee for any tenant that keeps publishing afterward. This crate is
//! the durability seam the rest of the workspace plugs into: one small
//! [`StoreBackend`] trait (namespaced key → bytes, ordered scan, atomic
//! batch append, flush) with three interchangeable implementations —
//!
//! * [`MemStore`] — in-process maps; the zero-config default, behaviour-
//!   identical to running without a store at all.
//! * [`LogStore`] — one append-only file per namespace with length-prefixed
//!   and checksummed records, crash-tolerant truncated-tail recovery and
//!   threshold-triggered compaction. The production-shaped backend.
//! * [`KvShimStore`] — a directory-of-files KV: the slot future SQLite /
//!   Redis adapters plug into without touching any caller.
//!
//! Callers never see which backend they run over. The serving registry
//! journals tenant lifecycle events into one namespace per registry; the
//! engine's artifact caches write memo entries through into per-cache
//! namespaces. Both only assume the trait contract:
//!
//! * `scan` returns entries in ascending key order, so a journal keyed by
//!   fixed-width sequence numbers replays in append order;
//! * `append_batch` is atomic — after a crash, either the whole batch is
//!   recovered or none of it (the [`LogStore`] frames a batch as a single
//!   checksummed record and truncates any torn tail on reopen).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod kv;
mod log;
mod mem;

pub use kv::KvShimStore;
pub use log::LogStore;
pub use mem::MemStore;

use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

/// Errors surfaced by store backends.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(String),
    /// A stored record failed validation beyond what tail-truncation
    /// recovery handles (e.g. an unreadable compacted file).
    Corrupt(String),
    /// The store configuration is unusable (e.g. a file backend without a
    /// path).
    Config(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(m) => write!(f, "store io error: {m}"),
            StoreError::Corrupt(m) => write!(f, "store corruption: {m}"),
            StoreError::Config(m) => write!(f, "store config error: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, StoreError>;

/// One mutation inside an atomic batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreOp {
    /// Insert or overwrite `key`.
    Put {
        /// The key within the namespace.
        key: String,
        /// The value bytes.
        value: Vec<u8>,
    },
    /// Remove `key` (a no-op when absent).
    Delete {
        /// The key within the namespace.
        key: String,
    },
}

impl StoreOp {
    /// Shorthand for a `Put`.
    pub fn put(key: impl Into<String>, value: impl Into<Vec<u8>>) -> Self {
        StoreOp::Put {
            key: key.into(),
            value: value.into(),
        }
    }

    /// Shorthand for a `Delete`.
    pub fn delete(key: impl Into<String>) -> Self {
        StoreOp::Delete { key: key.into() }
    }

    /// The key this op touches.
    pub fn key(&self) -> &str {
        match self {
            StoreOp::Put { key, .. } | StoreOp::Delete { key } => key,
        }
    }
}

/// The persistence contract every backend implements: namespaced key →
/// bytes with ordered scans and atomic batch appends.
///
/// Namespaces are flat UTF-8 strings (`"registry/journal"`,
/// `"artifacts/crit"`, ...); backends may encode them into paths however
/// they like. Implementations must be `Send + Sync` — the serving layer
/// appends from many worker threads.
pub trait StoreBackend: Send + Sync + fmt::Debug {
    /// Reads one key. `Ok(None)` when absent.
    fn get(&self, ns: &str, key: &str) -> Result<Option<Vec<u8>>>;

    /// All live entries of a namespace, in ascending key order. An unknown
    /// namespace is an empty scan, not an error.
    fn scan(&self, ns: &str) -> Result<Vec<(String, Vec<u8>)>>;

    /// Applies `ops` atomically: after a crash, recovery observes either
    /// the whole batch or none of it.
    fn append_batch(&self, ns: &str, ops: Vec<StoreOp>) -> Result<()>;

    /// Forces buffered writes down to the backing medium.
    fn flush(&self) -> Result<()>;

    /// A short static name (`"mem"` / `"log"` / `"kv"`) for stats and logs.
    fn backend_name(&self) -> &'static str;
}

/// Which backend a [`StoreConfig`] selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackendKind {
    /// [`MemStore`] — volatile, zero-config default.
    Mem,
    /// [`LogStore`] — append-only files, crash-safe.
    Log,
    /// [`KvShimStore`] — directory-of-files KV.
    Kv,
}

/// Declarative store selection, deserializable straight out of a CLI spec
/// (`{"backend": "log", "path": "/var/lib/qvsec"}`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoreConfig {
    /// Backend name: `"mem"` (default), `"log"`, or `"kv"`.
    pub backend: Option<String>,
    /// Root directory for file-backed backends.
    pub path: Option<String>,
    /// `LogStore` compaction threshold: a namespace file growing past this
    /// many bytes is rewritten to its live contents (default 8 MiB; `0`
    /// disables compaction).
    pub compact_threshold_bytes: Option<u64>,
}

impl StoreConfig {
    /// A `LogStore` rooted at `path` with default compaction.
    pub fn log_at(path: impl Into<String>) -> Self {
        StoreConfig {
            backend: Some("log".to_string()),
            path: Some(path.into()),
            compact_threshold_bytes: None,
        }
    }

    /// The parsed backend kind.
    pub fn kind(&self) -> Result<BackendKind> {
        match self.backend.as_deref() {
            None | Some("mem") => Ok(BackendKind::Mem),
            Some("log") => Ok(BackendKind::Log),
            Some("kv") => Ok(BackendKind::Kv),
            Some(other) => Err(StoreError::Config(format!(
                "unknown store backend `{other}` (expected mem | log | kv)"
            ))),
        }
    }
}

/// Default [`LogStore`] compaction threshold (8 MiB).
pub const DEFAULT_COMPACT_THRESHOLD: u64 = 8 * 1024 * 1024;

/// Opens the backend a [`StoreConfig`] describes.
pub fn open_store(config: &StoreConfig) -> Result<Arc<dyn StoreBackend>> {
    let path = || -> Result<PathBuf> {
        config
            .path
            .as_deref()
            .map(PathBuf::from)
            .ok_or_else(|| StoreError::Config("file-backed store needs a `path`".to_string()))
    };
    Ok(match config.kind()? {
        BackendKind::Mem => Arc::new(MemStore::new()),
        BackendKind::Log => Arc::new(LogStore::open(
            path()?,
            config
                .compact_threshold_bytes
                .unwrap_or(DEFAULT_COMPACT_THRESHOLD),
        )?),
        BackendKind::Kv => Arc::new(KvShimStore::open(path()?)?),
    })
}

/// Encodes a namespace (or any key-ish string) into a filesystem-safe file
/// name: `[A-Za-z0-9._-]` pass through, everything else becomes `%XX`.
pub(crate) fn encode_component(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for b in name.bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'.' | b'_' | b'-' => out.push(b as char),
            other => out.push_str(&format!("%{other:02x}")),
        }
    }
    out
}

/// FNV-1a over `bytes`, 64-bit (used for KV file names) — deterministic
/// across processes, like the registry's shard hash.
pub(crate) fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a over `bytes`, 32-bit (the log record checksum).
pub(crate) fn fnv1a_32(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for b in bytes {
        h ^= *b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

#[cfg(test)]
pub(crate) mod testutil {
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

    /// A fresh scratch directory under the system temp dir (no `tempfile`
    /// dependency; unique per process + call).
    pub fn scratch_dir(label: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "qvsec-store-{label}-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exercises the full trait contract against one backend.
    fn contract(store: &dyn StoreBackend) {
        assert_eq!(store.get("ns", "a").unwrap(), None);
        assert!(
            store.scan("ns").unwrap().is_empty(),
            "unknown ns scans empty"
        );
        store
            .append_batch(
                "ns",
                vec![
                    StoreOp::put("b", b"2".to_vec()),
                    StoreOp::put("a", b"1".to_vec()),
                ],
            )
            .unwrap();
        store
            .append_batch("other", vec![StoreOp::put("a", b"x".to_vec())])
            .unwrap();
        assert_eq!(store.get("ns", "a").unwrap(), Some(b"1".to_vec()));
        assert_eq!(store.get("other", "a").unwrap(), Some(b"x".to_vec()));
        // Scans are key-ordered regardless of insertion order.
        let entries = store.scan("ns").unwrap();
        assert_eq!(
            entries,
            vec![
                ("a".to_string(), b"1".to_vec()),
                ("b".to_string(), b"2".to_vec())
            ]
        );
        // Overwrite and delete in one batch.
        store
            .append_batch(
                "ns",
                vec![StoreOp::put("a", b"11".to_vec()), StoreOp::delete("b")],
            )
            .unwrap();
        assert_eq!(store.get("ns", "a").unwrap(), Some(b"11".to_vec()));
        assert_eq!(store.get("ns", "b").unwrap(), None);
        assert_eq!(store.scan("ns").unwrap().len(), 1);
        store.flush().unwrap();
    }

    #[test]
    fn mem_satisfies_the_contract() {
        contract(&MemStore::new());
    }

    #[test]
    fn log_satisfies_the_contract() {
        let dir = testutil::scratch_dir("contract-log");
        contract(&LogStore::open(dir.clone(), 0).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn kv_satisfies_the_contract() {
        let dir = testutil::scratch_dir("contract-kv");
        contract(&KvShimStore::open(dir.clone()).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn the_factory_maps_config_onto_backends() {
        let mem = open_store(&StoreConfig {
            backend: None,
            path: None,
            compact_threshold_bytes: None,
        })
        .unwrap();
        assert_eq!(mem.backend_name(), "mem");

        let dir = testutil::scratch_dir("factory");
        let log = open_store(&StoreConfig::log_at(dir.display().to_string())).unwrap();
        assert_eq!(log.backend_name(), "log");
        let kv = open_store(&StoreConfig {
            backend: Some("kv".to_string()),
            path: Some(dir.join("kv").display().to_string()),
            compact_threshold_bytes: None,
        })
        .unwrap();
        assert_eq!(kv.backend_name(), "kv");

        assert!(matches!(
            open_store(&StoreConfig {
                backend: Some("log".to_string()),
                path: None,
                compact_threshold_bytes: None,
            }),
            Err(StoreError::Config(_))
        ));
        assert!(matches!(
            open_store(&StoreConfig {
                backend: Some("warp".to_string()),
                path: None,
                compact_threshold_bytes: None,
            }),
            Err(StoreError::Config(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn component_encoding_is_filesystem_safe_and_injective() {
        assert_eq!(encode_component("artifacts/crit"), "artifacts%2fcrit");
        assert_eq!(encode_component("plain-name_1.log"), "plain-name_1.log");
        // Distinct inputs stay distinct (the escape char itself is escaped).
        assert_ne!(encode_component("a%2fb"), encode_component("a/b"));
    }
}
