//! The in-process backend: plain maps behind one mutex.
//!
//! `MemStore` is the zero-config default — running over it is behaviour-
//! identical to running without persistence at all (state dies with the
//! process), which keeps every existing caller, test and benchmark
//! unchanged unless a durable backend is explicitly configured.

use crate::{Result, StoreBackend, StoreOp};
use std::collections::{BTreeMap, HashMap};
use std::sync::Mutex;

/// Volatile store: namespace → ordered key map.
#[derive(Debug, Default)]
pub struct MemStore {
    spaces: Mutex<HashMap<String, BTreeMap<String, Vec<u8>>>>,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> Self {
        MemStore::default()
    }
}

impl StoreBackend for MemStore {
    fn get(&self, ns: &str, key: &str) -> Result<Option<Vec<u8>>> {
        let spaces = self.spaces.lock().expect("mem store poisoned");
        Ok(spaces.get(ns).and_then(|m| m.get(key)).cloned())
    }

    fn scan(&self, ns: &str) -> Result<Vec<(String, Vec<u8>)>> {
        let spaces = self.spaces.lock().expect("mem store poisoned");
        Ok(spaces
            .get(ns)
            .map(|m| m.iter().map(|(k, v)| (k.clone(), v.clone())).collect())
            .unwrap_or_default())
    }

    fn append_batch(&self, ns: &str, ops: Vec<StoreOp>) -> Result<()> {
        let mut spaces = self.spaces.lock().expect("mem store poisoned");
        let map = spaces.entry(ns.to_string()).or_default();
        for op in ops {
            match op {
                StoreOp::Put { key, value } => {
                    map.insert(key, value);
                }
                StoreOp::Delete { key } => {
                    map.remove(&key);
                }
            }
        }
        Ok(())
    }

    fn flush(&self) -> Result<()> {
        Ok(())
    }

    fn backend_name(&self) -> &'static str {
        "mem"
    }
}
