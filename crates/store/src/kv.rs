//! The directory-of-files KV shim.
//!
//! One subdirectory per namespace, one file per key. File names are the
//! 64-bit FNV-1a of the key (hex) with a collision-probing suffix; the file
//! itself stores the key (length-prefixed) followed by the value, so scans
//! recover exact keys without any reversible name encoding — long keys
//! (canonical query forms easily exceed filesystem name limits) never
//! appear in a path. Writes go through a temp file + rename, so a key file
//! is atomically either its old or its new contents.
//!
//! This backend is deliberately the simplest thing that honors the
//! [`StoreBackend`](crate::StoreBackend) contract against a real
//! filesystem: it is the slot a future SQLite or Redis adapter plugs into
//! without touching any caller.

use crate::{encode_component, fnv1a_64, Result, StoreBackend, StoreError, StoreOp};
use std::collections::BTreeMap;
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Directory-of-files KV store; layout and atomicity notes are in the
/// module-level docs above.
#[derive(Debug)]
pub struct KvShimStore {
    root: PathBuf,
    /// Serializes writers (probing + rename must not race) and guards the
    /// lazily-built per-namespace key index.
    index: Mutex<BTreeMap<String, BTreeMap<String, PathBuf>>>,
}

fn encode_entry(key: &str, value: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(4 + key.len() + value.len());
    bytes.extend_from_slice(&(key.len() as u32).to_le_bytes());
    bytes.extend_from_slice(key.as_bytes());
    bytes.extend_from_slice(value);
    bytes
}

fn decode_entry(bytes: &[u8], path: &Path) -> Result<(String, Vec<u8>)> {
    let bad = || StoreError::Corrupt(format!("unreadable kv entry {}", path.display()));
    let key_len = u32::from_le_bytes(bytes.get(0..4).ok_or_else(bad)?.try_into().unwrap()) as usize;
    let key_bytes = bytes.get(4..4 + key_len).ok_or_else(bad)?;
    let key = String::from_utf8(key_bytes.to_vec()).map_err(|_| bad())?;
    Ok((key, bytes[4 + key_len..].to_vec()))
}

impl KvShimStore {
    /// Opens (creating if needed) a KV store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<KvShimStore> {
        let root = root.into();
        std::fs::create_dir_all(&root)
            .map_err(|e| StoreError::Io(format!("create {}: {e}", root.display())))?;
        Ok(KvShimStore {
            root,
            index: Mutex::new(BTreeMap::new()),
        })
    }

    fn ns_dir(&self, ns: &str) -> PathBuf {
        self.root.join(encode_component(ns))
    }

    /// Builds (once) the key → file index of `ns` by reading every entry
    /// file in its directory. The caller holds the index lock.
    fn load<'a>(
        &self,
        index: &'a mut BTreeMap<String, BTreeMap<String, PathBuf>>,
        ns: &str,
    ) -> Result<&'a mut BTreeMap<String, PathBuf>> {
        if !index.contains_key(ns) {
            let mut keys = BTreeMap::new();
            let dir = self.ns_dir(ns);
            if dir.is_dir() {
                let entries = std::fs::read_dir(&dir)
                    .map_err(|e| StoreError::Io(format!("read {}: {e}", dir.display())))?;
                for entry in entries {
                    let path = entry
                        .map_err(|e| StoreError::Io(format!("read {}: {e}", dir.display())))?
                        .path();
                    if path.extension().and_then(|e| e.to_str()) != Some("kv") {
                        continue; // skip temp files left by a crash mid-write
                    }
                    let bytes = std::fs::read(&path)
                        .map_err(|e| StoreError::Io(format!("read {}: {e}", path.display())))?;
                    let (key, _) = decode_entry(&bytes, &path)?;
                    keys.insert(key, path);
                }
            }
            index.insert(ns.to_string(), keys);
        }
        Ok(index.get_mut(ns).expect("just inserted"))
    }

    /// A free (or same-key) file path for `key` in `ns`, probing past hash
    /// collisions.
    fn path_for(&self, ns: &str, key: &str, taken: &BTreeMap<String, PathBuf>) -> PathBuf {
        let dir = self.ns_dir(ns);
        let hash = fnv1a_64(key.as_bytes());
        for probe in 0u32.. {
            let candidate = dir.join(format!("{hash:016x}-{probe}.kv"));
            let collision = taken
                .iter()
                .any(|(other, path)| other != key && *path == candidate);
            if !collision {
                return candidate;
            }
        }
        unreachable!("probe space is unbounded")
    }
}

impl StoreBackend for KvShimStore {
    fn get(&self, ns: &str, key: &str) -> Result<Option<Vec<u8>>> {
        let mut index = self.index.lock().expect("kv store poisoned");
        let keys = self.load(&mut index, ns)?;
        match keys.get(key) {
            Some(path) => {
                let bytes = std::fs::read(path)
                    .map_err(|e| StoreError::Io(format!("read {}: {e}", path.display())))?;
                Ok(Some(decode_entry(&bytes, path)?.1))
            }
            None => Ok(None),
        }
    }

    fn scan(&self, ns: &str) -> Result<Vec<(String, Vec<u8>)>> {
        let mut index = self.index.lock().expect("kv store poisoned");
        let keys = self.load(&mut index, ns)?;
        let mut out = Vec::with_capacity(keys.len());
        for (key, path) in keys.iter() {
            let bytes = std::fs::read(path)
                .map_err(|e| StoreError::Io(format!("read {}: {e}", path.display())))?;
            out.push((key.clone(), decode_entry(&bytes, path)?.1));
        }
        Ok(out)
    }

    fn append_batch(&self, ns: &str, ops: Vec<StoreOp>) -> Result<()> {
        let mut index = self.index.lock().expect("kv store poisoned");
        let dir = self.ns_dir(ns);
        std::fs::create_dir_all(&dir)
            .map_err(|e| StoreError::Io(format!("create {}: {e}", dir.display())))?;
        let keys = self.load(&mut index, ns)?;
        for (seq, op) in ops.into_iter().enumerate() {
            match op {
                StoreOp::Put { key, value } => {
                    // Overwrites reuse the key's existing file; fresh keys
                    // probe for a free hash slot.
                    let path = match keys.get(&key) {
                        Some(existing) => existing.clone(),
                        None => self.path_for(ns, &key, keys),
                    };
                    let tmp = dir.join(format!("write-{seq}.tmp"));
                    {
                        let mut out = File::create(&tmp).map_err(|e| {
                            StoreError::Io(format!("create {}: {e}", tmp.display()))
                        })?;
                        out.write_all(&encode_entry(&key, &value))
                            .and_then(|_| out.sync_all())
                            .map_err(|e| StoreError::Io(format!("write {}: {e}", tmp.display())))?;
                    }
                    std::fs::rename(&tmp, &path)
                        .map_err(|e| StoreError::Io(format!("rename {}: {e}", path.display())))?;
                    keys.insert(key, path);
                }
                StoreOp::Delete { key } => {
                    if let Some(path) = keys.remove(&key) {
                        std::fs::remove_file(&path).map_err(|e| {
                            StoreError::Io(format!("remove {}: {e}", path.display()))
                        })?;
                    }
                }
            }
        }
        Ok(())
    }

    fn flush(&self) -> Result<()> {
        // Entry files are synced before the rename in `append_batch`.
        Ok(())
    }

    fn backend_name(&self) -> &'static str {
        "kv"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::scratch_dir;

    #[test]
    fn state_survives_reopen() {
        let dir = scratch_dir("kv-reopen");
        {
            let store = KvShimStore::open(dir.clone()).unwrap();
            store
                .append_batch(
                    "reg/journal",
                    vec![
                        StoreOp::put("0000000000000001", b"first".to_vec()),
                        StoreOp::put("0000000000000000", b"zeroth".to_vec()),
                    ],
                )
                .unwrap();
        }
        let store = KvShimStore::open(dir.clone()).unwrap();
        let entries = store.scan("reg/journal").unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, "0000000000000000", "scan is key-ordered");
        assert_eq!(
            store.get("reg/journal", "0000000000000001").unwrap(),
            Some(b"first".to_vec())
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn long_keys_never_reach_the_filesystem_namespace() {
        let dir = scratch_dir("kv-longkey");
        let store = KvShimStore::open(dir.clone()).unwrap();
        let key = "q".repeat(4096); // far past any filename limit
        store
            .append_batch("ns", vec![StoreOp::put(key.clone(), b"v".to_vec())])
            .unwrap();
        assert_eq!(store.get("ns", &key).unwrap(), Some(b"v".to_vec()));
        drop(store);
        let store = KvShimStore::open(dir.clone()).unwrap();
        assert_eq!(store.scan("ns").unwrap()[0].0, key);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn leftover_temp_files_are_ignored_on_open() {
        let dir = scratch_dir("kv-tmp");
        let store = KvShimStore::open(dir.clone()).unwrap();
        store
            .append_batch("ns", vec![StoreOp::put("k", b"v".to_vec())])
            .unwrap();
        // Simulate a crash between temp-file write and rename.
        std::fs::write(dir.join("ns").join("write-9.tmp"), b"garbage").unwrap();
        drop(store);
        let store = KvShimStore::open(dir.clone()).unwrap();
        assert_eq!(store.scan("ns").unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
