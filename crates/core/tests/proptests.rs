//! Property-based cross-validation of the paper's theorems.
//!
//! These tests are the empirical heart of the reproduction: on randomly
//! generated conjunctive queries over a tiny domain they check that
//!
//! * the fine-instance critical-tuple procedure agrees with the literal
//!   Definition 4.4 (brute force over all instances),
//! * the Theorem 4.5 criterion (`crit(S) ∩ crit(V) = ∅`) coincides with the
//!   literal Definition 4.1 statistical-independence check under the uniform
//!   dictionary — which, by Theorem 4.8, represents *all* non-degenerate
//!   dictionaries for monotone queries,
//! * the parallel, pruned `crit(Q)` kernel reproduces the sequential
//!   baseline exactly (members *and* iteration order),
//! * security is symmetric (Bayes), and
//! * the Section 4.2 fast check is sound.

use proptest::prelude::*;
use qvsec::critical::{
    critical_tuples, critical_tuples_seq, critical_tuples_traced, is_critical, CritStats,
};
use qvsec::critical_bruteforce::{critical_tuples_bruteforce, is_critical_bruteforce};
use qvsec::fast_check::fast_check;
use qvsec::security::secure_for_all_distributions;
use qvsec_cq::{parse_query, ConjunctiveQuery, ViewSet};
use qvsec_data::{Dictionary, Domain, Ratio, Schema, TupleSpace};
use qvsec_prob::independence::check_independence;
use std::collections::BTreeSet;

fn schema() -> Schema {
    let mut s = Schema::new();
    s.add_relation("R", &["x", "y"]);
    s
}

fn domain() -> Domain {
    Domain::with_constants(["a", "b"])
}

/// Random conjunctive query text over R/2 with variables x0..x2 and constants
/// a, b. The head uses the first variable of the first atom (or is boolean).
fn query_text() -> impl Strategy<Value = String> {
    let term = prop_oneof![
        3 => Just("x0".to_string()),
        3 => Just("x1".to_string()),
        2 => Just("x2".to_string()),
        2 => Just("'a'".to_string()),
        2 => Just("'b'".to_string()),
    ];
    let atom = (term.clone(), term).prop_map(|(a, b)| format!("R({a}, {b})"));
    (proptest::collection::vec(atom, 1..3), proptest::bool::ANY).prop_map(|(atoms, boolean)| {
        let body = atoms.join(", ");
        if boolean {
            return format!("Q() :- {body}");
        }
        let head_var = atoms[0]
            .trim_start_matches("R(")
            .trim_end_matches(')')
            .split(',')
            .map(|s| s.trim().to_string())
            .find(|t| t.starts_with('x'));
        match head_var {
            Some(v) => format!("Q({v}) :- {body}"),
            None => format!("Q() :- {body}"),
        }
    })
}

fn parse(text: &str, schema: &Schema, domain: &mut Domain) -> ConjunctiveQuery {
    parse_query(text, schema, domain).expect("generated query parses")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn criterion_criticality_matches_brute_force(text in query_text()) {
        let schema = schema();
        let mut domain = domain();
        let q = parse(&text, &schema, &mut domain);
        let space = TupleSpace::full(&schema, &domain).unwrap();
        let brute = critical_tuples_bruteforce(&q, &space).unwrap();
        let fine: BTreeSet<_> = critical_tuples(&q, &domain)
            .unwrap()
            .into_iter()
            .filter(|t| space.contains(t))
            .collect();
        prop_assert_eq!(&brute, &fine, "criticality mismatch for {}", text);
        for t in space.iter() {
            prop_assert_eq!(
                is_critical(&q, t, &domain),
                is_critical_bruteforce(&q, t, &space).unwrap(),
                "tuple {} disagreement for {}", t, text
            );
        }
    }

    #[test]
    fn parallel_kernel_equals_sequential_baseline(text in query_text(), extra in 0usize..3) {
        // The kernel (symmetry collapse + pruning + parallel filter with
        // deterministic merge) must reproduce the sequential pre-kernel path
        // exactly — same members, same iteration order — on random queries
        // over domains of varying size.
        let schema = schema();
        let mut domain = domain();
        for i in 0..extra {
            domain.add(&format!("extra{i}"));
        }
        let q = parse(&text, &schema, &mut domain);
        let stats = CritStats::new();
        let kernel = critical_tuples_traced(&q, &domain, 100_000, &stats).unwrap();
        let seq = critical_tuples_seq(&q, &domain, 100_000).unwrap();
        prop_assert_eq!(&kernel, &seq, "kernel != seq for {}", text);
        let kernel_order: Vec<_> = kernel.iter().collect();
        let seq_order: Vec<_> = seq.iter().collect();
        prop_assert_eq!(kernel_order, seq_order, "iteration order differs for {}", text);
        let snap = stats.snapshot();
        prop_assert!(
            snap.decisions_run + snap.pruned_by_symmetry >= snap.candidates_examined
                || snap.candidates_examined == 0,
            "every candidate is either decided or symmetry-collapsed: {:?}", snap
        );
    }

    #[test]
    fn theorem_4_5_criterion_matches_definition_4_1(s_text in query_text(), v_text in query_text()) {
        let schema = schema();
        let mut domain = domain();
        let s = parse(&s_text, &schema, &mut domain);
        let v = parse(&v_text, &schema, &mut domain);
        let views = ViewSet::single(v);
        let criterion = secure_for_all_distributions(&s, &views, &schema, &domain)
            .unwrap()
            .secure;
        let space = TupleSpace::full(&schema, &domain).unwrap();
        let dict = Dictionary::half(space);
        let statistical = check_independence(&s, &views, &dict).unwrap().independent;
        prop_assert_eq!(
            criterion, statistical,
            "Theorem 4.5 disagrees with Definition 4.1 on S = {}, V = {}", s_text, v_text
        );
    }

    #[test]
    fn theorem_4_8_other_distributions_agree(s_text in query_text(), v_text in query_text(),
                                             num in 1i128..5) {
        // Security under the uniform p = 1/2 dictionary coincides with
        // security under any other non-degenerate uniform dictionary
        // (Theorem 4.8 for monotone queries).
        let schema = schema();
        let mut domain = domain();
        let s = parse(&s_text, &schema, &mut domain);
        let v = parse(&v_text, &schema, &mut domain);
        let views = ViewSet::single(v);
        let space = TupleSpace::full(&schema, &domain).unwrap();
        let half = Dictionary::half(space.clone());
        let other = Dictionary::uniform(space, Ratio::new(num, 5)).unwrap();
        let a = check_independence(&s, &views, &half).unwrap().independent;
        let b = check_independence(&s, &views, &other).unwrap().independent;
        prop_assert_eq!(a, b, "distribution dependence for S = {}, V = {}", s_text, v_text);
    }

    #[test]
    fn security_is_symmetric(s_text in query_text(), v_text in query_text()) {
        let schema = schema();
        let mut domain = domain();
        let s = parse(&s_text, &schema, &mut domain);
        let v = parse(&v_text, &schema, &mut domain);
        let forward = secure_for_all_distributions(&s, &ViewSet::single(v.clone()), &schema, &domain)
            .unwrap()
            .secure;
        let backward = secure_for_all_distributions(&v, &ViewSet::single(s), &schema, &domain)
            .unwrap()
            .secure;
        prop_assert_eq!(forward, backward);
    }

    #[test]
    fn fast_check_is_sound(s_text in query_text(), v_text in query_text()) {
        let schema = schema();
        let mut domain = domain();
        let s = parse(&s_text, &schema, &mut domain);
        let v = parse(&v_text, &schema, &mut domain);
        let views = ViewSet::single(v);
        if fast_check(&s, &views).is_certainly_secure() {
            prop_assert!(
                secure_for_all_distributions(&s, &views, &schema, &domain).unwrap().secure,
                "fast check unsound on S = {}, V = {}", s_text, v_text
            );
        }
    }

    #[test]
    fn multi_view_security_equals_conjunction_of_single_view_security(
        s_text in query_text(), v1_text in query_text(), v2_text in query_text()
    ) {
        // Theorem 4.5 collusion corollary: S | (V1, V2) iff S | V1 and S | V2.
        let schema = schema();
        let mut domain = domain();
        let s = parse(&s_text, &schema, &mut domain);
        let v1 = parse(&v1_text, &schema, &mut domain);
        let v2 = parse(&v2_text, &schema, &mut domain);
        let joint = secure_for_all_distributions(
            &s, &ViewSet::from_views(vec![v1.clone(), v2.clone()]), &schema, &domain
        ).unwrap().secure;
        let each = secure_for_all_distributions(&s, &ViewSet::single(v1), &schema, &domain).unwrap().secure
            && secure_for_all_distributions(&s, &ViewSet::single(v2), &schema, &domain).unwrap().secure;
        prop_assert_eq!(joint, each);
    }
}
