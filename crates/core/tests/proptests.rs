//! Property-based cross-validation of the paper's theorems.
//!
//! These tests are the empirical heart of the reproduction: on randomly
//! generated conjunctive queries over a tiny domain they check that
//!
//! * the fine-instance critical-tuple procedure agrees with the literal
//!   Definition 4.4 (brute force over all instances),
//! * the Theorem 4.5 criterion (`crit(S) ∩ crit(V) = ∅`) coincides with the
//!   literal Definition 4.1 statistical-independence check under the uniform
//!   dictionary — which, by Theorem 4.8, represents *all* non-degenerate
//!   dictionaries for monotone queries,
//! * the parallel, pruned `crit(Q)` kernel reproduces the sequential
//!   baseline exactly (members *and* iteration order),
//! * security is symmetric (Bayes), and
//! * the Section 4.2 fast check is sound.

use proptest::prelude::*;
use qvsec::critical::{
    critical_tuples, critical_tuples_seq, critical_tuples_traced, is_critical, CritStats,
};
use qvsec::critical_bruteforce::{critical_tuples_bruteforce, is_critical_bruteforce};
use qvsec::fast_check::fast_check;
use qvsec::security::secure_for_all_distributions;
use qvsec_cq::{parse_query, ConjunctiveQuery, ViewSet};
use qvsec_data::{Dictionary, Domain, Ratio, Schema, TupleSpace};
use qvsec_prob::independence::check_independence;
use std::collections::BTreeSet;

fn schema() -> Schema {
    let mut s = Schema::new();
    s.add_relation("R", &["x", "y"]);
    s
}

fn domain() -> Domain {
    Domain::with_constants(["a", "b"])
}

/// Random conjunctive query text over R/2 with variables x0..x2 and constants
/// a, b. The head uses the first variable of the first atom (or is boolean).
fn query_text() -> impl Strategy<Value = String> {
    let term = prop_oneof![
        3 => Just("x0".to_string()),
        3 => Just("x1".to_string()),
        2 => Just("x2".to_string()),
        2 => Just("'a'".to_string()),
        2 => Just("'b'".to_string()),
    ];
    let atom = (term.clone(), term).prop_map(|(a, b)| format!("R({a}, {b})"));
    (proptest::collection::vec(atom, 1..3), proptest::bool::ANY).prop_map(|(atoms, boolean)| {
        let body = atoms.join(", ");
        if boolean {
            return format!("Q() :- {body}");
        }
        let head_var = atoms[0]
            .trim_start_matches("R(")
            .trim_end_matches(')')
            .split(',')
            .map(|s| s.trim().to_string())
            .find(|t| t.starts_with('x'));
        match head_var {
            Some(v) => format!("Q({v}) :- {body}"),
            None => format!("Q() :- {body}"),
        }
    })
}

fn parse(text: &str, schema: &Schema, domain: &mut Domain) -> ConjunctiveQuery {
    parse_query(text, schema, domain).expect("generated query parses")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn criterion_criticality_matches_brute_force(text in query_text()) {
        let schema = schema();
        let mut domain = domain();
        let q = parse(&text, &schema, &mut domain);
        let space = TupleSpace::full(&schema, &domain).unwrap();
        let brute = critical_tuples_bruteforce(&q, &space).unwrap();
        let fine: BTreeSet<_> = critical_tuples(&q, &domain)
            .unwrap()
            .into_iter()
            .filter(|t| space.contains(t))
            .collect();
        prop_assert_eq!(&brute, &fine, "criticality mismatch for {}", text);
        for t in space.iter() {
            prop_assert_eq!(
                is_critical(&q, t, &domain),
                is_critical_bruteforce(&q, t, &space).unwrap(),
                "tuple {} disagreement for {}", t, text
            );
        }
    }

    #[test]
    fn parallel_kernel_equals_sequential_baseline(text in query_text(), extra in 0usize..3) {
        // The kernel (symmetry collapse + pruning + parallel filter with
        // deterministic merge) must reproduce the sequential pre-kernel path
        // exactly — same members, same iteration order — on random queries
        // over domains of varying size.
        let schema = schema();
        let mut domain = domain();
        for i in 0..extra {
            domain.add(&format!("extra{i}"));
        }
        let q = parse(&text, &schema, &mut domain);
        let stats = CritStats::new();
        let kernel = critical_tuples_traced(&q, &domain, 100_000, &stats).unwrap();
        let seq = critical_tuples_seq(&q, &domain, 100_000).unwrap();
        prop_assert_eq!(&kernel, &seq, "kernel != seq for {}", text);
        let kernel_order: Vec<_> = kernel.iter().collect();
        let seq_order: Vec<_> = seq.iter().collect();
        prop_assert_eq!(kernel_order, seq_order, "iteration order differs for {}", text);
        let snap = stats.snapshot();
        prop_assert!(
            snap.decisions_run + snap.pruned_by_symmetry >= snap.candidates_examined
                || snap.candidates_examined == 0,
            "every candidate is either decided or symmetry-collapsed: {:?}", snap
        );
    }

    #[test]
    fn theorem_4_5_criterion_matches_definition_4_1(s_text in query_text(), v_text in query_text()) {
        let schema = schema();
        let mut domain = domain();
        let s = parse(&s_text, &schema, &mut domain);
        let v = parse(&v_text, &schema, &mut domain);
        let views = ViewSet::single(v);
        let criterion = secure_for_all_distributions(&s, &views, &schema, &domain)
            .unwrap()
            .secure;
        let space = TupleSpace::full(&schema, &domain).unwrap();
        let dict = Dictionary::half(space);
        let statistical = check_independence(&s, &views, &dict).unwrap().independent;
        prop_assert_eq!(
            criterion, statistical,
            "Theorem 4.5 disagrees with Definition 4.1 on S = {}, V = {}", s_text, v_text
        );
    }

    #[test]
    fn theorem_4_8_other_distributions_agree(s_text in query_text(), v_text in query_text(),
                                             num in 1i128..5) {
        // Security under the uniform p = 1/2 dictionary coincides with
        // security under any other non-degenerate uniform dictionary
        // (Theorem 4.8 for monotone queries).
        let schema = schema();
        let mut domain = domain();
        let s = parse(&s_text, &schema, &mut domain);
        let v = parse(&v_text, &schema, &mut domain);
        let views = ViewSet::single(v);
        let space = TupleSpace::full(&schema, &domain).unwrap();
        let half = Dictionary::half(space.clone());
        let other = Dictionary::uniform(space, Ratio::new(num, 5)).unwrap();
        let a = check_independence(&s, &views, &half).unwrap().independent;
        let b = check_independence(&s, &views, &other).unwrap().independent;
        prop_assert_eq!(a, b, "distribution dependence for S = {}, V = {}", s_text, v_text);
    }

    #[test]
    fn security_is_symmetric(s_text in query_text(), v_text in query_text()) {
        let schema = schema();
        let mut domain = domain();
        let s = parse(&s_text, &schema, &mut domain);
        let v = parse(&v_text, &schema, &mut domain);
        let forward = secure_for_all_distributions(&s, &ViewSet::single(v.clone()), &schema, &domain)
            .unwrap()
            .secure;
        let backward = secure_for_all_distributions(&v, &ViewSet::single(s), &schema, &domain)
            .unwrap()
            .secure;
        prop_assert_eq!(forward, backward);
    }

    #[test]
    fn fast_check_is_sound(s_text in query_text(), v_text in query_text()) {
        let schema = schema();
        let mut domain = domain();
        let s = parse(&s_text, &schema, &mut domain);
        let v = parse(&v_text, &schema, &mut domain);
        let views = ViewSet::single(v);
        if fast_check(&s, &views).is_certainly_secure() {
            prop_assert!(
                secure_for_all_distributions(&s, &views, &schema, &domain).unwrap().secure,
                "fast check unsound on S = {}, V = {}", s_text, v_text
            );
        }
    }

    #[test]
    fn multi_view_security_equals_conjunction_of_single_view_security(
        s_text in query_text(), v1_text in query_text(), v2_text in query_text()
    ) {
        // Theorem 4.5 collusion corollary: S | (V1, V2) iff S | V1 and S | V2.
        let schema = schema();
        let mut domain = domain();
        let s = parse(&s_text, &schema, &mut domain);
        let v1 = parse(&v1_text, &schema, &mut domain);
        let v2 = parse(&v2_text, &schema, &mut domain);
        let joint = secure_for_all_distributions(
            &s, &ViewSet::from_views(vec![v1.clone(), v2.clone()]), &schema, &domain
        ).unwrap().secure;
        let each = secure_for_all_distributions(&s, &ViewSet::single(v1), &schema, &domain).unwrap().secure
            && secure_for_all_distributions(&s, &ViewSet::single(v2), &schema, &domain).unwrap().secure;
        prop_assert_eq!(joint, each);
    }
}

// The probabilistic kernel behind the engine's Probabilistic stage must be
// transparent: on enumerable spaces its three verdicts are identical to the
// preserved enumeration baselines, and under rayon-parallel batches a fixed
// seed yields byte-identical reports.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn probabilistic_stage_equals_the_enumeration_baselines(
        s_text in query_text(), v_text in query_text()
    ) {
        let schema = schema();
        let mut domain = domain();
        let s = parse(&s_text, &schema, &mut domain);
        let v = parse(&v_text, &schema, &mut domain);
        let views = ViewSet::single(v);
        let space = TupleSpace::full(&schema, &domain).unwrap();
        let dict = Dictionary::half(space);
        let engine = qvsec::AuditEngine::builder(schema, domain)
            .dictionary(dict.clone())
            .default_depth(qvsec::AuditDepth::Probabilistic)
            .build();
        let report = engine
            .audit(&qvsec::AuditRequest::new(s.clone(), views.clone()))
            .unwrap();

        let base_ind = check_independence(&s, &views, &dict).unwrap();
        let ind = report.independence.unwrap();
        prop_assert_eq!(ind.independent, base_ind.independent);
        prop_assert_eq!(ind.violations, base_ind.violations);
        prop_assert_eq!(ind.pairs_checked, base_ind.pairs_checked);

        let base_leak = qvsec::leakage::leakage_exact(&s, &views, &dict).unwrap();
        let leak = report.leakage.unwrap();
        prop_assert_eq!(leak.max_leak, base_leak.max_leak);
        prop_assert_eq!(leak.witness, base_leak.witness);
        prop_assert_eq!(leak.positive_entries, base_leak.positive_entries);
        prop_assert_eq!(leak.pairs_checked, base_leak.pairs_checked);

        let base_total = qvsec::report::is_totally_disclosed(&s, &views, &dict).unwrap();
        prop_assert_eq!(report.totally_disclosed, Some(base_total));
    }
}

/// Seed-determinism of `audit_batch` under rayon: the same engine seed and
/// request list serialize to byte-identical JSON across parallel runs,
/// repeat runs and fresh engines — for Monte-Carlo audits included.
#[test]
fn audit_batch_is_seed_deterministic_under_rayon() {
    let build = || {
        let schema = schema();
        let mut domain = Domain::with_size(5); // 25 tuples: Monte-Carlo path
        let s = parse("S(y) :- R(x, y)", &schema, &mut domain);
        let v = parse("V(x) :- R(x, y)", &schema, &mut domain);
        let s2 = parse("S2(x0) :- R(x0, 'a')", &schema, &mut domain);
        let v2 = parse("V2(x0) :- R('b', x0)", &schema, &mut domain);
        let space = TupleSpace::full_with_cap(&schema, &domain, 100).unwrap();
        let dict = Dictionary::uniform(space, Ratio::new(1, 5)).unwrap();
        let engine = qvsec::AuditEngine::builder(schema, domain)
            .dictionary(dict)
            .default_depth(qvsec::AuditDepth::Probabilistic)
            .mc_samples(1500)
            .mc_seed(2024)
            .build();
        let requests = vec![
            qvsec::AuditRequest::new(s.clone(), ViewSet::single(v.clone())),
            qvsec::AuditRequest::new(s2, ViewSet::single(v2)),
            qvsec::AuditRequest::new(s, ViewSet::single(v)),
        ];
        (engine, requests)
    };
    let (engine_a, requests) = build();
    let first = serde_json::to_string(&engine_a.try_audit_batch(&requests).unwrap()).unwrap();
    let again = serde_json::to_string(&engine_a.try_audit_batch(&requests).unwrap()).unwrap();
    assert_eq!(first, again, "repeat batches on one engine are identical");
    let (engine_b, requests_b) = build();
    let fresh = serde_json::to_string(&engine_b.try_audit_batch(&requests_b).unwrap()).unwrap();
    assert_eq!(
        first, fresh,
        "a fresh engine with the same seed reproduces the batch"
    );
    let sequential: Vec<_> = requests
        .iter()
        .map(|r| engine_a.audit(r).unwrap())
        .collect();
    assert_eq!(
        first,
        serde_json::to_string(&sequential).unwrap(),
        "parallel and sequential audits are identical"
    );
    // The engine-lifetime counters saw exactly one pool draw; the two
    // distinct audits reused the pool across their passes, and every later
    // repetition — including the whole second batch and the sequential
    // replay — was served from the engine's whole-audit memo without
    // touching the pool at all.
    let stats = engine_a.prob_stats();
    assert_eq!(stats.samples_drawn, 1500);
    assert!(stats.samples_reused >= 5 * 1500);
    assert!(stats.audit_memo_hits >= 6, "repeat batches hit the memo");
}
