//! Table 1 classification behavior through the public [`qvsec::AuditEngine`]
//! API — migrated from the retired `SecurityAnalyzer` facade's test suite so
//! the coverage (secure/insecure split, total disclosure, the minute-vs-
//! partial threshold, fast-depth limits) survives the shim's removal.

use qvsec::engine::{AuditDepth, AuditEngine, AuditRequest};
use qvsec::report::DisclosureClass;
use qvsec_cq::{parse_query, ViewSet};
use qvsec_data::{Dictionary, Domain, Ratio, Schema};

fn employee_schema() -> Schema {
    let mut schema = Schema::new();
    schema.add_relation("Employee", &["name", "department", "phone"]);
    schema.add_relation("R", &["x", "y"]);
    schema
}

#[test]
fn exact_depth_classifies_secure_and_insecure() {
    let schema = employee_schema();
    let mut domain = Domain::new();
    let v4 = parse_query("V4(n) :- Employee(n, 'Mgmt', p)", &schema, &mut domain).unwrap();
    let s4 = parse_query("S4(n) :- Employee(n, 'HR', p)", &schema, &mut domain).unwrap();
    let engine = AuditEngine::builder(schema.clone(), domain).build();
    let report = engine
        .audit(&AuditRequest::new(s4, ViewSet::single(v4)).with_depth(AuditDepth::Exact))
        .unwrap();
    assert_eq!(report.class, DisclosureClass::NoDisclosure);
    assert!(report.fast.is_certainly_secure());
    assert!(report.security.as_ref().unwrap().secure);
    assert!(
        report.independence.is_none(),
        "no dictionary, no Def 4.1 run"
    );

    let mut domain = Domain::new();
    let v1 = parse_query("V1(n, d) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
    let s1 = parse_query("S1(d) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
    let engine = AuditEngine::builder(schema, domain).build();
    let report = engine
        .audit(&AuditRequest::new(s1, ViewSet::single(v1)).with_depth(AuditDepth::Exact))
        .unwrap();
    assert_eq!(
        report.class,
        DisclosureClass::Partial,
        "without a dictionary, insecure defaults to partial"
    );
}

#[test]
fn probabilistic_depth_produces_the_full_report() {
    let schema = employee_schema();
    let mut domain = Domain::with_constants(["a", "b"]);
    let s = parse_query("S(x, y) :- R(x, y)", &schema, &mut domain).unwrap();
    let v = parse_query("V(x) :- R(x, y)", &schema, &mut domain).unwrap();
    let space = qvsec_prob::lineage::support_space(&[&s, &v], &domain, 100).unwrap();
    let dict = Dictionary::half(space);
    let engine = AuditEngine::builder(schema, domain)
        .dictionary(dict)
        .build();
    let report = engine
        .audit(&AuditRequest::new(s, ViewSet::single(v)).with_depth(AuditDepth::Probabilistic))
        .unwrap();
    assert!(!report.security.as_ref().unwrap().secure);
    assert!(!report.independence.as_ref().unwrap().independent);
    assert!(report.leakage.as_ref().unwrap().max_leak > Ratio::ZERO);
    assert_eq!(report.totally_disclosed, Some(false));
    assert_ne!(report.class, DisclosureClass::NoDisclosure);
    let rendered = report.render();
    assert!(rendered.contains("leakage"));
}

#[test]
fn identity_view_is_classified_total() {
    let schema = employee_schema();
    let mut domain = Domain::with_constants(["a", "b"]);
    let s = parse_query("S(x) :- R(x, y)", &schema, &mut domain).unwrap();
    let v = parse_query("V(x, y) :- R(x, y)", &schema, &mut domain).unwrap();
    let space = qvsec_prob::lineage::support_space(&[&s, &v], &domain, 100).unwrap();
    let dict = Dictionary::half(space);
    let engine = AuditEngine::builder(schema, domain)
        .dictionary(dict)
        .build();
    let report = engine
        .audit(&AuditRequest::new(s, ViewSet::single(v)).with_depth(AuditDepth::Probabilistic))
        .unwrap();
    assert_eq!(report.class, DisclosureClass::Total);
}

#[test]
fn threshold_controls_minute_vs_partial() {
    let schema = employee_schema();
    let mut domain = Domain::with_constants(["a", "b"]);
    let s = parse_query("S(y) :- R(x, y)", &schema, &mut domain).unwrap();
    let v = parse_query("V(x) :- R(x, y)", &schema, &mut domain).unwrap();
    let space = qvsec_prob::lineage::support_space(&[&s, &v], &domain, 100).unwrap();
    let dict = Dictionary::half(space);

    // A huge engine-level threshold classifies everything non-total as
    // minute; the per-request override can still tighten it back to zero.
    let engine = AuditEngine::builder(schema, domain)
        .dictionary(dict)
        .minute_threshold(Ratio::from_integer(1000))
        .build();
    let generous = engine
        .audit(
            &AuditRequest::new(s.clone(), ViewSet::single(v.clone()))
                .with_depth(AuditDepth::Probabilistic),
        )
        .unwrap();
    assert_eq!(generous.class, DisclosureClass::Minute);

    let strict = engine
        .audit(
            &AuditRequest::new(s, ViewSet::single(v))
                .with_depth(AuditDepth::Probabilistic)
                .with_minute_threshold(Ratio::ZERO),
        )
        .unwrap();
    assert_eq!(strict.class, DisclosureClass::Partial);
}

#[test]
fn fast_depth_reports_carry_no_exact_verdict() {
    let schema = employee_schema();
    let mut domain = Domain::new();
    let v = parse_query("V(n, d) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
    let s = parse_query("S(d) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
    let engine = AuditEngine::builder(schema, domain).build();
    let report = engine
        .audit(&AuditRequest::new(s, ViewSet::single(v)).with_depth(AuditDepth::Fast))
        .unwrap();
    assert!(report.security.is_none());
    assert!(!report.conclusive, "fast depth alone cannot conclude");
}
