//! Concurrency stress tests for the sharded memo layers.
//!
//! The crit/space/class memos in [`CompiledArtifacts`] and the kernel's
//! compile/column/audit caches are split into canonical-form-hash shards
//! with fixed per-shard byte budgets, so a shard's eviction decisions
//! depend only on the keys routed to it — never on which other shards are
//! busy. These tests drive the memos from several threads at once and
//! assert the three properties that sharding must preserve:
//!
//! 1. **byte-identity** — every artifact a concurrent run hands out is
//!    byte-identical to a single-threaded replay of the same requests;
//! 2. **no lost insertions** — under an unbounded budget, every distinct
//!    canonical form ends up resident, exactly as many as the replay;
//! 3. **honest counters** — per-shard eviction counters sum to the
//!    aggregate the engine always reported, and every request is counted
//!    as exactly one hit or one miss.

use qvsec::artifacts::{ArtifactBudget, CompiledArtifacts};
use qvsec_cq::{parse_query, ConjunctiveQuery, ViewSet};
use qvsec_data::{Dictionary, Domain, Schema, TupleSpace};
use qvsec_prob::{KernelConfig, ProbKernel};
use std::sync::Arc;
use std::thread;

const THREADS: usize = 4;
const ROUNDS: usize = 3;

fn setup() -> (Schema, Domain) {
    let mut schema = Schema::new();
    schema.add_relation("R", &["x", "y"]);
    (schema, Domain::with_constants(["a", "b"]))
}

/// More distinct canonical forms than memo shards (8), so by pigeonhole at
/// least one shard receives two keys and tight budgets must evict.
fn query_texts() -> Vec<String> {
    let mut texts: Vec<String> = [
        "V(x) :- R(x, y)",
        "S(y) :- R(x, y)",
        "V(x, y) :- R(x, y)",
        "V() :- R(x, y)",
        "V(x) :- R(x, 'a')",
        "V(x) :- R(x, 'b')",
        "V(x) :- R('a', x)",
        "V(x) :- R('b', x)",
        "V() :- R('a', 'b')",
        "V() :- R('b', 'a')",
    ]
    .into_iter()
    .map(String::from)
    .collect();
    for n in 2..=4 {
        let body: Vec<String> = (0..n).map(|i| format!("R(v{i}, v{})", i + 1)).collect();
        texts.push(format!("C(v0) :- {}", body.join(", ")));
    }
    texts
}

fn parse_all(schema: &Schema, domain: &mut Domain) -> Vec<ConjunctiveQuery> {
    query_texts()
        .iter()
        .map(|t| parse_query(t, schema, domain).unwrap())
        .collect()
}

/// Single-threaded replay: what every concurrent run must reproduce.
fn reference_artifacts(
    queries: &[ConjunctiveQuery],
    domain: &Domain,
) -> (Vec<String>, Vec<String>, usize) {
    let artifacts = CompiledArtifacts::new();
    let crit: Vec<String> = queries
        .iter()
        .map(|q| serde_json::to_string(&*artifacts.crit(q, domain, 10_000).unwrap()).unwrap())
        .collect();
    let spaces: Vec<String> = queries
        .iter()
        .map(|q| {
            let space = artifacts.candidate_space(q, domain, 10_000).unwrap();
            serde_json::to_string(space.tuples()).unwrap()
        })
        .collect();
    (crit, spaces, artifacts.cached_crit_sets())
}

fn stress(
    artifacts: &CompiledArtifacts,
    queries: &[ConjunctiveQuery],
    domain: &Domain,
) -> Vec<Vec<(String, String)>> {
    thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                scope.spawn(move || {
                    // Each thread walks the forms in a rotated order so the
                    // threads interleave on different shards each round.
                    let mut out = Vec::new();
                    for round in 0..ROUNDS {
                        for i in 0..queries.len() {
                            let q = &queries[(i + t + round) % queries.len()];
                            let crit = artifacts.crit(q, domain, 10_000).unwrap();
                            let space = artifacts.candidate_space(q, domain, 10_000).unwrap();
                            if round == ROUNDS - 1 {
                                out.push((
                                    serde_json::to_string(&*crit).unwrap(),
                                    serde_json::to_string(space.tuples()).unwrap(),
                                ));
                            }
                        }
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

#[test]
fn tight_budget_concurrent_artifacts_are_byte_identical_to_replay() {
    let (schema, mut domain) = setup();
    let queries = parse_all(&schema, &mut domain);
    let (ref_crit, ref_spaces, _) = reference_artifacts(&queries, &domain);

    // A few hundred bytes split over 8 shards per layer: every multi-key
    // shard thrashes, so the run exercises eviction under contention.
    let artifacts = CompiledArtifacts::with_budget(ArtifactBudget::split(600));
    let per_thread = stress(&artifacts, &queries, &domain);

    for (t, results) in per_thread.iter().enumerate() {
        for (i, (crit, space)) in results.iter().enumerate() {
            let qi = (i + t + (ROUNDS - 1)) % queries.len();
            assert_eq!(
                crit, &ref_crit[qi],
                "thread {t}: crit set for form {qi} diverged from the replay"
            );
            assert_eq!(
                space, &ref_spaces[qi],
                "thread {t}: candidate space for form {qi} diverged from the replay"
            );
        }
    }

    let counters = artifacts.counters();
    assert!(
        counters.evictions > 0,
        "tight shard budgets must evict under stress: {counters:?}"
    );
    assert_eq!(
        artifacts.per_shard_evictions().iter().sum::<u64>(),
        counters.evictions,
        "per-shard eviction counters must sum to the aggregate"
    );
    let crit_requests = (THREADS * ROUNDS * queries.len()) as u64;
    assert_eq!(
        counters.crit_cache_hits + counters.crit_cache_misses,
        crit_requests,
        "every crit request counts as exactly one hit or one miss"
    );
    assert_eq!(
        counters.space_cache_hits + counters.space_cache_misses,
        crit_requests,
        "every space request counts as exactly one hit or one miss"
    );
}

#[test]
fn unbounded_concurrent_artifacts_lose_no_insertions() {
    let (schema, mut domain) = setup();
    let queries = parse_all(&schema, &mut domain);
    let (_, _, expected_resident) = reference_artifacts(&queries, &domain);

    let artifacts = CompiledArtifacts::new();
    let _ = stress(&artifacts, &queries, &domain);

    let counters = artifacts.counters();
    assert_eq!(counters.evictions, 0, "unbounded shards never evict");
    assert_eq!(
        artifacts.cached_crit_sets(),
        expected_resident,
        "every distinct canonical form must stay resident"
    );
    // Warm re-requests from one more thread are all hits.
    let before = artifacts.counters();
    for q in &queries {
        let _ = artifacts.crit(q, &domain, 10_000).unwrap();
    }
    let after = artifacts.counters();
    assert_eq!(
        after.crit_cache_hits - before.crit_cache_hits,
        queries.len() as u64
    );
    assert_eq!(after.crit_cache_misses, before.crit_cache_misses);
}

#[test]
fn concurrent_kernel_audits_match_a_single_threaded_replay() {
    let (schema, mut domain) = setup();
    let space = TupleSpace::full(&schema, &domain).unwrap();
    let dict = Arc::new(Dictionary::half(space));
    let queries = parse_all(&schema, &mut domain);
    let view = parse_query("W(x) :- R(x, y)", &schema, &mut domain).unwrap();
    let views = ViewSet::single(view);

    let config = KernelConfig {
        audit_memo: true,
        ..KernelConfig::default()
    };
    let replay = ProbKernel::new(Arc::clone(&dict), config);
    let expected: Vec<String> = queries
        .iter()
        .map(|s| serde_json::to_string(&replay.evaluate(s, &views).unwrap()).unwrap())
        .collect();

    let kernel = ProbKernel::new(dict, config);
    let per_thread: Vec<Vec<String>> = thread::scope(|scope| {
        let kernel = &kernel;
        let queries = &queries;
        let views = &views;
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                scope.spawn(move || {
                    (0..queries.len())
                        .map(|i| {
                            let s = &queries[(i + t) % queries.len()];
                            serde_json::to_string(&kernel.evaluate(s, views).unwrap()).unwrap()
                        })
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (t, results) in per_thread.iter().enumerate() {
        for (i, audit) in results.iter().enumerate() {
            let qi = (i + t) % queries.len();
            assert_eq!(
                audit, &expected[qi],
                "thread {t}: audit of secret {qi} diverged from the replay"
            );
        }
    }
    // Concurrency may race duplicate computations past the memo check, but
    // every request resolves as a memo hit or a full evaluation — nothing
    // is silently dropped.
    let snap = kernel.stats();
    assert!(snap.audit_memo_hits > 0, "repeat audits must hit the memo");
}
