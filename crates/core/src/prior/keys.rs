//! Key constraints as prior knowledge (Section 5.2, Application 2 and
//! Corollary 5.3).
//!
//! Key constraints introduce strong negative correlations between tuples
//! that share a key value, which the tuple-independent model cannot express
//! directly; the paper handles them as prior knowledge `K`. Corollary 5.3
//! characterises security: `K : S |_P V̄` for all `P` iff no critical tuple
//! of `S` *under `K`* is `≡_K`-equivalent to a critical tuple of `V̄` under
//! `K`, where `t ≡_K t'` means "same relation and same key value" and
//! `crit_D(Q, K)` only ranges over instances satisfying the constraints.
//!
//! Criticality under key constraints is computed here by exhaustive search
//! over an explicit tuple space restricted to key-satisfying instances (the
//! problem remains Πᵖ₂-complete, and the instances violating `K` must be
//! excluded, so the fine-instance shortcut does not directly apply).

use crate::Result;
use qvsec_cq::eval::evaluate;
use qvsec_cq::{ConjunctiveQuery, ViewSet};
use qvsec_data::{KeyConstraint, Schema, Tuple, TupleSpace};
use std::collections::BTreeSet;

/// Whether two tuples are `≡_K`-equivalent: same relation and equal key
/// projections for every key constraint declared on that relation. Tuples of
/// a relation with no declared key are equivalent only to themselves.
pub fn equivalent_under_keys(t1: &Tuple, t2: &Tuple, keys: &[KeyConstraint]) -> bool {
    if t1.relation != t2.relation {
        return false;
    }
    let relevant: Vec<&KeyConstraint> = keys.iter().filter(|k| k.relation == t1.relation).collect();
    if relevant.is_empty() {
        return t1 == t2;
    }
    relevant
        .iter()
        .all(|k| t1.project(&k.positions) == t2.project(&k.positions))
}

/// `crit_D(Q, K)`: tuples `t` for which some instance `I` **satisfying the
/// key constraints** has `Q(I) ≠ Q(I − {t})`. Computed by brute force over
/// the instances of `space`.
pub fn critical_tuples_under_keys(
    query: &ConjunctiveQuery,
    schema: &Schema,
    space: &TupleSpace,
) -> Result<BTreeSet<Tuple>> {
    let mut out = BTreeSet::new();
    for (mask, instance) in space.instances()? {
        if !instance.satisfies_keys(schema) {
            continue;
        }
        let with = evaluate(query, &instance);
        for t in instance.iter() {
            if out.contains(t) {
                continue;
            }
            if evaluate(query, &instance.without(t)) != with {
                out.insert(t.clone());
            }
        }
        let _ = mask;
    }
    Ok(out)
}

/// The outcome of the Corollary 5.3 check.
#[derive(Debug, Clone)]
pub struct KeyVerdict {
    /// Whether `K : S |_P V̄` holds for every distribution.
    pub secure: bool,
    /// Pairs `(t, t')` with `t ∈ crit(S, K)`, `t' ∈ crit(V̄, K)` and
    /// `t ≡_K t'` — the witnesses of insecurity.
    pub violating_pairs: Vec<(Tuple, Tuple)>,
}

/// Decides `K : S |_P V̄` for all `P` under the schema's key constraints,
/// by Corollary 5.3, over an explicit tuple space.
pub fn secure_under_keys(
    secret: &ConjunctiveQuery,
    views: &ViewSet,
    schema: &Schema,
    space: &TupleSpace,
) -> Result<KeyVerdict> {
    let crit_s = critical_tuples_under_keys(secret, schema, space)?;
    let mut crit_v: BTreeSet<Tuple> = BTreeSet::new();
    for v in views.iter() {
        crit_v.extend(critical_tuples_under_keys(v, schema, space)?);
    }
    let mut violating = Vec::new();
    for t in &crit_s {
        for t2 in &crit_v {
            if equivalent_under_keys(t, t2, schema.keys()) {
                violating.push((t.clone(), t2.clone()));
            }
        }
    }
    Ok(KeyVerdict {
        secure: violating.is_empty(),
        violating_pairs: violating,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::security::secure_for_all_distributions;
    use qvsec_cq::parse_query;
    use qvsec_data::Domain;
    use qvsec_prob::lineage::support_space;

    /// Schema with R(key, value) where the first attribute is a key, and the
    /// three-constant domain of the paper's example (a, b, c distinct).
    fn keyed_setup() -> (Schema, Domain) {
        let mut schema = Schema::new();
        let r = schema.add_relation("R", &["k", "v"]);
        schema.add_key(r, &[0]).unwrap();
        (schema, Domain::with_constants(["a", "b", "c"]))
    }

    #[test]
    fn equivalence_classes_follow_keys() {
        let (schema, domain) = keyed_setup();
        let r = schema.relation_by_name("R").unwrap();
        let a = domain.get("a").unwrap();
        let b = domain.get("b").unwrap();
        let c = domain.get("c").unwrap();
        let t_ab = Tuple::new(r, vec![a, b]);
        let t_ac = Tuple::new(r, vec![a, c]);
        let t_bb = Tuple::new(r, vec![b, b]);
        assert!(
            equivalent_under_keys(&t_ab, &t_ac, schema.keys()),
            "same key a"
        );
        assert!(
            !equivalent_under_keys(&t_ab, &t_bb, schema.keys()),
            "different keys"
        );
        assert!(equivalent_under_keys(&t_ab, &t_ab, schema.keys()));
        // without any key constraint, equivalence is identity
        assert!(!equivalent_under_keys(&t_ab, &t_ac, &[]));
        assert!(equivalent_under_keys(&t_ab, &t_ab, &[]));
    }

    #[test]
    fn paper_example_key_makes_the_pair_insecure() {
        // S() :- R('a','b') and V() :- R('a','c'): secure without constraints
        // (disjoint critical tuples), insecure once the first attribute is a
        // key, because crit(S,K) = {R(a,b)} ≡_K {R(a,c)} = crit(V,K).
        let (schema, mut domain) = keyed_setup();
        let s = parse_query("S() :- R('a', 'b')", &schema, &mut domain).unwrap();
        let v = parse_query("V() :- R('a', 'c')", &schema, &mut domain).unwrap();

        // plain security holds (Theorem 4.5, no knowledge)
        assert!(
            secure_for_all_distributions(&s, &ViewSet::single(v.clone()), &schema, &domain)
                .unwrap()
                .secure
        );

        // build a small space: the supports of S and V plus a disjoint tuple
        let space = support_space(&[&s, &v], &domain, 100).unwrap();
        let crit_s = critical_tuples_under_keys(&s, &schema, &space).unwrap();
        let crit_v = critical_tuples_under_keys(&v, &schema, &space).unwrap();
        assert_eq!(crit_s.len(), 1);
        assert_eq!(crit_v.len(), 1);

        let verdict = secure_under_keys(&s, &ViewSet::single(v), &schema, &space).unwrap();
        assert!(!verdict.secure);
        assert_eq!(verdict.violating_pairs.len(), 1);
    }

    #[test]
    fn distinct_keys_remain_secure_under_key_constraints() {
        // S() :- R('a','b') vs V() :- R('c','b'): different key values, so the
        // key constraint does not couple them.
        let (schema, mut domain) = keyed_setup();
        let s = parse_query("S() :- R('a', 'b')", &schema, &mut domain).unwrap();
        let v = parse_query("V() :- R('c', 'b')", &schema, &mut domain).unwrap();
        let space = support_space(&[&s, &v], &domain, 100).unwrap();
        let verdict = secure_under_keys(&s, &ViewSet::single(v), &schema, &space).unwrap();
        assert!(verdict.secure);
        assert!(verdict.violating_pairs.is_empty());
    }

    #[test]
    fn criticality_under_keys_is_a_subset_of_plain_criticality() {
        let (schema, mut domain) = keyed_setup();
        let q = parse_query("Q(v) :- R(k, v)", &schema, &mut domain).unwrap();
        // restrict to a 2-constant sub-space to keep enumeration tiny
        let small_domain = Domain::with_constants(["a", "b"]);
        let space = TupleSpace::full(&schema, &small_domain).unwrap();
        let under_keys = critical_tuples_under_keys(&q, &schema, &space).unwrap();
        let plain = crate::critical_bruteforce::critical_tuples_bruteforce(&q, &space).unwrap();
        assert!(under_keys.is_subset(&plain));
        assert!(!under_keys.is_empty());
    }

    #[test]
    fn without_declared_keys_the_check_reduces_to_theorem_4_5() {
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        let mut domain = Domain::with_constants(["a", "b"]);
        let s = parse_query("S() :- R('a', x)", &schema, &mut domain).unwrap();
        let v = parse_query("V() :- R(x, 'b')", &schema, &mut domain).unwrap();
        let space = support_space(&[&s, &v], &domain, 100).unwrap();
        let verdict = secure_under_keys(&s, &ViewSet::single(v.clone()), &schema, &space).unwrap();
        let plain =
            secure_for_all_distributions(&s, &ViewSet::single(v), &schema, &domain).unwrap();
        assert_eq!(verdict.secure, plain.secure);
    }
}
