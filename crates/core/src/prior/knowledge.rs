//! Representing prior knowledge and deciding security given it.
//!
//! The paper allows `K` to be *any* boolean statement about the instance
//! (Section 5): a boolean query, key or foreign-key constraints, knowledge of
//! individual tuples, cardinality information, or conjunctions of these.
//! [`Knowledge`] is that union; its [`Knowledge::holds`] predicate evaluates
//! `K(I)`.
//!
//! Two decision procedures are provided:
//!
//! * [`secure_given_knowledge`] — Definition 5.1 checked literally over a
//!   dictionary (exact, exhaustive), and
//! * [`secure_given_knowledge_all_distributions_boolean`] — the "for every
//!   distribution" question for boolean `S`, `V`, decided through the
//!   polynomial identity of Eq. (8), which the proof of Theorem 5.2 shows is
//!   equivalent to COND-K.

use crate::prior::cardinality::CardinalityConstraint;
use crate::{QvsError, Result};
use qvsec_cq::{evaluate_boolean, ConjunctiveQuery, ViewSet};
use qvsec_data::{Dictionary, Instance, KeyConstraint, Tuple, TupleSpace};
use qvsec_prob::independence::{check_independence_given, IndependenceReport};
use qvsec_prob::poly::from_satisfying;

/// A piece of prior knowledge `K`: a boolean predicate on instances.
#[derive(Debug, Clone, PartialEq)]
pub enum Knowledge {
    /// No knowledge (`K ≡ true`).
    True,
    /// A boolean conjunctive query that is known to be true on the instance.
    BooleanQuery(ConjunctiveQuery),
    /// Key constraints that the instance is known to satisfy.
    Keys(Vec<KeyConstraint>),
    /// A cardinality constraint on the instance size (Application 3).
    Cardinality(CardinalityConstraint),
    /// Known membership status of individual tuples: `(t, true)` means `t`
    /// is known to be in the instance, `(t, false)` that it is not
    /// (Corollary 5.4 protective disclosures).
    TupleStatus(Vec<(Tuple, bool)>),
    /// A conjunction of knowledge items.
    And(Vec<Knowledge>),
}

impl Knowledge {
    /// Evaluates `K(I)`.
    pub fn holds(&self, instance: &Instance) -> bool {
        match self {
            Knowledge::True => true,
            Knowledge::BooleanQuery(q) => evaluate_boolean(q, instance),
            Knowledge::Keys(keys) => keys.iter().all(|k| instance.satisfies_key(k)),
            Knowledge::Cardinality(c) => c.holds(instance),
            Knowledge::TupleStatus(statuses) => statuses
                .iter()
                .all(|(t, present)| instance.contains(t) == *present),
            Knowledge::And(items) => items.iter().all(|k| k.holds(instance)),
        }
    }

    /// Conjoins two pieces of knowledge.
    pub fn and(self, other: Knowledge) -> Knowledge {
        match (self, other) {
            (Knowledge::True, k) | (k, Knowledge::True) => k,
            (Knowledge::And(mut a), Knowledge::And(b)) => {
                a.extend(b);
                Knowledge::And(a)
            }
            (Knowledge::And(mut a), k) => {
                a.push(k);
                Knowledge::And(a)
            }
            (k, Knowledge::And(mut b)) => {
                b.insert(0, k);
                Knowledge::And(b)
            }
            (a, b) => Knowledge::And(vec![a, b]),
        }
    }
}

/// Definition 5.1 checked exactly over a dictionary: is `S` independent of
/// `V̄` *given* `K`?
pub fn secure_given_knowledge(
    secret: &ConjunctiveQuery,
    views: &ViewSet,
    knowledge: &Knowledge,
    dict: &Dictionary,
) -> Result<IndependenceReport> {
    Ok(check_independence_given(secret, views, dict, |i| {
        knowledge.holds(i)
    })?)
}

/// Decides `K : S |_P V` for **every** distribution `P`, for boolean `S` and
/// `V`, through the polynomial identity of Eq. (8):
///
/// ```text
/// f_{S∧V∧K}(x̄) · f_K(x̄)  =  f_{S∧K}(x̄) · f_{V∧K}(x̄)
/// ```
///
/// The polynomials are built over `space`, which must contain the supports of
/// `S`, `V` and `K` and be small enough to enumerate.
pub fn secure_given_knowledge_all_distributions_boolean(
    secret: &ConjunctiveQuery,
    view: &ConjunctiveQuery,
    knowledge: &Knowledge,
    space: &TupleSpace,
) -> Result<bool> {
    if !secret.is_boolean() {
        return Err(QvsError::NotBoolean(secret.name.clone()));
    }
    if !view.is_boolean() {
        return Err(QvsError::NotBoolean(view.name.clone()));
    }
    let n = space.len();
    let mut sat_k = vec![false; 1usize << n];
    let mut sat_sk = vec![false; 1usize << n];
    let mut sat_vk = vec![false; 1usize << n];
    let mut sat_svk = vec![false; 1usize << n];
    for (mask, instance) in space.instances()? {
        let k = knowledge.holds(&instance);
        if !k {
            continue;
        }
        let s = evaluate_boolean(secret, &instance);
        let v = evaluate_boolean(view, &instance);
        let m = mask as usize;
        sat_k[m] = true;
        sat_sk[m] = s;
        sat_vk[m] = v;
        sat_svk[m] = s && v;
    }
    let f_k = from_satisfying(n, &sat_k);
    let f_sk = from_satisfying(n, &sat_sk);
    let f_vk = from_satisfying(n, &sat_vk);
    let f_svk = from_satisfying(n, &sat_svk);
    Ok(&f_svk * &f_k == &f_sk * &f_vk)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvsec_cq::parse_query;
    use qvsec_data::{Domain, Ratio, Schema};
    use qvsec_prob::lineage::support_space;

    fn setup() -> (Schema, Domain) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        (schema, Domain::with_constants(["a", "b"]))
    }

    fn full_dict(schema: &Schema, domain: &Domain) -> Dictionary {
        let space = TupleSpace::full(schema, domain).unwrap();
        Dictionary::half(space)
    }

    #[test]
    fn knowledge_predicates_evaluate() {
        let (mut schema, domain) = setup();
        let r = schema.relation_by_name("R").unwrap();
        schema.add_key(r, &[0]).unwrap();
        let a = domain.get("a").unwrap();
        let b = domain.get("b").unwrap();
        let t_ab = Tuple::new(r, vec![a, b]);
        let t_aa = Tuple::new(r, vec![a, a]);
        let inst = Instance::from_tuples([t_ab.clone()]);

        assert!(Knowledge::True.holds(&inst));
        assert!(Knowledge::Keys(schema.keys().to_vec()).holds(&inst));
        assert!(!Knowledge::Keys(schema.keys().to_vec())
            .holds(&Instance::from_tuples([t_ab.clone(), t_aa.clone()])));
        assert!(
            Knowledge::TupleStatus(vec![(t_ab.clone(), true), (t_aa.clone(), false)]).holds(&inst)
        );
        assert!(!Knowledge::TupleStatus(vec![(t_aa.clone(), true)]).holds(&inst));
        assert!(Knowledge::Cardinality(CardinalityConstraint::Exactly(1)).holds(&inst));
        let conj = Knowledge::True
            .and(Knowledge::Cardinality(CardinalityConstraint::AtMost(2)))
            .and(Knowledge::TupleStatus(vec![(t_ab, true)]));
        assert!(conj.holds(&inst));
    }

    #[test]
    fn boolean_query_knowledge() {
        let (schema, mut domain) = setup();
        let k = parse_query("K() :- R('a', x)", &schema, &mut domain).unwrap();
        let r = schema.relation_by_name("R").unwrap();
        let a = domain.get("a").unwrap();
        let b = domain.get("b").unwrap();
        let know = Knowledge::BooleanQuery(k);
        assert!(know.holds(&Instance::from_tuples([Tuple::new(r, vec![a, b])])));
        assert!(!know.holds(&Instance::from_tuples([Tuple::new(r, vec![b, b])])));
    }

    #[test]
    fn application_1_no_knowledge_recovers_theorem_4_5() {
        // With K = true the polynomial criterion coincides with plain
        // query-view security.
        let (schema, mut domain) = setup();
        let pairs = [
            ("S() :- R('a', x)", "V() :- R(x, 'b')", false),
            ("S() :- R('a', 'a')", "V() :- R('b', 'b')", true),
        ];
        for (s_text, v_text, expected) in pairs {
            let s = parse_query(s_text, &schema, &mut domain).unwrap();
            let v = parse_query(v_text, &schema, &mut domain).unwrap();
            let space = support_space(&[&s, &v], &domain, 1 << 12).unwrap();
            let secure =
                secure_given_knowledge_all_distributions_boolean(&s, &v, &Knowledge::True, &space)
                    .unwrap();
            assert_eq!(secure, expected, "({s_text}, {v_text})");
        }
    }

    #[test]
    fn application_2_keys_can_destroy_security() {
        // S() :- R('a','b') and V() :- R('a','c') are secure without
        // knowledge, but if the first attribute is a key then V true implies
        // S false (total negative disclosure).
        let (mut schema, mut domain) = setup();
        domain.add("c");
        let r = schema.relation_by_name("R").unwrap();
        schema.add_key(r, &[0]).unwrap();
        let s = parse_query("S() :- R('a', 'b')", &schema, &mut domain).unwrap();
        let v = parse_query("V() :- R('a', 'c')", &schema, &mut domain).unwrap();
        let space = support_space(&[&s, &v], &domain, 1 << 12).unwrap();
        // without knowledge: secure
        assert!(
            secure_given_knowledge_all_distributions_boolean(&s, &v, &Knowledge::True, &space)
                .unwrap()
        );
        // with the key constraint: not secure
        let keys = Knowledge::Keys(schema.keys().to_vec());
        assert!(!secure_given_knowledge_all_distributions_boolean(&s, &v, &keys, &space).unwrap());
        // the dictionary-based Definition 5.1 check agrees
        let dict = full_dict(&schema, &domain);
        let report = secure_given_knowledge(&s, &ViewSet::single(v), &keys, &dict).unwrap();
        assert!(!report.independent);
    }

    #[test]
    fn corollary_5_4_shape_knowledge_of_the_common_tuple_protects() {
        let (schema, mut domain) = setup();
        let s = parse_query("S() :- R('a', x)", &schema, &mut domain).unwrap();
        let v = parse_query("V() :- R(x, 'b')", &schema, &mut domain).unwrap();
        let r = schema.relation_by_name("R").unwrap();
        let a = domain.get("a").unwrap();
        let b = domain.get("b").unwrap();
        let t_ab = Tuple::new(r, vec![a, b]);
        let space = support_space(&[&s, &v], &domain, 1 << 12).unwrap();
        // insecure without knowledge
        assert!(!secure_given_knowledge_all_distributions_boolean(
            &s,
            &v,
            &Knowledge::True,
            &space
        )
        .unwrap());
        // secure once the status of R(a,b) is known — either way
        for status in [true, false] {
            let k = Knowledge::TupleStatus(vec![(t_ab.clone(), status)]);
            assert!(
                secure_given_knowledge_all_distributions_boolean(&s, &v, &k, &space).unwrap(),
                "status {status} must protect"
            );
        }
    }

    #[test]
    fn non_boolean_queries_are_rejected_by_the_polynomial_criterion() {
        let (schema, mut domain) = setup();
        let s = parse_query("S(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let v = parse_query("V() :- R('a', 'b')", &schema, &mut domain).unwrap();
        let space = support_space(&[&s, &v], &domain, 1 << 12).unwrap();
        assert!(matches!(
            secure_given_knowledge_all_distributions_boolean(&s, &v, &Knowledge::True, &space),
            Err(QvsError::NotBoolean(_))
        ));
    }

    #[test]
    fn dictionary_check_honours_non_uniform_distributions() {
        let (schema, mut domain) = setup();
        let s = parse_query("S() :- R('a', 'a')", &schema, &mut domain).unwrap();
        let v = parse_query("V() :- R('b', 'b')", &schema, &mut domain).unwrap();
        let space = TupleSpace::full(&schema, &domain).unwrap();
        let dict = Dictionary::uniform(space, Ratio::new(1, 3)).unwrap();
        let report =
            secure_given_knowledge(&s, &ViewSet::single(v), &Knowledge::True, &dict).unwrap();
        assert!(report.independent);
    }
}
