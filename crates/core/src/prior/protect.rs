//! Protecting secrets by disclosing the status of common critical tuples
//! (Section 5.2, Application 4 / Corollary 5.4).
//!
//! Counter-intuitively, prior knowledge can *create* security: if the data
//! owner publicly announces, for every common critical tuple of `S` and
//! `V̄`, whether it is in the database or not, then `S` becomes perfectly
//! secure with respect to `V̄` given that announcement — the announced tuples
//! are the only channel through which the views could say anything about the
//! secret.

use crate::critical::{common_critical_tuples, DEFAULT_CANDIDATE_CAP};
use crate::prior::knowledge::Knowledge;
use crate::Result;
use qvsec_cq::{ConjunctiveQuery, ViewSet};
use qvsec_data::{Domain, Instance, Tuple};

/// Builds the Corollary 5.4 protective knowledge for `S` and `V̄`: the
/// membership status of every common critical tuple, with the status of each
/// tuple determined by `status_of` (typically the true contents of the
/// database being protected).
pub fn protective_knowledge<F>(
    secret: &ConjunctiveQuery,
    views: &ViewSet,
    domain: &Domain,
    mut status_of: F,
) -> Result<Knowledge>
where
    F: FnMut(&Tuple) -> bool,
{
    let common = common_critical_tuples(secret, views, domain, DEFAULT_CANDIDATE_CAP)?;
    if common.is_empty() {
        return Ok(Knowledge::True);
    }
    Ok(Knowledge::TupleStatus(
        common
            .into_iter()
            .map(|t| (status_of(&t), t))
            .map(|(s, t)| (t, s))
            .collect(),
    ))
}

/// Protective knowledge announcing that every common critical tuple is
/// *absent* (the paper's first illustration: "suppose we disclose that the
/// pair (a, b) is not in the database").
pub fn protective_knowledge_absent(
    secret: &ConjunctiveQuery,
    views: &ViewSet,
    domain: &Domain,
) -> Result<Knowledge> {
    protective_knowledge(secret, views, domain, |_| false)
}

/// Protective knowledge reflecting the actual contents of a database
/// instance.
pub fn protective_knowledge_for_instance(
    secret: &ConjunctiveQuery,
    views: &ViewSet,
    domain: &Domain,
    instance: &Instance,
) -> Result<Knowledge> {
    protective_knowledge(secret, views, domain, |t| instance.contains(t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prior::knowledge::{
        secure_given_knowledge, secure_given_knowledge_all_distributions_boolean,
    };
    use crate::security::secure_for_all_distributions;
    use qvsec_cq::parse_query;
    use qvsec_data::{Dictionary, Schema, TupleSpace};
    use qvsec_prob::lineage::support_space;

    fn setup() -> (Schema, Domain) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        (schema, Domain::with_constants(["a", "b"]))
    }

    #[test]
    fn paper_illustration_r_a_dash_vs_r_dash_b() {
        // S() :- R('a', _) and V() :- R(_, 'b') share the critical tuple
        // R(a,b); disclosing its status (either way) restores security.
        let (schema, mut domain) = setup();
        let s = parse_query("S() :- R('a', x)", &schema, &mut domain).unwrap();
        let v = parse_query("V() :- R(x, 'b')", &schema, &mut domain).unwrap();
        let views = ViewSet::single(v.clone());

        assert!(
            !secure_for_all_distributions(&s, &views, &schema, &domain)
                .unwrap()
                .secure
        );

        let k_absent = protective_knowledge_absent(&s, &views, &domain).unwrap();
        match &k_absent {
            Knowledge::TupleStatus(statuses) => {
                assert_eq!(statuses.len(), 1);
                assert!(!statuses[0].1);
            }
            other => panic!("expected tuple-status knowledge, got {other:?}"),
        }

        let space = support_space(&[&s, &v], &domain, 100).unwrap();
        assert!(
            secure_given_knowledge_all_distributions_boolean(&s, &v, &k_absent, &space).unwrap()
        );

        // disclosing that the tuple IS present also protects (Corollary 5.4
        // covers both `K ⊨ t ∈ I` and `K ⊨ t ∉ I`)
        let k_present = protective_knowledge(&s, &views, &domain, |_| true).unwrap();
        assert!(
            secure_given_knowledge_all_distributions_boolean(&s, &v, &k_present, &space).unwrap()
        );

        // and the exhaustive Definition 5.1 check agrees
        let dict = Dictionary::half(TupleSpace::full(&schema, &domain).unwrap());
        let report = secure_given_knowledge(&s, &views, &k_absent, &dict).unwrap();
        assert!(report.independent);
    }

    #[test]
    fn already_secure_pairs_need_no_protective_knowledge() {
        let (schema, mut domain) = setup();
        let s = parse_query("S(y) :- R(y, 'a')", &schema, &mut domain).unwrap();
        let v = parse_query("V(x) :- R(x, 'b')", &schema, &mut domain).unwrap();
        let k = protective_knowledge_absent(&s, &ViewSet::single(v), &domain).unwrap();
        assert_eq!(k, Knowledge::True);
    }

    #[test]
    fn instance_based_protective_knowledge_uses_actual_statuses() {
        let (schema, mut domain) = setup();
        let s = parse_query("S() :- R('a', x)", &schema, &mut domain).unwrap();
        let v = parse_query("V() :- R(x, 'b')", &schema, &mut domain).unwrap();
        let r = schema.relation_by_name("R").unwrap();
        let a = domain.get("a").unwrap();
        let b = domain.get("b").unwrap();
        let database = Instance::from_tuples([Tuple::new(r, vec![a, b])]);
        let k =
            protective_knowledge_for_instance(&s, &ViewSet::single(v), &domain, &database).unwrap();
        match k {
            Knowledge::TupleStatus(statuses) => {
                assert_eq!(statuses.len(), 1);
                assert!(statuses[0].1, "the tuple is present in the database");
                assert!(k_holds(&statuses, &database));
            }
            other => panic!("expected tuple-status knowledge, got {other:?}"),
        }
    }

    fn k_holds(statuses: &[(Tuple, bool)], instance: &Instance) -> bool {
        Knowledge::TupleStatus(statuses.to_vec()).holds(instance)
    }

    #[test]
    fn multi_view_protection_covers_all_common_tuples() {
        let (schema, mut domain) = setup();
        let s = parse_query("S() :- R('a', x)", &schema, &mut domain).unwrap();
        let v1 = parse_query("V1() :- R(x, 'b')", &schema, &mut domain).unwrap();
        let v2 = parse_query("V2() :- R(x, 'a')", &schema, &mut domain).unwrap();
        let views = ViewSet::from_views(vec![v1, v2]);
        let k = protective_knowledge_absent(&s, &views, &domain).unwrap();
        match k {
            Knowledge::TupleStatus(statuses) => {
                // common critical tuples: R(a,b) with V1 and R(a,a) with V2
                assert_eq!(statuses.len(), 2);
            }
            other => panic!("expected tuple-status knowledge, got {other:?}"),
        }
    }
}
