//! Cardinality constraints as prior knowledge (Section 5.2, Application 3).
//!
//! If the adversary knows anything non-trivial about the database size —
//! "there are exactly n tuples", "at most n", "at least n" — then **no**
//! query is perfectly secure with respect to any view (unless one of them is
//! trivially true or false). The reason, via Theorem 5.2, is that a
//! cardinality predicate cannot be split as `K₁ ∧ K₂` over two disjoint,
//! non-empty sets of tuples (a counting argument), so COND-K can never be
//! satisfied.
//!
//! This module provides the constraint type, the paper's impossibility
//! statement as an executable predicate, and (in the tests) an exhaustive
//! demonstration that even a pair that is secure without prior knowledge
//! becomes insecure once a cardinality bound is known.

use qvsec_cq::{ConjunctiveQuery, ViewSet};
use qvsec_data::Instance;
use serde::{Deserialize, Serialize};

/// A constraint on the number of tuples in the instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CardinalityConstraint {
    /// The instance has exactly this many tuples.
    Exactly(usize),
    /// The instance has at most this many tuples.
    AtMost(usize),
    /// The instance has at least this many tuples.
    AtLeast(usize),
}

impl CardinalityConstraint {
    /// Evaluates the constraint on an instance.
    pub fn holds(&self, instance: &Instance) -> bool {
        match self {
            CardinalityConstraint::Exactly(n) => instance.len() == *n,
            CardinalityConstraint::AtMost(n) => instance.len() <= *n,
            CardinalityConstraint::AtLeast(n) => instance.len() >= *n,
        }
    }

    /// Whether the constraint is trivial over a tuple space of the given
    /// size (satisfied by every instance, hence conveying no information).
    pub fn is_trivial_for_space(&self, space_size: usize) -> bool {
        match self {
            CardinalityConstraint::Exactly(_) => space_size == 0,
            CardinalityConstraint::AtMost(n) => *n >= space_size,
            CardinalityConstraint::AtLeast(n) => *n == 0,
        }
    }
}

/// Whether a query is *trivial* for the purposes of Application 3: a boolean
/// query with no subgoals is identically true; queries whose comparisons are
/// self-contradictory on syntactic grounds (`x != x`, `x < x`) are
/// identically false. (These are the only exceptions the paper carves out:
/// "no query is perfectly secret with respect to any view in this case,
/// except if one of them is trivially true or false.")
fn is_trivial(query: &ConjunctiveQuery) -> bool {
    if query.atoms.is_empty() {
        return true;
    }
    query
        .comparisons
        .iter()
        .any(|c| c.lhs == c.rhs && matches!(c.op, qvsec_cq::CmpOp::Ne | qvsec_cq::CmpOp::Lt))
}

/// The paper's Application 3 statement as a predicate: with any non-trivial
/// cardinality constraint as prior knowledge, security fails for every
/// non-trivial secret/view pair. Returns `true` when security is destroyed
/// (the common case), `false` when one of the queries is trivial and the
/// statement does not apply.
pub fn cardinality_destroys_security(secret: &ConjunctiveQuery, views: &ViewSet) -> bool {
    !is_trivial(secret) && views.iter().any(|v| !is_trivial(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prior::knowledge::{
        secure_given_knowledge, secure_given_knowledge_all_distributions_boolean, Knowledge,
    };
    use qvsec_cq::parse_query;
    use qvsec_data::{Dictionary, Domain, Schema, TupleSpace};

    fn setup() -> (Schema, Domain) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        (schema, Domain::with_constants(["a", "b"]))
    }

    #[test]
    fn constraint_semantics() {
        let (schema, domain) = setup();
        let r = schema.relation_by_name("R").unwrap();
        let a = domain.get("a").unwrap();
        let one = Instance::from_tuples([qvsec_data::Tuple::new(r, vec![a, a])]);
        assert!(CardinalityConstraint::Exactly(1).holds(&one));
        assert!(!CardinalityConstraint::Exactly(2).holds(&one));
        assert!(CardinalityConstraint::AtMost(1).holds(&one));
        assert!(!CardinalityConstraint::AtMost(0).holds(&one));
        assert!(CardinalityConstraint::AtLeast(1).holds(&one));
        assert!(!CardinalityConstraint::AtLeast(2).holds(&one));
        assert!(CardinalityConstraint::AtMost(10).is_trivial_for_space(4));
        assert!(!CardinalityConstraint::AtMost(2).is_trivial_for_space(4));
        assert!(CardinalityConstraint::AtLeast(0).is_trivial_for_space(4));
    }

    #[test]
    fn cardinality_knowledge_destroys_an_otherwise_secure_pair() {
        // S() :- R('a','a') and V() :- R('b','b') have disjoint critical
        // tuples, hence are secure with no prior knowledge. Knowing the exact
        // database size couples them: learning that V is true (one of the at
        // most one tuples is R(b,b)) lowers the probability that R(a,a) is
        // also present.
        let (schema, mut domain) = setup();
        let s = parse_query("S() :- R('a', 'a')", &schema, &mut domain).unwrap();
        let v = parse_query("V() :- R('b', 'b')", &schema, &mut domain).unwrap();
        let space = TupleSpace::full(&schema, &domain).unwrap();

        // secure without knowledge
        assert!(
            secure_given_knowledge_all_distributions_boolean(&s, &v, &Knowledge::True, &space)
                .unwrap()
        );

        // insecure with a cardinality constraint (Application 3)
        let card = Knowledge::Cardinality(CardinalityConstraint::AtMost(1));
        assert!(!secure_given_knowledge_all_distributions_boolean(&s, &v, &card, &space).unwrap());

        // the exhaustive Definition 5.1 check over the uniform dictionary agrees
        let dict = Dictionary::half(space);
        let report = secure_given_knowledge(
            &s,
            &ViewSet::single(v.clone()),
            &Knowledge::Cardinality(CardinalityConstraint::AtMost(1)),
            &dict,
        )
        .unwrap();
        assert!(!report.independent);

        // and the paper's blanket statement applies to this pair
        assert!(cardinality_destroys_security(&s, &ViewSet::single(v)));
    }

    #[test]
    fn exact_cardinality_also_destroys_security() {
        let (schema, mut domain) = setup();
        let s = parse_query("S() :- R('a', 'a')", &schema, &mut domain).unwrap();
        let v = parse_query("V() :- R('b', 'b')", &schema, &mut domain).unwrap();
        let space = TupleSpace::full(&schema, &domain).unwrap();
        let card = Knowledge::Cardinality(CardinalityConstraint::Exactly(2));
        assert!(!secure_given_knowledge_all_distributions_boolean(&s, &v, &card, &space).unwrap());
    }

    #[test]
    fn trivial_queries_are_exempt() {
        let (schema, mut domain) = setup();
        let s = parse_query("S() :- R(x, y), x != x", &schema, &mut domain).unwrap();
        let v = parse_query("V() :- R('b', 'b')", &schema, &mut domain).unwrap();
        assert!(!cardinality_destroys_security(
            &s,
            &ViewSet::single(v.clone())
        ));
        let nontrivial = parse_query("S2() :- R('a', 'a')", &schema, &mut domain).unwrap();
        assert!(cardinality_destroys_security(
            &nontrivial,
            &ViewSet::single(v)
        ));
    }
}
