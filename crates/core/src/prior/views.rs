//! Relative security: publishing a new view after an old one
//! (Section 5.2, Application 5 / Corollary 5.5).
//!
//! Alice has already published a view `U` — possibly leaking something about
//! the secret `S`, a risk she accepted. Before publishing an additional view
//! `V` she asks: does `V` disclose anything *more* about `S` than `U` already
//! did? Formally this is security with prior knowledge `K` = "the answer to
//! `U` is what it is", i.e. `U : S | V` in the paper's notation.
//!
//! Two procedures are provided:
//!
//! * [`secure_given_prior_view_boolean`] — decides `U : S |_P V` for **all**
//!   distributions for boolean `U`, `S`, `V` through the Eq. (8) polynomial
//!   identity (the same criterion Corollary 5.5 characterises syntactically);
//! * [`secure_given_prior_views_dict`] — the exhaustive Definition 5.1 check
//!   for a concrete dictionary and arbitrary (possibly non-boolean) prior
//!   views: for every possible answer of the prior views, `S` must remain
//!   independent of `V̄` given that answer.

use crate::prior::knowledge::{secure_given_knowledge_all_distributions_boolean, Knowledge};
use crate::Result;
use qvsec_cq::eval::{evaluate, AnswerSet};
use qvsec_cq::{ConjunctiveQuery, ViewSet};
use qvsec_data::{Dictionary, Instance, TupleSpace};
use qvsec_prob::independence::check_independence_given;
use std::collections::BTreeSet;

/// Decides `U : S |_P V` for every distribution `P`, for boolean `U`, `S`,
/// `V`, over the given tuple space.
pub fn secure_given_prior_view_boolean(
    prior_view: &ConjunctiveQuery,
    secret: &ConjunctiveQuery,
    view: &ConjunctiveQuery,
    space: &TupleSpace,
) -> Result<bool> {
    let knowledge = Knowledge::BooleanQuery(prior_view.clone());
    secure_given_knowledge_all_distributions_boolean(secret, view, &knowledge, space)
}

/// Decides relative security over a concrete dictionary: for **every**
/// possible answer `u` of the prior views, `S` must be independent of `V̄`
/// given `Ū(I) = u`. Returns `true` iff this holds for all prior answers
/// with positive probability.
pub fn secure_given_prior_views_dict(
    prior_views: &ViewSet,
    secret: &ConjunctiveQuery,
    views: &ViewSet,
    dict: &Dictionary,
) -> Result<bool> {
    // Enumerate the possible prior-view answers.
    let mut prior_answers: BTreeSet<Vec<AnswerSet>> = BTreeSet::new();
    for (mask, instance) in dict.space().instances()? {
        if dict.instance_probability_mask(mask).is_zero() {
            continue;
        }
        prior_answers.insert(prior_views.iter().map(|u| evaluate(u, &instance)).collect());
    }
    for answer in prior_answers {
        let condition = |i: &Instance| -> bool {
            prior_views
                .iter()
                .zip(answer.iter())
                .all(|(u, ans)| &evaluate(u, i) == ans)
        };
        let report = check_independence_given(secret, views, dict, condition)?;
        if !report.independent {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::security::secure_for_all_distributions;
    use qvsec_cq::parse_query;
    use qvsec_data::{Domain, Schema};
    use qvsec_prob::lineage::support_space;

    /// The Section 5.2 Application 5 example uses two 4-ary relations.
    fn app5_setup() -> (Schema, Domain) {
        let mut schema = Schema::new();
        schema.add_relation("R1", &["a", "b", "c", "d"]);
        schema.add_relation("R2", &["a", "b", "c", "d"]);
        (schema, Domain::new())
    }

    #[test]
    fn application_5_example_u_protects_v() {
        // U  :- R1('a','b',_,_), R2('d','e',_,_)
        // S  :- R1('a',_,_,_),   R2('d','e','f',_)
        // V  :- R1('a','b','c',_), R2('d',_,_,_)
        // S is not secure w.r.t. U, nor w.r.t. V, but U : S | V holds.
        let (schema, mut domain) = app5_setup();
        let u = parse_query(
            "U() :- R1('a', 'b', x1, x2), R2('d', 'e', x3, x4)",
            &schema,
            &mut domain,
        )
        .unwrap();
        let s = parse_query(
            "S() :- R1('a', y1, y2, y3), R2('d', 'e', 'f', y4)",
            &schema,
            &mut domain,
        )
        .unwrap();
        let v = parse_query(
            "V() :- R1('a', 'b', 'c', z1), R2('d', z2, z3, z4)",
            &schema,
            &mut domain,
        )
        .unwrap();

        // S is insecure w.r.t. U and w.r.t. V taken alone.
        assert!(
            !secure_for_all_distributions(&s, &ViewSet::single(u.clone()), &schema, &domain)
                .unwrap()
                .secure
        );
        assert!(
            !secure_for_all_distributions(&s, &ViewSet::single(v.clone()), &schema, &domain)
                .unwrap()
                .secure
        );

        // Relative security U : S | V is verified on a domain-scaled instance
        // of the same example in `scaled_application_5_relative_security`;
        // the 4-ary original is too large for exhaustive polynomial checking.
    }

    #[test]
    fn scaled_application_5_relative_security() {
        // A binary-relation instance of the Application 5 / Corollary 5.5
        // structure: U = U1 ∧ U2, S = S1 ∧ S2, V = V1 ∧ V2 where the "1"
        // conjuncts live on R1-tuples, the "2" conjuncts on R2-tuples,
        // U1 ⇒ S1 and U2 ⇒ V2.
        let mut schema = Schema::new();
        schema.add_relation("R1", &["x", "y"]);
        schema.add_relation("R2", &["x", "y"]);
        let mut domain = Domain::with_constants(["a", "b"]);
        let u = parse_query("U() :- R1('a', x), R2('a', y)", &schema, &mut domain).unwrap();
        let s = parse_query("S() :- R1(z1, z2), R2('a', 'b')", &schema, &mut domain).unwrap();
        let v = parse_query("V() :- R1('a', 'b'), R2(w1, w2)", &schema, &mut domain).unwrap();

        // S is insecure with respect to U and to V taken alone.
        assert!(
            !secure_for_all_distributions(&s, &ViewSet::single(u.clone()), &schema, &domain)
                .unwrap()
                .secure
        );
        assert!(
            !secure_for_all_distributions(&s, &ViewSet::single(v.clone()), &schema, &domain)
                .unwrap()
                .secure
        );

        // But given U, publishing V discloses nothing more about S.
        let space = support_space(&[&u, &s, &v], &domain, 1 << 10).unwrap();
        assert!(space.len() <= 8);
        assert!(
            secure_given_prior_view_boolean(&u, &s, &v, &space).unwrap(),
            "U : S | V must hold for the Corollary 5.5 structure"
        );

        // Sanity check of the criterion's discriminative power: swapping the
        // implication direction (a prior view that does NOT imply S1) fails.
        let mut domain2 = domain.clone();
        let weak_prior = parse_query("U2() :- R2('a', q)", &schema, &mut domain2).unwrap();
        let space2 = support_space(&[&weak_prior, &s, &v], &domain2, 1 << 10).unwrap();
        assert!(
            !secure_given_prior_view_boolean(&weak_prior, &s, &v, &space2).unwrap(),
            "a prior view that does not already cover the R1 side cannot protect"
        );
    }

    #[test]
    fn relative_security_over_a_dictionary() {
        // Over R(x, y) with D = {a, b}: publishing U(x) :- R(x, y) first, then
        // asking whether the identical view V(x) :- R(x, y) adds disclosure
        // about S(y) :- R(x, y): it does not (V is answerable from U), even
        // though S is insecure w.r.t. V alone.
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        let mut domain = Domain::with_constants(["a", "b"]);
        let u = parse_query("U(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let v = parse_query("V(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let s = parse_query("S(y) :- R(x, y)", &schema, &mut domain).unwrap();
        let dict = Dictionary::half(TupleSpace::full(&schema, &domain).unwrap());
        assert!(secure_given_prior_views_dict(
            &ViewSet::single(u),
            &s,
            &ViewSet::single(v.clone()),
            &dict
        )
        .unwrap());
        // but relative to an uninformative prior view, V does add disclosure
        let trivial_prior = parse_query("U2() :- R(x, y)", &schema, &mut domain).unwrap();
        assert!(!secure_given_prior_views_dict(
            &ViewSet::single(trivial_prior),
            &s,
            &ViewSet::single(v),
            &dict
        )
        .unwrap());
    }
}
