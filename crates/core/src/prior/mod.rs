//! Security in the presence of prior knowledge (Section 5).
//!
//! The adversary may know more than the dictionary: integrity constraints,
//! facts about specific tuples, previously published views, or bounds on the
//! database size. Definition 5.1 conditions both sides of the security
//! equation on that knowledge `K`, and Theorem 5.2 characterises when
//! security holds for every distribution (COND-K — equivalently, the
//! polynomial identity `f_{S∧V∧K}·f_K = f_{S∧K}·f_{V∧K}` of Eq. (8)).
//!
//! Sub-modules map to the paper's applications:
//!
//! | Module | Application (§5.2) |
//! |---|---|
//! | [`knowledge`] | the `K` representation, Definition 5.1 checks, the Eq. (8) polynomial criterion |
//! | [`keys`] | Application 2 — key constraints and Corollary 5.3 |
//! | [`cardinality`] | Application 3 — cardinality constraints destroy security |
//! | [`protect`] | Application 4 / Corollary 5.4 — protecting secrets by disclosing critical tuples |
//! | [`views`] | Application 5 / Corollary 5.5 — relative security w.r.t. previously published views |

pub mod cardinality;
pub mod keys;
pub mod knowledge;
pub mod protect;
pub mod views;

pub use cardinality::{cardinality_destroys_security, CardinalityConstraint};
pub use keys::{critical_tuples_under_keys, equivalent_under_keys, secure_under_keys, KeyVerdict};
pub use knowledge::{
    secure_given_knowledge, secure_given_knowledge_all_distributions_boolean, Knowledge,
};
pub use protect::{protective_knowledge, protective_knowledge_absent};
pub use views::{secure_given_prior_view_boolean, secure_given_prior_views_dict};
