//! Error type for the security decision procedures.

use qvsec_cq::CqError;
use qvsec_data::DataError;
use std::fmt;

/// Errors produced by the query-view security analyses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QvsError {
    /// An error from the data substrate.
    Data(DataError),
    /// An error from the conjunctive query engine.
    Query(CqError),
    /// The candidate critical-tuple space would be too large to enumerate.
    CandidateSpaceTooLarge {
        /// Number of candidate tuples required.
        required: u128,
        /// Configured cap.
        cap: usize,
    },
    /// A procedure requiring boolean queries was invoked with a non-boolean
    /// query.
    NotBoolean(String),
    /// A procedure requiring comparison-free queries was invoked with a
    /// query containing order predicates it cannot handle exactly.
    UnsupportedComparisons(String),
    /// A dictionary-level check was requested from an engine built without
    /// a dictionary.
    DictionaryRequired,
    /// Generic invariant violation.
    Invalid(String),
}

impl fmt::Display for QvsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QvsError::Data(e) => write!(f, "{e}"),
            QvsError::Query(e) => write!(f, "{e}"),
            QvsError::CandidateSpaceTooLarge { required, cap } => write!(
                f,
                "candidate tuple space of {required} tuples exceeds the cap of {cap}"
            ),
            QvsError::NotBoolean(name) => {
                write!(f, "query `{name}` must be boolean for this procedure")
            }
            QvsError::UnsupportedComparisons(name) => write!(
                f,
                "query `{name}` uses comparisons not supported exactly by this procedure"
            ),
            QvsError::DictionaryRequired => write!(
                f,
                "probabilistic audit depth requires an engine built with a dictionary"
            ),
            QvsError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for QvsError {}

impl From<DataError> for QvsError {
    fn from(e: DataError) -> Self {
        QvsError::Data(e)
    }
}

impl From<CqError> for QvsError {
    fn from(e: CqError) -> Self {
        QvsError::Query(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: QvsError = DataError::UnknownRelation("R".into()).into();
        assert!(e.to_string().contains('R'));
        let e: QvsError = CqError::UnsafeHeadVariable("x".into()).into();
        assert!(e.to_string().contains('x'));
        let e = QvsError::CandidateSpaceTooLarge {
            required: 1000,
            cap: 10,
        };
        assert!(e.to_string().contains("1000"));
        let e = QvsError::NotBoolean("S".into());
        assert!(e.to_string().contains('S'));
    }
}
