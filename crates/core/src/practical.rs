//! Practical security under the expected-constant-size model (Section 6.2).
//!
//! The follow-up model (Dalvi–Miklau–Suciu) replaces the fixed dictionary by
//! a family of dictionaries indexed by the domain size `n`: every tuple of a
//! relation of arity `k` has probability `S / n^k`, so the expected relation
//! size stays `S` while the domain grows. Writing `μ_n[Q]` for the
//! probability that a boolean query `Q` is true, the key fact is that
//! `μ_n[Q] = c / n^d + O(1/n^{d+1})` for computable constants `c, d`, and
//! *practical security* of `Q` w.r.t. `V` is defined as
//! `lim_n μ_n[Q | V] = 0`.
//!
//! This module computes the exponent `d` **exactly** for boolean conjunctive
//! queries without comparisons, by enumerating the quotient images of the
//! query (all ways of merging variables with each other or with the query's
//! constants) and minimising
//!
//! ```text
//! d(image) = Σ_{t ∈ image} arity(t)  −  #generic classes
//! ```
//!
//! The coefficient `c` is *estimated* as `Σ S^{|image|}` over the minimising
//! images (the exact constant requires the inclusion–exclusion analysis of
//! the ICDT'05 paper; the estimate preserves the classification
//! perfect / practically secure / practical disclosure, which only depends on
//! exponent comparisons and coefficient ratios of the minimising images).
//! Monte-Carlo evaluation at growing `n` is provided to validate the
//! exponents empirically (used by the benches and EXPERIMENTS.md).

use crate::{QvsError, Result};
use qvsec_cq::{ConjunctiveQuery, Term};
use qvsec_data::{Dictionary, Domain, Schema, TupleSpace, Value};
use qvsec_prob::montecarlo::MonteCarloEstimator;
use std::collections::BTreeSet;

/// The asymptotic behaviour of `μ_n[Q]`: `μ_n[Q] ≈ coefficient / n^exponent`.
#[derive(Debug, Clone, PartialEq)]
pub struct Asymptotics {
    /// The exponent `d` (exact).
    pub exponent: u32,
    /// The estimated coefficient `c` (in units of `S^k`; see module docs).
    pub coefficient: f64,
    /// Number of quotient images achieving the minimal exponent.
    pub minimizing_images: usize,
}

/// The practical-security classification of Section 6.2.
#[derive(Debug, Clone, PartialEq)]
pub enum PracticalVerdict {
    /// `lim μ_n[Q | V] = 0`: the disclosure is negligible for large domains.
    PracticallySecure,
    /// `0 < lim μ_n[Q | V] < 1` (estimated limit attached): a non-negligible
    /// disclosure.
    PracticalDisclosure {
        /// Estimated value of the limit `lim μ_n[Q | V]` (coefficient ratio).
        estimated_limit: f64,
    },
}

fn check_supported(query: &ConjunctiveQuery) -> Result<()> {
    if !query.is_boolean() {
        return Err(QvsError::NotBoolean(query.name.clone()));
    }
    if query.has_comparisons() {
        return Err(QvsError::UnsupportedComparisons(query.name.clone()));
    }
    Ok(())
}

/// Enumerates all functions from `0..n` onto "targets": either one of the
/// `constants` or a generic class index. Classes are canonicalised by first
/// occurrence so that each partition is produced once.
fn enumerate_quotients(num_vars: usize, num_constants: usize) -> Vec<Vec<usize>> {
    // target encoding: 0..num_constants are the constants; values >=
    // num_constants are generic classes (canonical: class k may only be used
    // after classes num_constants..num_constants+k-1 appeared).
    let mut out = Vec::new();
    let mut current = vec![0usize; num_vars];
    fn rec(
        idx: usize,
        num_vars: usize,
        num_constants: usize,
        current: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if idx == num_vars {
            out.push(current.clone());
            return;
        }
        let max_class_used = current[..idx]
            .iter()
            .filter(|&&t| t >= num_constants)
            .max()
            .copied();
        let next_fresh = match max_class_used {
            Some(m) => m + 1,
            None => num_constants,
        };
        for target in 0..=next_fresh {
            if target < num_constants || target <= next_fresh {
                current[idx] = target;
                rec(idx + 1, num_vars, num_constants, current, out);
            }
        }
    }
    if num_vars == 0 {
        out.push(Vec::new());
    } else {
        rec(0, num_vars, num_constants, &mut current, &mut out);
    }
    out
}

/// Computes the exact asymptotic exponent `d` and the estimated coefficient
/// of `μ_n[Q]` under the expected-size model with per-relation expected size
/// `expected_size`.
pub fn asymptotics(
    query: &ConjunctiveQuery,
    schema: &Schema,
    expected_size: f64,
) -> Result<Asymptotics> {
    check_supported(query)?;
    let vars: Vec<_> = query.variables().collect();
    let constants: Vec<Value> = query.constants().into_iter().collect();
    let quotients = enumerate_quotients(vars.len(), constants.len());
    let mut best_exponent = u32::MAX;
    let mut best: Vec<(usize, u32)> = Vec::new(); // (num image tuples, exponent)
    for quotient in &quotients {
        // Build the image instance under this quotient. Generic classes get
        // synthetic values beyond the constant range.
        let value_of = |term: &Term| -> u64 {
            match term {
                Term::Const(c) => {
                    // identify the constant with its index among `constants`
                    constants.iter().position(|&x| x == *c).unwrap() as u64
                }
                Term::Var(v) => {
                    let vi = vars.iter().position(|x| x == v).unwrap();
                    quotient[vi] as u64
                }
            }
        };
        let mut image: BTreeSet<(u32, Vec<u64>)> = BTreeSet::new();
        for atom in &query.atoms {
            image.insert((atom.relation.0, atom.terms.iter().map(&value_of).collect()));
        }
        let total_arity: u32 = image
            .iter()
            .map(|(rel, _)| schema.arity(qvsec_data::RelationId(*rel)) as u32)
            .sum();
        let generic_classes: BTreeSet<usize> = quotient
            .iter()
            .copied()
            .filter(|&t| t >= constants.len())
            .collect();
        let exponent = total_arity.saturating_sub(generic_classes.len() as u32);
        if exponent < best_exponent {
            best_exponent = exponent;
            best.clear();
        }
        if exponent == best_exponent {
            best.push((image.len(), exponent));
        }
    }
    let coefficient: f64 = best
        .iter()
        .map(|(num_tuples, _)| expected_size.powi(*num_tuples as i32))
        .sum();
    Ok(Asymptotics {
        exponent: best_exponent,
        coefficient,
        minimizing_images: best.len(),
    })
}

/// Conjoins two boolean queries into a single boolean query with renamed-apart
/// variables (used for `μ_n[Q ∧ V]`).
pub fn conjoin(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> ConjunctiveQuery {
    let mut out = ConjunctiveQuery::new(&format!("{}_and_{}", q1.name, q2.name));
    let map_query = |src: &ConjunctiveQuery, out: &mut ConjunctiveQuery, prefix: &str| {
        let mapping: Vec<_> = src
            .variables()
            .map(|v| out.add_var(&format!("{prefix}{}", src.var_name(v))))
            .collect();
        for atom in &src.atoms {
            let terms = atom
                .terms
                .iter()
                .map(|t| match t {
                    Term::Var(v) => Term::Var(mapping[v.index()]),
                    Term::Const(c) => Term::Const(*c),
                })
                .collect();
            out.atoms.push(qvsec_cq::Atom::new(atom.relation, terms));
        }
    };
    map_query(q1, &mut out, "l_");
    map_query(q2, &mut out, "r_");
    out
}

/// Classifies the disclosure of `V` about `Q` in the limit of large domains:
/// practically secure iff `d(Q ∧ V) > d(V)`.
pub fn practical_security(
    secret: &ConjunctiveQuery,
    view: &ConjunctiveQuery,
    schema: &Schema,
    expected_size: f64,
) -> Result<PracticalVerdict> {
    check_supported(secret)?;
    check_supported(view)?;
    let joint = conjoin(secret, view);
    let a_joint = asymptotics(&joint, schema, expected_size)?;
    let a_view = asymptotics(view, schema, expected_size)?;
    if a_joint.exponent > a_view.exponent {
        Ok(PracticalVerdict::PracticallySecure)
    } else {
        Ok(PracticalVerdict::PracticalDisclosure {
            estimated_limit: (a_joint.coefficient / a_view.coefficient).min(1.0),
        })
    }
}

/// Empirically estimates `μ_n[Q]` at a specific domain size `n` under the
/// expected-size model, by Monte-Carlo sampling (exact enumeration where the
/// tuple space is small enough is performed by the caller through
/// `qvsec_prob::probability`).
pub fn estimate_mu_n(
    query: &ConjunctiveQuery,
    schema: &Schema,
    n: usize,
    expected_size: u32,
    samples: usize,
    seed: u64,
) -> Result<f64> {
    let domain = Domain::with_size(n);
    let space = TupleSpace::full_with_cap(schema, &domain, 1 << 20)?;
    let dict = Dictionary::expected_size(schema, &domain, space, expected_size)?;
    let mc = MonteCarloEstimator::new(&dict, samples, seed);
    Ok(mc.boolean_probability(query))
}

/// Returns the tuples of the canonical (most-general, all-variables-distinct)
/// image of a query — a convenience used by benches to report image sizes.
pub fn canonical_image_size(query: &ConjunctiveQuery) -> usize {
    let mut image: BTreeSet<(u32, Vec<String>)> = BTreeSet::new();
    for atom in &query.atoms {
        image.insert((
            atom.relation.0,
            atom.terms
                .iter()
                .map(|t| match t {
                    Term::Var(v) => format!("v{}", v.0),
                    Term::Const(c) => format!("c{}", c.0),
                })
                .collect(),
        ));
    }
    image.len()
}

/// Helper for tests and benches: the expected-size dictionary over a domain
/// of size `n`.
pub fn expected_size_dictionary(
    schema: &Schema,
    n: usize,
    expected_size: u32,
) -> Result<(Domain, Dictionary)> {
    let domain = Domain::with_size(n);
    let space = TupleSpace::full_with_cap(schema, &domain, 1 << 20)?;
    let dict = Dictionary::expected_size(schema, &domain, space, expected_size)?;
    Ok((domain, dict))
}

/// The tuple-probability used by the expected-size model for a relation of
/// the given arity, exposed for documentation and experiment scripts.
pub fn model_tuple_probability(n: usize, arity: usize, expected_size: f64) -> f64 {
    (expected_size / (n as f64).powi(arity as i32)).min(1.0)
}

/// A convenience wrapper bundling a query with its asymptotics, used by the
/// benchmark harness to print table rows.
#[derive(Debug, Clone)]
pub struct AsymptoticRow {
    /// Query name.
    pub name: String,
    /// Exponent `d`.
    pub exponent: u32,
    /// Estimated coefficient.
    pub coefficient: f64,
}

/// Computes [`AsymptoticRow`]s for a batch of queries.
pub fn asymptotic_table(
    queries: &[ConjunctiveQuery],
    schema: &Schema,
    expected_size: f64,
) -> Result<Vec<AsymptoticRow>> {
    queries
        .iter()
        .map(|q| {
            asymptotics(q, schema, expected_size).map(|a| AsymptoticRow {
                name: q.name.clone(),
                exponent: a.exponent,
                coefficient: a.coefficient,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvsec_cq::parse_query;

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_relation("R", &["x", "y"]);
        s
    }

    #[test]
    fn exponent_of_edge_existence_is_zero() {
        // Q() :- R(x, y): the expected number of edges is constant, so
        // μ_n[Q] → 1 − e^{-S}: exponent 0.
        let schema = schema();
        let mut domain = Domain::new();
        let q = parse_query("Q() :- R(x, y)", &schema, &mut domain).unwrap();
        let a = asymptotics(&q, &schema, 2.0).unwrap();
        assert_eq!(a.exponent, 0);
    }

    #[test]
    fn exponent_of_self_loop_is_one() {
        // Q() :- R(x, x): ~n candidate loops each with probability S/n²,
        // so μ_n ≈ S/n: exponent 1.
        let schema = schema();
        let mut domain = Domain::new();
        let q = parse_query("Q() :- R(x, x)", &schema, &mut domain).unwrap();
        let a = asymptotics(&q, &schema, 2.0).unwrap();
        assert_eq!(a.exponent, 1);
    }

    #[test]
    fn exponent_of_specific_tuple_is_the_arity() {
        // Q() :- R('a', 'b'): probability S/n²: exponent 2.
        let schema = schema();
        let mut domain = Domain::new();
        let q = parse_query("Q() :- R('a', 'b')", &schema, &mut domain).unwrap();
        let a = asymptotics(&q, &schema, 2.0).unwrap();
        assert_eq!(a.exponent, 2);
    }

    #[test]
    fn exponent_of_a_path_of_length_two() {
        // Q() :- R(x, y), R(y, z): expected number of 2-paths is S²·n³/n⁴ =
        // S²/n: exponent 1 (the collapsed single-edge image x=y=z has
        // exponent 2−1 = 1 as well; either way d = 1).
        let schema = schema();
        let mut domain = Domain::new();
        let q = parse_query("Q() :- R(x, y), R(y, z)", &schema, &mut domain).unwrap();
        let a = asymptotics(&q, &schema, 2.0).unwrap();
        assert_eq!(a.exponent, 1);
    }

    #[test]
    fn practical_security_classification() {
        let schema = schema();
        let mut domain = Domain::new();
        // V reveals whether any edge leaves 'a'; Q asks about a specific tuple
        // not sharing structure: practically secure (d(QV) > d(V)).
        let v = parse_query("V() :- R(x, y)", &schema, &mut domain).unwrap();
        let q = parse_query("Q() :- R('a', 'b')", &schema, &mut domain).unwrap();
        assert_eq!(
            practical_security(&q, &v, &schema, 2.0).unwrap(),
            PracticalVerdict::PracticallySecure
        );

        // V = Q: the limit of μ_n[Q | V] is 1 — a practical disclosure.
        match practical_security(&q, &q, &schema, 2.0).unwrap() {
            PracticalVerdict::PracticalDisclosure { estimated_limit } => {
                assert!(estimated_limit > 0.0 && estimated_limit <= 1.0);
            }
            other => panic!("expected practical disclosure, got {other:?}"),
        }
    }

    #[test]
    fn monte_carlo_estimates_decay_with_the_predicted_exponent() {
        // Q() :- R(x, x) has exponent 1: doubling n should roughly halve the
        // probability (up to sampling noise).
        let schema = schema();
        let mut domain = Domain::new();
        let q = parse_query("Q() :- R(x, x)", &schema, &mut domain).unwrap();
        let p8 = estimate_mu_n(&q, &schema, 8, 4, 6000, 3).unwrap();
        let p16 = estimate_mu_n(&q, &schema, 16, 4, 6000, 3).unwrap();
        assert!(p8 > p16, "μ_n must decrease with n: {p8} vs {p16}");
        let ratio = p8 / p16.max(1e-6);
        assert!(
            ratio > 1.3 && ratio < 3.5,
            "decay ratio {ratio} inconsistent with d = 1"
        );
    }

    #[test]
    fn unsupported_queries_are_rejected() {
        let schema = schema();
        let mut domain = Domain::new();
        let non_boolean = parse_query("Q(x) :- R(x, y)", &schema, &mut domain).unwrap();
        assert!(matches!(
            asymptotics(&non_boolean, &schema, 2.0),
            Err(QvsError::NotBoolean(_))
        ));
        let with_cmp = parse_query("Q() :- R(x, y), x < y", &schema, &mut domain).unwrap();
        assert!(matches!(
            asymptotics(&with_cmp, &schema, 2.0),
            Err(QvsError::UnsupportedComparisons(_))
        ));
    }

    #[test]
    fn conjoin_renames_variables_apart() {
        let schema = schema();
        let mut domain = Domain::new();
        let q1 = parse_query("Q1() :- R(x, y)", &schema, &mut domain).unwrap();
        let q2 = parse_query("Q2() :- R(x, x)", &schema, &mut domain).unwrap();
        let joint = conjoin(&q1, &q2);
        assert_eq!(joint.atoms.len(), 2);
        assert_eq!(joint.num_vars(), 3, "x/y from Q1 plus x from Q2");
        assert_eq!(canonical_image_size(&joint), 2);
    }

    #[test]
    fn model_probability_and_table_helpers() {
        assert!((model_tuple_probability(10, 2, 3.0) - 0.03).abs() < 1e-12);
        assert_eq!(model_tuple_probability(1, 2, 5.0), 1.0, "clamped at 1");
        let schema = schema();
        let mut domain = Domain::new();
        let q1 = parse_query("A() :- R(x, y)", &schema, &mut domain).unwrap();
        let q2 = parse_query("B() :- R(x, x)", &schema, &mut domain).unwrap();
        let table = asymptotic_table(&[q1, q2], &schema, 2.0).unwrap();
        assert_eq!(table.len(), 2);
        assert_eq!(table[0].exponent, 0);
        assert_eq!(table[1].exponent, 1);
        let (_, dict) = expected_size_dictionary(&schema, 4, 2).unwrap();
        assert_eq!(dict.len(), 16);
    }
}
