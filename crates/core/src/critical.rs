//! Critical tuples (Definition 4.4) — the criterion-based decision procedure.
//!
//! A tuple `t ∈ tup(D)` is *critical* for a query `Q` if there exists an
//! instance `I` with `Q(I − {t}) ≠ Q(I)`. Critical tuples are the bridge
//! between probability and logic: Theorem 4.5 shows that `S` is secure with
//! respect to `V̄` for **every** tuple-independent distribution iff
//! `crit_D(S) ∩ crit_D(V̄) = ∅`.
//!
//! Deciding criticality is Πᵖ₂-complete in the size of the query
//! (Theorem 4.10), so any exact procedure is exponential in the worst case.
//! The procedure implemented here follows the structure of the Appendix A
//! proof rather than enumerating all instances:
//!
//! 1. Only *minimal* instances (images `h(Q)` of the query itself) and among
//!    those only *fine* instances need to be considered (Proposition A.1).
//!    A fine instance is determined by the set `G` of subgoals mapped onto
//!    `t`: the variables of `G` are bound by unifying `G` with `t`, every
//!    other variable is frozen to a distinct fresh constant.
//! 2. `t` is critical iff for some non-empty, simultaneously unifiable `G`
//!    there is **no** homomorphism from `Q` into `I_G − {t}` that reproduces
//!    the head answer `h_G(head)`.
//!
//! The search is exponential only in the number of subgoals that unify with
//! `t` (usually one or two), not in the domain or instance size.
//!
//! ### Comparison predicates
//!
//! Equality and disequality comparisons are handled exactly. Order
//! predicates (`<`, `<=`) are honoured under the canonical placement of fresh
//! constants (fresh constants are pairwise distinct and larger than all
//! existing constants); this placement is sufficient for the query classes
//! used in the paper, and the brute-force procedure in
//! [`crate::critical_bruteforce`] remains the reference oracle for small
//! domains (the two are cross-checked by property tests).

use crate::{QvsError, Result};
use qvsec_cq::homomorphism::answer_survives;
use qvsec_cq::unification::unify_atoms_with_tuple;
use qvsec_cq::{CanonicalDatabase, ConjunctiveQuery, VarId, ViewSet};
use qvsec_data::{Domain, Tuple, Value};
use qvsec_prob::lineage::atom_groundings;
use std::collections::{BTreeSet, HashMap};

/// Default cap on the number of candidate tuples enumerated by
/// [`critical_tuples`] and the intersection helpers.
pub const DEFAULT_CANDIDATE_CAP: usize = 250_000;

/// Decides whether `tuple` is critical for `query` (Definition 4.4), using
/// the fine-instance procedure described in the module documentation.
///
/// `domain` must contain every constant of the query and of the tuple; fresh
/// constants needed for freezing are drawn from a private extension and never
/// leak into `domain`.
pub fn is_critical(query: &ConjunctiveQuery, tuple: &Tuple, domain: &Domain) -> bool {
    // Subgoals that can individually be mapped onto the tuple.
    let unifiable: Vec<usize> = query
        .atoms
        .iter()
        .enumerate()
        .filter(|(_, atom)| qvsec_cq::unify_atom_with_tuple(atom, tuple).is_some())
        .map(|(i, _)| i)
        .collect();
    if unifiable.is_empty() {
        return false;
    }
    // Enumerate every non-empty subset G of the unifiable subgoals.
    let k = unifiable.len();
    for mask in 1u64..(1u64 << k) {
        let atoms: Vec<&qvsec_cq::Atom> = (0..k)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| &query.atoms[unifiable[i]])
            .collect();
        let Some(subst) = unify_atoms_with_tuple(&atoms, tuple) else {
            continue;
        };
        let pinned: HashMap<VarId, Value> = subst.iter().collect();
        let canon = CanonicalDatabase::freeze_with(query, domain, &pinned);
        // The frozen assignment must satisfy the query's comparisons for I_G
        // to witness Q(I_G) ≠ ∅ through h_G.
        let assignment: Vec<Option<Value>> =
            query.variables().map(|v| Some(canon.value_of(v))).collect();
        if !qvsec_cq::comparisons::check_all(&query.comparisons, &assignment) {
            continue;
        }
        debug_assert!(canon.instance.contains(tuple), "I_G must contain t");
        // t is critical iff the answer h_G(head) does not survive removing t.
        if !answer_survives(query, &canon.instance, &canon.head_answer, Some(tuple)) {
            return true;
        }
    }
    false
}

/// All candidate critical tuples of a query over a domain: the ground
/// instantiations of its subgoals. Every critical tuple is among them
/// (a critical tuple must be a homomorphic image of a subgoal, Section 4.2).
pub fn critical_candidates(
    query: &ConjunctiveQuery,
    domain: &Domain,
    cap: usize,
) -> Result<BTreeSet<Tuple>> {
    let mut required: u128 = 0;
    for atom in &query.atoms {
        required = required
            .saturating_add((domain.len() as u128).saturating_pow(atom.variables().len() as u32));
    }
    if required > cap as u128 {
        return Err(QvsError::CandidateSpaceTooLarge { required, cap });
    }
    let mut out = BTreeSet::new();
    for atom in &query.atoms {
        out.extend(atom_groundings(atom, domain));
    }
    Ok(out)
}

/// Computes `crit_D(Q)` exactly over the given domain (with the default
/// candidate cap).
pub fn critical_tuples(query: &ConjunctiveQuery, domain: &Domain) -> Result<BTreeSet<Tuple>> {
    critical_tuples_with_cap(query, domain, DEFAULT_CANDIDATE_CAP)
}

/// Computes `crit_D(Q)` exactly over the given domain with an explicit cap on
/// the candidate enumeration.
pub fn critical_tuples_with_cap(
    query: &ConjunctiveQuery,
    domain: &Domain,
    cap: usize,
) -> Result<BTreeSet<Tuple>> {
    let candidates = critical_candidates(query, domain, cap)?;
    Ok(candidates
        .into_iter()
        .filter(|t| is_critical(query, t, domain))
        .collect())
}

/// Computes `crit_D(S) ∩ crit_D(V̄)` — the common critical tuples whose
/// emptiness characterises dictionary-independent security (Theorem 4.5).
///
/// Candidates are restricted to tuples that are subgoal instantiations of
/// **both** sides, so the enumeration stays proportional to the overlap.
pub fn common_critical_tuples(
    secret: &ConjunctiveQuery,
    views: &ViewSet,
    domain: &Domain,
    cap: usize,
) -> Result<Vec<Tuple>> {
    let secret_candidates = critical_candidates(secret, domain, cap)?;
    let mut view_candidates: BTreeSet<Tuple> = BTreeSet::new();
    for v in views.iter() {
        view_candidates.extend(critical_candidates(v, domain, cap)?);
    }
    let mut common = Vec::new();
    for t in secret_candidates.intersection(&view_candidates) {
        if is_critical(secret, t, domain) && views.iter().any(|v| is_critical(v, t, domain)) {
            common.push(t.clone());
        }
    }
    Ok(common)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvsec_cq::parse_query;
    use qvsec_data::Schema;

    fn setup() -> (Schema, Domain) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        schema.add_relation("T", &["a", "b", "c", "d", "e"]);
        schema.add_relation("Employee", &["name", "department", "phone"]);
        (schema, Domain::with_constants(["a", "b"]))
    }

    fn t(schema: &Schema, domain: &Domain, rel: &str, vals: &[&str]) -> Tuple {
        Tuple::from_names(schema, domain, rel, vals).unwrap()
    }

    #[test]
    fn every_tuple_is_critical_for_full_projection_views() {
        // Example 4.6: for V(x) :- R(x, y) and S(y) :- R(x, y) every tuple of
        // tup(D) is critical.
        let (schema, mut domain) = setup();
        let v = parse_query("V(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let s = parse_query("S(y) :- R(x, y)", &schema, &mut domain).unwrap();
        for rel_tuple in [("a", "a"), ("a", "b"), ("b", "a"), ("b", "b")] {
            let tuple = t(&schema, &domain, "R", &[rel_tuple.0, rel_tuple.1]);
            assert!(is_critical(&v, &tuple, &domain), "{tuple} critical for V");
            assert!(is_critical(&s, &tuple, &domain), "{tuple} critical for S");
        }
        assert_eq!(critical_tuples(&v, &domain).unwrap().len(), 4);
    }

    #[test]
    fn example_4_7_critical_sets_are_disjoint() {
        // V(x) :- R(x, 'b'): crit = {R(a,b), R(b,b)};
        // S(y) :- R(y, 'a'): crit = {R(a,a), R(b,a)}.
        let (schema, mut domain) = setup();
        let v = parse_query("V(x) :- R(x, 'b')", &schema, &mut domain).unwrap();
        let s = parse_query("S(y) :- R(y, 'a')", &schema, &mut domain).unwrap();
        let crit_v = critical_tuples(&v, &domain).unwrap();
        let crit_s = critical_tuples(&s, &domain).unwrap();
        let expected_v: BTreeSet<Tuple> = [
            t(&schema, &domain, "R", &["a", "b"]),
            t(&schema, &domain, "R", &["b", "b"]),
        ]
        .into_iter()
        .collect();
        let expected_s: BTreeSet<Tuple> = [
            t(&schema, &domain, "R", &["a", "a"]),
            t(&schema, &domain, "R", &["b", "a"]),
        ]
        .into_iter()
        .collect();
        assert_eq!(crit_v, expected_v);
        assert_eq!(crit_s, expected_s);
        assert!(crit_v.is_disjoint(&crit_s));
        let common = common_critical_tuples(&s, &ViewSet::single(v), &domain, 1000).unwrap();
        assert!(common.is_empty());
    }

    #[test]
    fn section_4_2_example_tuple_is_not_critical() {
        // Q() :- T(x,y,z,z,u), T(x,x,x,y,y) and t = T(a,a,b,b,c): the paper
        // shows t is a homomorphic image of the first subgoal yet NOT
        // critical, because any instance mapping the first subgoal to t
        // forces T(a,a,a,a,a) to be present, which also satisfies the query.
        let (schema, mut domain) = setup();
        domain.add("c");
        let q = parse_query(
            "Q() :- T(x, y, z, z, u), T(x, x, x, y, y)",
            &schema,
            &mut domain,
        )
        .unwrap();
        let tuple = t(&schema, &domain, "T", &["a", "a", "b", "b", "c"]);
        assert!(!is_critical(&q, &tuple, &domain));
        // whereas the collapsed tuple T(a,a,a,a,a) IS critical
        let diag = t(&schema, &domain, "T", &["a", "a", "a", "a", "a"]);
        assert!(is_critical(&q, &diag, &domain));
    }

    #[test]
    fn simple_boolean_query_criticality() {
        // Q() :- R('a', x): every tuple R(a, v) is critical, tuples R(b, v)
        // are not (they are not even candidates).
        let (schema, mut domain) = setup();
        let q = parse_query("Q() :- R('a', x)", &schema, &mut domain).unwrap();
        assert!(is_critical(
            &q,
            &t(&schema, &domain, "R", &["a", "a"]),
            &domain
        ));
        assert!(is_critical(
            &q,
            &t(&schema, &domain, "R", &["a", "b"]),
            &domain
        ));
        assert!(!is_critical(
            &q,
            &t(&schema, &domain, "R", &["b", "a"]),
            &domain
        ));
        let crit = critical_tuples(&q, &domain).unwrap();
        assert_eq!(crit.len(), 2);
    }

    #[test]
    fn selection_views_have_disjoint_critical_sets_across_departments() {
        // Table 1 row (4): V4(n) :- Employee(n,'Mgmt',p) vs
        // S4(n) :- Employee(n,'HR',p).
        let (schema, mut domain) = setup();
        let v = parse_query("V4(n) :- Employee(n, 'Mgmt', p)", &schema, &mut domain).unwrap();
        let s = parse_query("S4(n) :- Employee(n, 'HR', p)", &schema, &mut domain).unwrap();
        let common = common_critical_tuples(&s, &ViewSet::single(v), &domain, 10_000).unwrap();
        assert!(common.is_empty());
    }

    #[test]
    fn redundant_subgoal_does_not_create_phantom_criticality() {
        // Q(x) :- R(x, y), R(x, w): the second subgoal is redundant; critical
        // tuples are exactly those of Q(x) :- R(x, y).
        let (schema, mut domain) = setup();
        let q = parse_query("Q(x) :- R(x, y), R(x, w)", &schema, &mut domain).unwrap();
        let q_min = parse_query("Qm(x) :- R(x, y)", &schema, &mut domain).unwrap();
        assert_eq!(
            critical_tuples(&q, &domain).unwrap(),
            critical_tuples(&q_min, &domain).unwrap()
        );
    }

    #[test]
    fn comparisons_restrict_critical_tuples() {
        // Q() :- R(x, y), x != y : the diagonal tuples R(a,a), R(b,b) are not
        // critical, the off-diagonal ones are.
        let (schema, mut domain) = setup();
        let q = parse_query("Q() :- R(x, y), x != y", &schema, &mut domain).unwrap();
        assert!(is_critical(
            &q,
            &t(&schema, &domain, "R", &["a", "b"]),
            &domain
        ));
        assert!(is_critical(
            &q,
            &t(&schema, &domain, "R", &["b", "a"]),
            &domain
        ));
        assert!(!is_critical(
            &q,
            &t(&schema, &domain, "R", &["a", "a"]),
            &domain
        ));
        assert!(!is_critical(
            &q,
            &t(&schema, &domain, "R", &["b", "b"]),
            &domain
        ));
    }

    #[test]
    fn ground_query_is_critical_only_for_its_own_tuple() {
        let (schema, mut domain) = setup();
        let q = parse_query("Q() :- R('a', 'b')", &schema, &mut domain).unwrap();
        let crit = critical_tuples(&q, &domain).unwrap();
        assert_eq!(crit.len(), 1);
        assert!(crit.contains(&t(&schema, &domain, "R", &["a", "b"])));
    }

    #[test]
    fn candidate_cap_is_enforced() {
        let (schema, mut domain) = setup();
        let q = parse_query("Q() :- T(a, b, c, d, e)", &schema, &mut domain).unwrap();
        let big_domain = Domain::with_size(20);
        // 20^5 candidates is far above a cap of 1000
        assert!(matches!(
            critical_tuples_with_cap(&q, &big_domain, 1000),
            Err(QvsError::CandidateSpaceTooLarge { .. })
        ));
        // but fine over the 2-constant domain
        assert!(critical_tuples(&q, &domain).is_ok());
    }

    #[test]
    fn tuples_of_other_relations_are_never_critical() {
        let (schema, mut domain) = setup();
        let q = parse_query("Q(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let other = t(&schema, &domain, "Employee", &["a", "a", "a"]);
        assert!(!is_critical(&q, &other, &domain));
    }
}
