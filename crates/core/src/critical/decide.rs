//! The per-tuple criticality decision (Definition 4.4) with pruning layers.
//!
//! The fine-instance procedure of Appendix A is exponential only in the
//! number of subgoals that unify with the tuple under test — but the
//! expensive unit of work is *freezing* a fine instance `I_G` and searching
//! it for a surviving homomorphism. Three pruning layers run before any
//! freeze:
//!
//! 1. **Unification prefilter** — `O(atoms · arity)`: a tuple no subgoal
//!    unifies with is rejected immediately (no subset walk at all).
//! 2. **Comparison-constraint propagation** — a subgoal whose own binding
//!    already violates a grounded comparison is dropped from the walk (every
//!    superset extends the binding, so every superset fails too); during the
//!    walk, each unified subset's pinned bindings are checked against the
//!    grounded comparisons *before* freezing.
//! 3. **Duplicate-subgoal dedup** — syntactically identical subgoals
//!    constrain `I_G` identically, so only one representative enters the
//!    `2^k` walk (each duplicate removed halves the walk).
//!
//! The layers are pure optimizations: they never change the verdict, which
//! is cross-validated against the literal Definition 4.4 oracle
//! ([`crate::critical_bruteforce`]) by unit and property tests.

use super::stats::CritStats;
use qvsec_cq::comparisons::{check_all, check_grounded};
use qvsec_cq::indexed::IndexedInstance;
use qvsec_cq::unification::{unify_atom_with_tuple, unify_atoms_with_tuple, Substitution};
use qvsec_cq::{Atom, CanonicalDatabase, ConjunctiveQuery, VarId};
use qvsec_data::{Domain, Tuple, Value};
use std::collections::HashMap;

/// Decides whether `tuple` is critical for `query` (Definition 4.4), using
/// the pruned fine-instance procedure described in the module documentation.
///
/// `domain` must contain every constant of the query and of the tuple; fresh
/// constants needed for freezing are drawn from a private extension and never
/// leak into `domain`.
pub fn is_critical(query: &ConjunctiveQuery, tuple: &Tuple, domain: &Domain) -> bool {
    is_critical_traced(query, tuple, domain, &CritStats::new())
}

/// [`is_critical`] with pruning counters recorded into `stats`.
pub fn is_critical_traced(
    query: &ConjunctiveQuery,
    tuple: &Tuple,
    domain: &Domain,
    stats: &CritStats,
) -> bool {
    stats.add_decision();
    let var_count = query.variables().count();
    // Layers 2a/2b and the post-freeze comparison check are no-ops for
    // comparison-free queries (the common case); skip their allocations.
    let has_comparisons = !query.comparisons.is_empty();

    // Layer 1: the O(atoms) unification prefilter.
    let unifiable: Vec<(&Atom, Substitution)> = query
        .atoms
        .iter()
        .filter_map(|atom| unify_atom_with_tuple(atom, tuple).map(|s| (atom, s)))
        .collect();
    if unifiable.is_empty() {
        stats.add_prefilter_prune();
        return false;
    }

    // Layer 2a: drop subgoals whose own binding already violates a grounded
    // comparison — every subset containing them extends the same binding.
    let surviving: Vec<&Atom> = unifiable
        .iter()
        .filter(|(_, subst)| {
            if !has_comparisons {
                return true;
            }
            let assignment = partial_assignment(subst, var_count);
            let ok = check_grounded(&query.comparisons, &assignment);
            if !ok {
                stats.add_comparison_prune();
            }
            ok
        })
        .map(|(atom, _)| *atom)
        .collect();
    if surviving.is_empty() {
        return false;
    }

    // Layer 3: one representative per syntactically identical subgoal.
    let mut atoms: Vec<&Atom> = Vec::with_capacity(surviving.len());
    for atom in surviving {
        if atoms.contains(&atom) {
            stats.add_duplicate_atoms(1);
        } else {
            atoms.push(atom);
        }
    }

    // Enumerate every non-empty subset G of the remaining subgoals.
    let k = atoms.len();
    for mask in 1u64..(1u64 << k) {
        stats.add_subset_walked();
        let subset: Vec<&Atom> = (0..k)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| atoms[i])
            .collect();
        let Some(subst) = unify_atoms_with_tuple(&subset, tuple) else {
            continue;
        };
        // Layer 2b: pinned bindings vs. grounded comparisons, before freeze.
        if has_comparisons {
            let assignment = partial_assignment(&subst, var_count);
            if !check_grounded(&query.comparisons, &assignment) {
                stats.add_comparison_prune();
                continue;
            }
        }
        stats.add_freeze();
        let pinned: HashMap<VarId, Value> = subst.iter().collect();
        let canon = CanonicalDatabase::freeze_with(query, domain, &pinned);
        // The frozen assignment must satisfy the query's comparisons for I_G
        // to witness Q(I_G) ≠ ∅ through h_G (order comparisons can only be
        // settled once fresh constants are placed).
        if has_comparisons {
            let full: Vec<Option<Value>> =
                query.variables().map(|v| Some(canon.value_of(v))).collect();
            if !check_all(&query.comparisons, &full) {
                continue;
            }
        }
        debug_assert!(canon.instance.contains(tuple), "I_G must contain t");
        // t is critical iff the answer h_G(head) does not survive removing
        // t. The fine instance is interned as a bitset-indexed tuple space:
        // each atom's candidates are one contiguous slice and `I_G − {t}`
        // is a cleared bit (no per-candidate tuple compares).
        let indexed = IndexedInstance::build(&canon.instance);
        if !indexed.answer_survives(query, &canon.head_answer, Some(tuple)) {
            return true;
        }
    }
    false
}

fn partial_assignment(subst: &Substitution, var_count: usize) -> Vec<Option<Value>> {
    let mut assignment = vec![None; var_count];
    for (v, val) in subst.iter() {
        assignment[v.index()] = Some(val);
    }
    assignment
}

/// The symmetry class of a candidate tuple relative to a sorted list of
/// anchored constants (the constants the queries mention, which domain
/// symmetries must fix).
///
/// Two tuples with equal patterns are related by a domain permutation fixing
/// every anchor, and criticality is invariant under such permutations as
/// long as no query involved uses order comparisons (`=`/`!=` are preserved
/// by any bijection; `<`/`<=` are not). The kernel therefore decides one
/// representative per pattern and copies the verdict to the whole class.
///
/// Patterns for tuples of arity ≤ 12 over ≤ 16 anchors pack into a single
/// `u64` (5 bits per position: anchor index, or `16 + i` for the `i`-th
/// distinct unanchored value), so the per-candidate grouping key costs no
/// heap allocation on realistic schemas; wider shapes fall back to an
/// explicit token vector.
#[derive(
    Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub(crate) enum TuplePattern {
    /// ≤ 12 positions, ≤ 16 anchors: 5 bits per position under a sentinel.
    Packed {
        /// The tuple's relation.
        relation: u32,
        /// Sentinel-prefixed 5-bit token stream.
        bits: u64,
    },
    /// The general shape: one token per position.
    Wide {
        /// The tuple's relation.
        relation: u32,
        /// `(is_class, anchor index or class index)` per position.
        tokens: Vec<(bool, u32)>,
    },
}

const PACKED_MAX_ARITY: usize = 12;
const PACKED_MAX_ANCHORS: usize = 16;

/// Computes the [`TuplePattern`] of `tuple` given the sorted anchors.
pub(crate) fn tuple_pattern(anchors: &[Value], tuple: &Tuple) -> TuplePattern {
    tuple_pattern_values(anchors, tuple.relation.0, &tuple.values)
}

/// [`tuple_pattern`] over a borrowed value slice — the form the streaming
/// grounding enumeration feeds (no `Tuple` is materialized to classify a
/// candidate).
pub(crate) fn tuple_pattern_values(
    anchors: &[Value],
    relation: u32,
    values: &[Value],
) -> TuplePattern {
    debug_assert!(anchors.windows(2).all(|w| w[0] < w[1]), "anchors sorted");
    if values.len() <= PACKED_MAX_ARITY && anchors.len() <= PACKED_MAX_ANCHORS {
        let mut classes: [Value; PACKED_MAX_ARITY] = [Value(0); PACKED_MAX_ARITY];
        let mut class_count = 0usize;
        let mut bits: u64 = 1; // length sentinel
        for &v in values {
            let token = match anchors.binary_search(&v) {
                Ok(i) => i as u64,
                Err(_) => {
                    let idx = match classes[..class_count].iter().position(|&c| c == v) {
                        Some(i) => i,
                        None => {
                            classes[class_count] = v;
                            class_count += 1;
                            class_count - 1
                        }
                    };
                    16 + idx as u64
                }
            };
            bits = (bits << 5) | token;
        }
        TuplePattern::Packed { relation, bits }
    } else {
        let mut classes: Vec<Value> = Vec::new();
        let tokens = values
            .iter()
            .map(|&v| match anchors.binary_search(&v) {
                Ok(i) => (false, i as u32),
                Err(_) => {
                    let idx = match classes.iter().position(|&c| c == v) {
                        Some(i) => i,
                        None => {
                            classes.push(v);
                            classes.len() - 1
                        }
                    };
                    (true, idx as u32)
                }
            })
            .collect();
        TuplePattern::Wide { relation, tokens }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvsec_cq::parse_query;
    use qvsec_data::Schema;

    #[test]
    fn tuple_patterns_collapse_symmetric_tuples_and_keep_anchors_apart() {
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        let mut domain = Domain::with_constants(["a", "b", "c", "d"]);
        let q = parse_query("Q(x) :- R(x, 'a')", &schema, &mut domain).unwrap();
        let anchors: Vec<Value> = q.constants().into_iter().collect();
        let t = |x: &str, y: &str| Tuple::from_names(&schema, &domain, "R", &[x, y]).unwrap();
        // (b, c) and (c, d) are symmetric: two distinct unanchored values.
        assert_eq!(
            tuple_pattern(&anchors, &t("b", "c")),
            tuple_pattern(&anchors, &t("c", "d"))
        );
        // (b, b) is a different class shape.
        assert_ne!(
            tuple_pattern(&anchors, &t("b", "c")),
            tuple_pattern(&anchors, &t("b", "b"))
        );
        // the anchored constant 'a' never merges with unanchored values.
        assert_ne!(
            tuple_pattern(&anchors, &t("a", "b")),
            tuple_pattern(&anchors, &t("c", "b"))
        );
        // same shape with the anchor in the same position collapses.
        assert_eq!(
            tuple_pattern(&anchors, &t("a", "b")),
            tuple_pattern(&anchors, &t("a", "d"))
        );
    }

    #[test]
    fn pruned_decision_counts_its_work() {
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        schema.add_relation("Other", &["z"]);
        let mut domain = Domain::with_constants(["a", "b"]);
        let q = parse_query("Q(x) :- R(x, y), R(x, w)", &schema, &mut domain).unwrap();
        let stats = CritStats::new();
        let t = Tuple::from_names(&schema, &domain, "R", &["a", "b"]).unwrap();
        assert!(is_critical_traced(&q, &t, &domain, &stats));
        let snap = stats.snapshot();
        assert_eq!(snap.decisions_run, 1);
        assert_eq!(snap.duplicate_atoms_skipped, 0, "R(x,y) and R(x,w) differ");
        // prefilter rejects tuples of other relations without a walk
        let other = Tuple::from_names(&schema, &domain, "Other", &["a"]).unwrap();
        assert!(!is_critical_traced(&q, &other, &domain, &stats));
        let snap = stats.snapshot();
        assert_eq!(snap.pruned_by_prefilter, 1);
        assert_eq!(
            snap.subsets_walked, 3,
            "only the first decision walked subsets"
        );
    }

    #[test]
    fn exactly_duplicate_subgoals_are_walked_once() {
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        let mut domain = Domain::with_constants(["a", "b"]);
        let q = parse_query("Q() :- R(x, y), R(x, y)", &schema, &mut domain).unwrap();
        let stats = CritStats::new();
        let t = Tuple::from_names(&schema, &domain, "R", &["a", "b"]).unwrap();
        assert!(is_critical_traced(&q, &t, &domain, &stats));
        assert_eq!(stats.snapshot().duplicate_atoms_skipped, 1);
    }

    #[test]
    fn comparison_propagation_rejects_before_freezing() {
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        let mut domain = Domain::with_constants(["a", "b"]);
        let q = parse_query("Q() :- R(x, y), x != y", &schema, &mut domain).unwrap();
        let stats = CritStats::new();
        let diag = Tuple::from_names(&schema, &domain, "R", &["a", "a"]).unwrap();
        assert!(!is_critical_traced(&q, &diag, &domain, &stats));
        let snap = stats.snapshot();
        assert_eq!(snap.instances_frozen, 0, "x != y prunes before any freeze");
        assert!(snap.pruned_by_comparisons >= 1);
    }
}
