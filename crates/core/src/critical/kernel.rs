//! The parallel, pruned `crit(Q)` kernel.
//!
//! [`critical_tuples`] and [`common_critical_tuples`] funnel every security
//! verdict of the engine through this module. The kernel interns the
//! candidate space once ([`super::candidates::candidate_space`]), then runs
//! the per-tuple decision of [`super::decide`] over it with two scheduling
//! layers on top:
//!
//! * **Symmetry collapse.** When no query involved uses order comparisons,
//!   criticality is invariant under domain permutations that fix the
//!   queries' constants, so candidates are grouped by
//!   [`super::decide::tuple_pattern`] and only one representative per group
//!   is decided — the verdict is copied to the rest. On projection-style
//!   workloads this collapses `O(|D|^arity)` decisions into a handful.
//! * **Parallel filter.** Representatives (or, with order comparisons, all
//!   candidates) are decided with `rayon`'s parallel iterator. Work is
//!   partitioned over contiguous chunks and the verdict vector is collected
//!   in input order, so the final `BTreeSet` merge is deterministic: the
//!   result is byte-identical to the sequential filter regardless of thread
//!   count.
//!
//! [`critical_tuples_seq`] preserves the pre-kernel sequential path (no
//! pruning layers, no parallelism) as the benchmark baseline; property tests
//! assert `kernel ≡ seq ≡ brute force`.

use super::candidates::{
    atom_grounding_key, candidate_space, critical_candidates, DEFAULT_CANDIDATE_CAP,
};
use super::decide::{is_critical_traced, tuple_pattern, tuple_pattern_values, TuplePattern};
use super::stats::CritStats;
use crate::{QvsError, Result};
use qvsec_cq::homomorphism::answer_survives;
use qvsec_cq::unification::unify_atoms_with_tuple;
use qvsec_cq::{CanonicalDatabase, ConjunctiveQuery, VarId, ViewSet};
use qvsec_data::{CandidateSet, Domain, RelationId, Tuple, Value};
use qvsec_prob::lineage::for_each_grounding;
use rayon::prelude::*;
use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, Mutex};

/// Computes `crit_D(Q)` exactly over the given domain (with the default
/// candidate cap).
///
/// ```
/// use qvsec::critical::critical_tuples;
/// use qvsec_cq::parse_query;
/// use qvsec_data::{Domain, Schema};
///
/// let mut schema = Schema::new();
/// schema.add_relation("R", &["x", "y"]);
/// let mut domain = Domain::with_constants(["a", "b"]);
///
/// // Example 4.7: crit(V) for V(x) :- R(x, 'b') is {R(a,b), R(b,b)}.
/// let v = parse_query("V(x) :- R(x, 'b')", &schema, &mut domain).unwrap();
/// let crit = critical_tuples(&v, &domain).unwrap();
/// let rendered: Vec<String> = crit
///     .iter()
///     .map(|t| t.display(&schema, &domain).to_string())
///     .collect();
/// assert_eq!(rendered, ["R(a, b)", "R(b, b)"]);
/// ```
pub fn critical_tuples(query: &ConjunctiveQuery, domain: &Domain) -> Result<BTreeSet<Tuple>> {
    critical_tuples_with_cap(query, domain, DEFAULT_CANDIDATE_CAP)
}

/// Computes `crit_D(Q)` with an explicit cap on the candidate enumeration.
pub fn critical_tuples_with_cap(
    query: &ConjunctiveQuery,
    domain: &Domain,
    cap: usize,
) -> Result<BTreeSet<Tuple>> {
    critical_tuples_traced(query, domain, cap, &CritStats::new())
}

/// [`critical_tuples_with_cap`] with pruning counters recorded into `stats`.
pub fn critical_tuples_traced(
    query: &ConjunctiveQuery,
    domain: &Domain,
    cap: usize,
    stats: &CritStats,
) -> Result<BTreeSet<Tuple>> {
    critical_tuples_shared(query, domain, cap, stats, None)
}

/// Shared, domain-size-independent symmetry-class verdicts for **one**
/// canonical query form (see [`qvsec_cq::CanonicalKey`]).
///
/// The criticality of a candidate depends only on its symmetry pattern —
/// which anchor constants it repeats and how its unanchored values alias —
/// never on how many constants the domain holds: the fine-instance decision
/// of Appendix A freezes variables to *fresh* constants, so the verdict of a
/// pattern class computed over a domain of size 4 is equally valid over a
/// domain of size 40. A `ClassVerdictCache` records those verdicts so a
/// query audited again over a **grown** active domain re-derives its
/// critical set from the cached classes instead of re-deciding
/// representatives.
///
/// Only order-free queries may share a cache (order predicates are not
/// preserved by domain bijections); [`critical_tuples_shared`] ignores the
/// cache when the query uses `<`/`<=`.
#[derive(Debug, Default)]
pub struct ClassVerdictCache {
    verdicts: Mutex<HashMap<TuplePattern, bool, FxBuild>>,
}

impl ClassVerdictCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of pattern classes with a memoized verdict.
    pub fn len(&self) -> usize {
        self.verdicts.lock().expect("class cache poisoned").len()
    }

    /// Whether no verdict has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate heap footprint, for the engine's byte-budgeted artifact
    /// layer (patterns are usually packed into a single word; wide patterns
    /// add their token vectors).
    pub fn approx_bytes(&self) -> usize {
        let known = self.verdicts.lock().expect("class cache poisoned");
        64 + known
            .keys()
            .map(|p| {
                32 + match p {
                    TuplePattern::Packed { .. } => 0,
                    TuplePattern::Wide { tokens, .. } => 8 * tokens.len(),
                }
            })
            .sum::<usize>()
    }

    /// Exports every memoized verdict in deterministic (pattern) order —
    /// the engine's persistence layer serializes this.
    pub(crate) fn export(&self) -> Vec<(TuplePattern, bool)> {
        let known = self.verdicts.lock().expect("class cache poisoned");
        let mut entries: Vec<(TuplePattern, bool)> =
            known.iter().map(|(p, v)| (p.clone(), *v)).collect();
        entries.sort();
        entries
    }

    /// Rebuilds a cache from exported entries (store rehydration).
    pub(crate) fn import(entries: Vec<(TuplePattern, bool)>) -> Self {
        let cache = Self::new();
        {
            let mut known = cache.verdicts.lock().expect("class cache poisoned");
            known.extend(entries);
        }
        cache
    }
}

/// One symmetry class discovered by the streaming grounding pass.
struct ClassGroup {
    pattern: TuplePattern,
    representative: Tuple,
}

/// `m · (m−1) ··· (m−k+1)`: the number of tuples in a pattern class with `k`
/// distinct unanchored values over a domain with `m` non-anchor constants.
fn falling_factorial(m: u64, k: u64) -> u64 {
    (0..k).map(|i| m.saturating_sub(i)).product()
}

/// Number of distinct unanchored values in a candidate's value slice.
fn distinct_unanchored(values: &[Value], anchors: &[Value]) -> u64 {
    let mut seen: Vec<Value> = Vec::with_capacity(values.len());
    for &v in values {
        if anchors.binary_search(&v).is_err() && !seen.contains(&v) {
            seen.push(v);
        }
    }
    seen.len() as u64
}

/// Materializes every member of the representative's symmetry class into
/// `out`: anchor positions stay fixed, the `k` distinct unanchored values
/// range over all injective assignments of non-anchor domain constants.
fn emit_class_members(
    relation: RelationId,
    rep_values: &[Value],
    anchors: &[Value],
    non_anchor: &[Value],
    out: &mut BTreeSet<Tuple>,
) {
    // Per position: the fixed anchor value, or the index of the distinct
    // unanchored value driving it (first-occurrence order).
    let mut class_vals: Vec<Value> = Vec::new();
    let slots: Vec<std::result::Result<Value, usize>> = rep_values
        .iter()
        .map(|&v| {
            if anchors.binary_search(&v).is_ok() {
                Ok(v)
            } else {
                Err(match class_vals.iter().position(|&c| c == v) {
                    Some(i) => i,
                    None => {
                        class_vals.push(v);
                        class_vals.len() - 1
                    }
                })
            }
        })
        .collect();
    let k = class_vals.len();
    let mut chosen: Vec<Value> = Vec::with_capacity(k);
    emit_injective(relation, &slots, k, non_anchor, &mut chosen, out);
}

fn emit_injective(
    relation: RelationId,
    slots: &[std::result::Result<Value, usize>],
    k: usize,
    non_anchor: &[Value],
    chosen: &mut Vec<Value>,
    out: &mut BTreeSet<Tuple>,
) {
    if chosen.len() == k {
        out.insert(Tuple::new(
            relation,
            slots
                .iter()
                .map(|slot| match slot {
                    Ok(v) => *v,
                    Err(i) => chosen[*i],
                })
                .collect(),
        ));
        return;
    }
    for &v in non_anchor {
        if !chosen.contains(&v) {
            chosen.push(v);
            emit_injective(relation, slots, k, non_anchor, chosen, out);
            chosen.pop();
        }
    }
}

/// [`critical_tuples_traced`] with an optional shared [`ClassVerdictCache`]
/// serving symmetry-class verdicts across calls (and across active-domain
/// sizes).
///
/// For order-free queries the kernel **streams** subgoal groundings straight
/// into the pattern-grouping pass: each grounding is classified from a
/// borrowed value buffer and only the first member of a class materializes a
/// heap [`Tuple`] (the class representative). Class sizes are counted in
/// closed form (each atom's grounding set is a union of complete pattern
/// classes — any anchor-fixing domain permutation maps groundings to
/// groundings), so the candidate accounting and the cap check stay exact
/// without enumerating a candidate set. Members of critical classes are
/// materialized once, directly into the sorted result.
///
/// With order comparisons the kernel falls back to the materializing
/// per-candidate filter (no symmetry, no class sharing).
pub fn critical_tuples_shared(
    query: &ConjunctiveQuery,
    domain: &Domain,
    cap: usize,
    stats: &CritStats,
    classes: Option<&ClassVerdictCache>,
) -> Result<BTreeSet<Tuple>> {
    let Some(anchors) = symmetry_anchors(std::iter::once(query)) else {
        // Order comparisons: decide every candidate individually.
        let candidate_set = critical_candidates(query, domain, cap)?;
        stats.add_candidates(candidate_set.len() as u64);
        let candidates: Vec<&Tuple> = candidate_set.iter().collect();
        let verdicts = decide_all(&candidates, None, stats, |t| {
            is_critical_traced(query, t, domain, stats)
        });
        return Ok(candidates
            .iter()
            .zip(&verdicts)
            .filter(|(_, &critical)| critical)
            .map(|(t, _)| (*t).clone())
            .collect());
    };

    let non_anchor: Vec<Value> = domain
        .values()
        .filter(|v| anchors.binary_search(v).is_err())
        .collect();
    let mut group_of: HashMap<TuplePattern, usize, FxBuild> = HashMap::default();
    let mut groups: Vec<ClassGroup> = Vec::new();
    let mut total: u64 = 0;
    let mut seen_shapes: BTreeSet<(u32, Vec<(u8, u32)>)> = BTreeSet::new();
    for atom in &query.atoms {
        if !seen_shapes.insert(atom_grounding_key(atom)) {
            continue; // identical grounding set already streamed
        }
        let per_atom = (domain.len() as u128).saturating_pow(atom.variables().len() as u32);
        if per_atom > cap as u128 {
            return Err(QvsError::CandidateSpaceTooLarge {
                required: per_atom,
                cap,
            });
        }
        let mut overflow = false;
        for_each_grounding(atom, domain, |values| {
            let pattern = tuple_pattern_values(&anchors, atom.relation.0, values);
            if !group_of.contains_key(&pattern) {
                // Classes partition the candidate union, so summing their
                // closed-form sizes counts distinct candidates exactly.
                total += falling_factorial(
                    non_anchor.len() as u64,
                    distinct_unanchored(values, &anchors),
                );
                group_of.insert(pattern.clone(), groups.len());
                groups.push(ClassGroup {
                    pattern,
                    representative: Tuple::new(atom.relation, values.to_vec()),
                });
            }
            overflow = total > cap as u64;
            !overflow
        });
        if overflow {
            return Err(QvsError::CandidateSpaceTooLarge {
                required: total as u128,
                cap,
            });
        }
    }
    stats.add_candidates(total);
    stats.add_symmetry_pruned(total - groups.len() as u64);

    // Serve verdicts from the shared cache where possible, decide the rest.
    let mut verdicts: Vec<Option<bool>> = vec![None; groups.len()];
    if let Some(cache) = classes {
        let known = cache.verdicts.lock().expect("class cache poisoned");
        let mut reused = 0u64;
        for (g, group) in groups.iter().enumerate() {
            if let Some(&v) = known.get(&group.pattern) {
                verdicts[g] = Some(v);
                reused += 1;
            }
        }
        stats.add_class_verdicts_reused(reused);
    }
    let undecided: Vec<usize> = verdicts
        .iter()
        .enumerate()
        .filter(|(_, v)| v.is_none())
        .map(|(g, _)| g)
        .collect();
    let fresh: Vec<bool> = undecided
        .par_iter()
        .map(|&g| is_critical_traced(query, &groups[g].representative, domain, stats))
        .collect();
    for (&g, &v) in undecided.iter().zip(&fresh) {
        verdicts[g] = Some(v);
    }
    if let Some(cache) = classes {
        let mut known = cache.verdicts.lock().expect("class cache poisoned");
        for (&g, &v) in undecided.iter().zip(&fresh) {
            known.insert(groups[g].pattern.clone(), v);
        }
    }

    let mut out = BTreeSet::new();
    for (group, verdict) in groups.iter().zip(&verdicts) {
        if verdict.unwrap_or(false) {
            emit_class_members(
                group.representative.relation,
                &group.representative.values,
                &anchors,
                &non_anchor,
                &mut out,
            );
        }
    }
    Ok(out)
}

/// Computes `crit_D(S) ∩ crit_D(V̄)` — the common critical tuples whose
/// emptiness characterises dictionary-independent security (Theorem 4.5).
///
/// Candidates are restricted to tuples that are subgoal instantiations of
/// **both** sides, so the enumeration stays proportional to the overlap.
/// The result is sorted (the candidate spaces' canonical order).
pub fn common_critical_tuples(
    secret: &ConjunctiveQuery,
    views: &ViewSet,
    domain: &Domain,
    cap: usize,
) -> Result<Vec<Tuple>> {
    common_critical_tuples_traced(secret, views, domain, cap, &CritStats::new())
}

/// [`common_critical_tuples`] with pruning counters recorded into `stats`.
pub fn common_critical_tuples_traced(
    secret: &ConjunctiveQuery,
    views: &ViewSet,
    domain: &Domain,
    cap: usize,
    stats: &CritStats,
) -> Result<Vec<Tuple>> {
    let secret_space = Arc::new(candidate_space(secret, domain, cap)?);
    // Mark, over the interned secret space, every candidate some view can
    // also instantiate — no tuple is cloned while intersecting.
    let mut overlap = CandidateSet::empty(Arc::clone(&secret_space));
    for view in views.iter() {
        for tuple in critical_candidates(view, domain, cap)? {
            overlap.insert(&tuple);
        }
    }
    stats.add_candidates(overlap.len() as u64);
    let candidates: Vec<&Tuple> = overlap.iter().collect();
    let anchors = symmetry_anchors(std::iter::once(secret).chain(views.iter()));
    let verdicts = decide_all(&candidates, anchors.as_deref(), stats, |t| {
        is_critical_traced(secret, t, domain, stats)
            && views
                .iter()
                .any(|v| is_critical_traced(v, t, domain, stats))
    });
    Ok(candidates
        .iter()
        .zip(&verdicts)
        .filter(|(_, &common)| common)
        .map(|(t, _)| (*t).clone())
        .collect())
}

/// The sorted anchor list enabling symmetry collapse, or `None` when some
/// query uses order comparisons (bijections that are not monotone do not
/// preserve `<`/`<=`, so pattern classes are not verdict classes there).
fn symmetry_anchors<'a>(queries: impl Iterator<Item = &'a ConjunctiveQuery>) -> Option<Vec<Value>> {
    let mut anchors = BTreeSet::new();
    for q in queries {
        if q.has_order_comparisons() {
            return None;
        }
        anchors.extend(q.constants());
    }
    Some(anchors.into_iter().collect())
}

/// A minimal Fx-style multiply-xor hasher for the pattern-grouping map: the
/// keys are tiny (a relation id and a packed word), the map is rebuilt per
/// kernel call, and SipHash dominates the grouping cost otherwise. No random
/// state — grouping is fully deterministic.
#[derive(Default)]
struct FxHasher(u64);

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

impl std::hash::Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
    }
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

type FxBuild = std::hash::BuildHasherDefault<FxHasher>;

/// Decides `decide` for every candidate, in parallel, collapsing symmetric
/// candidates onto one representative when `anchors` is available. Verdicts
/// come back in candidate order, making downstream merges deterministic
/// (groups are formed in first-occurrence order, independent of thread
/// count or hash iteration order).
fn decide_all<F>(
    candidates: &[&Tuple],
    anchors: Option<&[Value]>,
    stats: &CritStats,
    decide: F,
) -> Vec<bool>
where
    F: Fn(&Tuple) -> bool + Sync,
{
    match anchors {
        Some(anchors) => {
            let mut group_of: HashMap<TuplePattern, usize, FxBuild> = HashMap::default();
            let mut groups: Vec<Vec<usize>> = Vec::new();
            for (i, t) in candidates.iter().enumerate() {
                let group = *group_of
                    .entry(tuple_pattern(anchors, t))
                    .or_insert_with(|| {
                        groups.push(Vec::new());
                        groups.len() - 1
                    });
                groups[group].push(i);
            }
            stats.add_symmetry_pruned((candidates.len() - groups.len()) as u64);
            let representatives: Vec<&Tuple> =
                groups.iter().map(|ids| candidates[ids[0]]).collect();
            let class_verdicts: Vec<bool> = representatives.par_iter().map(|t| decide(t)).collect();
            let mut verdicts = vec![false; candidates.len()];
            for (ids, &verdict) in groups.iter().zip(&class_verdicts) {
                if verdict {
                    for &i in ids {
                        verdicts[i] = true;
                    }
                }
            }
            verdicts
        }
        None => candidates.par_iter().map(|t| decide(t)).collect(),
    }
}

/// The pre-kernel sequential path, kept verbatim as the benchmark baseline
/// and equivalence witness: enumerate candidates, then filter with the
/// unpruned fine-instance decision, one tuple at a time on one thread.
pub fn critical_tuples_seq(
    query: &ConjunctiveQuery,
    domain: &Domain,
    cap: usize,
) -> Result<BTreeSet<Tuple>> {
    let candidates = critical_candidates(query, domain, cap)?;
    Ok(candidates
        .into_iter()
        .filter(|t| is_critical_baseline(query, t, domain))
        .collect())
}

/// The historical (pre-kernel) decision: no prefilter accounting, no
/// comparison propagation, no duplicate-subgoal dedup — every unifiable
/// subset is frozen and searched.
fn is_critical_baseline(query: &ConjunctiveQuery, tuple: &Tuple, domain: &Domain) -> bool {
    let unifiable: Vec<usize> = query
        .atoms
        .iter()
        .enumerate()
        .filter(|(_, atom)| qvsec_cq::unify_atom_with_tuple(atom, tuple).is_some())
        .map(|(i, _)| i)
        .collect();
    if unifiable.is_empty() {
        return false;
    }
    let k = unifiable.len();
    for mask in 1u64..(1u64 << k) {
        let atoms: Vec<&qvsec_cq::Atom> = (0..k)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| &query.atoms[unifiable[i]])
            .collect();
        let Some(subst) = unify_atoms_with_tuple(&atoms, tuple) else {
            continue;
        };
        let pinned: HashMap<VarId, Value> = subst.iter().collect();
        let canon = CanonicalDatabase::freeze_with(query, domain, &pinned);
        let assignment: Vec<Option<Value>> =
            query.variables().map(|v| Some(canon.value_of(v))).collect();
        if !qvsec_cq::comparisons::check_all(&query.comparisons, &assignment) {
            continue;
        }
        if !answer_survives(query, &canon.instance, &canon.head_answer, Some(tuple)) {
            return true;
        }
    }
    false
}
