//! Pruning and work counters for the `crit(Q)` kernel.
//!
//! The kernel's value proposition is *work it did not do*: candidates never
//! enumerated twice, symmetric tuples decided once, groundings rejected
//! before the expensive freeze-and-search step. [`CritStats`] records that
//! accounting with lock-free atomic counters so the parallel filter can
//! update it from every worker thread; [`CritStatsSnapshot`] is the frozen,
//! serializable view emitted into `BENCH_crit.json` and exposed through
//! [`crate::engine::AuditEngine::crit_stats`].

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Live, thread-safe counters updated by the kernel. One instance can be
/// shared across any number of concurrent kernel invocations (the engine
/// keeps a single engine-lifetime instance).
#[derive(Debug, Default)]
pub struct CritStats {
    candidates_examined: AtomicU64,
    decisions_run: AtomicU64,
    pruned_by_symmetry: AtomicU64,
    class_verdicts_reused: AtomicU64,
    pruned_by_prefilter: AtomicU64,
    pruned_by_comparisons: AtomicU64,
    duplicate_atoms_skipped: AtomicU64,
    subsets_walked: AtomicU64,
    instances_frozen: AtomicU64,
}

impl CritStats {
    /// A fresh, zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn add_candidates(&self, n: u64) {
        self.candidates_examined.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_decision(&self) {
        self.decisions_run.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_symmetry_pruned(&self, n: u64) {
        self.pruned_by_symmetry.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_class_verdicts_reused(&self, n: u64) {
        self.class_verdicts_reused.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_prefilter_prune(&self) {
        self.pruned_by_prefilter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_comparison_prune(&self) {
        self.pruned_by_comparisons.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_duplicate_atoms(&self, n: u64) {
        self.duplicate_atoms_skipped.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_subset_walked(&self) {
        self.subsets_walked.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_freeze(&self) {
        self.instances_frozen.fetch_add(1, Ordering::Relaxed);
    }

    /// Freezes the current counter values into a serializable snapshot.
    pub fn snapshot(&self) -> CritStatsSnapshot {
        CritStatsSnapshot {
            candidates_examined: self.candidates_examined.load(Ordering::Relaxed),
            decisions_run: self.decisions_run.load(Ordering::Relaxed),
            pruned_by_symmetry: self.pruned_by_symmetry.load(Ordering::Relaxed),
            class_verdicts_reused: self.class_verdicts_reused.load(Ordering::Relaxed),
            pruned_by_prefilter: self.pruned_by_prefilter.load(Ordering::Relaxed),
            pruned_by_comparisons: self.pruned_by_comparisons.load(Ordering::Relaxed),
            duplicate_atoms_skipped: self.duplicate_atoms_skipped.load(Ordering::Relaxed),
            subsets_walked: self.subsets_walked.load(Ordering::Relaxed),
            instances_frozen: self.instances_frozen.load(Ordering::Relaxed),
        }
    }
}

/// A frozen view of [`CritStats`], safe to serialize, diff and report.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CritStatsSnapshot {
    /// Candidate tuples the kernel considered (after candidate-space dedup).
    pub candidates_examined: u64,
    /// Full fine-instance decisions actually executed.
    pub decisions_run: u64,
    /// Candidates whose verdict was copied from a symmetric representative
    /// instead of being decided from scratch.
    pub pruned_by_symmetry: u64,
    /// Symmetry classes whose verdict was served from a shared
    /// [`super::ClassVerdictCache`] (typically a prior audit at another
    /// active-domain size) instead of deciding a representative.
    #[serde(default)]
    pub class_verdicts_reused: u64,
    /// Decisions answered negatively by the O(atoms) unification prefilter
    /// (no subgoal unifies with the tuple), skipping the subset walk.
    pub pruned_by_prefilter: u64,
    /// Groundings rejected by comparison-constraint propagation before an
    /// instance was frozen (plus decisions rejected because every unifying
    /// subgoal violated a grounded comparison).
    pub pruned_by_comparisons: u64,
    /// Subgoals skipped in subset walks because an identical subgoal was
    /// already enumerated (halves the walk per duplicate).
    pub duplicate_atoms_skipped: u64,
    /// Subgoal subsets enumerated across all decisions (the `2^k` walks).
    pub subsets_walked: u64,
    /// Fine instances actually frozen and searched for a surviving answer —
    /// the expensive step every pruning layer exists to avoid.
    pub instances_frozen: u64,
}

impl CritStatsSnapshot {
    /// Total candidates or groundings eliminated before the expensive path.
    pub fn total_pruned(&self) -> u64 {
        self.pruned_by_symmetry
            .saturating_add(self.pruned_by_prefilter)
            .saturating_add(self.pruned_by_comparisons)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let stats = CritStats::new();
        stats.add_candidates(10);
        stats.add_decision();
        stats.add_symmetry_pruned(7);
        stats.add_prefilter_prune();
        stats.add_comparison_prune();
        stats.add_duplicate_atoms(2);
        stats.add_subset_walked();
        stats.add_freeze();
        let snap = stats.snapshot();
        assert_eq!(snap.candidates_examined, 10);
        assert_eq!(snap.decisions_run, 1);
        assert_eq!(snap.pruned_by_symmetry, 7);
        assert_eq!(snap.total_pruned(), 9);
        assert_eq!(snap.subsets_walked, 1);
        assert_eq!(snap.instances_frozen, 1);
    }

    #[test]
    fn snapshot_serializes_with_counter_names() {
        let snap = CritStats::new().snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        for key in [
            "candidates_examined",
            "pruned_by_symmetry",
            "pruned_by_prefilter",
            "pruned_by_comparisons",
            "instances_frozen",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let back: CritStatsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
