//! Critical tuples (Definition 4.4) — the criterion-based decision procedure.
//!
//! A tuple `t ∈ tup(D)` is *critical* for a query `Q` if there exists an
//! instance `I` with `Q(I − {t}) ≠ Q(I)`. Critical tuples are the bridge
//! between probability and logic: Theorem 4.5 shows that `S` is secure with
//! respect to `V̄` for **every** tuple-independent distribution iff
//! `crit_D(S) ∩ crit_D(V̄) = ∅`.
//!
//! Deciding criticality is Πᵖ₂-complete in the size of the query
//! (Theorem 4.10), so any exact procedure is exponential in the worst case.
//! The procedure implemented here follows the structure of the Appendix A
//! proof rather than enumerating all instances:
//!
//! 1. Only *minimal* instances (images `h(Q)` of the query itself) and among
//!    those only *fine* instances need to be considered (Proposition A.1).
//!    A fine instance is determined by the set `G` of subgoals mapped onto
//!    `t`: the variables of `G` are bound by unifying `G` with `t`, every
//!    other variable is frozen to a distinct fresh constant.
//! 2. `t` is critical iff for some non-empty, simultaneously unifiable `G`
//!    there is **no** homomorphism from `Q` into `I_G − {t}` that reproduces
//!    the head answer `h_G(head)`.
//!
//! The search is exponential only in the number of subgoals that unify with
//! `t` (usually one or two), not in the domain or instance size.
//!
//! ### The kernel
//!
//! The module is organised as a pipeline (one submodule per stage):
//!
//! | stage | submodule | job |
//! |---|---|---|
//! | enumerate | `candidates` | interned candidate space, subgoal-shape dedup, exact cap accounting |
//! | decide | `decide` | the fine-instance procedure with a unification prefilter, comparison-constraint propagation and duplicate-subgoal dedup |
//! | schedule | `kernel` | symmetry collapse (pattern classes) + `rayon`-parallel filtering with a deterministic merge |
//! | account | `stats` | [`CritStats`] pruning counters feeding `BENCH_crit.json` |
//!
//! Every pruning layer is a pure optimization: verdicts are cross-validated
//! against the literal Definition 4.4 oracle in
//! [`crate::critical_bruteforce`] and against the preserved sequential
//! baseline [`critical_tuples_seq`] by unit and property tests.
//!
//! ### Comparison predicates
//!
//! Equality and disequality comparisons are handled exactly. Order
//! predicates (`<`, `<=`) are honoured under the canonical placement of fresh
//! constants (fresh constants are pairwise distinct and larger than all
//! existing constants); this placement is sufficient for the query classes
//! used in the paper, and the brute-force procedure in
//! [`crate::critical_bruteforce`] remains the reference oracle for small
//! domains (the two are cross-checked by property tests). Symmetry collapse
//! is disabled whenever a query uses order predicates.

mod candidates;
mod decide;
mod kernel;
mod stats;

pub use candidates::{candidate_space, critical_candidates, DEFAULT_CANDIDATE_CAP};
pub(crate) use decide::TuplePattern;
pub use decide::{is_critical, is_critical_traced};
pub use kernel::{
    common_critical_tuples, common_critical_tuples_traced, critical_tuples, critical_tuples_seq,
    critical_tuples_shared, critical_tuples_traced, critical_tuples_with_cap, ClassVerdictCache,
};
pub use stats::{CritStats, CritStatsSnapshot};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QvsError;
    use qvsec_cq::{parse_query, ViewSet};
    use qvsec_data::{Domain, Schema, Tuple};
    use std::collections::BTreeSet;

    fn setup() -> (Schema, Domain) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        schema.add_relation("T", &["a", "b", "c", "d", "e"]);
        schema.add_relation("Employee", &["name", "department", "phone"]);
        (schema, Domain::with_constants(["a", "b"]))
    }

    fn t(schema: &Schema, domain: &Domain, rel: &str, vals: &[&str]) -> Tuple {
        Tuple::from_names(schema, domain, rel, vals).unwrap()
    }

    #[test]
    fn every_tuple_is_critical_for_full_projection_views() {
        // Example 4.6: for V(x) :- R(x, y) and S(y) :- R(x, y) every tuple of
        // tup(D) is critical.
        let (schema, mut domain) = setup();
        let v = parse_query("V(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let s = parse_query("S(y) :- R(x, y)", &schema, &mut domain).unwrap();
        for rel_tuple in [("a", "a"), ("a", "b"), ("b", "a"), ("b", "b")] {
            let tuple = t(&schema, &domain, "R", &[rel_tuple.0, rel_tuple.1]);
            assert!(is_critical(&v, &tuple, &domain), "{tuple} critical for V");
            assert!(is_critical(&s, &tuple, &domain), "{tuple} critical for S");
        }
        assert_eq!(critical_tuples(&v, &domain).unwrap().len(), 4);
    }

    #[test]
    fn example_4_7_critical_sets_are_disjoint() {
        // V(x) :- R(x, 'b'): crit = {R(a,b), R(b,b)};
        // S(y) :- R(y, 'a'): crit = {R(a,a), R(b,a)}.
        let (schema, mut domain) = setup();
        let v = parse_query("V(x) :- R(x, 'b')", &schema, &mut domain).unwrap();
        let s = parse_query("S(y) :- R(y, 'a')", &schema, &mut domain).unwrap();
        let crit_v = critical_tuples(&v, &domain).unwrap();
        let crit_s = critical_tuples(&s, &domain).unwrap();
        let expected_v: BTreeSet<Tuple> = [
            t(&schema, &domain, "R", &["a", "b"]),
            t(&schema, &domain, "R", &["b", "b"]),
        ]
        .into_iter()
        .collect();
        let expected_s: BTreeSet<Tuple> = [
            t(&schema, &domain, "R", &["a", "a"]),
            t(&schema, &domain, "R", &["b", "a"]),
        ]
        .into_iter()
        .collect();
        assert_eq!(crit_v, expected_v);
        assert_eq!(crit_s, expected_s);
        assert!(crit_v.is_disjoint(&crit_s));
        let common = common_critical_tuples(&s, &ViewSet::single(v), &domain, 1000).unwrap();
        assert!(common.is_empty());
    }

    #[test]
    fn section_4_2_example_tuple_is_not_critical() {
        // Q() :- T(x,y,z,z,u), T(x,x,x,y,y) and t = T(a,a,b,b,c): the paper
        // shows t is a homomorphic image of the first subgoal yet NOT
        // critical, because any instance mapping the first subgoal to t
        // forces T(a,a,a,a,a) to be present, which also satisfies the query.
        let (schema, mut domain) = setup();
        domain.add("c");
        let q = parse_query(
            "Q() :- T(x, y, z, z, u), T(x, x, x, y, y)",
            &schema,
            &mut domain,
        )
        .unwrap();
        let tuple = t(&schema, &domain, "T", &["a", "a", "b", "b", "c"]);
        assert!(!is_critical(&q, &tuple, &domain));
        // whereas the collapsed tuple T(a,a,a,a,a) IS critical
        let diag = t(&schema, &domain, "T", &["a", "a", "a", "a", "a"]);
        assert!(is_critical(&q, &diag, &domain));
    }

    #[test]
    fn simple_boolean_query_criticality() {
        // Q() :- R('a', x): every tuple R(a, v) is critical, tuples R(b, v)
        // are not (they are not even candidates).
        let (schema, mut domain) = setup();
        let q = parse_query("Q() :- R('a', x)", &schema, &mut domain).unwrap();
        assert!(is_critical(
            &q,
            &t(&schema, &domain, "R", &["a", "a"]),
            &domain
        ));
        assert!(is_critical(
            &q,
            &t(&schema, &domain, "R", &["a", "b"]),
            &domain
        ));
        assert!(!is_critical(
            &q,
            &t(&schema, &domain, "R", &["b", "a"]),
            &domain
        ));
        let crit = critical_tuples(&q, &domain).unwrap();
        assert_eq!(crit.len(), 2);
    }

    #[test]
    fn selection_views_have_disjoint_critical_sets_across_departments() {
        // Table 1 row (4): V4(n) :- Employee(n,'Mgmt',p) vs
        // S4(n) :- Employee(n,'HR',p).
        let (schema, mut domain) = setup();
        let v = parse_query("V4(n) :- Employee(n, 'Mgmt', p)", &schema, &mut domain).unwrap();
        let s = parse_query("S4(n) :- Employee(n, 'HR', p)", &schema, &mut domain).unwrap();
        let common = common_critical_tuples(&s, &ViewSet::single(v), &domain, 10_000).unwrap();
        assert!(common.is_empty());
    }

    #[test]
    fn redundant_subgoal_does_not_create_phantom_criticality() {
        // Q(x) :- R(x, y), R(x, w): the second subgoal is redundant; critical
        // tuples are exactly those of Q(x) :- R(x, y).
        let (schema, mut domain) = setup();
        let q = parse_query("Q(x) :- R(x, y), R(x, w)", &schema, &mut domain).unwrap();
        let q_min = parse_query("Qm(x) :- R(x, y)", &schema, &mut domain).unwrap();
        assert_eq!(
            critical_tuples(&q, &domain).unwrap(),
            critical_tuples(&q_min, &domain).unwrap()
        );
    }

    #[test]
    fn comparisons_restrict_critical_tuples() {
        // Q() :- R(x, y), x != y : the diagonal tuples R(a,a), R(b,b) are not
        // critical, the off-diagonal ones are.
        let (schema, mut domain) = setup();
        let q = parse_query("Q() :- R(x, y), x != y", &schema, &mut domain).unwrap();
        assert!(is_critical(
            &q,
            &t(&schema, &domain, "R", &["a", "b"]),
            &domain
        ));
        assert!(is_critical(
            &q,
            &t(&schema, &domain, "R", &["b", "a"]),
            &domain
        ));
        assert!(!is_critical(
            &q,
            &t(&schema, &domain, "R", &["a", "a"]),
            &domain
        ));
        assert!(!is_critical(
            &q,
            &t(&schema, &domain, "R", &["b", "b"]),
            &domain
        ));
    }

    #[test]
    fn ground_query_is_critical_only_for_its_own_tuple() {
        let (schema, mut domain) = setup();
        let q = parse_query("Q() :- R('a', 'b')", &schema, &mut domain).unwrap();
        let crit = critical_tuples(&q, &domain).unwrap();
        assert_eq!(crit.len(), 1);
        assert!(crit.contains(&t(&schema, &domain, "R", &["a", "b"])));
    }

    #[test]
    fn candidate_cap_is_enforced() {
        let (schema, mut domain) = setup();
        let q = parse_query("Q() :- T(a, b, c, d, e)", &schema, &mut domain).unwrap();
        let big_domain = Domain::with_size(20);
        // 20^5 candidates is far above a cap of 1000
        assert!(matches!(
            critical_tuples_with_cap(&q, &big_domain, 1000),
            Err(QvsError::CandidateSpaceTooLarge { .. })
        ));
        // but fine over the 2-constant domain
        assert!(critical_tuples(&q, &domain).is_ok());
    }

    #[test]
    fn tuples_of_other_relations_are_never_critical() {
        let (schema, mut domain) = setup();
        let q = parse_query("Q(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let other = t(&schema, &domain, "Employee", &["a", "a", "a"]);
        assert!(!is_critical(&q, &other, &domain));
    }

    #[test]
    fn kernel_matches_the_sequential_baseline_and_reports_pruning() {
        let (schema, mut domain) = setup();
        domain.add("c");
        domain.add("d");
        let texts = [
            "Q1(x) :- R(x, y)",
            "Q2() :- R('a', x), R(x, x)",
            "Q3() :- R(x, y), x != y",
            "Q4(x) :- R(x, y), R(x, w)",
            "Q5() :- R(x, y), x < y",
        ];
        for text in texts {
            let q = parse_query(text, &schema, &mut domain).unwrap();
            let stats = CritStats::new();
            let kernel = critical_tuples_traced(&q, &domain, 100_000, &stats).unwrap();
            let seq = critical_tuples_seq(&q, &domain, 100_000).unwrap();
            assert_eq!(kernel, seq, "kernel diverges from baseline on {text}");
            let ordered_kernel: Vec<&Tuple> = kernel.iter().collect();
            let ordered_seq: Vec<&Tuple> = seq.iter().collect();
            assert_eq!(
                ordered_kernel, ordered_seq,
                "iteration order differs on {text}"
            );
            let snap = stats.snapshot();
            assert_eq!(
                snap.candidates_examined as usize,
                critical_candidates(&q, &domain, 100_000).unwrap().len(),
                "candidate accounting for {text}"
            );
            if !q.has_order_comparisons() {
                assert!(
                    snap.pruned_by_symmetry > 0,
                    "symmetry collapse expected for {text}, got {snap:?}"
                );
                assert!(snap.decisions_run < snap.candidates_examined);
            } else {
                assert_eq!(
                    snap.pruned_by_symmetry, 0,
                    "order predicates disable symmetry"
                );
            }
        }
    }

    #[test]
    fn common_critical_tuples_are_sorted_and_match_pairwise_decisions() {
        let (schema, mut domain) = setup();
        let s = parse_query("S(y) :- R(x, y)", &schema, &mut domain).unwrap();
        let v = parse_query("V(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let views = ViewSet::single(v.clone());
        let common = common_critical_tuples(&s, &views, &domain, 1000).unwrap();
        assert_eq!(
            common.len(),
            4,
            "every tuple is critical for both projections"
        );
        let mut sorted = common.clone();
        sorted.sort();
        assert_eq!(common, sorted, "result comes back in canonical order");
        for tuple in &common {
            assert!(is_critical(&s, tuple, &domain));
            assert!(is_critical(&v, tuple, &domain));
        }
    }
}
