//! Candidate enumeration: the ground instantiations of a query's subgoals.
//!
//! Every critical tuple of a conjunctive query is a homomorphic image of one
//! of its subgoals (Section 4.2), so the candidate space of `crit_D(Q)` is
//! the union of each subgoal's groundings over `D`. This module enumerates
//! that union exactly:
//!
//! * subgoals are deduplicated by their *local pattern* (relation, constant
//!   positions, repeated-variable shape) before grounding — `R(x, y)` and
//!   `R(u, w)` generate the same tuples, as do `R(x, x)` and `R(y, y)`;
//! * the size guard counts **distinct variables per subgoal** (a subgoal with
//!   a repeated variable like `R(x, x)` contributes `|D|` groundings, not
//!   `|D|²`) and checks the **union size incrementally** while enumerating,
//!   so overlap between subgoals is never double-counted. The historical
//!   estimate summed per-atom counts and could reject queries whose real
//!   candidate space fit comfortably under the cap.

use crate::{QvsError, Result};
use qvsec_cq::{Atom, ConjunctiveQuery, Term};
use qvsec_data::{Domain, Tuple, TupleSpace};
use std::collections::BTreeSet;

/// Default cap on the number of candidate tuples enumerated by
/// [`critical_tuples`](super::critical_tuples) and the intersection helpers.
pub const DEFAULT_CANDIDATE_CAP: usize = 250_000;

/// A subgoal's grounding-relevant shape: relation plus, per position, either
/// the constant or the index of the variable's first occurrence within the
/// atom. Two subgoals with equal keys ground to exactly the same tuple set.
pub(super) fn atom_grounding_key(atom: &Atom) -> (u32, Vec<(u8, u32)>) {
    let mut seen: Vec<qvsec_cq::VarId> = Vec::new();
    let terms = atom
        .terms
        .iter()
        .map(|t| match t {
            Term::Const(c) => (0u8, c.0),
            Term::Var(v) => {
                let idx = match seen.iter().position(|s| s == v) {
                    Some(i) => i,
                    None => {
                        seen.push(*v);
                        seen.len() - 1
                    }
                };
                (1u8, idx as u32)
            }
        })
        .collect();
    (atom.relation.0, terms)
}

/// All candidate critical tuples of a query over a domain: the ground
/// instantiations of its subgoals (every critical tuple is among them).
///
/// Errors with [`QvsError::CandidateSpaceTooLarge`] when the *distinct*
/// candidate count exceeds `cap` — a single subgoal whose `|D|^vars`
/// groundings (counting distinct variables) overflow the cap is rejected
/// before enumerating, and the union is tracked incrementally so duplicate
/// or overlapping subgoals never inflate the estimate.
pub fn critical_candidates(
    query: &ConjunctiveQuery,
    domain: &Domain,
    cap: usize,
) -> Result<BTreeSet<Tuple>> {
    let mut out = BTreeSet::new();
    let mut seen_shapes: BTreeSet<(u32, Vec<(u8, u32)>)> = BTreeSet::new();
    for atom in &query.atoms {
        if !seen_shapes.insert(atom_grounding_key(atom)) {
            continue; // identical grounding set already enumerated
        }
        // A subgoal's groundings are pairwise distinct, one per assignment of
        // its *distinct* variables, so this product is exact — not an upper
        // bound — and exceeding the cap on one subgoal is already fatal.
        let per_atom = (domain.len() as u128).saturating_pow(atom.variables().len() as u32);
        if per_atom > cap as u128 {
            return Err(QvsError::CandidateSpaceTooLarge {
                required: per_atom,
                cap,
            });
        }
        let mut overflow = false;
        qvsec_prob::lineage::for_each_grounding(atom, domain, |values| {
            out.insert(Tuple::new(atom.relation, values.to_vec()));
            overflow = out.len() > cap;
            !overflow
        });
        if overflow {
            return Err(QvsError::CandidateSpaceTooLarge {
                required: out.len() as u128,
                cap,
            });
        }
    }
    Ok(out)
}

/// The candidate space as an interned, sorted [`TupleSpace`] — the universe
/// the kernel's bitset-backed candidate sets index into.
pub fn candidate_space(
    query: &ConjunctiveQuery,
    domain: &Domain,
    cap: usize,
) -> Result<TupleSpace> {
    Ok(TupleSpace::from_tuples(
        critical_candidates(query, domain, cap)?
            .into_iter()
            .collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvsec_cq::parse_query;
    use qvsec_data::Schema;

    fn setup() -> (Schema, Domain) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        schema.add_relation("T", &["a", "b", "c", "d", "e"]);
        (schema, Domain::with_size(4))
    }

    #[test]
    fn repeated_variables_within_an_atom_count_once() {
        // R(x, x) grounds to the |D| diagonal tuples, not |D|².
        let (schema, mut domain) = setup();
        let q = parse_query("Q() :- R(x, x)", &schema, &mut domain).unwrap();
        let candidates = critical_candidates(&q, &domain, 4).unwrap();
        assert_eq!(candidates.len(), domain.len());
        // A cap of exactly |D| therefore suffices — the old per-position
        // estimate would have demanded |D|².
        assert!(critical_candidates(&q, &domain, domain.len()).is_ok());
    }

    #[test]
    fn duplicate_and_overlapping_subgoals_are_not_double_counted() {
        // Q(x) :- R(x, y), R(x, w), R(u, v): all three subgoals ground to the
        // same |D|² tuples; the union must be accepted under a |D|² cap.
        let (schema, mut domain) = setup();
        let q = parse_query("Q(x) :- R(x, y), R(x, w), R(u, v)", &schema, &mut domain).unwrap();
        let dd = domain.len() * domain.len();
        let candidates = critical_candidates(&q, &domain, dd).unwrap();
        assert_eq!(candidates.len(), dd);
        let single = parse_query("Qs(x) :- R(x, y)", &schema, &mut domain).unwrap();
        assert_eq!(
            candidates,
            critical_candidates(&single, &domain, dd).unwrap()
        );
    }

    #[test]
    fn a_single_oversized_subgoal_is_rejected_before_enumerating() {
        let (schema, _) = setup();
        let mut big = Domain::with_size(20);
        let q = parse_query("Q() :- T(a, b, c, d, e)", &schema, &mut big).unwrap();
        // 20^5 = 3.2M candidates against a cap of 1000.
        match critical_candidates(&q, &big, 1000) {
            Err(QvsError::CandidateSpaceTooLarge { required, cap }) => {
                assert_eq!(required, 3_200_000);
                assert_eq!(cap, 1000);
            }
            other => panic!("expected CandidateSpaceTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn union_overflow_across_distinct_subgoals_is_caught() {
        // Two disjoint grounding sets (different constants) that individually
        // fit but jointly exceed the cap.
        let (schema, mut domain) = setup();
        let q = parse_query("Q() :- R(x, 'c0'), R('c1', y)", &schema, &mut domain).unwrap();
        // 4 + 4 candidates minus the shared R(c1, c0) = 7 distinct.
        assert_eq!(critical_candidates(&q, &domain, 7).unwrap().len(), 7);
        assert!(matches!(
            critical_candidates(&q, &domain, 6),
            Err(QvsError::CandidateSpaceTooLarge { .. })
        ));
    }

    #[test]
    fn candidate_space_is_sorted_and_interned() {
        let (schema, mut domain) = setup();
        let q = parse_query("Q(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let space = candidate_space(&q, &domain, 1000).unwrap();
        assert_eq!(space.len(), domain.len() * domain.len());
        for i in 0..space.len() {
            assert_eq!(space.index_of(space.tuple(i)), Some(i));
        }
    }
}
