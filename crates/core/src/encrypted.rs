//! Encrypted views (Section 5.4).
//!
//! In controlled-publishing and database-as-a-service architectures the
//! published "view" is the relation itself with every attribute value
//! replaced by its encryption. Assuming an ideal primitive (one-way,
//! collision-free), the published object is an **isomorphic copy** of the
//! relation: join structure and cardinality are visible, constants are not.
//!
//! Consequences reproduced here:
//!
//! * queries without constants (pure join/self-join patterns) are answerable
//!   from the encrypted view ([`answerable_from_encrypted`]);
//! * the encrypted view always reveals the cardinality of the relation, so
//!   **no** query is perfectly secure with respect to it (the same
//!   cardinality argument as Application 3) — [`perfectly_secure_wrt_encrypted`]
//!   is constantly `false` for non-trivial queries;
//! * the *magnitude* of the disclosure can still be assessed with the
//!   Section 6.1 leakage machinery, by building the encrypted view as an
//!   explicit instance transformation ([`encrypt_instance`]).

use qvsec_cq::ConjunctiveQuery;
use qvsec_data::{Domain, Instance, Schema, Tuple, Value};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::HashMap;

/// The key material of a simulated attribute-level encryption: a single
/// injective mapping applied to every attribute value (the paper's one
/// one-way function `f` applied to each attribute).
#[derive(Debug, Clone, Default)]
pub struct EncryptionKey {
    mapping: HashMap<Value, Value>,
}

impl EncryptionKey {
    /// The token assigned to `value`, if it occurs in the encrypted data.
    pub fn token(&self, value: Value) -> Option<Value> {
        self.mapping.get(&value).copied()
    }

    /// Number of distinct values that were encrypted.
    pub fn len(&self) -> usize {
        self.mapping.len()
    }

    /// Whether no value was encrypted.
    pub fn is_empty(&self) -> bool {
        self.mapping.is_empty()
    }
}

/// Encrypts an instance attribute-wise: every value is replaced by the same
/// opaque token wherever it occurs (one global injective mapping `f`), and
/// the tokens are added to a cloned domain. Returns the encrypted instance,
/// the extended domain and the key.
///
/// This is the simulation of the "perfect one-way function" of Section 5.4:
/// given the token one cannot recover the value (the mapping is random and
/// the token names carry no information), the mapping is collision-free
/// (injective by construction), and because the *same* function is applied
/// everywhere the encrypted view is an isomorphic copy of the original
/// relation — equalities, and hence joins, are preserved.
pub fn encrypt_instance<R: Rng + ?Sized>(
    instance: &Instance,
    schema: &Schema,
    domain: &Domain,
    rng: &mut R,
) -> (Instance, Domain, EncryptionKey) {
    let mut extended = domain.clone();
    let mut key = EncryptionKey::default();
    // Collect the distinct values, in shuffled order so that the token
    // assignment leaks nothing about value identity or ordering.
    let mut values: Vec<Value> = Vec::new();
    for t in instance.iter() {
        for &v in &t.values {
            if !values.contains(&v) {
                values.push(v);
            }
        }
    }
    values.shuffle(rng);
    key.mapping = values
        .into_iter()
        .map(|v| (v, extended.fresh("enc")))
        .collect();
    let encrypted = Instance::from_tuples(instance.iter().map(|t| {
        Tuple::new(
            t.relation,
            t.values
                .iter()
                .map(|&v| key.token(v).expect("value was mapped"))
                .collect(),
        )
    }));
    let _ = schema;
    (encrypted, extended, key)
}

/// Whether a query is answerable from the attribute-wise encrypted view of
/// its relations: true exactly when the query mentions no constants (its
/// answer — up to the renaming of values — is determined by the isomorphic
/// copy). This reproduces the Section 5.4 examples: `Q1():-R(x,y),R(y,z),x≠z`
/// is answerable, `Q2():-R('a',x)` is not.
pub fn answerable_from_encrypted(query: &ConjunctiveQuery) -> bool {
    query.constants().is_empty()
}

/// Perfect security with respect to an encrypted view: never attainable for
/// a non-trivial secret, because the encrypted view reveals the relation's
/// cardinality (Section 5.4). A query is considered trivial here when it has
/// no subgoals.
pub fn perfectly_secure_wrt_encrypted(secret: &ConjunctiveQuery) -> bool {
    secret.atoms.is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvsec_cq::eval::evaluate;
    use qvsec_cq::parse_query;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Schema, Domain, Instance) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        let domain = Domain::with_constants(["a", "b", "c"]);
        let r = schema.relation_by_name("R").unwrap();
        let v = |n: &str| domain.get(n).unwrap();
        let inst = Instance::from_tuples([
            Tuple::new(r, vec![v("a"), v("b")]),
            Tuple::new(r, vec![v("b"), v("c")]),
            Tuple::new(r, vec![v("c"), v("a")]),
        ]);
        (schema, domain, inst)
    }

    #[test]
    fn encryption_preserves_cardinality_and_join_structure() {
        let (schema, domain, inst) = setup();
        let mut rng = StdRng::seed_from_u64(9);
        let (enc, enc_domain, key) = encrypt_instance(&inst, &schema, &domain, &mut rng);
        assert_eq!(enc.len(), inst.len(), "cardinality is disclosed");
        assert_eq!(key.len(), 3);
        assert!(!key.is_empty());
        // join structure: the 2-cycle-free 3-cycle R(x,y),R(y,z),R(z,x) is
        // preserved by the isomorphism
        let mut d = enc_domain.clone();
        let cycle = parse_query("C() :- R(x, y), R(y, z), R(z, x)", &schema, &mut d).unwrap();
        assert!(!evaluate(&cycle, &enc).is_empty());
        // constants are hidden: the original constant 'a' does not appear
        let a = domain.get("a").unwrap();
        assert!(enc.iter().all(|t| t.values.iter().all(|&v| v != a)));
    }

    #[test]
    fn encryption_is_injective() {
        let (schema, domain, inst) = setup();
        let mut rng = StdRng::seed_from_u64(11);
        let (_, _, key) = encrypt_instance(&inst, &schema, &domain, &mut rng);
        let tokens: Vec<_> = ["a", "b", "c"]
            .iter()
            .map(|n| key.token(domain.get(n).unwrap()).unwrap())
            .collect();
        assert_eq!(tokens.len(), 3);
        assert!(tokens[0] != tokens[1] && tokens[1] != tokens[2] && tokens[0] != tokens[2]);
        // unseen values have no token
        let mut d2 = domain.clone();
        let zz = d2.add("zz");
        assert!(key.token(zz).is_none());
    }

    #[test]
    fn answerability_follows_the_paper_examples() {
        let (schema, _, _) = setup();
        let mut d = Domain::new();
        let q1 = parse_query("Q1() :- R(x, y), R(y, z), x != z", &schema, &mut d).unwrap();
        let q2 = parse_query("Q2() :- R('a', x)", &schema, &mut d).unwrap();
        assert!(answerable_from_encrypted(&q1));
        assert!(!answerable_from_encrypted(&q2));
    }

    #[test]
    fn no_nontrivial_query_is_perfectly_secure_wrt_an_encrypted_view() {
        let (schema, _, _) = setup();
        let mut d = Domain::new();
        let s = parse_query("S(x) :- R(x, y)", &schema, &mut d).unwrap();
        assert!(!perfectly_secure_wrt_encrypted(&s));
        let trivial = ConjunctiveQuery::new("T");
        assert!(perfectly_secure_wrt_encrypted(&trivial));
    }

    #[test]
    fn different_keys_give_different_tokens_but_isomorphic_views() {
        let (schema, domain, inst) = setup();
        let mut rng1 = StdRng::seed_from_u64(1);
        let mut rng2 = StdRng::seed_from_u64(2);
        let (enc1, _, _) = encrypt_instance(&inst, &schema, &domain, &mut rng1);
        let (enc2, _, _) = encrypt_instance(&inst, &schema, &domain, &mut rng2);
        assert_eq!(enc1.len(), enc2.len());
        // both preserve the out-degree multiset of the original graph
        let outdeg = |i: &Instance| {
            let mut counts: HashMap<Value, usize> = HashMap::new();
            for t in i.iter() {
                *counts.entry(t.values[0]).or_insert(0) += 1;
            }
            let mut v: Vec<usize> = counts.values().copied().collect();
            v.sort_unstable();
            v
        };
        assert_eq!(outdeg(&enc1), outdeg(&enc2));
        assert_eq!(outdeg(&enc1), outdeg(&inst));
    }
}
