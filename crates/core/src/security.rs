//! The query-view security criterion (Theorems 4.5 and 4.8, Proposition 4.9).
//!
//! Theorem 4.5: `S |_P V̄` for **every** probability distribution `P` iff
//! `crit_D(S) ∩ crit_D(V̄) = ∅`. Theorem 4.8 adds that for monotone queries,
//! security under a single non-degenerate distribution already implies
//! security under all of them; Proposition 4.9 makes the criterion
//! domain-independent as soon as the domain is large enough relative to the
//! queries (|D| ≥ n for comparison-free conjunctive queries, |D| ≥ n(n+1)
//! with order predicates, where n bounds the variables and constants of any
//! query involved).
//!
//! [`secure_for_all_distributions`] packages all of this: it pads the domain
//! to the Proposition 4.9 bound, enumerates the candidate common critical
//! tuples, and reports the verdict together with the witnesses.

use crate::critical::common_critical_tuples;
use crate::critical::DEFAULT_CANDIDATE_CAP;
use crate::Result;
use qvsec_cq::{ConjunctiveQuery, ViewSet};
use qvsec_data::{Domain, Schema, Tuple, TupleSpace};
use serde::{Deserialize, Serialize};

/// The outcome of the dictionary-independent security check.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SecurityVerdict {
    /// Whether `S |_P V̄` holds for every probability distribution `P`.
    pub secure: bool,
    /// The common critical tuples witnessing insecurity (empty iff secure).
    pub common_critical_tuples: Vec<Tuple>,
    /// The size of the active domain used for the decision (after padding to
    /// the Proposition 4.9 bound).
    pub active_domain_size: usize,
}

impl SecurityVerdict {
    /// A human-readable one-line summary.
    pub fn summary(&self) -> String {
        if self.secure {
            format!(
                "SECURE for every distribution (no common critical tuple over a domain of {} constants)",
                self.active_domain_size
            )
        } else {
            format!(
                "NOT secure: {} common critical tuple(s), e.g. {}",
                self.common_critical_tuples.len(),
                self.common_critical_tuples
                    .first()
                    .map(|t| t.to_string())
                    .unwrap_or_default()
            )
        }
    }
}

/// The Proposition 4.9 active-domain size for a secret query and a set of
/// views: `n` for comparison-free conjunctive queries, `n(n+1)` when order
/// predicates occur, where `n` is the largest number of variables plus
/// constants in any single query.
pub fn active_domain_size(secret: &ConjunctiveQuery, views: &ViewSet) -> usize {
    let mut n = secret.symbol_count();
    let mut has_order = secret.has_order_comparisons();
    for v in views.iter() {
        n = n.max(v.symbol_count());
        has_order |= v.has_order_comparisons();
    }
    let n = n.max(1);
    if has_order {
        n * (n + 1)
    } else {
        n
    }
}

/// Builds the active domain: the constants already interned in `domain`
/// padded with fresh constants up to the Proposition 4.9 bound.
pub fn active_domain(secret: &ConjunctiveQuery, views: &ViewSet, domain: &Domain) -> Domain {
    let mut active = domain.clone();
    active.pad_to(active_domain_size(secret, views).max(domain.len()));
    active
}

/// Decides whether `secret` is secure with respect to `views` for **every**
/// tuple-independent probability distribution (Theorem 4.5 + Prop. 4.9).
///
/// The `domain` argument should be the domain against which the queries were
/// parsed (it supplies the constant names); it is padded internally and never
/// mutated.
pub fn secure_for_all_distributions(
    secret: &ConjunctiveQuery,
    views: &ViewSet,
    _schema: &Schema,
    domain: &Domain,
) -> Result<SecurityVerdict> {
    secure_for_all_distributions_with_cap(secret, views, domain, DEFAULT_CANDIDATE_CAP)
}

/// [`secure_for_all_distributions`] with an explicit cap on the candidate
/// tuple enumeration.
pub fn secure_for_all_distributions_with_cap(
    secret: &ConjunctiveQuery,
    views: &ViewSet,
    domain: &Domain,
    cap: usize,
) -> Result<SecurityVerdict> {
    let active = active_domain(secret, views, domain);
    let common = common_critical_tuples(secret, views, &active, cap)?;
    Ok(SecurityVerdict {
        secure: common.is_empty(),
        common_critical_tuples: common,
        active_domain_size: active.len(),
    })
}

/// Decides security of two **boolean** queries through the polynomial
/// criterion of Section 4.3: `S |_P V` for all `P` iff
/// `f_{S∧V} = f_S · f_V` as polynomials (Eq. (6) / Theorem 4.5 boolean case).
///
/// The polynomials are built over the given tuple space, which must contain
/// the support of both queries and be small enough to enumerate. This is an
/// independent decision path used to cross-validate the critical-tuple
/// criterion.
pub fn secure_boolean_via_polynomials(
    secret: &ConjunctiveQuery,
    view: &ConjunctiveQuery,
    space: &TupleSpace,
) -> Result<bool> {
    if !secret.is_boolean() {
        return Err(crate::QvsError::NotBoolean(secret.name.clone()));
    }
    if !view.is_boolean() {
        return Err(crate::QvsError::NotBoolean(view.name.clone()));
    }
    // conjunction S ∧ V: evaluate both on every instance
    let mut sat_conj = vec![false; 1usize << space.len()];
    let mut sat_s = vec![false; 1usize << space.len()];
    let mut sat_v = vec![false; 1usize << space.len()];
    for (mask, instance) in space.instances()? {
        let s_true = qvsec_cq::evaluate_boolean(secret, &instance);
        let v_true = qvsec_cq::evaluate_boolean(view, &instance);
        sat_s[mask as usize] = s_true;
        sat_v[mask as usize] = v_true;
        sat_conj[mask as usize] = s_true && v_true;
    }
    let f_s = qvsec_prob::poly::from_satisfying(space.len(), &sat_s);
    let f_v = qvsec_prob::poly::from_satisfying(space.len(), &sat_v);
    let f_conj = qvsec_prob::poly::from_satisfying(space.len(), &sat_conj);
    Ok(&f_s * &f_v == f_conj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvsec_cq::parse_query;
    use qvsec_data::Schema;
    use qvsec_prob::lineage::support_space;

    fn employee_schema() -> Schema {
        let mut schema = Schema::new();
        schema.add_relation("Employee", &["name", "department", "phone"]);
        schema.add_relation("R", &["x", "y"]);
        schema
    }

    #[test]
    fn table_1_classification_of_security() {
        let schema = employee_schema();
        // row 1: total disclosure — not secure
        let mut d1 = Domain::new();
        let v1 = parse_query("V1(n, d) :- Employee(n, d, p)", &schema, &mut d1).unwrap();
        let s1 = parse_query("S1(d) :- Employee(n, d, p)", &schema, &mut d1).unwrap();
        assert!(
            !secure_for_all_distributions(&s1, &ViewSet::single(v1), &schema, &d1)
                .unwrap()
                .secure
        );

        // row 2: partial disclosure through collusion — not secure
        let mut d2 = Domain::new();
        let v2 = parse_query("V2(n, d) :- Employee(n, d, p)", &schema, &mut d2).unwrap();
        let v2p = parse_query("V2p(d, p) :- Employee(n, d, p)", &schema, &mut d2).unwrap();
        let s2 = parse_query("S2(n, p) :- Employee(n, d, p)", &schema, &mut d2).unwrap();
        let verdict =
            secure_for_all_distributions(&s2, &ViewSet::from_views(vec![v2, v2p]), &schema, &d2)
                .unwrap();
        assert!(!verdict.secure);
        assert!(!verdict.common_critical_tuples.is_empty());

        // row 3: minute disclosure — still not secure under perfect secrecy
        let mut d3 = Domain::new();
        let v3 = parse_query("V3(n) :- Employee(n, d, p)", &schema, &mut d3).unwrap();
        let s3 = parse_query("S3(p) :- Employee(n, d, p)", &schema, &mut d3).unwrap();
        assert!(
            !secure_for_all_distributions(&s3, &ViewSet::single(v3), &schema, &d3)
                .unwrap()
                .secure
        );

        // row 4: no disclosure — secure
        let mut d4 = Domain::new();
        let v4 = parse_query("V4(n) :- Employee(n, 'Mgmt', p)", &schema, &mut d4).unwrap();
        let s4 = parse_query("S4(n) :- Employee(n, 'HR', p)", &schema, &mut d4).unwrap();
        let verdict =
            secure_for_all_distributions(&s4, &ViewSet::single(v4), &schema, &d4).unwrap();
        assert!(verdict.secure);
        assert!(verdict.summary().contains("SECURE"));
    }

    #[test]
    fn examples_4_6_and_4_7() {
        let schema = employee_schema();
        let mut domain = Domain::with_constants(["a", "b"]);
        let v = parse_query("V(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let s = parse_query("S(y) :- R(x, y)", &schema, &mut domain).unwrap();
        assert!(
            !secure_for_all_distributions(&s, &ViewSet::single(v), &schema, &domain)
                .unwrap()
                .secure
        );

        let v = parse_query("V(x) :- R(x, 'b')", &schema, &mut domain).unwrap();
        let s = parse_query("S(y) :- R(y, 'a')", &schema, &mut domain).unwrap();
        assert!(
            secure_for_all_distributions(&s, &ViewSet::single(v), &schema, &domain)
                .unwrap()
                .secure
        );
    }

    #[test]
    fn multi_view_security_reduces_to_each_view_separately() {
        // Theorem 4.5 corollary (collusions, §4.1.1): secure w.r.t. each view
        // separately ⇒ secure w.r.t. all of them jointly.
        let schema = employee_schema();
        let mut domain = Domain::new();
        let v_a = parse_query("Va(n) :- Employee(n, 'Mgmt', p)", &schema, &mut domain).unwrap();
        let v_b = parse_query("Vb(n) :- Employee(n, 'Sales', p)", &schema, &mut domain).unwrap();
        let s = parse_query("S(n) :- Employee(n, 'HR', p)", &schema, &mut domain).unwrap();
        for v in [&v_a, &v_b] {
            assert!(
                secure_for_all_distributions(&s, &ViewSet::single(v.clone()), &schema, &domain)
                    .unwrap()
                    .secure
            );
        }
        assert!(
            secure_for_all_distributions(
                &s,
                &ViewSet::from_views(vec![v_a, v_b]),
                &schema,
                &domain
            )
            .unwrap()
            .secure
        );
    }

    #[test]
    fn active_domain_respects_proposition_4_9() {
        let schema = employee_schema();
        let mut domain = Domain::new();
        let s = parse_query("S(n, p) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
        let v = parse_query("V(n, d) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
        let views = ViewSet::single(v);
        // 3 variables, no constants, no order predicates: n = 3
        assert_eq!(active_domain_size(&s, &views), 3);
        let with_order =
            parse_query("W(n) :- Employee(n, d, p), d < p", &schema, &mut domain).unwrap();
        let views = ViewSet::single(with_order);
        assert_eq!(
            active_domain_size(&s, &views),
            12,
            "n(n+1) with order predicates"
        );
        let active = active_domain(&s, &views, &domain);
        assert!(active.len() >= 12);
    }

    #[test]
    fn polynomial_criterion_agrees_with_critical_tuple_criterion() {
        let schema = employee_schema();
        let mut domain = Domain::with_constants(["a", "b"]);
        let pairs = [
            ("S() :- R('a', x)", "V() :- R(x, 'b')", false),
            ("S() :- R('a', 'a')", "V() :- R('b', 'b')", true),
            ("S() :- R(x, x)", "V() :- R('a', y)", false),
            ("S() :- R('a', 'b')", "V() :- R('a', 'c')", true),
        ];
        for (s_text, v_text, expected_secure) in pairs {
            let mut d = domain.clone();
            let s = parse_query(s_text, &schema, &mut d).unwrap();
            let v = parse_query(v_text, &schema, &mut d).unwrap();
            let space = support_space(&[&s, &v], &d, 1 << 12).unwrap();
            let poly_secure = secure_boolean_via_polynomials(&s, &v, &space).unwrap();
            let crit_secure = secure_for_all_distributions(&s, &ViewSet::single(v), &schema, &d)
                .unwrap()
                .secure;
            assert_eq!(
                poly_secure, crit_secure,
                "criteria disagree on ({s_text}, {v_text})"
            );
            assert_eq!(
                poly_secure, expected_secure,
                "unexpected verdict for ({s_text}, {v_text})"
            );
        }
        let _ = domain.add("c");
    }

    #[test]
    fn polynomial_criterion_rejects_non_boolean_queries() {
        let schema = employee_schema();
        let mut domain = Domain::with_constants(["a", "b"]);
        let s = parse_query("S(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let v = parse_query("V() :- R('a', 'b')", &schema, &mut domain).unwrap();
        let space = support_space(&[&s, &v], &domain, 1 << 12).unwrap();
        assert!(secure_boolean_via_polynomials(&s, &v, &space).is_err());
        assert!(secure_boolean_via_polynomials(&v, &s, &space).is_err());
    }
}
