//! The owned, thread-safe audit engine.
//!
//! [`AuditEngine`] is the workspace's production entry point: it owns its
//! [`Schema`] / [`Domain`] (and optionally a [`Dictionary`]) behind `Arc`s,
//! is `Send + Sync`, and serves any number of audits — sequentially via
//! [`AuditEngine::audit`] or in parallel via [`AuditEngine::audit_batch`] —
//! against that shared context.
//!
//! ## Staged, budgeted evaluation
//!
//! Every audit runs the paper's procedures as an escalation ladder bounded
//! by the requested [`AuditDepth`]:
//!
//! | depth | procedures run | cost |
//! |---|---|---|
//! | [`AuditDepth::Fast`] | §4.2 pairwise subgoal unification | linear-ish, always conclusive when it certifies security |
//! | [`AuditDepth::Exact`] | + Theorem 4.5 critical-tuple criterion | exponential in subgoal overlap, memoized |
//! | [`AuditDepth::Probabilistic`] | + Definition 4.1 independence, §6.1 leakage, total-disclosure test over the dictionary | one pass of the shared-sample kernel |
//!
//! The fast check always runs first. When it certifies security the exact
//! stage is skipped entirely — soundly, since "no unifiable subgoal pair"
//! implies `crit(S) ∩ crit(V̄) = ∅` — and the exact verdict is synthesized
//! with an empty witness set. When the fast check is inconclusive and the
//! budget stops at `Fast`, the report says so (`conclusive == false`)
//! rather than guessing.
//!
//! ## Compiled artifacts
//!
//! The exact stage needs `crit_D(Q)` for the secret and every view. The
//! engine memoizes these sets — together with interned candidate spaces —
//! in its [`CompiledArtifacts`] store, keyed by
//! ([`qvsec_cq::canonical_form`], active-domain size): a key that is
//! invariant under variable renaming, the cosmetic query name and most
//! subgoal reorderings (ties between structurally identical subgoals can
//! miss, never falsely hit), and sound because the critical-tuple set
//! depends only on the query structure and the number of domain constants.
//! Republishing the same view across thousands of audit requests therefore
//! computes its critical tuples exactly once, and — for order-free
//! queries — symmetry-class verdicts are shared across *domain sizes*, so
//! even a grown active domain only re-derives class members rather than
//! re-deciding representatives.
//!
//! Cache misses are served by the parallel, pruned `crit(Q)` kernel of
//! [`crate::critical`] (streaming pattern grouping, unification prefilter,
//! comparison-constraint propagation), and the engine accumulates the
//! kernel's pruning counters for its whole lifetime — see
//! [`AuditEngine::crit_stats`]; every cache layer's hit/miss counters are
//! combined in [`AuditEngine::cache_stats`].
//!
//! ## Sessions
//!
//! [`AuditEngine::open_session`] returns an [`AuditSession`] — the
//! incremental-publication handle for the paper's §6 collusion flow
//! ("V₁…Vₖ are public; is it safe to *also* publish Vₖ₊₁?"), which answers
//! each marginal question over the warm artifact store and reports
//! per-step cache-reuse deltas. See [`crate::session`].
//!
//! ## The probabilistic kernel
//!
//! The `Probabilistic` stage routes through the shared-sample kernel of
//! [`qvsec_prob::kernel`]: tuple spaces up to the configured cutover are
//! streamed exactly as bit masks (no `Instance` per world, one enumeration
//! serving independence, leakage *and* total disclosure), larger spaces cut
//! over to Monte-Carlo estimation from one seeded sample pool shared across
//! the three passes and across every audit — including all requests of an
//! [`AuditEngine::audit_batch`] — the engine serves. Each report carries
//! [`EstimatorReport`] metadata saying which estimator produced it, and
//! [`AuditEngine::prob_stats`] exposes the kernel's lifetime counters
//! (worlds streamed, samples drawn/reused, cutovers).

use crate::artifacts::{ArtifactBudget, ArtifactCounters, CompiledArtifacts};
use crate::critical::CritStatsSnapshot;
use crate::fast_check::{fast_check, FastVerdict};
use crate::leakage::LeakageReport;
use crate::report::{classify, default_minute_threshold, DisclosureClass};
use crate::security::{active_domain, SecurityVerdict};
use crate::session::AuditSession;
use crate::{QvsError, Result};
use qvsec_cq::{ConjunctiveQuery, ViewSet};
use qvsec_data::{Dictionary, Domain, Ratio, Schema, Tuple};
use qvsec_prob::kernel::{
    EstimatorReport, KernelConfig, ProbKernel, ProbStatsSnapshot, NS_KERNEL_COLUMNS,
    NS_KERNEL_COMPILE,
};
use qvsec_store::StoreBackend;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::sync::{Arc, OnceLock};

/// Whether two sorted tuple slices (interned candidate spaces) share no
/// element — a single merge walk, no hashing, no cloning.
fn sorted_disjoint(mut a: &[Tuple], mut b: &[Tuple]) -> bool {
    while let (Some(x), Some(y)) = (a.first(), b.first()) {
        match x.cmp(y) {
            std::cmp::Ordering::Less => a = &a[1..],
            std::cmp::Ordering::Greater => b = &b[1..],
            std::cmp::Ordering::Equal => return false,
        }
    }
    true
}

/// How deep an audit is allowed to escalate.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum AuditDepth {
    /// Only the Section 4.2 pairwise-unification check.
    Fast,
    /// Escalate to the exact Theorem 4.5 critical-tuple criterion.
    #[default]
    Exact,
    /// Escalate further to the dictionary-level checks: literal
    /// Definition 4.1 independence, the Section 6.1 leakage measure and the
    /// total-disclosure (determinacy) test. Requires the engine to hold a
    /// dictionary with an enumerable tuple space.
    Probabilistic,
}

/// Per-request options; unset fields fall back to the engine's defaults.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AuditOptions {
    /// Maximum stage to escalate to.
    pub depth: Option<AuditDepth>,
    /// Threshold separating minute from partial disclosures.
    pub minute_threshold: Option<Ratio>,
    /// Cap on the candidate critical-tuple enumeration.
    pub candidate_cap: Option<usize>,
}

/// One audit: a secret query, the views about to be published, and options.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AuditRequest {
    /// Label echoed into the report (useful for batch audits).
    pub name: String,
    /// The secret query `S`.
    pub secret: ConjunctiveQuery,
    /// The views `V̄` about to be published.
    pub views: ViewSet,
    /// Per-request options.
    pub options: AuditOptions,
}

impl AuditRequest {
    /// An audit of `secret` against `views` with default options, labelled
    /// after the secret query.
    pub fn new(secret: ConjunctiveQuery, views: impl Into<ViewSet>) -> Self {
        AuditRequest {
            name: secret.name.clone(),
            secret,
            views: views.into(),
            options: AuditOptions::default(),
        }
    }

    /// Overrides the report label.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Overrides the escalation depth.
    pub fn with_depth(mut self, depth: AuditDepth) -> Self {
        self.options.depth = Some(depth);
        self
    }

    /// Overrides the minute-vs-partial threshold.
    pub fn with_minute_threshold(mut self, threshold: Ratio) -> Self {
        self.options.minute_threshold = Some(threshold);
        self
    }
}

/// The machine-readable result of one audit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AuditReport {
    /// The request's label.
    pub name: String,
    /// The depth the audit was allowed to escalate to.
    pub depth: AuditDepth,
    /// Whether the verdict is definitive. Only `false` when the budget
    /// stopped at [`AuditDepth::Fast`] and some subgoal pair unified (the
    /// fast check alone cannot distinguish real from spurious overlaps).
    pub conclusive: bool,
    /// The definitive security verdict when known: `Some(true)` means
    /// query-view secure for every tuple-independent distribution.
    pub secure: Option<bool>,
    /// Table 1 style classification. When `conclusive` is `false` this is
    /// the conservative assumption [`DisclosureClass::Partial`].
    pub class: DisclosureClass,
    /// The Section 4.2 fast verdict (always present).
    pub fast: FastVerdict,
    /// The Theorem 4.5 verdict (present from [`AuditDepth::Exact`] up).
    pub security: Option<SecurityVerdict>,
    /// The literal Definition 4.1 check (present at
    /// [`AuditDepth::Probabilistic`]).
    pub independence: Option<qvsec_prob::independence::IndependenceReport>,
    /// The Section 6.1 leakage report (present at
    /// [`AuditDepth::Probabilistic`]).
    pub leakage: Option<LeakageReport>,
    /// Whether the views determine the secret answer over the dictionary
    /// (present at [`AuditDepth::Probabilistic`]).
    pub totally_disclosed: Option<bool>,
    /// Which estimator served the probabilistic stage — exact mask
    /// streaming or shared-pool Monte-Carlo — with sample count, seed and
    /// standard-error bound (present at [`AuditDepth::Probabilistic`]).
    #[serde(default)]
    pub estimator: Option<EstimatorReport>,
    /// Human-readable renderings of the common critical tuples witnessing
    /// insecurity (empty when secure or not escalated).
    pub witnesses: Vec<String>,
}

impl AuditReport {
    /// A multi-line human-readable rendering, suitable for audit logs.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("audit                 : {}\n", self.name));
        out.push_str(&format!(
            "classification        : {}{}\n",
            self.class,
            if self.conclusive {
                ""
            } else {
                " (inconclusive: fast check only)"
            }
        ));
        out.push_str(&format!(
            "fast check            : {}\n",
            if self.fast.is_certainly_secure() {
                "secure (no unifiable subgoal pair)"
            } else {
                "possibly insecure (some subgoals unify)"
            }
        ));
        if let Some(sec) = &self.security {
            out.push_str(&format!("exact criterion       : {}\n", sec.summary()));
        }
        if let Some(ind) = &self.independence {
            out.push_str(&format!(
                "statistical check     : {} ({} answer pairs checked)\n",
                if ind.independent {
                    "independent"
                } else {
                    "dependent"
                },
                ind.pairs_checked
            ));
            if let Some(v) = ind.worst_violation() {
                out.push_str(&format!(
                    "  worst shift         : prior {} -> posterior {}\n",
                    v.prior, v.posterior
                ));
            }
        }
        if let Some(leak) = &self.leakage {
            out.push_str(&format!(
                "leakage (Section 6.1) : {} (~{:.4})\n",
                leak.max_leak,
                leak.max_leak_f64()
            ));
        }
        if let Some(total) = self.totally_disclosed {
            out.push_str(&format!("totally disclosed     : {total}\n"));
        }
        if let Some(est) = &self.estimator {
            out.push_str(&match est.mode {
                qvsec_prob::kernel::EstimatorMode::Exact => format!(
                    "estimator             : exact ({} worlds streamed)\n",
                    est.worlds_streamed
                ),
                qvsec_prob::kernel::EstimatorMode::MonteCarlo => format!(
                    "estimator             : monte-carlo ({} samples, seed {}, std error <= {:.4})\n",
                    est.sample_count,
                    est.seed.unwrap_or_default(),
                    est.std_error
                ),
            });
        }
        if !self.witnesses.is_empty() {
            out.push_str(&format!(
                "witnesses             : {}\n",
                self.witnesses.join(", ")
            ));
        }
        out
    }
}

/// Builder for [`AuditEngine`].
#[derive(Debug, Clone)]
pub struct AuditEngineBuilder {
    schema: Arc<Schema>,
    domain: Arc<Domain>,
    dictionary: Option<Arc<Dictionary>>,
    minute_threshold: Ratio,
    candidate_cap: usize,
    default_depth: AuditDepth,
    prob_config: KernelConfig,
    artifact_budget: ArtifactBudget,
    store: Option<Arc<dyn StoreBackend>>,
}

impl AuditEngineBuilder {
    /// Starts a builder from an owned (or shared) schema and domain.
    pub fn new(schema: impl Into<Arc<Schema>>, domain: impl Into<Arc<Domain>>) -> Self {
        AuditEngineBuilder {
            schema: schema.into(),
            domain: domain.into(),
            dictionary: None,
            minute_threshold: default_minute_threshold(),
            candidate_cap: crate::critical::DEFAULT_CANDIDATE_CAP,
            default_depth: AuditDepth::default(),
            // The engine always memoizes whole kernel audits: session steps
            // and multi-tenant serving repeat identical `(secret, views)`
            // audits constantly, and the memo is what moves the warm/cold
            // ratio of probabilistic steps off ≈1 (unbounded here; a byte
            // budget arrives with `cache_budget_bytes`).
            prob_config: KernelConfig {
                audit_memo: true,
                ..KernelConfig::default()
            },
            artifact_budget: ArtifactBudget::unbounded(),
            store: None,
        }
    }

    /// Attaches the dictionary enabling [`AuditDepth::Probabilistic`].
    pub fn dictionary(mut self, dict: impl Into<Arc<Dictionary>>) -> Self {
        self.dictionary = Some(dict.into());
        self
    }

    /// Overrides the default minute-vs-partial threshold.
    pub fn minute_threshold(mut self, threshold: Ratio) -> Self {
        self.minute_threshold = threshold;
        self
    }

    /// Overrides the default candidate-enumeration cap.
    pub fn candidate_cap(mut self, cap: usize) -> Self {
        self.candidate_cap = cap;
        self
    }

    /// Overrides the default escalation depth used when a request does not
    /// specify one.
    pub fn default_depth(mut self, depth: AuditDepth) -> Self {
        self.default_depth = depth;
        self
    }

    /// Largest tuple-space size the probabilistic stage evaluates exactly;
    /// bigger spaces cut over to Monte-Carlo estimation (default:
    /// [`qvsec_data::bitset::MAX_ENUMERABLE`]).
    pub fn exact_cutover(mut self, tuples: usize) -> Self {
        self.prob_config.exact_cutover = tuples;
        self
    }

    /// Number of worlds drawn into the probabilistic kernel's shared sample
    /// pool (Monte-Carlo path).
    pub fn mc_samples(mut self, samples: usize) -> Self {
        self.prob_config.samples = samples;
        self
    }

    /// Seed of the shared sample pool; a fixed seed makes every
    /// Monte-Carlo report byte-reproducible.
    pub fn mc_seed(mut self, seed: u64) -> Self {
        self.prob_config.seed = seed;
        self
    }

    /// Bounds every engine cache by one total byte budget: 70% goes to the
    /// compiled-artifact store (crit sets, candidate spaces, class
    /// verdicts), 10% each to the probabilistic kernel's compile,
    /// answer-bit-column and whole-audit-memo caches. Inserting past a
    /// layer's budget evicts its least-recently-used entries; eviction is
    /// transparent — any evicted artifact is recomputed on the next
    /// request, and every verdict is byte-identical to an unbounded
    /// engine's (see `tests/eviction_equivalence.rs`). Without this call
    /// the caches are append-only for the engine's lifetime.
    pub fn cache_budget_bytes(mut self, total: usize) -> Self {
        self.artifact_budget = ArtifactBudget::split(total * 7 / 10);
        self.prob_config.compile_budget = Some(total / 10);
        self.prob_config.column_budget = Some(total / 10);
        self.prob_config.audit_budget = Some(total / 10);
        self
    }

    /// Per-layer artifact budgets, for callers that want finer control than
    /// [`AuditEngineBuilder::cache_budget_bytes`].
    pub fn artifact_budget(mut self, budget: ArtifactBudget) -> Self {
        self.artifact_budget = budget;
        self
    }

    /// Caps the *reported* leak-entry and independence-violation lists of
    /// probabilistic audits. Verdicts, `max_leak`, the witness pair and
    /// `pairs_checked` still cover every pair; the cap only bounds how many
    /// entries are materialized (lazily — answers are cloned for surviving
    /// entries only) and serialized. `0` keeps the witness and drops the
    /// lists. Unset, reports are byte-identical to the enumeration
    /// baseline.
    pub fn report_cap(mut self, cap: usize) -> Self {
        self.prob_config.report_cap = Some(cap);
        self
    }

    /// Backs every artifact cache — crit sets, candidate spaces, class
    /// verdicts, kernel compilations, pool columns — with a durable store:
    /// artifacts are written through at compute time and revived on a
    /// resident-cache miss, so LRU eviction demotes instead of discarding
    /// and [`AuditEngine::rehydrate`] rebuilds a byte-identical warm engine
    /// after a restart. The LRU byte budgets still bound resident memory.
    pub fn store(mut self, store: Arc<dyn StoreBackend>) -> Self {
        self.store = Some(store);
        self
    }

    /// Builds the engine.
    pub fn build(self) -> AuditEngine {
        AuditEngine {
            schema: self.schema,
            domain: self.domain,
            dictionary: self.dictionary,
            minute_threshold: self.minute_threshold,
            candidate_cap: self.candidate_cap,
            default_depth: self.default_depth,
            prob_config: self.prob_config,
            artifacts: CompiledArtifacts::with_budget_and_store(
                self.artifact_budget,
                self.store.clone(),
            ),
            prob_kernel: OnceLock::new(),
            store: self.store,
            stats_baseline: OnceLock::new(),
        }
    }
}

/// An owned, `Send + Sync` audit engine bound to one schema, domain and
/// optional dictionary. See the [module docs](self) for the staging and
/// caching model.
///
/// ```
/// use qvsec::{AuditEngine, AuditRequest};
/// use qvsec_cq::{parse_query, ViewSet};
/// use qvsec_data::{Domain, Schema};
///
/// let mut schema = Schema::new();
/// schema.add_relation("Employee", &["name", "department", "phone"]);
/// let mut domain = Domain::new();
/// let v = parse_query("V(n, d) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
/// let s = parse_query("S(d) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
///
/// let engine = AuditEngine::builder(schema, domain).build();
/// let report = engine.audit(&AuditRequest::new(s, ViewSet::single(v))).unwrap();
/// assert_eq!(report.secure, Some(false), "Table 1 row 1: total disclosure");
///
/// // The exact stage ran the crit(Q) kernel and memoized its results:
/// assert!(engine.crit_stats().candidates_examined > 0);
/// assert_eq!(engine.cached_crit_sets(), 2);
/// ```
#[derive(Debug)]
pub struct AuditEngine {
    schema: Arc<Schema>,
    domain: Arc<Domain>,
    dictionary: Option<Arc<Dictionary>>,
    minute_threshold: Ratio,
    candidate_cap: usize,
    default_depth: AuditDepth,
    /// Probabilistic kernel configuration (cutover, samples, seed).
    prob_config: KernelConfig,
    /// First-class compiled artifacts: `crit(Q)` sets and candidate spaces
    /// memoized by (canonical form, active-domain size), plus the
    /// domain-size-independent symmetry-class verdict caches.
    artifacts: CompiledArtifacts,
    /// The shared-sample probabilistic kernel, built on the first
    /// `Probabilistic` audit and reused (pool included) for the engine's
    /// whole lifetime.
    prob_kernel: OnceLock<Arc<ProbKernel>>,
    /// Optional durable backing shared by every cache layer (also handed
    /// to the kernel when it is built).
    store: Option<Arc<dyn StoreBackend>>,
    /// Counter offset from a previous process's journaled snapshot, set by
    /// [`AuditEngine::set_stats_baseline`] during rehydration and added to
    /// the monotonic fields of [`AuditEngine::cache_stats`] — so a
    /// restarted engine's cumulative statistics continue where the crashed
    /// process stopped, and per-step deltas cancel the offset entirely.
    stats_baseline: OnceLock<CacheStatsSnapshot>,
}

// The engine is shared across audit worker threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<AuditEngine>();
};

impl AuditEngine {
    /// Shorthand for [`AuditEngineBuilder::new`].
    pub fn builder(
        schema: impl Into<Arc<Schema>>,
        domain: impl Into<Arc<Domain>>,
    ) -> AuditEngineBuilder {
        AuditEngineBuilder::new(schema, domain)
    }

    /// The engine's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The engine's domain of constants.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// The engine's dictionary, when configured.
    pub fn dictionary(&self) -> Option<&Dictionary> {
        self.dictionary.as_deref()
    }

    /// Number of distinct `crit(Q)` sets currently memoized.
    pub fn cached_crit_sets(&self) -> usize {
        self.artifacts.cached_crit_sets()
    }

    /// The engine's compiled-artifact store (crit sets, candidate spaces,
    /// class-verdict caches).
    pub fn artifacts(&self) -> &CompiledArtifacts {
        &self.artifacts
    }

    /// A snapshot of the engine-lifetime `crit(Q)` kernel counters:
    /// candidates examined, pruned (symmetry / prefilter / comparisons) and
    /// fine instances actually frozen, accumulated across every audit served
    /// so far. Cache hits do no kernel work, so a hot engine's counters grow
    /// sublinearly in the number of audits.
    pub fn crit_stats(&self) -> CritStatsSnapshot {
        self.artifacts.crit_stats().snapshot()
    }

    /// A combined snapshot of every artifact/cache layer the engine runs:
    /// crit-set and candidate-space memo hits, cross-domain class-verdict
    /// reuses, probabilistic compile-cache hits and shared-pool sample
    /// reuse. [`AuditSession`] reports per-step deltas of this snapshot.
    pub fn cache_stats(&self) -> CacheStatsSnapshot {
        let artifacts: ArtifactCounters = self.artifacts.counters();
        let crit = self.artifacts.crit_stats().snapshot();
        let prob = self.prob_stats();
        let mut snap = CacheStatsSnapshot {
            crit_cache_hits: artifacts.crit_cache_hits,
            crit_cache_misses: artifacts.crit_cache_misses,
            space_cache_hits: artifacts.space_cache_hits,
            space_cache_misses: artifacts.space_cache_misses,
            class_verdicts_reused: crit.class_verdicts_reused,
            compile_cache_hits: prob.compile_cache_hits,
            queries_compiled: prob.queries_compiled,
            mc_samples_drawn: prob.samples_drawn,
            mc_samples_reused: prob.samples_reused,
            pool_columns_built: prob.pool_columns_built,
            pool_column_hits: prob.pool_column_hits,
            kernel_audit_hits: prob.audit_memo_hits,
            evictions: artifacts.evictions + prob.evictions,
            evicted_bytes: artifacts.evicted_bytes + prob.evicted_bytes,
            resident_bytes: artifacts.resident_bytes + prob.resident_bytes,
        };
        if let Some(base) = self.stats_baseline.get() {
            // The baseline shifts monotonic counters only: resident bytes
            // are a gauge, reproduced directly by rehydration's prewarm.
            let resident = snap.resident_bytes;
            snap.accumulate(base);
            snap.resident_bytes = resident;
        }
        snap
    }

    /// Opens an [`AuditSession`] for `secret`: a long-lived handle that
    /// accumulates published views and answers "is it safe to *also*
    /// publish V?" incrementally over this engine's compiled artifacts.
    pub fn open_session(self: &Arc<Self>, secret: ConjunctiveQuery) -> AuditSession {
        AuditSession::new(Arc::clone(self), secret, AuditOptions::default())
    }

    /// [`AuditEngine::open_session`] with per-session audit options.
    pub fn open_session_with(
        self: &Arc<Self>,
        secret: ConjunctiveQuery,
        options: AuditOptions,
    ) -> AuditSession {
        AuditSession::new(Arc::clone(self), secret, options)
    }

    /// A snapshot of the engine-lifetime probabilistic-kernel counters:
    /// exact worlds streamed, samples drawn into the shared pool, samples
    /// served from it instead of freshly drawn, and exact→Monte-Carlo
    /// cutovers. All zeros until the first `Probabilistic` audit.
    pub fn prob_stats(&self) -> ProbStatsSnapshot {
        self.prob_kernel
            .get()
            .map(|k| k.stats())
            .unwrap_or_default()
    }

    /// The probabilistic kernel, built against the engine's dictionary on
    /// first use.
    fn kernel(&self, dict: &Arc<Dictionary>) -> &Arc<ProbKernel> {
        self.prob_kernel.get_or_init(|| {
            Arc::new(ProbKernel::with_store(
                Arc::clone(dict),
                self.prob_config,
                self.store.clone(),
            ))
        })
    }

    /// Installs the counter baseline a rehydrated engine continues from
    /// (typically the last journaled [`CacheStatsSnapshot`] of the previous
    /// process). First call wins; later calls are ignored.
    pub fn set_stats_baseline(&self, baseline: CacheStatsSnapshot) {
        let _ = self.stats_baseline.set(baseline);
    }

    /// Rehydrates the engine's caches from its durable store after a
    /// restart: the artifact layers (crit sets, candidate spaces, class
    /// verdicts) are prewarmed, and — when the store holds kernel
    /// artifacts and a dictionary is configured — the probabilistic kernel
    /// is built and prewarmed too, including a counter-free prebuild of
    /// the shared sample pool when persisted columns prove the previous
    /// process ran the Monte-Carlo path. A no-op without a store.
    pub fn rehydrate(&self) -> Result<()> {
        let Some(store) = &self.store else {
            return Ok(());
        };
        self.artifacts.prewarm_from_store()?;
        if let Some(dict) = self.dictionary.clone() {
            let has_kernel_artifacts = !store
                .scan(NS_KERNEL_COMPILE)
                .map_err(|e| QvsError::Invalid(format!("artifact store: {e}")))?
                .is_empty()
                || !store
                    .scan(NS_KERNEL_COLUMNS)
                    .map_err(|e| QvsError::Invalid(format!("artifact store: {e}")))?
                    .is_empty();
            if has_kernel_artifacts {
                self.kernel(&dict)
                    .prewarm_from_store()
                    .map_err(|e| QvsError::Invalid(format!("artifact store: {e}")))?;
            }
        }
        Ok(())
    }

    /// Computes (or fetches) `crit_D(Q)` over `active` through the
    /// artifact store (memoized per (canonical form, active-domain size),
    /// class verdicts shared across domain sizes).
    fn crit_cached(
        &self,
        query: &ConjunctiveQuery,
        active: &Domain,
        cap: usize,
    ) -> Result<Arc<BTreeSet<Tuple>>> {
        self.artifacts.crit(query, active, cap)
    }

    /// The exact Theorem 4.5 verdict computed through the memo cache:
    /// `crit(S) ∩ (crit(V1) ∪ ... ∪ crit(Vk))` over the Proposition 4.9
    /// active domain.
    ///
    /// The cheap candidate (subgoal-grounding) intersection is checked
    /// first: critical tuples are always subgoal groundings, so a view
    /// whose candidates are disjoint from the secret's cannot contribute a
    /// common critical tuple and no exponential `is_critical` work is spent
    /// on it. Only views with overlapping candidates pay for the full,
    /// memoized `crit(Q)` sets.
    fn exact_security(
        &self,
        secret: &ConjunctiveQuery,
        views: &ViewSet,
        active: &Domain,
        cap: usize,
    ) -> Result<SecurityVerdict> {
        let secret_space = self.artifacts.candidate_space(secret, active, cap)?;
        let mut crit_s = None;
        let mut common: BTreeSet<Tuple> = BTreeSet::new();
        for v in views.iter() {
            let view_space = self.artifacts.candidate_space(v, active, cap)?;
            if sorted_disjoint(secret_space.tuples(), view_space.tuples()) {
                continue;
            }
            let crit_s = match &crit_s {
                Some(c) => c,
                None => crit_s.insert(self.crit_cached(secret, active, cap)?),
            };
            let crit_v = self.crit_cached(v, active, cap)?;
            common.extend(crit_s.intersection(&crit_v).cloned());
        }
        Ok(SecurityVerdict {
            secure: common.is_empty(),
            common_critical_tuples: common.into_iter().collect(),
            active_domain_size: active.len(),
        })
    }

    /// Probes every artifact-cache layer for `query`'s canonical form —
    /// the engine half of the `explain` wire op. Strictly read-only: no
    /// promotion, no recomputation, no counter movement.
    pub fn explain(&self, query: &ConjunctiveQuery) -> crate::artifacts::ArtifactProbe {
        self.artifacts.probe(query)
    }

    /// Runs one audit to the requested (or default) depth.
    pub fn audit(&self, request: &AuditRequest) -> Result<AuditReport> {
        qvsec_obs::counter("audit.requests").inc();
        let depth = request.options.depth.unwrap_or(self.default_depth);
        let threshold = request
            .options
            .minute_threshold
            .unwrap_or(self.minute_threshold);
        let cap = request.options.candidate_cap.unwrap_or(self.candidate_cap);
        let secret = &request.secret;
        let views = &request.views;

        // Stage 1 — always: the Section 4.2 fast check.
        let fast_span = qvsec_obs::Span::enter("audit.fast");
        let fast = fast_check(secret, views);
        let fast_secure = fast.is_certainly_secure();
        drop(fast_span);

        // Stage 2 — the exact criterion, unless the fast check already
        // certified security (soundness: no unifiable pair ⇒ no common
        // critical tuple) or the budget stops at Fast. The active domain is
        // the engine domain padded to the Proposition 4.9 bound; witnesses
        // are rendered against it since padded constants can occur in them.
        let active = active_domain(secret, views, &self.domain);
        let security = if depth >= AuditDepth::Exact {
            if fast_secure {
                Some(SecurityVerdict {
                    secure: true,
                    common_critical_tuples: Vec::new(),
                    active_domain_size: active.len(),
                })
            } else {
                let _span = qvsec_obs::Span::enter("audit.exact");
                Some(self.exact_security(secret, views, &active, cap)?)
            }
        } else {
            None
        };

        let secure: Option<bool> = if fast_secure {
            Some(true)
        } else {
            security.as_ref().map(|s| s.secure)
        };

        // Stage 3 — dictionary-level checks, served by the shared-sample
        // probabilistic kernel: one space evaluation (exact mask streaming
        // or pooled Monte-Carlo) yields independence, leakage and total
        // disclosure together.
        let (independence, leakage, totally_disclosed, estimator) =
            if depth >= AuditDepth::Probabilistic {
                let _span = qvsec_obs::Span::enter("audit.prob");
                let dict = self
                    .dictionary
                    .as_ref()
                    .ok_or(QvsError::DictionaryRequired)?;
                let audit = self.kernel(dict).evaluate(secret, views)?;
                (
                    Some(audit.independence),
                    Some(LeakageReport::from(audit.leakage)),
                    Some(audit.totally_disclosed),
                    Some(audit.estimator),
                )
            } else {
                (None, None, None, None)
            };

        let class = classify(
            secure == Some(true),
            totally_disclosed.unwrap_or(false),
            leakage.as_ref().map(|l| l.max_leak),
            threshold,
        );
        let witnesses = security
            .as_ref()
            .map(|s| {
                s.common_critical_tuples
                    .iter()
                    .map(|t| t.display(&self.schema, &active).to_string())
                    .collect()
            })
            .unwrap_or_default();

        Ok(AuditReport {
            name: request.name.clone(),
            depth,
            conclusive: secure.is_some(),
            secure,
            class,
            fast,
            security,
            independence,
            leakage,
            totally_disclosed,
            estimator,
            witnesses,
        })
    }

    /// Audits a whole batch in parallel. Reports come back in request
    /// order; a per-request error does not abort the rest of the batch.
    pub fn audit_batch(&self, requests: &[AuditRequest]) -> Vec<Result<AuditReport>> {
        requests.par_iter().map(|r| self.audit(r)).collect()
    }

    /// [`AuditEngine::audit_batch`], failing on the first per-request error.
    pub fn try_audit_batch(&self, requests: &[AuditRequest]) -> Result<Vec<AuditReport>> {
        self.audit_batch(requests).into_iter().collect()
    }
}

/// A combined, serializable snapshot of every cache layer the engine runs.
/// Monotone over the engine's lifetime; [`CacheStatsSnapshot::delta_since`]
/// yields the per-operation view sessions attach to their reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStatsSnapshot {
    /// `crit(Q)` requests served from the (form, domain-size) memo.
    pub crit_cache_hits: u64,
    /// `crit(Q)` requests that ran the kernel.
    pub crit_cache_misses: u64,
    /// Candidate-space requests served from the memo.
    pub space_cache_hits: u64,
    /// Candidate-space requests that enumerated groundings.
    pub space_cache_misses: u64,
    /// Symmetry-class verdicts served from a shared class cache (typically
    /// a prior audit at another active-domain size).
    pub class_verdicts_reused: u64,
    /// Probabilistic witness-mask compilations served from the kernel memo.
    pub compile_cache_hits: u64,
    /// Probabilistic witness-mask compilations actually run.
    pub queries_compiled: u64,
    /// Worlds drawn into the shared Monte-Carlo pool.
    pub mc_samples_drawn: u64,
    /// Pooled worlds reused instead of freshly drawn.
    pub mc_samples_reused: u64,
    /// Per-query pooled answer-bit columns evaluated (Monte-Carlo misses).
    pub pool_columns_built: u64,
    /// Pooled answer-bit columns served from the kernel memo.
    pub pool_column_hits: u64,
    /// Whole probabilistic audits served from the kernel's verdict memo —
    /// no world streamed, no sample touched, no marginal walked.
    #[serde(default)]
    pub kernel_audit_hits: u64,
    /// Entries evicted under the engine's cache byte budgets (artifact
    /// store + kernel caches); 0 forever on an unbounded engine.
    #[serde(default)]
    pub evictions: u64,
    /// Approximate bytes evicted over the engine's lifetime.
    #[serde(default)]
    pub evicted_bytes: u64,
    /// Approximate bytes currently resident across every cache layer. A
    /// gauge, not a counter: [`CacheStatsSnapshot::delta_since`] yields the
    /// growth since the earlier snapshot (clamped at zero when eviction
    /// shrank the caches).
    #[serde(default)]
    pub resident_bytes: u64,
}

impl CacheStatsSnapshot {
    /// The field-wise difference `self − earlier` (saturating, so a stale
    /// `earlier` never underflows).
    pub fn delta_since(&self, earlier: &CacheStatsSnapshot) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            crit_cache_hits: self.crit_cache_hits.saturating_sub(earlier.crit_cache_hits),
            crit_cache_misses: self
                .crit_cache_misses
                .saturating_sub(earlier.crit_cache_misses),
            space_cache_hits: self
                .space_cache_hits
                .saturating_sub(earlier.space_cache_hits),
            space_cache_misses: self
                .space_cache_misses
                .saturating_sub(earlier.space_cache_misses),
            class_verdicts_reused: self
                .class_verdicts_reused
                .saturating_sub(earlier.class_verdicts_reused),
            compile_cache_hits: self
                .compile_cache_hits
                .saturating_sub(earlier.compile_cache_hits),
            queries_compiled: self
                .queries_compiled
                .saturating_sub(earlier.queries_compiled),
            mc_samples_drawn: self
                .mc_samples_drawn
                .saturating_sub(earlier.mc_samples_drawn),
            mc_samples_reused: self
                .mc_samples_reused
                .saturating_sub(earlier.mc_samples_reused),
            pool_columns_built: self
                .pool_columns_built
                .saturating_sub(earlier.pool_columns_built),
            pool_column_hits: self
                .pool_column_hits
                .saturating_sub(earlier.pool_column_hits),
            kernel_audit_hits: self
                .kernel_audit_hits
                .saturating_sub(earlier.kernel_audit_hits),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            evicted_bytes: self.evicted_bytes.saturating_sub(earlier.evicted_bytes),
            resident_bytes: self.resident_bytes.saturating_sub(earlier.resident_bytes),
        }
    }

    /// Field-wise accumulation of a per-step delta.
    pub fn accumulate(&mut self, delta: &CacheStatsSnapshot) {
        self.crit_cache_hits += delta.crit_cache_hits;
        self.crit_cache_misses += delta.crit_cache_misses;
        self.space_cache_hits += delta.space_cache_hits;
        self.space_cache_misses += delta.space_cache_misses;
        self.class_verdicts_reused += delta.class_verdicts_reused;
        self.compile_cache_hits += delta.compile_cache_hits;
        self.queries_compiled += delta.queries_compiled;
        self.mc_samples_drawn += delta.mc_samples_drawn;
        self.mc_samples_reused += delta.mc_samples_reused;
        self.pool_columns_built += delta.pool_columns_built;
        self.pool_column_hits += delta.pool_column_hits;
        self.kernel_audit_hits += delta.kernel_audit_hits;
        self.evictions += delta.evictions;
        self.evicted_bytes += delta.evicted_bytes;
        self.resident_bytes += delta.resident_bytes;
    }

    /// Whether any layer served anything from cache.
    pub fn any_reuse(&self) -> bool {
        self.crit_cache_hits
            + self.space_cache_hits
            + self.class_verdicts_reused
            + self.compile_cache_hits
            + self.mc_samples_reused
            + self.pool_column_hits
            + self.kernel_audit_hits
            > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::critical::critical_tuples;
    use qvsec_cq::parse_query;
    use qvsec_data::TupleSpace;

    fn employee_schema() -> Schema {
        let mut schema = Schema::new();
        schema.add_relation("Employee", &["name", "department", "phone"]);
        schema.add_relation("R", &["x", "y"]);
        schema
    }

    fn engine_for(domain: &Domain) -> AuditEngine {
        AuditEngine::builder(employee_schema(), domain.clone()).build()
    }

    #[test]
    fn fast_depth_is_conclusive_only_when_it_certifies_security() {
        let schema = employee_schema();
        let mut domain = Domain::new();
        let v4 = parse_query("V4(n) :- Employee(n, 'Mgmt', p)", &schema, &mut domain).unwrap();
        let s4 = parse_query("S4(n) :- Employee(n, 'HR', p)", &schema, &mut domain).unwrap();
        let engine = engine_for(&domain);
        let report = engine
            .audit(&AuditRequest::new(s4, ViewSet::single(v4)).with_depth(AuditDepth::Fast))
            .unwrap();
        assert_eq!(report.secure, Some(true));
        assert!(report.conclusive);
        assert_eq!(report.class, DisclosureClass::NoDisclosure);
        assert!(report.security.is_none(), "no escalation at Fast depth");

        let mut domain = Domain::new();
        let v1 = parse_query("V1(n, d) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
        let s1 = parse_query("S1(d) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
        let engine = engine_for(&domain);
        let report = engine
            .audit(&AuditRequest::new(s1, ViewSet::single(v1)).with_depth(AuditDepth::Fast))
            .unwrap();
        assert_eq!(report.secure, None, "fast check alone cannot condemn");
        assert!(!report.conclusive);
        assert_eq!(report.class, DisclosureClass::Partial, "conservative class");
        assert!(report.render().contains("inconclusive"));
    }

    #[test]
    fn exact_depth_matches_the_free_function_criterion() {
        let schema = employee_schema();
        let mut domain = Domain::new();
        let v1 = parse_query("V1(n, d) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
        let s1 = parse_query("S1(d) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
        let views = ViewSet::single(v1);
        let engine = engine_for(&domain);
        let report = engine
            .audit(&AuditRequest::new(s1.clone(), views.clone()))
            .unwrap();
        let free =
            crate::security::secure_for_all_distributions(&s1, &views, &schema, &domain).unwrap();
        let sec = report.security.unwrap();
        assert_eq!(sec.secure, free.secure);
        assert_eq!(sec.active_domain_size, free.active_domain_size);
        assert_eq!(
            sec.common_critical_tuples.iter().collect::<BTreeSet<_>>(),
            free.common_critical_tuples.iter().collect::<BTreeSet<_>>()
        );
        assert!(!report.witnesses.is_empty());
    }

    #[test]
    fn crit_cache_returns_results_identical_to_uncached_critical_tuples() {
        let schema = employee_schema();
        let mut domain = Domain::with_constants(["a", "b"]);
        let engine = engine_for(&domain);
        let queries = [
            "V(x) :- R(x, y)",
            "S(y) :- R(x, y)",
            "Q() :- R('a', x)",
            "W(x) :- R(x, 'b'), x != 'a'",
        ];
        for text in queries {
            let q = parse_query(text, &schema, &mut domain).unwrap();
            let cached = engine.crit_cached(&q, &domain, 100_000).unwrap();
            let uncached = critical_tuples(&q, &domain).unwrap();
            assert_eq!(*cached, uncached, "cache must be transparent for {text}");
            // Second fetch hits the cache and returns the same allocation.
            let again = engine.crit_cached(&q, &domain, 100_000).unwrap();
            assert!(Arc::ptr_eq(&cached, &again));
        }
    }

    #[test]
    fn crit_cache_is_shared_across_renamed_queries() {
        let schema = employee_schema();
        let mut domain = Domain::with_constants(["a", "b"]);
        let engine = engine_for(&domain);
        let q1 = parse_query("V(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let q2 = parse_query("W(u) :- R(u, w)", &schema, &mut domain).unwrap();
        let c1 = engine.crit_cached(&q1, &domain, 100_000).unwrap();
        let c2 = engine.crit_cached(&q2, &domain, 100_000).unwrap();
        assert!(Arc::ptr_eq(&c1, &c2), "α-equivalent queries share an entry");
        assert_eq!(engine.cached_crit_sets(), 1);
    }

    #[test]
    fn crit_stats_accumulate_and_cache_hits_do_no_kernel_work() {
        let schema = employee_schema();
        let mut domain = Domain::with_constants(["a", "b"]);
        let s = parse_query("S(y) :- R(x, y)", &schema, &mut domain).unwrap();
        let v = parse_query("V(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let engine = engine_for(&domain);
        assert_eq!(engine.crit_stats().candidates_examined, 0);
        let request = AuditRequest::new(s, ViewSet::single(v));
        engine.audit(&request).unwrap();
        let after_first = engine.crit_stats();
        assert!(
            after_first.candidates_examined > 0,
            "exact stage ran the kernel"
        );
        assert!(
            after_first.pruned_by_symmetry > 0,
            "projection workload collapses symmetric candidates: {after_first:?}"
        );
        engine.audit(&request).unwrap();
        let after_second = engine.crit_stats();
        assert_eq!(
            after_first, after_second,
            "a crit-cache hit does no kernel work"
        );
    }

    #[test]
    fn probabilistic_depth_requires_a_dictionary() {
        let schema = employee_schema();
        let mut domain = Domain::with_constants(["a", "b"]);
        let s = parse_query("S(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let v = parse_query("V(y) :- R(x, y)", &schema, &mut domain).unwrap();
        let engine = engine_for(&domain);
        let err = engine
            .audit(&AuditRequest::new(s, ViewSet::single(v)).with_depth(AuditDepth::Probabilistic))
            .unwrap_err();
        assert!(matches!(err, QvsError::DictionaryRequired));
    }

    #[test]
    fn probabilistic_depth_produces_the_full_report() {
        let schema = employee_schema();
        let mut domain = Domain::with_constants(["a", "b"]);
        let s = parse_query("S(x, y) :- R(x, y)", &schema, &mut domain).unwrap();
        let v = parse_query("V(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let space = qvsec_prob::lineage::support_space(&[&s, &v], &domain, 100).unwrap();
        let dict = Dictionary::half(space);
        let engine = AuditEngine::builder(schema, domain)
            .dictionary(dict)
            .default_depth(AuditDepth::Probabilistic)
            .build();
        let report = engine
            .audit(&AuditRequest::new(s, ViewSet::single(v)))
            .unwrap();
        assert_eq!(report.secure, Some(false));
        assert!(!report.independence.as_ref().unwrap().independent);
        assert!(report.leakage.as_ref().unwrap().max_leak > Ratio::ZERO);
        assert_eq!(report.totally_disclosed, Some(false));
        assert_ne!(report.class, DisclosureClass::NoDisclosure);
        let rendered = report.render();
        assert!(rendered.contains("leakage"));
        assert!(rendered.contains("statistical check"));
    }

    #[test]
    fn probabilistic_reports_match_the_enumeration_baseline_and_carry_estimator_metadata() {
        let schema = employee_schema();
        let mut domain = Domain::with_constants(["a", "b"]);
        let s = parse_query("S(x, y) :- R(x, y)", &schema, &mut domain).unwrap();
        let v = parse_query("V(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let space = qvsec_prob::lineage::support_space(&[&s, &v], &domain, 100).unwrap();
        let views = ViewSet::single(v);
        let dict = Dictionary::half(space);
        let engine = AuditEngine::builder(schema, domain)
            .dictionary(dict.clone())
            .default_depth(AuditDepth::Probabilistic)
            .build();
        let report = engine
            .audit(&AuditRequest::new(s.clone(), views.clone()))
            .unwrap();
        // Exact-path estimator metadata.
        let est = report
            .estimator
            .expect("probabilistic depth sets estimator");
        assert_eq!(est.mode, qvsec_prob::kernel::EstimatorMode::Exact);
        assert_eq!(est.worlds_streamed, 1 << dict.len());
        assert_eq!(est.sample_count, 0);
        assert_eq!(est.std_error, 0.0);
        assert!(report.render().contains("estimator"));
        // The kernel's verdicts are identical to the preserved enumeration
        // baseline.
        let base_ind = qvsec_prob::independence::check_independence(&s, &views, &dict).unwrap();
        let base_leak = crate::leakage::leakage_exact(&s, &views, &dict).unwrap();
        let base_total = crate::report::is_totally_disclosed(&s, &views, &dict).unwrap();
        let ind = report.independence.unwrap();
        assert_eq!(ind.independent, base_ind.independent);
        assert_eq!(ind.violations, base_ind.violations);
        assert_eq!(ind.pairs_checked, base_ind.pairs_checked);
        let leak = report.leakage.unwrap();
        assert_eq!(leak.max_leak, base_leak.max_leak);
        assert_eq!(leak.positive_entries, base_leak.positive_entries);
        assert_eq!(leak.pairs_checked, base_leak.pairs_checked);
        assert_eq!(leak.witness, base_leak.witness);
        assert_eq!(report.totally_disclosed, Some(base_total));
        // Lifetime counters saw the streamed worlds.
        let stats = engine.prob_stats();
        assert_eq!(stats.exact_worlds_streamed, 1 << dict.len());
        assert_eq!(stats.cutovers, 0);
    }

    #[test]
    fn large_spaces_cut_over_to_monte_carlo_and_share_the_pool_across_batches() {
        let schema = employee_schema();
        // |D| = 5 makes the full R-space 25 tuples — beyond MAX_ENUMERABLE,
        // so the pre-kernel engine refused this audit outright.
        let mut domain = Domain::with_size(5);
        let s = parse_query("S(y) :- R(x, y)", &schema, &mut domain).unwrap();
        let v = parse_query("V(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let support = qvsec_prob::lineage::support_space(&[&s, &v], &domain, 10_000).unwrap();
        assert!(support.len() > qvsec_data::bitset::MAX_ENUMERABLE);
        let dict = Dictionary::uniform(support, Ratio::new(1, 5)).unwrap();
        let engine = AuditEngine::builder(schema, domain)
            .dictionary(dict)
            .default_depth(AuditDepth::Probabilistic)
            .mc_samples(2000)
            .mc_seed(7)
            .build();
        let request = AuditRequest::new(s, ViewSet::single(v));
        let batch = engine
            .try_audit_batch(&[request.clone(), request.clone()])
            .unwrap();
        let est = batch[0].estimator.unwrap();
        assert_eq!(est.mode, qvsec_prob::kernel::EstimatorMode::MonteCarlo);
        assert_eq!(est.sample_count, 2000);
        assert_eq!(est.seed, Some(7));
        assert!(est.std_error > 0.0);
        let stats = engine.prob_stats();
        assert_eq!(stats.samples_drawn, 2000, "one pool serves the whole batch");
        assert!(stats.samples_reused >= 2 * 2000, "passes share the pool");
        // The engine memoizes whole audits: the duplicate request is served
        // from the verdict memo unless the parallel batch raced it past the
        // memo check — either way every audit is a cutover or a memo hit.
        assert_eq!(stats.cutovers + stats.audit_memo_hits, 2);
        // Shared pool + chunked seeding: both reports are identical.
        assert_eq!(
            serde_json::to_string(&batch[0]).unwrap(),
            serde_json::to_string(&batch[1]).unwrap()
        );
        // A sequential re-audit on the warm engine hits the memo for sure,
        // and reproduces the batch reports byte-for-byte.
        let hits_before = engine.prob_stats().audit_memo_hits;
        let report = engine.audit(&request).unwrap();
        assert_eq!(engine.prob_stats().audit_memo_hits, hits_before + 1);
        assert_eq!(
            serde_json::to_string(&batch[0]).unwrap(),
            serde_json::to_string(&report).unwrap()
        );
    }

    #[test]
    fn batch_verdicts_are_identical_to_sequential_audits() {
        let schema = employee_schema();
        let mut domain = Domain::with_constants(["a", "b"]);
        let texts = [
            ("S(y) :- R(x, y)", "V(x) :- R(x, y)"),
            ("S(y) :- R(y, 'a')", "V(x) :- R(x, 'b')"),
            (
                "S(n) :- Employee(n, 'HR', p)",
                "V(n) :- Employee(n, 'Mgmt', p)",
            ),
            (
                "S(n, p) :- Employee(n, d, p)",
                "V(n, d) :- Employee(n, d, p)",
            ),
        ];
        let requests: Vec<AuditRequest> = texts
            .iter()
            .map(|(s, v)| {
                let s = parse_query(s, &schema, &mut domain).unwrap();
                let v = parse_query(v, &schema, &mut domain).unwrap();
                AuditRequest::new(s, ViewSet::single(v))
            })
            .collect();
        let engine = AuditEngine::builder(schema, domain).build();
        let batch = engine.try_audit_batch(&requests).unwrap();
        for (req, from_batch) in requests.iter().zip(&batch) {
            let solo = engine.audit(req).unwrap();
            assert_eq!(solo.secure, from_batch.secure);
            assert_eq!(solo.class, from_batch.class);
            assert_eq!(
                solo.security.as_ref().map(|s| &s.common_critical_tuples),
                from_batch
                    .security
                    .as_ref()
                    .map(|s| &s.common_critical_tuples)
            );
        }
    }

    #[test]
    fn reports_serialize_to_json_and_back() {
        let schema = employee_schema();
        let mut domain = Domain::with_constants(["a", "b"]);
        let s = parse_query("S(y) :- R(x, y)", &schema, &mut domain).unwrap();
        let v = parse_query("V(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let space = qvsec_prob::lineage::support_space(&[&s, &v], &domain, 100).unwrap();
        let dict = Dictionary::half(space);
        let engine = AuditEngine::builder(schema, domain)
            .dictionary(dict)
            .default_depth(AuditDepth::Probabilistic)
            .build();
        let report = engine
            .audit(&AuditRequest::new(s, ViewSet::single(v)))
            .unwrap();
        let text = serde_json::to_string(&report).unwrap();
        let back: AuditReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back.secure, report.secure);
        assert_eq!(back.class, report.class);
        assert_eq!(
            back.leakage.as_ref().unwrap().max_leak,
            report.leakage.as_ref().unwrap().max_leak
        );
        assert_eq!(back.witnesses, report.witnesses);
    }

    #[test]
    fn engine_is_usable_from_multiple_threads() {
        let schema = employee_schema();
        let mut domain = Domain::with_constants(["a", "b"]);
        let s = parse_query("S(y) :- R(x, y)", &schema, &mut domain).unwrap();
        let v = parse_query("V(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let engine = Arc::new(AuditEngine::builder(schema, domain).build());
        let req = AuditRequest::new(s, ViewSet::single(v));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let engine = Arc::clone(&engine);
            let req = req.clone();
            handles.push(std::thread::spawn(move || {
                engine.audit(&req).unwrap().secure
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), Some(false));
        }
        let _ = TupleSpace::full(engine.schema(), engine.domain());
    }
}
