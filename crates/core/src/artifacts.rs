//! First-class compiled artifacts, memoized engine-wide.
//!
//! Everything expensive an audit derives from a query is a *compiled
//! artifact* with a well-defined identity:
//!
//! | artifact | identity | domain-size dependent? |
//! |---|---|---|
//! | interned candidate space (subgoal groundings) | ([`CanonicalKey::form`], active-domain size) | yes — it enumerates `tup(D)` |
//! | materialized `crit_D(Q)` set | ([`CanonicalKey::form`], active-domain size) | yes |
//! | symmetry-class criticality verdicts ([`ClassVerdictCache`]) | [`CanonicalKey::form`] alone | **no** — the Appendix A decision freezes fresh constants, never enumerating the domain |
//! | witness-mask compilation (`qvsec_prob::kernel::CompiledQuery`) | (canonical form, tuple space) | keyed inside the engine's `ProbKernel`, whose space is fixed |
//!
//! [`CompiledArtifacts`] owns the first three and hands them out as shared
//! `Arc`s. The class-verdict layer is what makes the crit cache useful
//! *across* active-domain sizes: two audits of the same view against
//! different secrets generally see different Proposition 4.9 paddings, so
//! their `(form, |D|)` keys miss — but every symmetry class the first audit
//! decided is reused verbatim by the second, which only re-*derives* (i.e.
//! re-enumerates class members), never re-*decides*.
//!
//! ## Bounded caches
//!
//! Each layer is a byte-budgeted [`ShardedLruCache`] split into
//! [`MEMO_SHARDS`] shards by a deterministic hash of the canonical form,
//! so concurrent tenants looking up structurally different queries contend
//! on different locks. With an [`ArtifactBudget`] configured (see
//! `AuditEngineBuilder::cache_budget_bytes`), each shard owns a fixed
//! slice of the layer's budget; inserting past it evicts that shard's
//! least-recently-used entries, and a later request for an evicted
//! artifact simply misses and recomputes — eviction is **transparent** to
//! every verdict (property-tested in `tests/eviction_equivalence.rs`, and
//! byte-identical under thread contention in
//! `tests/sharded_memo_stress.rs`). With no budget the caches keep the
//! historical append-only behaviour. Hit/miss/eviction counters and
//! resident bytes feed the per-step cache metadata of
//! [`crate::session::SessionReport`].

use crate::critical::{self, ClassVerdictCache, CritStats};
use crate::Result;
use qvsec_cq::{CanonicalKey, ConjunctiveQuery};
use qvsec_data::{Domain, ShardedLruCache, Tuple, TupleSpace};
use qvsec_store::{StoreBackend, StoreOp};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Store namespace of materialized `crit_D(Q)` sets.
pub const NS_CRIT: &str = "artifacts/crit";
/// Store namespace of interned candidate spaces.
pub const NS_SPACE: &str = "artifacts/space";
/// Store namespace of symmetry-class verdict caches.
pub const NS_CLASS: &str = "artifacts/class";

/// Store key of a (canonical form, active-domain size) artifact. The
/// fixed-width size prefix keeps keys self-describing (forms may contain
/// anything) and store scans grouped by domain size.
fn domain_key(form: &str, domain_size: usize) -> String {
    format!("{domain_size:08}:{form}")
}

/// Inverse of [`domain_key`]. The first `:` always terminates the
/// fixed-width size prefix, so forms containing `:` parse correctly.
fn parse_domain_key(key: &str) -> Option<(usize, &str)> {
    let (size, form) = key.split_once(':')?;
    Some((size.parse().ok()?, form))
}

/// Store failures during prewarm surface as engine errors (unlike the
/// best-effort write-through path).
fn store_err(e: qvsec_store::StoreError) -> crate::QvsError {
    crate::QvsError::Invalid(format!("artifact store: {e}"))
}

/// Shards each memo layer is split into: enough that concurrent tenants
/// touching distinct canonical forms rarely contend on one lock, few enough
/// that per-shard byte budgets stay meaningful under small totals.
pub const MEMO_SHARDS: usize = 8;

/// A per-domain memo keyed by (canonical query form, active-domain size),
/// split into canonical-form-hash shards, each bounded by its slice of the
/// layer's byte budget.
type DomainMemo<T> = ShardedLruCache<(String, usize), Arc<T>>;

/// Approximate heap footprint of one tuple.
fn tuple_bytes(t: &Tuple) -> usize {
    std::mem::size_of::<Tuple>() + std::mem::size_of_val(t.values.as_slice())
}

/// Approximate heap footprint of a materialized `crit_D(Q)` set.
fn crit_set_bytes(set: &BTreeSet<Tuple>) -> usize {
    // ~2 words of BTree node overhead per entry on top of the tuples.
    set.iter().map(tuple_bytes).sum::<usize>() + 16 * set.len()
}

/// Approximate heap footprint of an interned candidate space (sorted tuple
/// vector plus the index map).
fn space_bytes(space: &TupleSpace) -> usize {
    space.iter().map(|t| 2 * tuple_bytes(t)).sum::<usize>() + 48 * space.len()
}

/// Per-layer byte budgets for the artifact store. `None` fields never evict.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArtifactBudget {
    /// Budget for materialized `crit_D(Q)` sets.
    pub crit_bytes: Option<usize>,
    /// Budget for interned candidate spaces.
    pub space_bytes: Option<usize>,
    /// Budget for shared symmetry-class verdict caches.
    pub class_bytes: Option<usize>,
}

impl ArtifactBudget {
    /// The append-only (never-evicting) configuration.
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// Splits one total budget across the three layers: half to the crit
    /// sets (the largest artifacts), a quarter each to candidate spaces and
    /// class-verdict caches.
    pub fn split(total: usize) -> Self {
        ArtifactBudget {
            crit_bytes: Some(total / 2),
            space_bytes: Some(total / 4),
            class_bytes: Some(total - total / 2 - total / 4),
        }
    }
}

/// The engine-wide store of compiled per-query artifacts. See the
/// [module docs](self) for the identity of each layer and the eviction
/// policy.
#[derive(Debug)]
pub struct CompiledArtifacts {
    /// Materialized `crit_D(Q)` sets.
    crit_sets: DomainMemo<BTreeSet<Tuple>>,
    /// Interned candidate (subgoal-grounding) spaces.
    spaces: DomainMemo<TupleSpace>,
    /// Domain-size-independent symmetry-class verdicts, per canonical form
    /// (order-free queries only).
    class_verdicts: ShardedLruCache<String, Arc<ClassVerdictCache>>,
    /// Engine-lifetime pruning counters of the `crit(Q)` kernel.
    crit_stats: CritStats,
    crit_hits: AtomicU64,
    crit_misses: AtomicU64,
    space_hits: AtomicU64,
    space_misses: AtomicU64,
    /// Optional write-through persistence. Every computed artifact is
    /// mirrored into the store, so LRU eviction *demotes* (the entry
    /// remains fetchable) instead of dropping; a resident miss falls back
    /// to the store before recomputing.
    store: Option<Arc<dyn StoreBackend>>,
}

impl Default for CompiledArtifacts {
    fn default() -> Self {
        Self::with_budget(ArtifactBudget::unbounded())
    }
}

impl CompiledArtifacts {
    /// An empty, unbounded (append-only) artifact store.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty artifact store bounded by `budget`.
    pub fn with_budget(budget: ArtifactBudget) -> Self {
        Self::with_budget_and_store(budget, None)
    }

    /// An empty artifact store bounded by `budget`, writing every computed
    /// artifact through into `store` (when given).
    pub fn with_budget_and_store(
        budget: ArtifactBudget,
        store: Option<Arc<dyn StoreBackend>>,
    ) -> Self {
        CompiledArtifacts {
            crit_sets: ShardedLruCache::new(MEMO_SHARDS, budget.crit_bytes),
            spaces: ShardedLruCache::new(MEMO_SHARDS, budget.space_bytes),
            class_verdicts: ShardedLruCache::new(MEMO_SHARDS, budget.class_bytes),
            crit_stats: CritStats::new(),
            crit_hits: AtomicU64::new(0),
            crit_misses: AtomicU64::new(0),
            space_hits: AtomicU64::new(0),
            space_misses: AtomicU64::new(0),
            store,
        }
    }

    /// Best-effort write-through: artifact persistence must never fail an
    /// audit (the store is a cache tier here — the durable journal of
    /// tenant state lives in the serving layer and *does* surface errors).
    fn persist(&self, ns: &str, key: String, value: Vec<u8>) {
        if let Some(store) = &self.store {
            let _ = store.append_batch(ns, vec![StoreOp::Put { key, value }]);
        }
    }

    /// The shared `crit(Q)` kernel counters.
    pub fn crit_stats(&self) -> &CritStats {
        &self.crit_stats
    }

    /// Number of distinct `crit(Q)` sets currently memoized.
    pub fn cached_crit_sets(&self) -> usize {
        self.crit_sets.len()
    }

    /// Number of canonical forms with a shared class-verdict cache.
    pub fn cached_class_caches(&self) -> usize {
        self.class_verdicts.len()
    }

    /// Number of shards each memo layer is split into.
    pub fn memo_shards(&self) -> usize {
        self.crit_sets.num_shards()
    }

    /// Per-shard lifetime eviction counters, summed across the three
    /// artifact layers (shards are index-aligned). The total equals the
    /// aggregate `evictions` counter the engine always reported, so
    /// sharding never hides an eviction.
    pub fn per_shard_evictions(&self) -> Vec<u64> {
        let mut out = self.crit_sets.per_shard_evictions();
        for (slot, e) in out.iter_mut().zip(self.spaces.per_shard_evictions()) {
            *slot += e;
        }
        for (slot, e) in out
            .iter_mut()
            .zip(self.class_verdicts.per_shard_evictions())
        {
            *slot += e;
        }
        out
    }

    /// The shared class-verdict cache of `key`'s canonical form, or `None`
    /// when the query uses order comparisons (class verdicts are not
    /// domain-permutation invariant there).
    fn class_cache_for(&self, key: &CanonicalKey) -> Option<Arc<ClassVerdictCache>> {
        if !key.order_free() {
            return None;
        }
        let mut caches = self.class_verdicts.shard(key.form());
        if let Some(hit) = caches.get(key.form()) {
            return Some(Arc::clone(hit));
        }
        let fresh = Arc::new(ClassVerdictCache::new());
        Some(Arc::clone(caches.insert(
            key.form().to_string(),
            fresh,
            key.form().len() + 64,
        )))
    }

    /// Computes (or fetches) `crit_D(query)` over `active`, memoized under
    /// the query's canonical form and the active-domain size, with symmetry
    /// -class verdicts shared across domain sizes through the query's
    /// [`ClassVerdictCache`].
    pub fn crit(
        &self,
        query: &ConjunctiveQuery,
        active: &Domain,
        cap: usize,
    ) -> Result<Arc<BTreeSet<Tuple>>> {
        let key = CanonicalKey::of(query);
        let memo_key = (key.form().to_string(), active.len());
        if let Some(hit) = self.crit_sets.shard(&memo_key).get(&memo_key) {
            self.crit_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(hit));
        }
        // A demoted (evicted-but-persisted) artifact is promoted back and
        // counted as a hit: no kernel work ran.
        let store_key = domain_key(key.form(), active.len());
        if let Some(set) = self.fetch::<Vec<Tuple>>(NS_CRIT, &store_key) {
            self.crit_hits.fetch_add(1, Ordering::Relaxed);
            let promoted = Arc::new(set.into_iter().collect::<BTreeSet<Tuple>>());
            let bytes = crit_set_bytes(&promoted) + memo_key.0.len();
            let mut memo = self.crit_sets.shard(&memo_key);
            return Ok(Arc::clone(memo.insert(memo_key.clone(), promoted, bytes)));
        }
        self.crit_misses.fetch_add(1, Ordering::Relaxed);
        // Compute outside the lock so concurrent audits of distinct queries
        // do not serialize; a racing duplicate insert is harmless.
        let kernel_span = qvsec_obs::Span::enter("crit.kernel");
        let classes = self.class_cache_for(&key);
        let computed = Arc::new(critical::critical_tuples_shared(
            query,
            active,
            cap,
            &self.crit_stats,
            classes.as_deref(),
        )?);
        drop(kernel_span);
        // The kernel may have grown the shared class cache; re-weigh it so
        // the class-layer budget sees the growth, and mirror the grown
        // verdict map into the store.
        if let Some(classes) = &classes {
            self.class_verdicts
                .shard(key.form())
                .set_bytes(key.form(), classes.approx_bytes());
            if self.store.is_some() {
                if let Ok(encoded) = serde_json::to_string(&classes.export()) {
                    self.persist(NS_CLASS, key.form().to_string(), encoded.into_bytes());
                }
            }
        }
        if self.store.is_some() {
            let tuples: Vec<&Tuple> = computed.iter().collect();
            if let Ok(encoded) = serde_json::to_string(&tuples) {
                self.persist(NS_CRIT, store_key, encoded.into_bytes());
            }
        }
        let bytes = crit_set_bytes(&computed) + memo_key.0.len();
        let mut memo = self.crit_sets.shard(&memo_key);
        Ok(Arc::clone(memo.insert(memo_key.clone(), computed, bytes)))
    }

    /// Reads and decodes one persisted artifact; `None` on any miss or
    /// decode failure (the artifact is then recomputed).
    fn fetch<T: serde::Deserialize>(&self, ns: &str, key: &str) -> Option<T> {
        let store = self.store.as_ref()?;
        let bytes = store.get(ns, key).ok()??;
        let text = String::from_utf8(bytes).ok()?;
        serde_json::parse(&text)
            .and_then(|v| serde_json::from_value(&v))
            .ok()
    }

    /// Computes (or fetches) the interned candidate space of `query` over
    /// `active` — the sorted universe of its subgoal groundings.
    pub fn candidate_space(
        &self,
        query: &ConjunctiveQuery,
        active: &Domain,
        cap: usize,
    ) -> Result<Arc<TupleSpace>> {
        let memo_key = (qvsec_cq::canonical_form(query), active.len());
        if let Some(hit) = self.spaces.shard(&memo_key).get(&memo_key) {
            self.space_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(hit));
        }
        let store_key = domain_key(&memo_key.0, active.len());
        if let Some(tuples) = self.fetch::<Vec<Tuple>>(NS_SPACE, &store_key) {
            self.space_hits.fetch_add(1, Ordering::Relaxed);
            let promoted = Arc::new(TupleSpace::from_tuples(tuples));
            let bytes = space_bytes(&promoted) + memo_key.0.len();
            let mut memo = self.spaces.shard(&memo_key);
            return Ok(Arc::clone(memo.insert(memo_key.clone(), promoted, bytes)));
        }
        self.space_misses.fetch_add(1, Ordering::Relaxed);
        let space_span = qvsec_obs::Span::enter("crit.space");
        let computed = Arc::new(critical::candidate_space(query, active, cap)?);
        drop(space_span);
        if self.store.is_some() {
            if let Ok(encoded) = serde_json::to_string(&computed.tuples()) {
                self.persist(NS_SPACE, store_key, encoded.into_bytes());
            }
        }
        let bytes = space_bytes(&computed) + memo_key.0.len();
        let mut memo = self.spaces.shard(&memo_key);
        Ok(Arc::clone(memo.insert(memo_key.clone(), computed, bytes)))
    }

    /// Repopulates the resident memo layers from the store, **without**
    /// touching any hit/miss counter — a rehydrated engine's counters
    /// continue from wherever the journal's baseline puts them, and the
    /// prewarmed entries make the next requests hit exactly as they would
    /// have in the uninterrupted process. Entries are inserted in store
    /// scan (key) order with the same byte weights the compute path uses,
    /// so the resident-bytes gauge is reproduced byte-for-byte.
    pub fn prewarm_from_store(&self) -> Result<()> {
        let Some(store) = &self.store else {
            return Ok(());
        };
        let decode = |bytes: Vec<u8>| -> Option<serde_json::Value> {
            serde_json::parse(&String::from_utf8(bytes).ok()?).ok()
        };
        let entries = store.scan(NS_CRIT).map_err(store_err)?;
        for (key, bytes) in entries {
            let Some((size, form)) = parse_domain_key(&key) else {
                continue;
            };
            let Some(set) =
                decode(bytes).and_then(|v| serde_json::from_value::<Vec<Tuple>>(&v).ok())
            else {
                continue;
            };
            let set = Arc::new(set.into_iter().collect::<BTreeSet<Tuple>>());
            let weight = crit_set_bytes(&set) + form.len();
            let memo_key = (form.to_string(), size);
            self.crit_sets
                .shard(&memo_key)
                .insert(memo_key.clone(), set, weight);
        }
        let entries = store.scan(NS_SPACE).map_err(store_err)?;
        for (key, bytes) in entries {
            let Some((size, form)) = parse_domain_key(&key) else {
                continue;
            };
            let Some(tuples) =
                decode(bytes).and_then(|v| serde_json::from_value::<Vec<Tuple>>(&v).ok())
            else {
                continue;
            };
            let space = Arc::new(TupleSpace::from_tuples(tuples));
            let weight = space_bytes(&space) + form.len();
            let memo_key = (form.to_string(), size);
            self.spaces
                .shard(&memo_key)
                .insert(memo_key.clone(), space, weight);
        }
        let entries = store.scan(NS_CLASS).map_err(store_err)?;
        for (form, bytes) in entries {
            let Some(verdicts) = decode(bytes).and_then(|v| {
                serde_json::from_value::<Vec<(critical::TuplePattern, bool)>>(&v).ok()
            }) else {
                continue;
            };
            let cache = Arc::new(ClassVerdictCache::import(verdicts));
            let weight = cache.approx_bytes();
            self.class_verdicts
                .shard(form.as_str())
                .insert(form.clone(), cache, weight);
        }
        Ok(())
    }

    /// A snapshot of the artifact-layer hit/miss/eviction counters and
    /// resident bytes.
    pub fn counters(&self) -> ArtifactCounters {
        let (crit_evictions, crit_evicted, crit_resident) = (
            self.crit_sets.evictions(),
            self.crit_sets.evicted_bytes(),
            self.crit_sets.resident_bytes(),
        );
        let (space_evictions, space_evicted, space_resident) = (
            self.spaces.evictions(),
            self.spaces.evicted_bytes(),
            self.spaces.resident_bytes(),
        );
        let (class_evictions, class_evicted, class_resident) = (
            self.class_verdicts.evictions(),
            self.class_verdicts.evicted_bytes(),
            self.class_verdicts.resident_bytes(),
        );
        ArtifactCounters {
            crit_cache_hits: self.crit_hits.load(Ordering::Relaxed),
            crit_cache_misses: self.crit_misses.load(Ordering::Relaxed),
            space_cache_hits: self.space_hits.load(Ordering::Relaxed),
            space_cache_misses: self.space_misses.load(Ordering::Relaxed),
            evictions: crit_evictions + space_evictions + class_evictions,
            evicted_bytes: crit_evicted + space_evicted + class_evicted,
            resident_bytes: (crit_resident + space_resident + class_resident) as u64,
        }
    }
}

/// Which cache tier answered a non-promoting `explain` probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ArtifactTier {
    /// Not cached anywhere; the next request recomputes.
    Uncached,
    /// Only in the durable store (evicted-but-persisted; the next request
    /// promotes it back without recomputing).
    Store,
    /// Resident in the in-memory memo.
    Memory,
}

impl ArtifactTier {
    /// The wire spelling (`memory` | `store` | `uncached`).
    pub fn as_str(self) -> &'static str {
        match self {
            ArtifactTier::Memory => "memory",
            ArtifactTier::Store => "store",
            ArtifactTier::Uncached => "uncached",
        }
    }
}

/// The result of probing every artifact layer for one canonical form —
/// the payload of the `explain` wire op and `SHOW CANONICAL`. Probes are
/// strictly read-only: they never promote a store entry, refresh LRU
/// recency, or bump a hit/miss counter, so issuing `explain` cannot change
/// any later verdict or eviction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArtifactProbe {
    /// The probed canonical form.
    pub form: String,
    /// Best tier holding a materialized `crit_D(Q)` set for the form (at
    /// any active-domain size).
    pub crit: ArtifactTier,
    /// Active-domain sizes with a cached `crit_D(Q)` set, ascending.
    pub crit_domain_sizes: Vec<usize>,
    /// Best tier holding an interned candidate space for the form.
    pub space: ArtifactTier,
    /// Tier holding the form's shared symmetry-class verdict cache (the
    /// memoized per-class criticality *decisions*, reused across domain
    /// sizes). Always `Uncached` for order-constrained queries.
    pub class_verdicts: ArtifactTier,
}

impl CompiledArtifacts {
    /// Probes every layer for `query`'s canonical form without promoting,
    /// recomputing or counting anything. See [`ArtifactProbe`].
    pub fn probe(&self, query: &ConjunctiveQuery) -> ArtifactProbe {
        let form = qvsec_cq::canonical_form(query);
        let mut crit_sizes: BTreeSet<usize> = BTreeSet::new();
        let mut crit = ArtifactTier::Uncached;
        let mut space = ArtifactTier::Uncached;
        self.crit_sets.for_each_key(|(f, size)| {
            if *f == form {
                crit_sizes.insert(*size);
                crit = ArtifactTier::Memory;
            }
        });
        self.spaces.for_each_key(|(f, _)| {
            if *f == form {
                space = ArtifactTier::Memory;
            }
        });
        let mut class_verdicts = if self
            .class_verdicts
            .shard(form.as_str())
            .peek(&form)
            .is_some()
        {
            ArtifactTier::Memory
        } else {
            ArtifactTier::Uncached
        };
        if let Some(store) = &self.store {
            let scan_sizes = |ns: &str, tier: &mut ArtifactTier| {
                let mut sizes = BTreeSet::new();
                if let Ok(entries) = store.scan(ns) {
                    for (key, _) in entries {
                        if let Some((size, f)) = parse_domain_key(&key) {
                            if f == form {
                                sizes.insert(size);
                                *tier = (*tier).max(ArtifactTier::Store);
                            }
                        }
                    }
                }
                sizes
            };
            crit_sizes.extend(scan_sizes(NS_CRIT, &mut crit));
            scan_sizes(NS_SPACE, &mut space);
            if class_verdicts == ArtifactTier::Uncached
                && matches!(store.get(NS_CLASS, &form), Ok(Some(_)))
            {
                class_verdicts = ArtifactTier::Store;
            }
        }
        ArtifactProbe {
            form,
            crit,
            crit_domain_sizes: crit_sizes.into_iter().collect(),
            space,
            class_verdicts,
        }
    }
}

/// Hit/miss/eviction counters of the [`CompiledArtifacts`] memo layers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArtifactCounters {
    /// `crit(Q)` requests served from the memo.
    pub crit_cache_hits: u64,
    /// `crit(Q)` requests that ran the kernel.
    pub crit_cache_misses: u64,
    /// Candidate-space requests served from the memo.
    pub space_cache_hits: u64,
    /// Candidate-space requests that enumerated groundings.
    pub space_cache_misses: u64,
    /// Artifacts evicted under the byte budget (all three layers).
    #[serde(default)]
    pub evictions: u64,
    /// Approximate bytes evicted over the store's lifetime.
    #[serde(default)]
    pub evicted_bytes: u64,
    /// Approximate bytes currently resident (a gauge, not a counter).
    #[serde(default)]
    pub resident_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::critical::critical_tuples;
    use qvsec_cq::parse_query;
    use qvsec_data::Schema;

    fn setup() -> (Schema, Domain) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        (schema, Domain::with_constants(["a", "b"]))
    }

    #[test]
    fn crit_artifacts_are_transparent_and_shared() {
        let (schema, mut domain) = setup();
        let artifacts = CompiledArtifacts::new();
        let q = parse_query("V(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let got = artifacts.crit(&q, &domain, 10_000).unwrap();
        assert_eq!(*got, critical_tuples(&q, &domain).unwrap());
        let again = artifacts.crit(&q, &domain, 10_000).unwrap();
        assert!(Arc::ptr_eq(&got, &again));
        let counters = artifacts.counters();
        assert_eq!(counters.crit_cache_hits, 1);
        assert_eq!(counters.crit_cache_misses, 1);
        assert_eq!(counters.evictions, 0, "unbounded store never evicts");
        assert!(counters.resident_bytes > 0);
    }

    #[test]
    fn class_verdicts_are_reused_when_the_domain_grows() {
        let (schema, mut domain) = setup();
        let artifacts = CompiledArtifacts::new();
        let q = parse_query("V(x) :- R(x, 'a')", &schema, &mut domain).unwrap();
        let small = artifacts.crit(&q, &domain, 100_000).unwrap();
        assert_eq!(*small, critical_tuples(&q, &domain).unwrap());
        let decided_small = artifacts.crit_stats().snapshot().decisions_run;

        // Grow the domain: the (form, |D|) memo misses, but every symmetry
        // class seen at the small size is reused — only classes that are
        // NEW at the larger size get decided.
        let mut grown = domain.clone();
        for c in ["c", "d", "e"] {
            grown.add(c);
        }
        let big = artifacts.crit(&q, &grown, 100_000).unwrap();
        assert_eq!(*big, critical_tuples(&q, &grown).unwrap());
        let snap = artifacts.crit_stats().snapshot();
        assert!(
            snap.class_verdicts_reused > 0,
            "grown-domain audit must reuse class verdicts: {snap:?}"
        );
        assert!(
            snap.decisions_run >= decided_small,
            "counters only accumulate"
        );
        assert_eq!(artifacts.cached_crit_sets(), 2, "one set per domain size");
        assert_eq!(artifacts.cached_class_caches(), 1, "one shared class map");
    }

    #[test]
    fn order_queries_do_not_share_class_caches() {
        let (schema, mut domain) = setup();
        let artifacts = CompiledArtifacts::new();
        let q = parse_query("Q() :- R(x, y), x < y", &schema, &mut domain).unwrap();
        let got = artifacts.crit(&q, &domain, 100_000).unwrap();
        assert_eq!(*got, critical_tuples(&q, &domain).unwrap());
        assert_eq!(artifacts.cached_class_caches(), 0);
        assert_eq!(artifacts.crit_stats().snapshot().class_verdicts_reused, 0);
    }

    #[test]
    fn candidate_spaces_are_memoized() {
        let (schema, mut domain) = setup();
        let artifacts = CompiledArtifacts::new();
        let q = parse_query("V(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let a = artifacts.candidate_space(&q, &domain, 10_000).unwrap();
        let b = artifacts.candidate_space(&q, &domain, 10_000).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), 4);
        let counters = artifacts.counters();
        assert_eq!(counters.space_cache_hits, 1);
        assert_eq!(counters.space_cache_misses, 1);
    }

    #[test]
    fn tiny_budgets_evict_but_stay_transparent() {
        let (schema, mut domain) = setup();
        // A 1-byte budget per layer, split across the memo shards: a shard
        // holding more than one entry evicts on every insert (a lone entry
        // stays resident — the LRU never evicts its last slot).
        let artifacts = CompiledArtifacts::with_budget(ArtifactBudget::split(3));
        // More distinct canonical forms than shards, so by pigeonhole at
        // least one shard receives two keys and must evict.
        let texts = [
            "V(x) :- R(x, y)",
            "S(y) :- R(x, y)",
            "V(x, y) :- R(x, y)",
            "V() :- R(x, y)",
            "V(x) :- R(x, 'a')",
            "V(x) :- R(x, 'b')",
            "V(x) :- R('a', x)",
            "V(x) :- R('b', x)",
            "V() :- R('a', 'b')",
            "V() :- R('b', 'a')",
        ];
        let queries: Vec<_> = texts
            .iter()
            .map(|t| parse_query(t, &schema, &mut domain).unwrap())
            .collect();
        assert!(queries.len() > artifacts.memo_shards());
        for round in 0..3 {
            for q in &queries {
                let got = artifacts.crit(q, &domain, 10_000).unwrap();
                assert_eq!(
                    *got,
                    critical_tuples(q, &domain).unwrap(),
                    "round {round}: eviction must be transparent"
                );
            }
        }
        let counters = artifacts.counters();
        assert!(
            counters.evictions > 0,
            "tiny budget must evict: {counters:?}"
        );
        assert!(counters.evicted_bytes > 0);
        assert!(
            artifacts.cached_crit_sets() <= artifacts.memo_shards(),
            "each shard retains at most one entry under a tiny budget"
        );
        assert_eq!(
            artifacts.per_shard_evictions().iter().sum::<u64>(),
            counters.evictions,
            "per-shard eviction counters must sum to the aggregate"
        );
    }

    #[test]
    fn budget_split_covers_the_total() {
        let b = ArtifactBudget::split(100);
        assert_eq!(
            b.crit_bytes.unwrap() + b.space_bytes.unwrap() + b.class_bytes.unwrap(),
            100
        );
    }
}
