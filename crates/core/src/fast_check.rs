//! The paper's "practical algorithm" (Section 4.2).
//!
//! > *"For practical purposes, one can check `crit(S) ∩ crit(V̄) = ∅` and
//! > hence `S | V̄` quite efficiently. Simply compare all pairs of subgoals
//! > from `S` and from `V̄`. If any pair of subgoals unify, then `¬ S | V̄`.
//! > While false positives are possible, they are rare: this simple algorithm
//! > would correctly classify all examples in this paper."*
//!
//! The check is **sound for security**: if no pair of subgoals unifies there
//! is certainly no common critical tuple, so the secret is secure. When some
//! pair unifies the answer is only "possibly insecure" — the exact procedure
//! of [`crate::security`] must be consulted (the Section 4.2 example
//! `Q():-R(x,y,z,z,u),R(x,x,x,y,y)` is precisely a case where a subgoal
//! unifies with a tuple that is not actually critical).

use qvsec_cq::unification::unify_atoms;
use qvsec_cq::{Atom, ConjunctiveQuery, ViewSet};
use serde::{Deserialize, Serialize};

/// The verdict of the pairwise-unification check.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FastVerdict {
    /// No subgoal of the secret unifies with any subgoal of the views: the
    /// secret is certainly secure for every distribution.
    Secure,
    /// At least one pair of subgoals unifies: the secret may be insecure
    /// (the exact criterion must be consulted). The witnessing pair of
    /// subgoals is reported as (secret subgoal index, view index, view
    /// subgoal index).
    PossiblyInsecure {
        /// Index of the secret's subgoal in `secret.atoms`.
        secret_atom: usize,
        /// Index of the view within the view set.
        view: usize,
        /// Index of the view's subgoal in `views[view].atoms`.
        view_atom: usize,
    },
}

impl FastVerdict {
    /// Whether the fast check certifies security.
    pub fn is_certainly_secure(&self) -> bool {
        matches!(self, FastVerdict::Secure)
    }
}

/// Runs the pairwise subgoal-unification check of Section 4.2.
pub fn fast_check(secret: &ConjunctiveQuery, views: &ViewSet) -> FastVerdict {
    for (si, s_atom) in secret.atoms.iter().enumerate() {
        for (vi, view) in views.iter().enumerate() {
            for (vai, v_atom) in view.atoms.iter().enumerate() {
                if unify_atoms(s_atom, v_atom) {
                    return FastVerdict::PossiblyInsecure {
                        secret_atom: si,
                        view: vi,
                        view_atom: vai,
                    };
                }
            }
        }
    }
    FastVerdict::Secure
}

/// Lists every unifying pair of subgoals (rather than stopping at the first),
/// useful for audit reports.
pub fn unifying_pairs<'a>(
    secret: &'a ConjunctiveQuery,
    views: &'a ViewSet,
) -> Vec<(&'a Atom, &'a Atom)> {
    let mut out = Vec::new();
    for s_atom in &secret.atoms {
        for view in views.iter() {
            for v_atom in &view.atoms {
                if unify_atoms(s_atom, v_atom) {
                    out.push((s_atom, v_atom));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::security::secure_for_all_distributions;
    use qvsec_cq::parse_query;
    use qvsec_data::{Domain, Schema};

    fn schema() -> Schema {
        let mut schema = Schema::new();
        schema.add_relation("Employee", &["name", "department", "phone"]);
        schema.add_relation("R", &["x", "y"]);
        schema.add_relation("T", &["a", "b", "c", "d", "e"]);
        schema
    }

    #[test]
    fn fast_check_classifies_all_table_1_rows_correctly() {
        // The paper claims the practical algorithm classifies all its
        // examples correctly; check Table 1.
        let schema = schema();
        let rows = [
            (
                "S1(d) :- Employee(n, d, p)",
                vec!["V1(n, d) :- Employee(n, d, p)"],
                false,
            ),
            (
                "S2(n, p) :- Employee(n, d, p)",
                vec![
                    "V2(n, d) :- Employee(n, d, p)",
                    "V2p(d, p) :- Employee(n, d, p)",
                ],
                false,
            ),
            (
                "S3(p) :- Employee(n, d, p)",
                vec!["V3(n) :- Employee(n, d, p)"],
                false,
            ),
            (
                "S4(n) :- Employee(n, 'HR', p)",
                vec!["V4(n) :- Employee(n, 'Mgmt', p)"],
                true,
            ),
        ];
        for (s_text, v_texts, expected_secure) in rows {
            let mut domain = Domain::new();
            let s = parse_query(s_text, &schema, &mut domain).unwrap();
            let views = ViewSet::from_views(
                v_texts
                    .iter()
                    .map(|t| parse_query(t, &schema, &mut domain).unwrap())
                    .collect(),
            );
            let verdict = fast_check(&s, &views);
            assert_eq!(
                verdict.is_certainly_secure(),
                expected_secure,
                "fast check misclassifies {s_text}"
            );
        }
    }

    #[test]
    fn fast_check_is_sound_with_respect_to_the_exact_criterion() {
        // Whenever the fast check says Secure, the exact criterion must agree.
        let schema = schema();
        let pairs = [
            (
                "S(n) :- Employee(n, 'HR', p)",
                "V(n) :- Employee(n, 'Mgmt', p)",
            ),
            ("S(y) :- R(y, 'a')", "V(x) :- R(x, 'b')"),
            ("S() :- R('a', 'a')", "V() :- R('b', 'b')"),
            (
                "S(n, p) :- Employee(n, d, p)",
                "V(n, d) :- Employee(n, d, p)",
            ),
            ("S() :- R(x, x)", "V() :- R('a', 'b')"),
        ];
        for (s_text, v_text) in pairs {
            let mut domain = Domain::new();
            let s = parse_query(s_text, &schema, &mut domain).unwrap();
            let v = parse_query(v_text, &schema, &mut domain).unwrap();
            let views = ViewSet::single(v);
            if fast_check(&s, &views).is_certainly_secure() {
                let exact = secure_for_all_distributions(&s, &views, &schema, &domain).unwrap();
                assert!(exact.secure, "fast check unsound on ({s_text}, {v_text})");
            }
        }
    }

    #[test]
    fn fast_check_has_false_positives_on_the_section_4_2_example() {
        // S asserts the non-critical tuple of the Section 4.2 example; the
        // fast check flags it (the subgoal unifies) but the exact criterion
        // proves security.
        let schema = schema();
        let mut domain = Domain::new();
        let v = parse_query(
            "V() :- T(x, y, z, z, u), T(x, x, x, y, y)",
            &schema,
            &mut domain,
        )
        .unwrap();
        let s = parse_query("S() :- T('a', 'a', 'b', 'b', 'c')", &schema, &mut domain).unwrap();
        let views = ViewSet::single(v);
        assert!(
            !fast_check(&s, &views).is_certainly_secure(),
            "fast check flags the pair"
        );
        let exact = secure_for_all_distributions(&s, &views, &schema, &domain).unwrap();
        assert!(exact.secure, "but the exact criterion proves security");
    }

    #[test]
    fn unifying_pairs_lists_all_witnesses() {
        let schema = schema();
        let mut domain = Domain::new();
        let s = parse_query("S(n, p) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
        let v1 = parse_query("V1(n, d) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
        let v2 = parse_query("V2(d, p) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
        let views = ViewSet::from_views(vec![v1, v2]);
        assert_eq!(unifying_pairs(&s, &views).len(), 2);
        match fast_check(&s, &views) {
            FastVerdict::PossiblyInsecure {
                secret_atom,
                view,
                view_atom,
            } => {
                assert_eq!(secret_atom, 0);
                assert_eq!(view, 0);
                assert_eq!(view_atom, 0);
            }
            FastVerdict::Secure => panic!("expected a possibly-insecure verdict"),
        }
    }

    #[test]
    fn different_relations_are_trivially_secure() {
        let schema = schema();
        let mut domain = Domain::new();
        let s = parse_query("S(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let v = parse_query("V(n) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
        assert!(fast_check(&s, &ViewSet::single(v)).is_certainly_secure());
    }
}
