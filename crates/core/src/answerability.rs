//! Query answering and its interaction with security (Sections 2.1 and
//! 4.1.1).
//!
//! Non-answerability is *not* a sound security criterion (Section 2.1), but
//! answerability is still useful in two ways the paper points out:
//!
//! * if a view `V'` is answerable from the published views `V̄`, then any
//!   query secure with respect to `V̄` is automatically secure with respect
//!   to `V'` (the "Query answering" property of Section 4.1.1) — so an audit
//!   only needs to consider a generating set of the published views;
//! * a secret that *is* answerable from the views is a **total** disclosure
//!   (Table 1, row 1).
//!
//! This module provides two executable notions:
//!
//! * [`answerable_as_projection`] — a syntactic, certificate-producing check
//!   covering the most common case in practice (the target is a projection /
//!   column permutation of one published view), decided through classical CQ
//!   equivalence; and
//! * [`determined_by`] — the information-theoretic notion over a dictionary
//!   (the adversary can compute the target's answer as a function of the
//!   views' answers), which is exactly what "total disclosure" means.

use crate::report::is_totally_disclosed;
use crate::Result;
use qvsec_cq::containment::equivalent;
use qvsec_cq::{ConjunctiveQuery, ViewSet};
use qvsec_data::{Dictionary, Domain};

/// A certificate that `target` is a projection of `view`: `positions[i]` is
/// the index of the view head column that produces the `i`-th column of the
/// target's answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProjectionCertificate {
    /// For each target head position, the view head position it projects.
    pub positions: Vec<usize>,
}

/// Builds the query "project `view`'s head onto the given positions".
fn project_view(view: &ConjunctiveQuery, positions: &[usize]) -> ConjunctiveQuery {
    let mut q = view.clone();
    q.name = format!("{}_proj", view.name);
    q.head = positions.iter().map(|&i| view.head[i]).collect();
    q
}

fn position_choices(target_arity: usize, view_arity: usize) -> Vec<Vec<usize>> {
    // all functions from target positions to view positions (view_arity^target_arity,
    // small in practice: view heads have a handful of columns)
    let mut out = vec![Vec::new()];
    for _ in 0..target_arity {
        let mut next = Vec::new();
        for prefix in &out {
            for p in 0..view_arity {
                let mut v = prefix.clone();
                v.push(p);
                next.push(v);
            }
        }
        out = next;
    }
    out
}

/// Checks whether `target` is answerable from a **single** published view as
/// a projection / permutation / duplication of the view's head columns,
/// returning the witnessing column mapping. This is the syntactic sufficient
/// condition that classifies Table 1 row 1 ("S1 is answerable using V1").
pub fn answerable_as_projection(
    target: &ConjunctiveQuery,
    view: &ConjunctiveQuery,
    domain: &Domain,
) -> Option<ProjectionCertificate> {
    if view.is_boolean() && !target.is_boolean() {
        return None;
    }
    if target.is_boolean() {
        // a boolean target is answerable from a boolean view iff they are
        // equivalent queries
        return if view.is_boolean() && equivalent(target, view, domain) {
            Some(ProjectionCertificate { positions: vec![] })
        } else {
            None
        };
    }
    for positions in position_choices(target.arity(), view.arity()) {
        let candidate = project_view(view, &positions);
        if equivalent(target, &candidate, domain) {
            return Some(ProjectionCertificate { positions });
        }
    }
    None
}

/// Checks whether `target` is answerable (as a projection) from **some** view
/// of the set.
pub fn answerable_from_views(
    target: &ConjunctiveQuery,
    views: &ViewSet,
    domain: &Domain,
) -> Option<(usize, ProjectionCertificate)> {
    views
        .iter()
        .enumerate()
        .find_map(|(i, v)| answerable_as_projection(target, v, domain).map(|c| (i, c)))
}

/// The information-theoretic notion: over the dictionary's possible worlds,
/// the target's answer is a function of the views' answers. This is the
/// meaning of "total disclosure" used by the Table 1 classification, and the
/// hypothesis of the Section 4.1.1 security-transfer property.
pub fn determined_by(
    target: &ConjunctiveQuery,
    views: &ViewSet,
    dict: &Dictionary,
) -> Result<bool> {
    is_totally_disclosed(target, views, dict)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::security::secure_for_all_distributions;
    use qvsec_cq::parse_query;
    use qvsec_data::{Schema, TupleSpace};

    fn employee() -> Schema {
        let mut s = Schema::new();
        s.add_relation("Employee", &["name", "department", "phone"]);
        s.add_relation("R", &["x", "y"]);
        s
    }

    #[test]
    fn table_1_row_1_is_answerable_as_a_projection() {
        let schema = employee();
        let mut domain = Domain::new();
        let v1 = parse_query("V1(n, d) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
        let s1 = parse_query("S1(d) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
        let cert = answerable_as_projection(&s1, &v1, &domain).expect("S1 = π_d(V1)");
        assert_eq!(cert.positions, vec![1]);
        // and from the view set
        assert!(answerable_from_views(&s1, &qvsec_cq::ViewSet::single(v1), &domain).is_some());
    }

    #[test]
    fn column_permutations_and_duplications_are_detected() {
        let schema = employee();
        let mut domain = Domain::new();
        let v = parse_query("V(n, d) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
        let swapped = parse_query("S(d, n) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
        assert_eq!(
            answerable_as_projection(&swapped, &v, &domain)
                .unwrap()
                .positions,
            vec![1, 0]
        );
        let duplicated = parse_query("S(n, n) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
        assert_eq!(
            answerable_as_projection(&duplicated, &v, &domain)
                .unwrap()
                .positions,
            vec![0, 0]
        );
    }

    #[test]
    fn non_answerable_targets_are_rejected() {
        let schema = employee();
        let mut domain = Domain::new();
        let v = parse_query("V(n, d) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
        // the phone column is not present in the view head
        let s = parse_query("S(p) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
        assert!(answerable_as_projection(&s, &v, &domain).is_none());
        // a selection the view does not apply
        let sel = parse_query("S2(n) :- Employee(n, 'HR', p)", &schema, &mut domain).unwrap();
        assert!(answerable_as_projection(&sel, &v, &domain).is_none());
    }

    #[test]
    fn boolean_answerability_is_equivalence() {
        let schema = employee();
        let mut domain = Domain::new();
        let v = parse_query("V() :- R(x, y)", &schema, &mut domain).unwrap();
        let same = parse_query("S() :- R(u, w)", &schema, &mut domain).unwrap();
        let different = parse_query("S2() :- R(x, x)", &schema, &mut domain).unwrap();
        assert!(answerable_as_projection(&same, &v, &domain).is_some());
        assert!(answerable_as_projection(&different, &v, &domain).is_none());
        // non-boolean target is never a projection of a boolean view
        let unary = parse_query("S3(x) :- R(x, y)", &schema, &mut domain).unwrap();
        assert!(answerable_as_projection(&unary, &v, &domain).is_none());
    }

    #[test]
    fn security_transfers_to_answerable_views() {
        // Section 4.1.1: if V' is answerable from V̄ and S | V̄, then S | V'.
        // Instance: V = identity over R, V' = its first projection,
        // S = a query over Employee (a different relation), secure w.r.t. both.
        let schema = employee();
        let mut domain = Domain::with_constants(["a", "b"]);
        let v = parse_query("V(x, y) :- R(x, y)", &schema, &mut domain).unwrap();
        let v_prime = parse_query("Vp(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let s = parse_query("S(n) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
        assert!(answerable_as_projection(&v_prime, &v, &domain).is_some());
        let secure_wrt_v =
            secure_for_all_distributions(&s, &qvsec_cq::ViewSet::single(v), &schema, &domain)
                .unwrap()
                .secure;
        let secure_wrt_vp =
            secure_for_all_distributions(&s, &qvsec_cq::ViewSet::single(v_prime), &schema, &domain)
                .unwrap()
                .secure;
        assert!(secure_wrt_v);
        assert!(
            secure_wrt_vp,
            "security must transfer to the answerable view"
        );
    }

    #[test]
    fn determinacy_matches_answerability_on_the_projection_case() {
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        let mut domain = Domain::with_constants(["a", "b"]);
        let v = parse_query("V(x, y) :- R(x, y)", &schema, &mut domain).unwrap();
        let s = parse_query("S(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let dict = Dictionary::half(TupleSpace::full(&schema, &domain).unwrap());
        assert!(answerable_as_projection(&s, &v, &domain).is_some());
        assert!(determined_by(&s, &qvsec_cq::ViewSet::single(v.clone()), &dict).unwrap());
        // the converse direction of the two notions differs: the projection
        // view does not determine the full relation
        assert!(!determined_by(&v, &qvsec_cq::ViewSet::single(s), &dict).unwrap());
    }
}
