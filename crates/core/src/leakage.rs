//! Measuring partial disclosures: the `leak(S, V̄)` measure of Section 6.1.
//!
//! Perfect query-view security is an exacting standard; most practical
//! query/view pairs fail it while disclosing only a negligible amount of
//! information (Table 1, rows 2 and 3). Section 6.1 quantifies the
//! *positive* disclosure as
//!
//! ```text
//! leak(S, V̄) = sup_{s, v̄}  ( P[s ⊆ S(I) | v̄ ⊆ V̄(I)] − P[s ⊆ S(I)] ) / P[s ⊆ S(I)]
//! ```
//!
//! and Theorem 6.1 bounds it by `ε² / (1 − ε²)` where `ε` bounds the
//! conditional probability that some *common critical tuple* of the frozen
//! events is present. This module computes:
//!
//! * the exact leakage over a dictionary, with `s` and `v̄` ranging over the
//!   single-answer atomic events used by the paper's Examples 6.2/6.3
//!   ([`leakage_exact`]),
//! * the `ε` of Theorem 6.1 for specific or worst-case answer pairs and the
//!   induced bound ([`epsilon_for`], [`theorem_6_1_bound`]), and
//! * Monte-Carlo estimates for dictionaries too large to enumerate
//!   ([`leakage_estimate`]).

use crate::critical::critical_tuples;
use crate::{QvsError, Result};
use qvsec_cq::eval::{evaluate, Answer};
use qvsec_cq::{ConjunctiveQuery, Term, ViewSet};
use qvsec_data::{Dictionary, Domain, Instance, Ratio, Tuple, Value};
use qvsec_prob::montecarlo::MonteCarloEstimator;
use qvsec_prob::probability::event_probability;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One `(s, v̄)` pair together with its prior, posterior and relative
/// increase.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeakEntry {
    /// The secret answer tuple `s`.
    pub query_answer: Answer,
    /// One answer tuple per view (`v̄`).
    pub view_answers: Vec<Answer>,
    /// `P[s ⊆ S(I)]`.
    pub prior: Ratio,
    /// `P[s ⊆ S(I) | v̄ ⊆ V̄(I)]`.
    pub posterior: Ratio,
    /// `(posterior − prior) / prior`.
    pub relative_increase: Ratio,
}

/// The result of an exact leakage computation.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LeakageReport {
    /// `leak(S, V̄)`: the supremum of the relative increase over all examined
    /// answer pairs (zero when the query is perfectly secure).
    pub max_leak: Ratio,
    /// The pair attaining the supremum.
    pub witness: Option<LeakEntry>,
    /// Every pair with a strictly positive relative increase, sorted by
    /// decreasing increase.
    pub positive_entries: Vec<LeakEntry>,
    /// Number of `(s, v̄)` pairs examined.
    pub pairs_checked: usize,
}

impl LeakageReport {
    /// `leak(S, V̄)` as an `f64` for display.
    pub fn max_leak_f64(&self) -> f64 {
        self.max_leak.to_f64()
    }
}

impl From<qvsec_prob::kernel::KernelLeakEntry> for LeakEntry {
    fn from(e: qvsec_prob::kernel::KernelLeakEntry) -> Self {
        LeakEntry {
            query_answer: e.query_answer,
            view_answers: e.view_answers,
            prior: e.prior,
            posterior: e.posterior,
            relative_increase: e.relative_increase,
        }
    }
}

impl From<qvsec_prob::kernel::KernelLeakage> for LeakageReport {
    /// Adopts a kernel leakage verdict. On the kernel's exact path the
    /// result is identical to [`leakage_exact`] (same pairs, same order,
    /// same exact rationals); on the Monte-Carlo path the entries are
    /// sample-count estimates filtered for significance.
    fn from(k: qvsec_prob::kernel::KernelLeakage) -> Self {
        LeakageReport {
            max_leak: k.max_leak,
            witness: k.witness.map(LeakEntry::from),
            positive_entries: k
                .positive_entries
                .into_iter()
                .map(LeakEntry::from)
                .collect(),
            pairs_checked: k.pairs_checked,
        }
    }
}

/// Freezes a query's head to a specific answer, producing the boolean query
/// `S_s(I) ≡ (s ∈ S(I))` used throughout Section 6.1. Returns `None` if a
/// constant in the head contradicts the requested answer.
pub fn bind_head(query: &ConjunctiveQuery, answer: &[Value]) -> Option<ConjunctiveQuery> {
    if answer.len() != query.head.len() {
        return None;
    }
    let mut bound = query.clone();
    bound.name = format!("{}_bound", query.name);
    // map head variables to answer values; verify constants agree
    let mut mapping: Vec<Option<Value>> = vec![None; query.num_vars()];
    for (term, &value) in query.head.iter().zip(answer.iter()) {
        match term {
            Term::Const(c) => {
                if *c != value {
                    return None;
                }
            }
            Term::Var(v) => match mapping[v.index()] {
                Some(existing) if existing != value => return None,
                _ => mapping[v.index()] = Some(value),
            },
        }
    }
    let substitute = |t: &Term| -> Term {
        match t {
            Term::Var(v) => match mapping[v.index()] {
                Some(val) => Term::Const(val),
                None => *t,
            },
            Term::Const(_) => *t,
        }
    };
    for atom in &mut bound.atoms {
        for t in &mut atom.terms {
            *t = substitute(t);
        }
    }
    for cmp in &mut bound.comparisons {
        cmp.lhs = substitute(&cmp.lhs);
        cmp.rhs = substitute(&cmp.rhs);
    }
    bound.head.clear();
    Some(bound)
}

/// The answers of a query that occur on at least one instance of the
/// dictionary's tuple space (i.e. have positive inclusion probability under
/// a non-degenerate dictionary).
pub fn possible_answers(query: &ConjunctiveQuery, dict: &Dictionary) -> Result<BTreeSet<Answer>> {
    let saturated = Instance::from_tuples(dict.space().iter().cloned());
    Ok(evaluate(query, &saturated).into_iter().collect())
}

fn cartesian(per_view: &[Vec<Answer>]) -> Vec<Vec<Answer>> {
    let mut combos: Vec<Vec<Answer>> = vec![Vec::new()];
    for answers in per_view {
        let mut next = Vec::new();
        for combo in &combos {
            for a in answers {
                let mut c = combo.clone();
                c.push(a.clone());
                next.push(c);
            }
        }
        combos = next;
    }
    combos
}

/// Computes the exact leakage `leak(S, V̄)` over a dictionary, with `s`
/// ranging over the possible single answers of `S` and `v̄` over one possible
/// answer per view (the atomic monotone events of Section 6.1).
pub fn leakage_exact(
    secret: &ConjunctiveQuery,
    views: &ViewSet,
    dict: &Dictionary,
) -> Result<LeakageReport> {
    let s_answers = possible_answers(secret, dict)?;
    let per_view: Vec<Vec<Answer>> = views
        .iter()
        .map(|v| possible_answers(v, dict).map(|s| s.into_iter().collect::<Vec<_>>()))
        .collect::<Result<_>>()?;
    let combos = cartesian(&per_view);

    let mut report = LeakageReport::default();
    for s_ans in &s_answers {
        let prior = event_probability(dict, |i| evaluate(secret, i).contains(s_ans))?;
        if prior.is_zero() {
            continue;
        }
        for combo in &combos {
            report.pairs_checked += 1;
            let cond = event_probability(dict, |i| {
                views
                    .iter()
                    .zip(combo.iter())
                    .all(|(v, ans)| evaluate(v, i).contains(ans))
            })?;
            if cond.is_zero() {
                continue;
            }
            let joint = event_probability(dict, |i| {
                evaluate(secret, i).contains(s_ans)
                    && views
                        .iter()
                        .zip(combo.iter())
                        .all(|(v, ans)| evaluate(v, i).contains(ans))
            })?;
            let posterior = joint / cond;
            let relative = (posterior - prior) / prior;
            let entry = LeakEntry {
                query_answer: s_ans.clone(),
                view_answers: combo.clone(),
                prior,
                posterior,
                relative_increase: relative,
            };
            if relative > report.max_leak {
                report.max_leak = relative;
                report.witness = Some(entry.clone());
            }
            if relative > Ratio::ZERO {
                report.positive_entries.push(entry);
            }
        }
    }
    report
        .positive_entries
        .sort_by_key(|e| std::cmp::Reverse(e.relative_increase));
    Ok(report)
}

/// Computes the `ε` of Theorem 6.1 for one specific answer pair:
/// `ε = P[L(I) | S_s(I) ∧ V_v̄(I)]` where `L(I)` says that some common
/// critical tuple of the frozen events is present in `I`. Returns `None`
/// when the conditioning event has probability zero or an answer cannot be
/// frozen.
pub fn epsilon_for(
    secret: &ConjunctiveQuery,
    views: &ViewSet,
    dict: &Dictionary,
    domain: &Domain,
    query_answer: &[Value],
    view_answers: &[Answer],
) -> Result<Option<Ratio>> {
    let Some(s_bound) = bind_head(secret, query_answer) else {
        return Ok(None);
    };
    let mut v_bound = Vec::new();
    for (v, ans) in views.iter().zip(view_answers.iter()) {
        match bind_head(v, ans) {
            Some(b) => v_bound.push(b),
            None => return Ok(None),
        }
    }
    // T_{s,v̄} = crit(S_s) ∩ crit(V_v̄)
    let crit_s = critical_tuples(&s_bound, domain)?;
    let mut crit_v: BTreeSet<Tuple> = BTreeSet::new();
    for vb in &v_bound {
        crit_v.extend(critical_tuples(vb, domain)?);
    }
    let common: Vec<Tuple> = crit_s.intersection(&crit_v).cloned().collect();
    let in_common = |i: &Instance| common.iter().any(|t| i.contains(t));
    let both_true = |i: &Instance| {
        qvsec_cq::evaluate_boolean(&s_bound, i)
            && v_bound.iter().all(|vb| qvsec_cq::evaluate_boolean(vb, i))
    };
    let cond = event_probability(dict, both_true)?;
    if cond.is_zero() {
        return Ok(None);
    }
    let joint = event_probability(dict, |i| in_common(i) && both_true(i))?;
    Ok(Some(joint / cond))
}

/// The Theorem 6.1 bound `ε² / (1 − ε²)`; `None` when `ε ≥ 1` (the bound is
/// vacuous).
pub fn theorem_6_1_bound(epsilon: Ratio) -> Option<Ratio> {
    if epsilon >= Ratio::ONE {
        return None;
    }
    let sq = epsilon * epsilon;
    Some(sq / (Ratio::ONE - sq))
}

/// Estimates `leak(S, V̄)` for a *specific* answer pair by Monte-Carlo
/// sampling (for dictionaries too large for [`leakage_exact`]).
pub fn leakage_estimate(
    secret: &ConjunctiveQuery,
    views: &ViewSet,
    dict: &Dictionary,
    query_answer: &[Value],
    view_answers: &[Answer],
    samples: usize,
    seed: u64,
) -> Option<f64> {
    let mc = MonteCarloEstimator::new(dict, samples, seed);
    mc.relative_leakage(secret, query_answer, views, view_answers)
}

/// Guard helper: exact leakage is only meaningful over enumerable spaces.
pub fn ensure_enumerable(dict: &Dictionary) -> Result<()> {
    if dict.len() > qvsec_data::bitset::MAX_ENUMERABLE {
        return Err(QvsError::Data(qvsec_data::DataError::EnumerationTooLarge(
            dict.len(),
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvsec_cq::parse_query;
    use qvsec_data::{Schema, TupleSpace};

    fn setup() -> (Schema, Domain, Dictionary) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        let domain = Domain::with_constants(["a", "b"]);
        let space = TupleSpace::full(&schema, &domain).unwrap();
        (schema, domain, Dictionary::half(space))
    }

    #[test]
    fn bind_head_freezes_head_variables() {
        let (schema, mut domain, _) = setup();
        let s = parse_query("S(x, y) :- R(x, y), R(y, x)", &schema, &mut domain).unwrap();
        let a = domain.get("a").unwrap();
        let b = domain.get("b").unwrap();
        let bound = bind_head(&s, &[a, b]).unwrap();
        assert!(bound.is_boolean());
        assert!(bound.atoms.iter().all(|at| at.is_ground()));
        // a head constant that conflicts with the requested answer yields None
        let s2 = parse_query("S2(x, 'a') :- R(x, 'a')", &schema, &mut domain).unwrap();
        assert!(bind_head(&s2, &[b, b]).is_none());
        assert!(bind_head(&s2, &[b, a]).is_some());
        // arity mismatch
        assert!(bind_head(&s, &[a]).is_none());
        // conflicting repetition: head (x, x) with two different values
        let s3 = parse_query("S3(x, x) :- R(x, x)", &schema, &mut domain).unwrap();
        assert!(bind_head(&s3, &[a, b]).is_none());
        assert!(bind_head(&s3, &[a, a]).is_some());
    }

    #[test]
    fn secure_pairs_have_zero_leakage() {
        let (schema, mut domain, dict) = setup();
        let s = parse_query("S(y) :- R(y, 'a')", &schema, &mut domain).unwrap();
        let v = parse_query("V(x) :- R(x, 'b')", &schema, &mut domain).unwrap();
        let report = leakage_exact(&s, &ViewSet::single(v), &dict).unwrap();
        assert!(report.max_leak.is_zero());
        assert!(report.witness.is_none());
        assert!(report.positive_entries.is_empty());
        assert!(report.pairs_checked > 0);
    }

    #[test]
    fn insecure_pairs_have_positive_leakage() {
        let (schema, mut domain, dict) = setup();
        let s = parse_query("S(x, y) :- R(x, y)", &schema, &mut domain).unwrap();
        let v = parse_query("V(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let report = leakage_exact(&s, &ViewSet::single(v), &dict).unwrap();
        assert!(report.max_leak > Ratio::ZERO);
        let witness = report.witness.as_ref().unwrap();
        assert!(witness.posterior > witness.prior);
    }

    #[test]
    fn collusion_increases_leakage() {
        // Example 6.3: publishing both projections leaks more about the
        // name-phone association than publishing only one.
        let (schema, mut domain, dict) = setup();
        let s = parse_query("S(x, y) :- R(x, y)", &schema, &mut domain).unwrap();
        let v_left = parse_query("V1(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let v_right = parse_query("V2(y) :- R(x, y)", &schema, &mut domain).unwrap();
        let single = leakage_exact(&s, &ViewSet::single(v_left.clone()), &dict).unwrap();
        let colluded =
            leakage_exact(&s, &ViewSet::from_views(vec![v_left, v_right]), &dict).unwrap();
        assert!(
            colluded.max_leak >= single.max_leak,
            "collusion must not decrease leakage: {} vs {}",
            colluded.max_leak,
            single.max_leak
        );
        assert!(colluded.max_leak > Ratio::ZERO);
    }

    #[test]
    fn epsilon_and_theorem_6_1_bound() {
        // Example 6.2 shape over Emp(n, d, p) with D = {a, b}: the secret is
        // the name-phone association, the view publishes departments;
        // ε = P[L | S_s ∧ V_v] with L = "the single common critical tuple
        // Emp(a, a, b) is present" is strictly between 0 and 1.
        let mut schema = Schema::new();
        schema.add_relation("Emp", &["n", "d", "p"]);
        let mut domain = Domain::with_constants(["a", "b"]);
        let s = parse_query("S(n, p) :- Emp(n, d, p)", &schema, &mut domain).unwrap();
        let v = parse_query("V(d) :- Emp(n, d, p)", &schema, &mut domain).unwrap();
        let space = TupleSpace::full(&schema, &domain).unwrap();
        let dict = Dictionary::half(space);
        let a = domain.get("a").unwrap();
        let b = domain.get("b").unwrap();
        let eps = epsilon_for(
            &s,
            &ViewSet::single(v.clone()),
            &dict,
            &domain,
            &[a, b],
            &[vec![a]],
        )
        .unwrap()
        .expect("conditioning event has positive probability");
        assert!(eps > Ratio::ZERO && eps < Ratio::ONE, "ε = {eps}");
        let bound = theorem_6_1_bound(eps).unwrap();
        assert!(bound > Ratio::ZERO);
        // Example 6.3: conditioning on the more specific view V'(n, d) raises ε
        // (the view now names the secret's subject), signalling more leakage.
        let v_nd = parse_query("Vnd(n, d) :- Emp(n, d, p)", &schema, &mut domain).unwrap();
        let eps_nd = epsilon_for(
            &s,
            &ViewSet::single(v_nd),
            &dict,
            &domain,
            &[a, b],
            &[vec![a, a]],
        )
        .unwrap()
        .unwrap();
        assert!(
            eps_nd >= eps,
            "ε must not decrease for the more revealing view: {eps_nd} vs {eps}"
        );
        // the bound formula itself
        assert_eq!(
            theorem_6_1_bound(Ratio::new(1, 2)).unwrap(),
            Ratio::new(1, 3)
        );
        assert!(theorem_6_1_bound(Ratio::ONE).is_none());
    }

    #[test]
    fn monte_carlo_leakage_estimate_is_finite_for_insecure_pairs() {
        let (schema, mut domain, dict) = setup();
        let s = parse_query("S(x, y) :- R(x, y)", &schema, &mut domain).unwrap();
        let v = parse_query("V(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let a = domain.get("a").unwrap();
        let b = domain.get("b").unwrap();
        let est =
            leakage_estimate(&s, &ViewSet::single(v), &dict, &[a, b], &[vec![a]], 4000, 7).unwrap();
        assert!(est.is_finite());
    }

    #[test]
    fn enumerability_guard() {
        let (_, _, dict) = setup();
        assert!(ensure_enumerable(&dict).is_ok());
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        let big = Domain::with_size(6);
        let space = TupleSpace::full_with_cap(&schema, &big, 100).unwrap();
        let big_dict = Dictionary::half(space);
        assert!(ensure_enumerable(&big_dict).is_err());
    }
}
