//! Literal, exhaustive implementation of Definition 4.4.
//!
//! `t ∈ crit_D(Q)` iff some instance `I ⊆ tup(D)` has `Q(I − {t}) ≠ Q(I)`.
//! This module enumerates every instance of an explicit [`TupleSpace`] and
//! checks the definition directly. It is exponential in the number of tuples
//! of the space and is only usable on tiny spaces — which is precisely its
//! role: it is the *oracle* against which the efficient fine-instance
//! procedure of [`crate::critical`] is cross-validated (unit tests here,
//! property tests in the integration suite).

use crate::Result;
use qvsec_cq::eval::evaluate;
use qvsec_cq::ConjunctiveQuery;
use qvsec_data::{Tuple, TupleSpace};
use std::collections::BTreeSet;

/// Decides criticality by enumerating every instance of `space` that
/// contains `tuple` and comparing `Q(I)` with `Q(I − {t})`.
///
/// Tuples outside the space are reported non-critical (they cannot affect the
/// query if the space contains the query's support).
pub fn is_critical_bruteforce(
    query: &ConjunctiveQuery,
    tuple: &Tuple,
    space: &TupleSpace,
) -> Result<bool> {
    let Some(tuple_index) = space.index_of(tuple) else {
        return Ok(false);
    };
    for (mask, instance) in space.instances()? {
        if mask & (1u64 << tuple_index) == 0 {
            continue;
        }
        let with = evaluate(query, &instance);
        let without = evaluate(query, &instance.without(tuple));
        if with != without {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Computes `crit(Q)` restricted to the tuples of `space` by brute force.
pub fn critical_tuples_bruteforce(
    query: &ConjunctiveQuery,
    space: &TupleSpace,
) -> Result<BTreeSet<Tuple>> {
    let mut out = BTreeSet::new();
    for t in space.iter() {
        if is_critical_bruteforce(query, t, space)? {
            out.insert(t.clone());
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::critical::{critical_tuples, is_critical};
    use qvsec_cq::parse_query;
    use qvsec_data::{Domain, Schema};

    fn setup() -> (Schema, Domain, TupleSpace) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        let domain = Domain::with_constants(["a", "b"]);
        let space = TupleSpace::full(&schema, &domain).unwrap();
        (schema, domain, space)
    }

    #[test]
    fn brute_force_matches_example_4_6() {
        let (schema, mut domain, space) = setup();
        let v = parse_query("V(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let crit = critical_tuples_bruteforce(&v, &space).unwrap();
        assert_eq!(crit.len(), 4, "every tuple is critical for the projection");
        let _ = schema;
    }

    #[test]
    fn brute_force_matches_example_4_7() {
        let (_, mut domain, space) = setup();
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        let v = parse_query("V(x) :- R(x, 'b')", &schema, &mut domain).unwrap();
        let s = parse_query("S(y) :- R(y, 'a')", &schema, &mut domain).unwrap();
        let crit_v = critical_tuples_bruteforce(&v, &space).unwrap();
        let crit_s = critical_tuples_bruteforce(&s, &space).unwrap();
        assert_eq!(crit_v.len(), 2);
        assert_eq!(crit_s.len(), 2);
        assert!(crit_v.is_disjoint(&crit_s));
    }

    #[test]
    fn criterion_procedure_agrees_with_brute_force_on_a_query_family() {
        // Cross-validate the fine-instance procedure against the literal
        // definition on a family of queries over the 4-tuple space.
        let (schema, mut domain, space) = setup();
        let texts = [
            "Q1(x) :- R(x, y)",
            "Q2(y) :- R(x, y)",
            "Q3(x) :- R(x, 'b')",
            "Q4() :- R('a', x), R(x, x)",
            "Q5() :- R(x, x)",
            "Q6() :- R(x, y), R(y, x)",
            "Q7() :- R(x, y), x != y",
            "Q8(x, y) :- R(x, y), R(y, y)",
            "Q9() :- R('a', 'b')",
            "Q10(x) :- R(x, y), R(x, w)",
        ];
        for text in texts {
            let q = parse_query(text, &schema, &mut domain).unwrap();
            let brute = critical_tuples_bruteforce(&q, &space).unwrap();
            let fast: BTreeSet<Tuple> = critical_tuples(&q, &domain)
                .unwrap()
                .into_iter()
                .filter(|t| space.contains(t))
                .collect();
            assert_eq!(brute, fast, "criterion and brute force disagree on {text}");
            for t in space.iter() {
                assert_eq!(
                    is_critical_bruteforce(&q, t, &space).unwrap(),
                    is_critical(&q, t, &domain),
                    "disagreement on tuple {t} for {text}"
                );
            }
        }
    }

    #[test]
    fn tuples_outside_the_space_are_not_critical() {
        let (schema, mut domain, space) = setup();
        let q = parse_query("Q(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let c = domain.add("c");
        let r = schema.relation_by_name("R").unwrap();
        let outside = Tuple::new(r, vec![c, c]);
        assert!(!is_critical_bruteforce(&q, &outside, &space).unwrap());
    }
}
