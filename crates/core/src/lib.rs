//! # qvsec — query-view security
//!
//! A from-scratch implementation of Miklau & Suciu, *A Formal Analysis of
//! Information Disclosure in Data Exchange* (SIGMOD 2004; JCSS 2007).
//!
//! Alice wants to publish views `V1, ..., Vk` over her database while keeping
//! the answer to a query `S` secret from an adversary who knows the view
//! definitions, the published answers, the domain and the tuple-probability
//! dictionary. The paper's standard — *query-view security* — asks that the
//! views reveal **nothing** about `S`: `P[S(I) = s] = P[S(I) = s | V̄(I) = v̄]`
//! for every possible pair of answers (Definition 4.1, a database analogue of
//! Shannon's perfect secrecy).
//!
//! The public entry point is the owned, `Send + Sync` [`AuditEngine`]: it is
//! built once from a schema, a domain and (optionally) a dictionary, and
//! serves audits — one [`AuditRequest`] in, one machine-readable
//! [`AuditReport`] out — sequentially or in parallel batches. Evaluation is
//! **staged**: every audit runs the cheap §4.2 pairwise-unification check
//! first and escalates to the exact Theorem 4.5 criterion and the
//! dictionary-level checks only as far as the request's [`AuditDepth`]
//! allows, with critical-tuple sets memoized across requests under
//! canonicalized query keys.
//!
//! The underlying procedures mirror the paper's sections:
//!
//! | Module | Paper | Contents |
//! |---|---|---|
//! | [`engine`] | — | the owned `AuditEngine`: staged audits, `crit(Q)` memo cache, parallel batches, serde reports |
//! | [`critical`] | §4.2, Def. 4.4, App. A | the parallel, pruned `crit_D(Q)` kernel: interned candidates, fine-instance decision, symmetry collapse, pruning counters |
//! | [`critical_bruteforce`] | Def. 4.4 | literal, exhaustive reference implementation |
//! | [`security`] | Thm 4.5, Thm 4.8, Prop. 4.9 | the dictionary-independent security criterion `crit(S) ∩ crit(V̄) = ∅` |
//! | [`mod@fast_check`] | §4.2 | the "practical algorithm": pairwise subgoal unification |
//! | [`report`] | §1.1, Table 1 | Total/Partial/Minute/None classification |
//! | [`prior`] | §5.1–5.3 | security under prior knowledge: Theorem 5.2, keys (Cor. 5.3), cardinality, protective disclosure (Cor. 5.4), prior views (Cor. 5.5) |
//! | [`encrypted`] | §5.4 | attribute-wise encrypted views |
//! | [`leakage`] | §6.1 | the `leak(S, V̄)` measure and the Theorem 6.1 bound |
//! | [`practical`] | §6.2 | asymptotic (expected-constant-size) model: exponents of `μ_n[Q]`, practical security |
//! | [`cnf`], [`hardness`] | Thm 4.10, App. A | ∀∃3-CNF formulas and the reduction to tuple non-criticality |
//!
//! ## Quick example
//!
//! ```
//! use qvsec_data::{Domain, Schema};
//! use qvsec_cq::{parse_query, ViewSet};
//! use qvsec::{AuditEngine, AuditRequest};
//!
//! let mut schema = Schema::new();
//! schema.add_relation("Employee", &["name", "department", "phone"]);
//! let mut domain = Domain::new();
//!
//! // Table 1, rows (4) and (1): a secure pair and a totally-disclosing one.
//! let v4 = parse_query("V4(n) :- Employee(n, 'Mgmt', p)", &schema, &mut domain).unwrap();
//! let s4 = parse_query("S4(n) :- Employee(n, 'HR', p)", &schema, &mut domain).unwrap();
//! let v1 = parse_query("V1(n, d) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
//! let s1 = parse_query("S1(d) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
//!
//! // One owned engine serves both audits (and could serve them from
//! // different threads); verdicts come back as serializable reports.
//! let engine = AuditEngine::builder(schema, domain).build();
//! let reports = engine.try_audit_batch(&[
//!     AuditRequest::new(s4, ViewSet::single(v4)),
//!     AuditRequest::new(s1, ViewSet::single(v1)),
//! ]).unwrap();
//! assert_eq!(reports[0].secure, Some(true));
//! assert_eq!(reports[1].secure, Some(false));
//! assert!(serde_json::to_string(&reports).unwrap().contains("NoDisclosure"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod answerability;
pub mod artifacts;
pub mod cnf;
pub mod critical;
pub mod critical_bruteforce;
pub mod encrypted;
pub mod engine;
pub mod error;
pub mod fast_check;
pub mod hardness;
pub mod leakage;
pub mod practical;
pub mod prior;
pub mod report;
pub mod security;
pub mod session;

pub use answerability::{answerable_as_projection, answerable_from_views, determined_by};
pub use artifacts::{ArtifactBudget, ArtifactCounters, CompiledArtifacts};
pub use critical::{critical_tuples, is_critical, CritStats, CritStatsSnapshot};
pub use engine::{
    AuditDepth, AuditEngine, AuditEngineBuilder, AuditOptions, AuditReport, AuditRequest,
    CacheStatsSnapshot,
};
pub use error::QvsError;
pub use fast_check::{fast_check, FastVerdict};
pub use leakage::{leakage_exact, LeakageReport};
pub use report::DisclosureClass;
pub use security::{secure_for_all_distributions, SecurityVerdict};
pub use session::{AuditSession, MarginalDisclosure, SessionReport, SessionSnapshot};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, QvsError>;
