//! # qvsec — query-view security
//!
//! A from-scratch implementation of Miklau & Suciu, *A Formal Analysis of
//! Information Disclosure in Data Exchange* (SIGMOD 2004; JCSS 2007).
//!
//! Alice wants to publish views `V1, ..., Vk` over her database while keeping
//! the answer to a query `S` secret from an adversary who knows the view
//! definitions, the published answers, the domain and the tuple-probability
//! dictionary. The paper's standard — *query-view security* — asks that the
//! views reveal **nothing** about `S`: `P[S(I) = s] = P[S(I) = s | V̄(I) = v̄]`
//! for every possible pair of answers (Definition 4.1, a database analogue of
//! Shannon's perfect secrecy).
//!
//! The crate provides, mirroring the paper's sections:
//!
//! | Module | Paper | Contents |
//! |---|---|---|
//! | [`critical`] | §4.2, Def. 4.4, App. A | critical tuples `crit_D(Q)`, the fine-instance decision procedure |
//! | [`critical_bruteforce`] | Def. 4.4 | literal, exhaustive reference implementation |
//! | [`security`] | Thm 4.5, Thm 4.8, Prop. 4.9 | the dictionary-independent security criterion `crit(S) ∩ crit(V̄) = ∅` |
//! | [`fast_check`] | §4.2 | the "practical algorithm": pairwise subgoal unification |
//! | [`analysis`], [`report`] | §1.1, Table 1 | end-to-end disclosure analysis and Total/Partial/Minute/None classification |
//! | [`prior`] | §5.1–5.3 | security under prior knowledge: Theorem 5.2, keys (Cor. 5.3), cardinality, protective disclosure (Cor. 5.4), prior views (Cor. 5.5) |
//! | [`encrypted`] | §5.4 | attribute-wise encrypted views |
//! | [`leakage`] | §6.1 | the `leak(S, V̄)` measure and the Theorem 6.1 bound |
//! | [`practical`] | §6.2 | asymptotic (expected-constant-size) model: exponents of `μ_n[Q]`, practical security |
//! | [`cnf`], [`hardness`] | Thm 4.10, App. A | ∀∃3-CNF formulas and the reduction to tuple non-criticality |
//!
//! ## Quick example
//!
//! ```
//! use qvsec_data::{Domain, Schema};
//! use qvsec_cq::{parse_query, ViewSet};
//! use qvsec::security::secure_for_all_distributions;
//!
//! let mut schema = Schema::new();
//! schema.add_relation("Employee", &["name", "department", "phone"]);
//! let mut domain = Domain::new();
//!
//! // Table 1, row (4): management names disclose nothing about HR names.
//! let v = parse_query("V4(n) :- Employee(n, 'Mgmt', p)", &schema, &mut domain).unwrap();
//! let s = parse_query("S4(n) :- Employee(n, 'HR', p)", &schema, &mut domain).unwrap();
//! let verdict = secure_for_all_distributions(&s, &ViewSet::single(v), &schema, &domain).unwrap();
//! assert!(verdict.secure);
//!
//! // Table 1, row (1): the department view totally discloses the department query.
//! let mut domain = Domain::new();
//! let v1 = parse_query("V1(n, d) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
//! let s1 = parse_query("S1(d) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
//! let verdict = secure_for_all_distributions(&s1, &ViewSet::single(v1), &schema, &domain).unwrap();
//! assert!(!verdict.secure);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod answerability;
pub mod cnf;
pub mod critical;
pub mod critical_bruteforce;
pub mod encrypted;
pub mod error;
pub mod fast_check;
pub mod hardness;
pub mod leakage;
pub mod practical;
pub mod prior;
pub mod report;
pub mod security;

pub use analysis::{DisclosureAnalysis, SecurityAnalyzer};
pub use answerability::{answerable_as_projection, answerable_from_views, determined_by};
pub use critical::{critical_tuples, is_critical};
pub use error::QvsError;
pub use fast_check::{fast_check, FastVerdict};
pub use leakage::{leakage_exact, LeakageReport};
pub use report::DisclosureClass;
pub use security::{secure_for_all_distributions, SecurityVerdict};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, QvsError>;
