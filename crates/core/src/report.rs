//! Disclosure classification in the style of Table 1.
//!
//! Table 1 of the paper arranges query/view pairs on a spectrum: *total*
//! disclosure (the secret is answerable from the views), *partial* disclosure
//! (a non-negligible probability shift), *minute* disclosure (a shift that is
//! negligible for practical purposes, like the database-cardinality leak of
//! row 3), and *no* disclosure (perfect query-view security). This module
//! computes the ingredients of that classification:
//!
//! * perfect security comes from Theorem 4.5 ([`crate::security`]);
//! * *total* disclosure is detected as **determinacy over the dictionary's
//!   support**: every pair of possible worlds that agrees on the view answers
//!   agrees on the secret answer (so the adversary can compute `S(I)` from
//!   `V̄(I)` with certainty);
//! * the partial/minute boundary is quantified by the leakage measure of
//!   Section 6.1 and a caller-supplied threshold.

use crate::Result;
use qvsec_cq::eval::{evaluate, AnswerSet};
use qvsec_cq::{ConjunctiveQuery, ViewSet};
use qvsec_data::{Dictionary, Ratio};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The four disclosure classes of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DisclosureClass {
    /// No disclosure: the query is perfectly secure with respect to the
    /// views (Table 1, row 4).
    NoDisclosure,
    /// Total disclosure: the secret answer is determined by the view answers
    /// (Table 1, row 1).
    Total,
    /// Partial disclosure: not secure, not determined, and the measured
    /// leakage exceeds the minuteness threshold (Table 1, row 2).
    Partial,
    /// Minute disclosure: not secure, but the measured leakage is at or
    /// below the threshold (Table 1, row 3).
    Minute,
}

impl fmt::Display for DisclosureClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DisclosureClass::NoDisclosure => "none",
            DisclosureClass::Total => "total",
            DisclosureClass::Partial => "partial",
            DisclosureClass::Minute => "minute",
        };
        write!(f, "{s}")
    }
}

/// Whether the secret's answer is a function of the view answers over every
/// instance of the dictionary's tuple space with positive probability —
/// i.e. whether publishing the views *totally* discloses the secret.
pub fn is_totally_disclosed(
    secret: &ConjunctiveQuery,
    views: &ViewSet,
    dict: &Dictionary,
) -> Result<bool> {
    let mut by_view_answer: BTreeMap<Vec<AnswerSet>, AnswerSet> = BTreeMap::new();
    for (mask, instance) in dict.space().instances()? {
        if dict.instance_probability_mask(mask).is_zero() {
            continue;
        }
        let v_ans: Vec<AnswerSet> = views.iter().map(|v| evaluate(v, &instance)).collect();
        let s_ans = evaluate(secret, &instance);
        match by_view_answer.get(&v_ans) {
            Some(existing) if existing != &s_ans => return Ok(false),
            Some(_) => {}
            None => {
                by_view_answer.insert(v_ans, s_ans);
            }
        }
    }
    Ok(true)
}

/// Classifies a disclosure given the three measurements. `leak` may be
/// `None` when no dictionary-based leakage measurement is available; in that
/// case any insecure, non-total pair is classified as [`DisclosureClass::Partial`].
pub fn classify(
    secure: bool,
    totally_disclosed: bool,
    leak: Option<Ratio>,
    minute_threshold: Ratio,
) -> DisclosureClass {
    if secure {
        DisclosureClass::NoDisclosure
    } else if totally_disclosed {
        DisclosureClass::Total
    } else {
        match leak {
            Some(l) if l <= minute_threshold => DisclosureClass::Minute,
            _ => DisclosureClass::Partial,
        }
    }
}

/// The default threshold separating minute from partial disclosures used by
/// the high-level analyzer (callers can always supply their own).
pub fn default_minute_threshold() -> Ratio {
    Ratio::new(1, 4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvsec_cq::parse_query;
    use qvsec_data::{Domain, Schema, TupleSpace};

    fn setup() -> (Schema, Domain, Dictionary) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        let domain = Domain::with_constants(["a", "b"]);
        let space = TupleSpace::full(&schema, &domain).unwrap();
        (schema, domain, Dictionary::half(space))
    }

    #[test]
    fn identity_view_totally_discloses_every_query() {
        let (schema, mut domain, dict) = setup();
        let v = parse_query("V(x, y) :- R(x, y)", &schema, &mut domain).unwrap();
        let s = parse_query("S(x) :- R(x, y)", &schema, &mut domain).unwrap();
        assert!(is_totally_disclosed(&s, &ViewSet::single(v), &dict).unwrap());
    }

    #[test]
    fn projections_do_not_totally_disclose_the_other_column() {
        let (schema, mut domain, dict) = setup();
        let v = parse_query("V(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let s = parse_query("S(y) :- R(x, y)", &schema, &mut domain).unwrap();
        assert!(!is_totally_disclosed(&s, &ViewSet::single(v), &dict).unwrap());
    }

    #[test]
    fn query_answerable_from_its_own_view_is_totally_disclosed() {
        // Table 1 row 1 shape: S is a projection of V.
        let (schema, mut domain, dict) = setup();
        let v = parse_query("V(x, y) :- R(x, y)", &schema, &mut domain).unwrap();
        let s = parse_query("S(y) :- R(x, y)", &schema, &mut domain).unwrap();
        assert!(is_totally_disclosed(&s, &ViewSet::single(v), &dict).unwrap());
    }

    #[test]
    fn classification_matrix() {
        let t = default_minute_threshold();
        assert_eq!(
            classify(true, false, None, t),
            DisclosureClass::NoDisclosure
        );
        assert_eq!(classify(false, true, None, t), DisclosureClass::Total);
        assert_eq!(
            classify(false, false, Some(Ratio::new(1, 10)), t),
            DisclosureClass::Minute
        );
        assert_eq!(
            classify(false, false, Some(Ratio::new(3, 1)), t),
            DisclosureClass::Partial
        );
        assert_eq!(classify(false, false, None, t), DisclosureClass::Partial);
        // secure takes precedence over everything
        assert_eq!(
            classify(true, true, Some(Ratio::ONE), t),
            DisclosureClass::NoDisclosure
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(DisclosureClass::NoDisclosure.to_string(), "none");
        assert_eq!(DisclosureClass::Total.to_string(), "total");
        assert_eq!(DisclosureClass::Partial.to_string(), "partial");
        assert_eq!(DisclosureClass::Minute.to_string(), "minute");
    }
}
