//! ∀∃3-CNF formulas (the source problem of the Theorem 4.10 reduction).
//!
//! A formula `Φ = ∀X1..Xm ∃Y1..Yn . C1 ∧ ... ∧ Cp` with three-literal
//! disjunctive clauses. Validity of such formulas is the canonical
//! Πᵖ₂-complete problem; Appendix A reduces it to deciding that a tuple is
//! *not* critical for a conjunctive query. This module provides the formula
//! representation and a naive validity/satisfiability solver used to verify
//! the reduction of [`crate::hardness`] on small instances.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A literal over a universal (`X`) or existential (`Y`) variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Literal {
    /// A universally quantified variable `X_i` (0-based), possibly negated.
    Universal {
        /// Variable index.
        index: usize,
        /// Whether the literal is negated.
        negated: bool,
    },
    /// An existentially quantified variable `Y_i` (0-based), possibly
    /// negated.
    Existential {
        /// Variable index.
        index: usize,
        /// Whether the literal is negated.
        negated: bool,
    },
}

impl Literal {
    /// Positive universal literal `X_i`.
    pub fn x(index: usize) -> Self {
        Literal::Universal {
            index,
            negated: false,
        }
    }

    /// Negated universal literal `¬X_i`.
    pub fn not_x(index: usize) -> Self {
        Literal::Universal {
            index,
            negated: true,
        }
    }

    /// Positive existential literal `Y_i`.
    pub fn y(index: usize) -> Self {
        Literal::Existential {
            index,
            negated: false,
        }
    }

    /// Negated existential literal `¬Y_i`.
    pub fn not_y(index: usize) -> Self {
        Literal::Existential {
            index,
            negated: true,
        }
    }

    /// Evaluates the literal under the two assignments (bit `i` of each
    /// assignment is the truth value of the corresponding variable).
    pub fn eval(&self, x_assignment: u64, y_assignment: u64) -> bool {
        match self {
            Literal::Universal { index, negated } => {
                (x_assignment >> index) & 1 == 1 && !negated
                    || (x_assignment >> index) & 1 == 0 && *negated
            }
            Literal::Existential { index, negated } => {
                (y_assignment >> index) & 1 == 1 && !negated
                    || (y_assignment >> index) & 1 == 0 && *negated
            }
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Universal { index, negated } => {
                write!(f, "{}X{index}", if *negated { "¬" } else { "" })
            }
            Literal::Existential { index, negated } => {
                write!(f, "{}Y{index}", if *negated { "¬" } else { "" })
            }
        }
    }
}

/// A `∀X̄ ∃Ȳ . C` formula in 3-CNF (clauses may have fewer than three
/// literals; clauses with more are rejected at construction).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForallExists3Cnf {
    /// Number of universal variables `X_0..X_{m-1}`.
    pub num_universal: usize,
    /// Number of existential variables `Y_0..Y_{n-1}`.
    pub num_existential: usize,
    /// The clauses.
    pub clauses: Vec<Vec<Literal>>,
}

impl ForallExists3Cnf {
    /// Creates a formula, checking clause widths and variable indices.
    ///
    /// # Panics
    /// Panics if a clause has more than three literals or references an
    /// out-of-range variable.
    pub fn new(num_universal: usize, num_existential: usize, clauses: Vec<Vec<Literal>>) -> Self {
        assert!(
            num_universal <= 20 && num_existential <= 20,
            "solver is exponential"
        );
        for clause in &clauses {
            assert!(
                clause.len() <= 3,
                "3-CNF clauses have at most three literals"
            );
            for lit in clause {
                match lit {
                    Literal::Universal { index, .. } => assert!(*index < num_universal),
                    Literal::Existential { index, .. } => assert!(*index < num_existential),
                }
            }
        }
        ForallExists3Cnf {
            num_universal,
            num_existential,
            clauses,
        }
    }

    /// A purely existential formula (`m = 0`): plain 3-SAT.
    pub fn existential(num_existential: usize, clauses: Vec<Vec<Literal>>) -> Self {
        Self::new(0, num_existential, clauses)
    }

    /// Evaluates the matrix `C` under full assignments.
    pub fn matrix_holds(&self, x_assignment: u64, y_assignment: u64) -> bool {
        self.clauses
            .iter()
            .all(|clause| clause.iter().any(|l| l.eval(x_assignment, y_assignment)))
    }

    /// Whether `∃Ȳ` makes the matrix true for the given `X̄` assignment.
    pub fn satisfiable_for(&self, x_assignment: u64) -> bool {
        (0..(1u64 << self.num_existential)).any(|y| self.matrix_holds(x_assignment, y))
    }

    /// Naive validity check: `∀X̄ ∃Ȳ . C`.
    pub fn is_valid(&self) -> bool {
        (0..(1u64 << self.num_universal)).all(|x| self.satisfiable_for(x))
    }

    /// For purely existential formulas, plain satisfiability.
    pub fn is_satisfiable(&self) -> bool {
        debug_assert_eq!(self.num_universal, 0);
        self.satisfiable_for(0)
    }

    /// Every clause must contain at least one existential literal for the
    /// Appendix A reduction to apply ("each clause must have at least one Y
    /// variable: otherwise Φ is false").
    pub fn every_clause_has_existential(&self) -> bool {
        self.clauses
            .iter()
            .all(|c| c.iter().any(|l| matches!(l, Literal::Existential { .. })))
    }
}

impl fmt::Display for ForallExists3Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "∀X0..X{} ∃Y0..Y{} . ",
            self.num_universal.saturating_sub(1),
            self.num_existential.saturating_sub(1)
        )?;
        for (i, clause) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "(")?;
            for (j, lit) in clause.iter().enumerate() {
                if j > 0 {
                    write!(f, " ∨ ")?;
                }
                write!(f, "{lit}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn satisfiable_and_unsatisfiable_3sat() {
        // (Y0 ∨ Y1) ∧ (¬Y0 ∨ Y1) ∧ (¬Y1) is unsatisfiable;
        // dropping the last clause makes it satisfiable.
        let unsat = ForallExists3Cnf::existential(
            2,
            vec![
                vec![Literal::y(0), Literal::y(1)],
                vec![Literal::not_y(0), Literal::y(1)],
                vec![Literal::not_y(1)],
            ],
        );
        assert!(!unsat.is_satisfiable());
        assert!(!unsat.is_valid());
        let sat = ForallExists3Cnf::existential(
            2,
            vec![
                vec![Literal::y(0), Literal::y(1)],
                vec![Literal::not_y(0), Literal::y(1)],
            ],
        );
        assert!(sat.is_satisfiable());
        assert!(sat.is_valid());
        assert!(sat.every_clause_has_existential());
    }

    #[test]
    fn forall_exists_validity() {
        // ∀X0 ∃Y0 . (X0 ∨ Y0) ∧ (¬X0 ∨ ¬Y0): pick Y0 = ¬X0 — valid.
        let valid = ForallExists3Cnf::new(
            1,
            1,
            vec![
                vec![Literal::x(0), Literal::y(0)],
                vec![Literal::not_x(0), Literal::not_y(0)],
            ],
        );
        assert!(valid.is_valid());

        // ∀X0 ∃Y0 . (X0 ∨ Y0) ∧ (X0 ∨ ¬Y0): for X0 = false no Y0 works — invalid.
        let invalid = ForallExists3Cnf::new(
            1,
            1,
            vec![
                vec![Literal::x(0), Literal::y(0)],
                vec![Literal::x(0), Literal::not_y(0)],
            ],
        );
        assert!(!invalid.is_valid());
    }

    #[test]
    fn literal_evaluation_and_display() {
        assert!(Literal::x(0).eval(0b1, 0));
        assert!(!Literal::x(0).eval(0b0, 0));
        assert!(Literal::not_x(0).eval(0b0, 0));
        assert!(Literal::y(2).eval(0, 0b100));
        assert!(Literal::not_y(2).eval(0, 0b011));
        assert_eq!(Literal::not_x(3).to_string(), "¬X3");
        assert_eq!(Literal::y(1).to_string(), "Y1");
        let f = ForallExists3Cnf::existential(1, vec![vec![Literal::y(0)]]);
        assert!(f.to_string().contains("Y0"));
    }

    #[test]
    fn clause_without_existential_is_detected() {
        let f = ForallExists3Cnf::new(1, 1, vec![vec![Literal::x(0)]]);
        assert!(!f.every_clause_has_existential());
    }

    #[test]
    #[should_panic(expected = "at most three")]
    fn wide_clauses_are_rejected() {
        let _ = ForallExists3Cnf::existential(
            4,
            vec![vec![
                Literal::y(0),
                Literal::y(1),
                Literal::y(2),
                Literal::y(3),
            ]],
        );
    }
}
