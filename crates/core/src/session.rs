//! Incremental view publication: the paper's §6 collusion scenario as a
//! long-lived, stateful API.
//!
//! A publisher has already released views `V₁ … Vₖ` and asks: *is it safe
//! to also publish `Vₖ₊₁`?* The stateless [`AuditEngine::audit`] answers
//! that question from scratch every time; an [`AuditSession`] instead
//! accumulates the published views and answers each marginal question over
//! the engine's warm [`CompiledArtifacts`](crate::artifacts::CompiledArtifacts):
//! the secret's critical set is decided once, every previously published
//! view's compilation and crit set is served from the memo, and the shared
//! Monte-Carlo pool persists across steps. Each [`SessionReport`] records
//! exactly how much was reused ([`CacheStatsSnapshot`] delta) next to the
//! estimator metadata, so a serving system can observe its warm-path
//! behaviour per request.
//!
//! Three kinds of question:
//!
//! * [`AuditSession::publish`] — audit the secret against everything
//!   published **plus** the new view, then commit the view;
//! * [`AuditSession::audit_candidate`] — the same audit *without*
//!   committing (what-if);
//! * [`AuditSession::snapshot`] / [`AuditSession::restore`] — save and
//!   rewind the published-prefix state for speculative exploration (the
//!   engine's artifact caches are append-only and survive a rewind — a
//!   replayed step is served warm).
//!
//! Cumulative session verdicts are **identical** to a fresh engine auditing
//! the same prefix: caches are transparent and the Monte-Carlo pool is
//! seed-deterministic (property-tested in `tests/session_equivalence.rs`).

use crate::engine::{AuditEngine, AuditOptions, AuditReport, AuditRequest, CacheStatsSnapshot};
use crate::Result;
use qvsec_cq::{ConjunctiveQuery, ViewSet};
use qvsec_data::Ratio;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One committed publication step.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PublishedView {
    /// Recipient / publication label.
    pub name: String,
    /// The published view definition.
    pub query: ConjunctiveQuery,
}

/// How a step changed the session's disclosure posture relative to the
/// previously published prefix.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MarginalDisclosure {
    /// The definitive verdict before this step (`None` before any
    /// conclusive step).
    pub prev_secure: Option<bool>,
    /// Whether this step flipped the session from secure to insecure — the
    /// marginal violation the §6 collusion question asks about.
    pub newly_insecure: bool,
    /// `leak(S, V̄)` before this step (probabilistic depth only).
    pub prev_max_leak: Option<Ratio>,
    /// `leak(S, V̄)` including this step's view.
    pub max_leak: Option<Ratio>,
    /// `max_leak − prev_max_leak`: the leakage attributable to publishing
    /// this view on top of everything already public.
    pub marginal_leak: Option<Ratio>,
}

/// The result of one session step: the cumulative audit report plus the
/// step's marginal-disclosure and cache-reuse metadata.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionReport {
    /// The session's label.
    pub session: String,
    /// 1-based step number (for a candidate audit: the step it *would* be).
    pub step: usize,
    /// The audited view's label.
    pub view: String,
    /// `true` for [`AuditSession::publish`], `false` for
    /// [`AuditSession::audit_candidate`].
    pub committed: bool,
    /// Views published after this step (committed steps only).
    pub views_published: usize,
    /// The cumulative audit of the secret against the whole prefix
    /// including this view — estimator metadata included.
    pub report: AuditReport,
    /// How this step moved the disclosure posture.
    pub marginal: MarginalDisclosure,
    /// Cache work saved by this step: memo hits, class-verdict reuses,
    /// compile-cache hits and pooled samples reused while serving it.
    ///
    /// Measured as the delta of the engine's **global** counters around
    /// this step's audit, so it is attributable to the step only while no
    /// other audit runs on the same engine concurrently; with overlapping
    /// sessions or batches the delta also absorbs their cache traffic.
    pub cache: CacheStatsSnapshot,
}

impl SessionReport {
    /// A compact, human-readable rendering of the step.
    pub fn render(&self) -> String {
        let mut out = format!(
            "session {} step {} ({}{})\n",
            self.session,
            self.step,
            self.view,
            if self.committed { "" } else { ", what-if" }
        );
        out.push_str(&self.report.render());
        if self.marginal.newly_insecure {
            out.push_str("marginal              : this view broke security\n");
        }
        if let (Some(prev), Some(now)) = (self.marginal.prev_max_leak, self.marginal.max_leak) {
            out.push_str(&format!(
                "marginal leakage      : {} -> {} (+{})\n",
                prev,
                now,
                self.marginal.marginal_leak.unwrap_or(Ratio::ZERO)
            ));
        }
        out.push_str(&format!(
            "cache                 : crit {}h/{}m, spaces {}h/{}m, classes reused {}, compile {}h/{}m, pooled samples reused {}\n",
            self.cache.crit_cache_hits,
            self.cache.crit_cache_misses,
            self.cache.space_cache_hits,
            self.cache.space_cache_misses,
            self.cache.class_verdicts_reused,
            self.cache.compile_cache_hits,
            self.cache.queries_compiled,
            self.cache.mc_samples_reused,
        ));
        out
    }
}

/// A frozen copy of a session's mutable state, for speculative exploration.
/// Restoring rewinds the published prefix and the session-cumulative cache
/// counters; the engine's artifact caches themselves are append-only and
/// unaffected.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionSnapshot {
    published: Vec<PublishedView>,
    steps_taken: usize,
    prev_secure: Option<bool>,
    prev_max_leak: Option<Ratio>,
    cumulative_cache: CacheStatsSnapshot,
}

impl SessionSnapshot {
    /// Number of views published in the captured state.
    pub fn views_published(&self) -> usize {
        self.published.len()
    }

    /// The session-cumulative cache counters at capture time.
    pub fn cumulative_cache(&self) -> &CacheStatsSnapshot {
        &self.cumulative_cache
    }
}

/// An owned, `Send + Sync` handle for incremental view publication over a
/// shared [`AuditEngine`]. See the [module docs](self).
///
/// ```
/// use qvsec::{AuditEngine};
/// use qvsec_cq::parse_query;
/// use qvsec_data::{Domain, Schema};
/// use std::sync::Arc;
///
/// let mut schema = Schema::new();
/// schema.add_relation("Employee", &["name", "department", "phone"]);
/// let mut domain = Domain::new();
/// let s = parse_query("S(n, p) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
/// let bob = parse_query("VBob(n, d) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
/// let carol = parse_query("VCarol(d, p) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
///
/// let engine = Arc::new(AuditEngine::builder(schema, domain).build());
/// let mut session = engine.open_session(s);
/// let first = session.publish(bob).unwrap();
/// assert_eq!(first.report.secure, Some(false));
/// // The second step reuses the secret's compiled artifacts:
/// let second = session.publish(carol).unwrap();
/// assert!(second.cache.crit_cache_hits > 0);
/// assert_eq!(session.views_published(), 2);
/// ```
#[derive(Debug)]
pub struct AuditSession {
    engine: Arc<AuditEngine>,
    name: String,
    secret: ConjunctiveQuery,
    options: AuditOptions,
    published: Vec<PublishedView>,
    steps_taken: usize,
    prev_secure: Option<bool>,
    prev_max_leak: Option<Ratio>,
    cumulative_cache: CacheStatsSnapshot,
}

// Sessions move between serving threads; read-only what-ifs may be shared.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<AuditSession>();
};

impl AuditSession {
    /// Opens a session on `engine` for `secret` (the usual entry point is
    /// [`AuditEngine::open_session`]).
    pub fn new(engine: Arc<AuditEngine>, secret: ConjunctiveQuery, options: AuditOptions) -> Self {
        let name = format!("session:{}", secret.name);
        AuditSession {
            engine,
            name,
            secret,
            options,
            published: Vec::new(),
            steps_taken: 0,
            prev_secure: None,
            prev_max_leak: None,
            cumulative_cache: CacheStatsSnapshot::default(),
        }
    }

    /// Overrides the session label used in reports.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The engine this session audits against.
    pub fn engine(&self) -> &Arc<AuditEngine> {
        &self.engine
    }

    /// The session's secret query.
    pub fn secret(&self) -> &ConjunctiveQuery {
        &self.secret
    }

    /// The committed publications, in order.
    pub fn published(&self) -> &[PublishedView] {
        &self.published
    }

    /// Number of committed publications.
    pub fn views_published(&self) -> usize {
        self.published.len()
    }

    /// Cache reuse accumulated over all committed steps.
    pub fn cumulative_cache(&self) -> &CacheStatsSnapshot {
        &self.cumulative_cache
    }

    /// The cumulative [`AuditRequest`] a step audits: the secret against
    /// every published view plus (optionally) one more.
    fn request_with(&self, extra: Option<&ConjunctiveQuery>) -> AuditRequest {
        let mut views: Vec<ConjunctiveQuery> =
            self.published.iter().map(|p| p.query.clone()).collect();
        if let Some(v) = extra {
            views.push(v.clone());
        }
        AuditRequest {
            name: format!(
                "{}#{}",
                self.name,
                self.published.len() + extra.is_some() as usize
            ),
            secret: self.secret.clone(),
            views: ViewSet::from_views(views),
            options: self.options.clone(),
        }
    }

    /// Audits the secret against the published prefix plus `view` and
    /// builds the step report, without mutating the session. The cache
    /// delta brackets this audit on the engine's global counters — see the
    /// caveat on [`SessionReport::cache`].
    fn step_report(
        &self,
        view_name: &str,
        view: &ConjunctiveQuery,
        committed: bool,
    ) -> Result<SessionReport> {
        let before = self.engine.cache_stats();
        let report = self.engine.audit(&self.request_with(Some(view)))?;
        let cache = self.engine.cache_stats().delta_since(&before);
        let max_leak = report.leakage.as_ref().map(|l| l.max_leak);
        let marginal = MarginalDisclosure {
            prev_secure: self.prev_secure,
            newly_insecure: self.prev_secure != Some(false) && report.secure == Some(false),
            prev_max_leak: self.prev_max_leak,
            max_leak,
            marginal_leak: match (self.prev_max_leak, max_leak) {
                (Some(prev), Some(now)) => Some(now - prev),
                (None, Some(now)) => Some(now),
                _ => None,
            },
        };
        Ok(SessionReport {
            session: self.name.clone(),
            step: self.steps_taken + 1,
            view: view_name.to_string(),
            committed,
            views_published: self.published.len() + committed as usize,
            report,
            marginal,
            cache,
        })
    }

    /// Publishes `view` (labelled after its query name): audits the secret
    /// against everything already published **plus** `view`, commits the
    /// view, and returns the step report.
    pub fn publish(&mut self, view: ConjunctiveQuery) -> Result<SessionReport> {
        let name = view.name.clone();
        self.publish_named(name, view)
    }

    /// [`AuditSession::publish`] with an explicit recipient/publication
    /// label.
    pub fn publish_named(
        &mut self,
        name: impl Into<String>,
        view: ConjunctiveQuery,
    ) -> Result<SessionReport> {
        let name = name.into();
        let report = self.step_report(&name, &view, true)?;
        self.published.push(PublishedView { name, query: view });
        self.steps_taken += 1;
        self.prev_secure = report.report.secure.or(self.prev_secure);
        if let Some(leak) = report.marginal.max_leak {
            self.prev_max_leak = Some(leak);
        }
        self.cumulative_cache.accumulate(&report.cache);
        Ok(report)
    }

    /// What-if: the audit [`AuditSession::publish`] would run for `view`,
    /// without committing anything. Candidate audits still warm the
    /// engine's artifact caches, so a later `publish` of the same view is
    /// served almost entirely from memo.
    pub fn audit_candidate(&self, view: &ConjunctiveQuery) -> Result<SessionReport> {
        self.step_report(&view.name.clone(), view, false)
    }

    /// Re-audits the current prefix without adding a view (e.g. after a
    /// restore, to re-establish the cumulative verdict). Errors if nothing
    /// has been published yet.
    pub fn current_report(&self) -> Result<AuditReport> {
        self.engine.audit(&self.request_with(None))
    }

    /// Captures the session's mutable state for later [`AuditSession::restore`].
    pub fn snapshot(&self) -> SessionSnapshot {
        SessionSnapshot {
            published: self.published.clone(),
            steps_taken: self.steps_taken,
            prev_secure: self.prev_secure,
            prev_max_leak: self.prev_max_leak,
            cumulative_cache: self.cumulative_cache,
        }
    }

    /// Rewinds the session to a previously captured snapshot. Engine-side
    /// artifact caches are untouched (they are append-only), so replaying
    /// the rewound steps is served warm.
    pub fn restore(&mut self, snapshot: &SessionSnapshot) {
        self.published = snapshot.published.clone();
        self.steps_taken = snapshot.steps_taken;
        self.prev_secure = snapshot.prev_secure;
        self.prev_max_leak = snapshot.prev_max_leak;
        self.cumulative_cache = snapshot.cumulative_cache;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::AuditDepth;
    use crate::report::DisclosureClass;
    use qvsec_cq::parse_query;
    use qvsec_data::{Dictionary, Domain, Schema};

    fn setup() -> (Schema, Domain) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        schema.add_relation("Employee", &["name", "department", "phone"]);
        (schema, Domain::with_constants(["a", "b"]))
    }

    fn prob_engine() -> (Arc<AuditEngine>, Vec<ConjunctiveQuery>, ConjunctiveQuery) {
        let (schema, mut domain) = setup();
        let s = parse_query("S(x, y) :- R(x, y)", &schema, &mut domain).unwrap();
        let v1 = parse_query("V1(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let v2 = parse_query("V2(y) :- R(x, y)", &schema, &mut domain).unwrap();
        let space = qvsec_prob::lineage::support_space(&[&s, &v1, &v2], &domain, 100).unwrap();
        let dict = Dictionary::half(space);
        let engine = Arc::new(
            AuditEngine::builder(schema, domain)
                .dictionary(dict)
                .default_depth(AuditDepth::Probabilistic)
                .build(),
        );
        (engine, vec![v1, v2], s)
    }

    #[test]
    fn publish_accumulates_views_and_reuses_artifacts() {
        let (engine, views, s) = prob_engine();
        let mut session = engine.open_session(s).named("demo");
        let first = session.publish(views[0].clone()).unwrap();
        assert_eq!(first.step, 1);
        assert!(first.committed);
        assert_eq!(first.views_published, 1);
        assert_eq!(first.cache.crit_cache_hits, 0, "cold start");
        assert!(first.cache.queries_compiled >= 2, "secret + view compiled");
        assert!(first.marginal.newly_insecure);

        let second = session.publish(views[1].clone()).unwrap();
        assert_eq!(second.step, 2);
        assert_eq!(second.views_published, 2);
        assert!(
            second.cache.crit_cache_hits > 0,
            "warm step reuses crit sets: {:?}",
            second.cache
        );
        assert!(
            second.cache.compile_cache_hits >= 2,
            "secret + first view compile from memo: {:?}",
            second.cache
        );
        assert!(!second.marginal.newly_insecure, "already insecure");
        assert!(second.marginal.marginal_leak.is_some());
        assert_eq!(session.views_published(), 2);
        assert!(session.cumulative_cache().any_reuse());
        assert!(second.render().contains("cache"));
    }

    #[test]
    fn session_reports_match_fresh_engine_audits() {
        let (engine, views, s) = prob_engine();
        let mut session = engine.open_session(s.clone()).named("eq");
        let mut session_reports = Vec::new();
        for v in &views {
            session_reports.push(session.publish(v.clone()).unwrap());
        }
        // A fresh engine over the same context, audited statelessly.
        let fresh = Arc::new(
            AuditEngine::builder(engine.schema().clone(), engine.domain().clone())
                .dictionary(engine.dictionary().unwrap().clone())
                .default_depth(AuditDepth::Probabilistic)
                .build(),
        );
        for (k, step) in session_reports.iter().enumerate() {
            let request = AuditRequest {
                name: format!("eq#{}", k + 1),
                secret: s.clone(),
                views: ViewSet::from_views(views[..=k].to_vec()),
                options: AuditOptions::default(),
            };
            let baseline = fresh.audit(&request).unwrap();
            assert_eq!(
                serde_json::to_string(&step.report).unwrap(),
                serde_json::to_string(&baseline).unwrap(),
                "step {} diverges from the stateless baseline",
                k + 1
            );
        }
    }

    #[test]
    fn audit_candidate_does_not_commit() {
        let (engine, views, s) = prob_engine();
        let mut session = engine.open_session(s).named("whatif");
        session.publish(views[0].clone()).unwrap();
        let what_if = session.audit_candidate(&views[1]).unwrap();
        assert!(!what_if.committed);
        assert_eq!(what_if.step, 2, "the step it would be");
        assert_eq!(session.views_published(), 1, "nothing committed");
        // Committing afterwards is served warm from the candidate's work:
        // the crit memo answers the criticality stage, and the kernel's
        // audit memo returns the candidate's whole verdict without even
        // touching the compile cache.
        let committed = session.publish(views[1].clone()).unwrap();
        assert!(committed.cache.crit_cache_hits > 0);
        assert!(committed.cache.kernel_audit_hits > 0);
        assert_eq!(
            serde_json::to_string(&what_if.report).unwrap(),
            serde_json::to_string(&committed.report).unwrap(),
            "what-if and committed audits see the same cumulative prefix"
        );
    }

    #[test]
    fn snapshot_restore_round_trips_state_and_cache_counters() {
        let (engine, views, s) = prob_engine();
        let mut session = engine.open_session(s).named("spec");
        session.publish(views[0].clone()).unwrap();
        let snap = session.snapshot();
        assert_eq!(snap.views_published(), 1);

        session.publish(views[1].clone()).unwrap();
        assert_eq!(session.views_published(), 2);
        session.restore(&snap);
        assert_eq!(session.views_published(), 1);
        let replay = session.snapshot();
        assert_eq!(
            serde_json::to_string(&replay).unwrap(),
            serde_json::to_string(&snap).unwrap(),
            "snapshot → restore → snapshot round-trips, cache counters included"
        );
        // Replaying the rewound step is served warm and reaches the same
        // cumulative verdict.
        let replayed = session.publish(views[1].clone()).unwrap();
        assert!(replayed.cache.any_reuse());
        assert_eq!(replayed.report.secure, Some(false));
    }

    #[test]
    fn exact_depth_sessions_work_without_a_dictionary() {
        let (schema, mut domain) = setup();
        let s = parse_query("S(n, p) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
        let bob = parse_query("VBob(n, d) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
        let carol = parse_query("VCarol(d, p) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
        let engine = Arc::new(AuditEngine::builder(schema, domain).build());
        let mut session = engine.open_session(s);
        let first = session.publish_named("bob", bob).unwrap();
        assert_eq!(first.report.secure, Some(false));
        assert_eq!(first.report.class, DisclosureClass::Partial);
        assert!(first.marginal.max_leak.is_none(), "no dictionary, no leak");
        let second = session.publish_named("carol", carol).unwrap();
        assert!(second.cache.crit_cache_hits > 0);
        assert_eq!(session.published()[1].name, "carol");
        let cumulative = session.current_report().unwrap();
        assert_eq!(cumulative.secure, Some(false));
    }

    #[test]
    fn session_reports_serialize_round_trip() {
        let (engine, views, s) = prob_engine();
        let mut session = engine.open_session(s).named("serde");
        let report = session.publish(views[0].clone()).unwrap();
        let text = serde_json::to_string(&report).unwrap();
        let back: SessionReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back.session, report.session);
        assert_eq!(back.step, report.step);
        assert_eq!(back.cache, report.cache);
        assert_eq!(back.report.secure, report.report.secure);
    }
}
