//! Deprecated borrowed-lifetime facade over the [`crate::engine`] module.
//!
//! [`SecurityAnalyzer`] was the original entry point: a `&Schema`/`&Domain`
//! borrowing analyzer that could not be sent across threads or cached. The
//! owned, `Send + Sync` [`crate::AuditEngine`] replaces it; this module
//! keeps the old API compiling as a thin wrapper and will be removed in a
//! future release.

use crate::engine::{AuditDepth, AuditEngine, AuditReport, AuditRequest};
use crate::fast_check::FastVerdict;
use crate::leakage::LeakageReport;
use crate::report::{default_minute_threshold, DisclosureClass};
use crate::security::SecurityVerdict;
use crate::Result;
use qvsec_cq::{ConjunctiveQuery, ViewSet};
use qvsec_data::{Dictionary, Domain, Ratio, Schema};
use qvsec_prob::independence::IndependenceReport;
use serde::Serialize;

/// A reusable analyzer bound to a schema and a domain of constants.
#[deprecated(
    since = "0.2.0",
    note = "use the owned, thread-safe `qvsec::AuditEngine` instead"
)]
#[derive(Debug, Clone)]
pub struct SecurityAnalyzer<'a> {
    schema: &'a Schema,
    domain: &'a Domain,
    minute_threshold: Ratio,
}

/// The combined result of a disclosure analysis.
///
/// Subsumed by [`crate::AuditReport`]; kept so existing callers and logs
/// continue to work.
#[derive(Debug, Clone, Serialize)]
pub struct DisclosureAnalysis {
    /// The Section 4.2 practical (pairwise-unification) verdict.
    pub fast_verdict: FastVerdict,
    /// The exact Theorem 4.5 verdict with witnessing common critical tuples.
    pub security: SecurityVerdict,
    /// The literal Definition 4.1 check (present when a dictionary was
    /// supplied).
    pub independence: Option<IndependenceReport>,
    /// The Section 6.1 leakage report (present when a dictionary was
    /// supplied).
    pub leakage: Option<LeakageReport>,
    /// Whether the views determine the secret answer over the dictionary.
    pub totally_disclosed: Option<bool>,
    /// The Table 1 style classification.
    pub class: DisclosureClass,
}

impl TryFrom<AuditReport> for DisclosureAnalysis {
    type Error = crate::QvsError;

    /// Fails for [`AuditDepth::Fast`] reports, which carry no exact
    /// security verdict.
    fn try_from(report: AuditReport) -> Result<Self> {
        let security = report.security.ok_or_else(|| {
            crate::QvsError::Invalid(
                "a DisclosureAnalysis needs an Exact-depth (or deeper) report; \
                 this report stopped at the fast check"
                    .to_string(),
            )
        })?;
        Ok(DisclosureAnalysis {
            fast_verdict: report.fast,
            security,
            independence: report.independence,
            leakage: report.leakage,
            totally_disclosed: report.totally_disclosed,
            class: report.class,
        })
    }
}

#[allow(deprecated)]
impl<'a> SecurityAnalyzer<'a> {
    /// Creates an analyzer for the given schema and domain.
    pub fn new(schema: &'a Schema, domain: &'a Domain) -> Self {
        SecurityAnalyzer {
            schema,
            domain,
            minute_threshold: default_minute_threshold(),
        }
    }

    /// Overrides the threshold that separates minute from partial
    /// disclosures.
    pub fn with_minute_threshold(mut self, threshold: Ratio) -> Self {
        self.minute_threshold = threshold;
        self
    }

    /// Runs the dictionary-independent analyses only: the fast check and the
    /// Theorem 4.5 criterion.
    pub fn analyze(
        &self,
        secret: &ConjunctiveQuery,
        views: &ViewSet,
    ) -> Result<DisclosureAnalysis> {
        let engine = AuditEngine::builder(self.schema.clone(), self.domain.clone())
            .minute_threshold(self.minute_threshold)
            .build();
        let request =
            AuditRequest::new(secret.clone(), views.clone()).with_depth(AuditDepth::Exact);
        engine.audit(&request)?.try_into()
    }

    /// Runs the full analysis, including the exact statistical checks and the
    /// leakage measure over the supplied dictionary (whose tuple space must
    /// be enumerable).
    pub fn analyze_with_dictionary(
        &self,
        secret: &ConjunctiveQuery,
        views: &ViewSet,
        dict: &Dictionary,
    ) -> Result<DisclosureAnalysis> {
        let engine = AuditEngine::builder(self.schema.clone(), self.domain.clone())
            .dictionary(dict.clone())
            .minute_threshold(self.minute_threshold)
            .build();
        let request =
            AuditRequest::new(secret.clone(), views.clone()).with_depth(AuditDepth::Probabilistic);
        engine.audit(&request)?.try_into()
    }
}

impl DisclosureAnalysis {
    /// A multi-line human-readable report, suitable for audit logs and the
    /// example binaries.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("classification        : {}\n", self.class));
        out.push_str(&format!(
            "fast check            : {}\n",
            if self.fast_verdict.is_certainly_secure() {
                "secure (no unifiable subgoal pair)"
            } else {
                "possibly insecure (some subgoals unify)"
            }
        ));
        out.push_str(&format!(
            "exact criterion       : {}\n",
            self.security.summary()
        ));
        if let Some(ind) = &self.independence {
            out.push_str(&format!(
                "statistical check     : {} ({} answer pairs checked)\n",
                if ind.independent {
                    "independent"
                } else {
                    "dependent"
                },
                ind.pairs_checked
            ));
            if let Some(v) = ind.worst_violation() {
                out.push_str(&format!(
                    "  worst shift         : prior {} -> posterior {}\n",
                    v.prior, v.posterior
                ));
            }
        }
        if let Some(leak) = &self.leakage {
            out.push_str(&format!(
                "leakage (Section 6.1) : {} (~{:.4})\n",
                leak.max_leak,
                leak.max_leak_f64()
            ));
        }
        if let Some(total) = self.totally_disclosed {
            out.push_str(&format!("totally disclosed     : {total}\n"));
        }
        out
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use qvsec_cq::parse_query;

    fn employee_schema() -> Schema {
        let mut schema = Schema::new();
        schema.add_relation("Employee", &["name", "department", "phone"]);
        schema.add_relation("R", &["x", "y"]);
        schema
    }

    #[test]
    fn analyze_without_dictionary_classifies_secure_and_insecure() {
        let schema = employee_schema();
        let mut domain = Domain::new();
        let v4 = parse_query("V4(n) :- Employee(n, 'Mgmt', p)", &schema, &mut domain).unwrap();
        let s4 = parse_query("S4(n) :- Employee(n, 'HR', p)", &schema, &mut domain).unwrap();
        let analyzer = SecurityAnalyzer::new(&schema, &domain);
        let a = analyzer.analyze(&s4, &ViewSet::single(v4)).unwrap();
        assert_eq!(a.class, DisclosureClass::NoDisclosure);
        assert!(a.fast_verdict.is_certainly_secure());
        assert!(a.security.secure);
        assert!(a.independence.is_none());
        assert!(a.render().contains("none"));

        let mut domain = Domain::new();
        let v1 = parse_query("V1(n, d) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
        let s1 = parse_query("S1(d) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
        let analyzer = SecurityAnalyzer::new(&schema, &domain);
        let a = analyzer.analyze(&s1, &ViewSet::single(v1)).unwrap();
        assert_eq!(
            a.class,
            DisclosureClass::Partial,
            "without a dictionary, insecure defaults to partial"
        );
    }

    #[test]
    fn analyze_with_dictionary_produces_full_report() {
        let schema = employee_schema();
        let mut domain = Domain::with_constants(["a", "b"]);
        let s = parse_query("S(x, y) :- R(x, y)", &schema, &mut domain).unwrap();
        let v = parse_query("V(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let space = qvsec_prob::lineage::support_space(&[&s, &v], &domain, 100).unwrap();
        let dict = Dictionary::half(space);
        let analyzer = SecurityAnalyzer::new(&schema, &domain);
        let a = analyzer
            .analyze_with_dictionary(&s, &ViewSet::single(v), &dict)
            .unwrap();
        assert!(!a.security.secure);
        assert!(!a.independence.as_ref().unwrap().independent);
        assert!(a.leakage.as_ref().unwrap().max_leak > Ratio::ZERO);
        assert_eq!(a.totally_disclosed, Some(false));
        assert_ne!(a.class, DisclosureClass::NoDisclosure);
        let rendered = a.render();
        assert!(rendered.contains("leakage"));
        assert!(rendered.contains("statistical check"));
    }

    #[test]
    fn identity_view_is_classified_total() {
        let schema = employee_schema();
        let mut domain = Domain::with_constants(["a", "b"]);
        let s = parse_query("S(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let v = parse_query("V(x, y) :- R(x, y)", &schema, &mut domain).unwrap();
        let space = qvsec_prob::lineage::support_space(&[&s, &v], &domain, 100).unwrap();
        let dict = Dictionary::half(space);
        let analyzer = SecurityAnalyzer::new(&schema, &domain);
        let a = analyzer
            .analyze_with_dictionary(&s, &ViewSet::single(v), &dict)
            .unwrap();
        assert_eq!(a.class, DisclosureClass::Total);
    }

    #[test]
    fn threshold_controls_minute_vs_partial() {
        let schema = employee_schema();
        let mut domain = Domain::with_constants(["a", "b"]);
        let s = parse_query("S(y) :- R(x, y)", &schema, &mut domain).unwrap();
        let v = parse_query("V(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let space = qvsec_prob::lineage::support_space(&[&s, &v], &domain, 100).unwrap();
        let dict = Dictionary::half(space);
        // a huge threshold classifies everything non-total as minute
        let generous = SecurityAnalyzer::new(&schema, &domain)
            .with_minute_threshold(Ratio::from_integer(1000));
        let a = generous
            .analyze_with_dictionary(&s, &ViewSet::single(v.clone()), &dict)
            .unwrap();
        assert_eq!(a.class, DisclosureClass::Minute);
        // a zero threshold classifies it as partial
        let strict = SecurityAnalyzer::new(&schema, &domain).with_minute_threshold(Ratio::ZERO);
        let a = strict
            .analyze_with_dictionary(&s, &ViewSet::single(v), &dict)
            .unwrap();
        assert_eq!(a.class, DisclosureClass::Partial);
    }

    #[test]
    fn fast_depth_reports_do_not_convert() {
        let schema = employee_schema();
        let mut domain = Domain::new();
        let v = parse_query("V(n, d) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
        let s = parse_query("S(d) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
        let engine = AuditEngine::builder(schema, domain).build();
        let report = engine
            .audit(&AuditRequest::new(s, ViewSet::single(v)).with_depth(AuditDepth::Fast))
            .unwrap();
        assert!(DisclosureAnalysis::try_from(report).is_err());
    }

    #[test]
    fn audit_report_converts_into_disclosure_analysis() {
        let schema = employee_schema();
        let mut domain = Domain::new();
        let v = parse_query("V(n, d) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
        let s = parse_query("S(d) :- Employee(n, d, p)", &schema, &mut domain).unwrap();
        let engine = AuditEngine::builder(schema, domain).build();
        let report = engine
            .audit(&AuditRequest::new(s, ViewSet::single(v)))
            .unwrap();
        let analysis: DisclosureAnalysis = report.try_into().unwrap();
        assert!(!analysis.security.secure);
        assert_eq!(analysis.class, DisclosureClass::Partial);
    }
}
