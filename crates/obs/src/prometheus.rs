//! Prometheus text exposition (version 0.0.4) for a [`MetricsSnapshot`].
//!
//! Dotted metric names are mangled to the exposition charset
//! (`serve.requests` → `qvsec_serve_requests`); histograms expose the
//! conventional `_bucket{le=...}` / `_sum` / `_count` triple with bucket
//! bounds in nanoseconds (the unit is part of the metric name).

use crate::metrics::{MetricsSnapshot, BUCKET_BOUNDS_NANOS};
use std::fmt::Write;

/// `serve.requests` → `qvsec_serve_requests`.
fn mangle(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 6);
    out.push_str("qvsec_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders the full exposition document.
pub(crate) fn render(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let m = mangle(name);
        let _ = writeln!(out, "# TYPE {m} counter");
        let _ = writeln!(out, "{m} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let m = mangle(name);
        let _ = writeln!(out, "# TYPE {m} gauge");
        let _ = writeln!(out, "{m} {value}");
    }
    for (name, h) in &snapshot.histograms {
        let m = format!("{}_nanos", mangle(name));
        let _ = writeln!(out, "# TYPE {m} histogram");
        let mut cumulative = 0u64;
        for (i, bound) in BUCKET_BOUNDS_NANOS.iter().enumerate() {
            cumulative += h.buckets.get(i).copied().unwrap_or(0);
            let _ = writeln!(out, "{m}_bucket{{le=\"{bound}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{m}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{m}_sum {}", h.sum_nanos);
        let _ = writeln!(out, "{m}_count {}", h.count);
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::metrics::{Histogram, MetricsRegistry};

    #[test]
    fn exposition_is_well_formed() {
        let r = MetricsRegistry::default();
        r.counter("serve.requests").add(5);
        let mut snap = r.snapshot();
        snap.set_gauge("cache.crit.hits", 2);
        let h = Histogram::default();
        h.observe(2_000);
        snap.histograms
            .insert("serve.request".to_string(), h.snapshot());
        let text = snap.to_prometheus();
        assert!(text.contains("# TYPE qvsec_serve_requests counter\nqvsec_serve_requests 5\n"));
        assert!(text.contains("# TYPE qvsec_cache_crit_hits gauge\nqvsec_cache_crit_hits 2\n"));
        assert!(text.contains("# TYPE qvsec_serve_request_nanos histogram"));
        assert!(text.contains("qvsec_serve_request_nanos_bucket{le=\"+Inf\"} 1\n"));
        assert!(text.contains("qvsec_serve_request_nanos_sum 2000\n"));
        assert!(text.contains("qvsec_serve_request_nanos_count 1\n"));
        // Buckets are cumulative: the 2000 ns observation is in every
        // bucket from le=2048 up.
        assert!(text.contains("qvsec_serve_request_nanos_bucket{le=\"1024\"} 0\n"));
        assert!(text.contains("qvsec_serve_request_nanos_bucket{le=\"2048\"} 1\n"));
    }
}
