//! The process-global metrics registry: named counters, gauges and
//! fixed-bucket latency histograms, with deterministic (name-sorted)
//! snapshots.

use serde_json::Value;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock};

/// A monotone event counter. Always on; one relaxed atomic add per bump.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Histogram bucket upper bounds in nanoseconds: powers of two from ~1 µs
/// to ~69 s. Everything above the last bound lands in the overflow bucket.
pub(crate) const BUCKET_BOUNDS_NANOS: [u64; 27] = {
    let mut bounds = [0u64; 27];
    let mut i = 0;
    while i < 27 {
        bounds[i] = 1u64 << (10 + i);
        i += 1;
    }
    bounds
};

/// A fixed-bucket latency histogram (log-2 bucket bounds, nanoseconds).
/// Observations are lock-free; quantiles are estimated at snapshot time as
/// the upper bound of the bucket holding the requested rank.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_BOUNDS_NANOS.len() + 1],
    sum_nanos: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_nanos: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation of `nanos`.
    pub fn observe(&self, nanos: u64) {
        let idx = BUCKET_BOUNDS_NANOS
            .iter()
            .position(|&b| nanos <= b)
            .unwrap_or(BUCKET_BOUNDS_NANOS.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy with estimated quantiles.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = ((count as f64) * q).ceil().max(1.0) as u64;
            let mut seen = 0u64;
            for (i, &n) in buckets.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    return BUCKET_BOUNDS_NANOS
                        .get(i)
                        .copied()
                        .unwrap_or(BUCKET_BOUNDS_NANOS[BUCKET_BOUNDS_NANOS.len() - 1]);
                }
            }
            BUCKET_BOUNDS_NANOS[BUCKET_BOUNDS_NANOS.len() - 1]
        };
        HistogramSnapshot {
            count,
            sum_nanos: self.sum_nanos.load(Ordering::Relaxed),
            p50_nanos: quantile(0.50),
            p90_nanos: quantile(0.90),
            p99_nanos: quantile(0.99),
            buckets,
        }
    }
}

/// A point-in-time copy of one [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed nanoseconds.
    pub sum_nanos: u64,
    /// Estimated median (upper bound of the bucket holding the rank).
    pub p50_nanos: u64,
    /// Estimated 90th percentile.
    pub p90_nanos: u64,
    /// Estimated 99th percentile.
    pub p99_nanos: u64,
    /// Per-bucket counts, `BUCKET_BOUNDS_NANOS` order plus the overflow
    /// bucket last.
    pub buckets: Vec<u64>,
}

/// The registry: name → metric. Metrics are registered on first use and
/// leaked, so handles are `&'static` and hot sites can cache them.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, &'static Counter>>,
    gauges: RwLock<BTreeMap<String, &'static Gauge>>,
    histograms: RwLock<BTreeMap<String, &'static Histogram>>,
}

fn intern<M: Default>(map: &RwLock<BTreeMap<String, &'static M>>, name: &str) -> &'static M {
    if let Some(m) = map.read().expect("metrics registry poisoned").get(name) {
        return m;
    }
    let mut w = map.write().expect("metrics registry poisoned");
    w.entry(name.to_string())
        .or_insert_with(|| Box::leak(Box::new(M::default())))
}

impl MetricsRegistry {
    /// The counter named `name`, registered on first use.
    pub fn counter(&self, name: &str) -> &'static Counter {
        intern(&self.counters, name)
    }

    /// The gauge named `name`, registered on first use.
    pub fn gauge(&self, name: &str) -> &'static Gauge {
        intern(&self.gauges, name)
    }

    /// The histogram named `name`, registered on first use.
    pub fn histogram(&self, name: &str) -> &'static Histogram {
        intern(&self.histograms, name)
    }

    /// A deterministic (name-sorted) snapshot of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .expect("metrics registry poisoned")
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .expect("metrics registry poisoned")
                .iter()
                .map(|(k, g)| (k.clone(), g.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .expect("metrics registry poisoned")
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }
}

static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();

/// The process-global registry.
pub fn registry() -> &'static MetricsRegistry {
    REGISTRY.get_or_init(MetricsRegistry::default)
}

/// Shorthand for [`registry()`]`.counter(name)`.
pub fn counter(name: &str) -> &'static Counter {
    registry().counter(name)
}

/// Shorthand for [`registry()`]`.gauge(name)`.
pub fn gauge(name: &str) -> &'static Gauge {
    registry().gauge(name)
}

/// Shorthand for [`registry()`]`.histogram(name)`.
pub fn histogram(name: &str) -> &'static Histogram {
    registry().histogram(name)
}

/// A snapshot of the whole registry, plus any caller-merged gauges
/// (values collected from external counter bags at snapshot time, so
/// collection never mutates global state).
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter name → value.
    pub counters: BTreeMap<String, u64>,
    /// Gauge name → value.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram name → snapshot.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Merges an externally-collected gauge value into the snapshot (used
    /// by the serve layer to fold legacy counter bags — server, registry,
    /// engine-cache, kernel stats — into the unified plane without writing
    /// any global state).
    pub fn set_gauge(&mut self, name: &str, value: u64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// The snapshot as a JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`, every
    /// map name-sorted so rendering is deterministic for a fixed state.
    pub fn to_json(&self) -> Value {
        let int_map = |m: &BTreeMap<String, u64>| {
            Value::Object(
                m.iter()
                    .map(|(k, v)| (k.clone(), Value::Int(*v as i128)))
                    .collect(),
            )
        };
        let histograms = Value::Object(
            self.histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        Value::Object(vec![
                            ("count".to_string(), Value::Int(h.count as i128)),
                            ("sum_nanos".to_string(), Value::Int(h.sum_nanos as i128)),
                            ("p50_nanos".to_string(), Value::Int(h.p50_nanos as i128)),
                            ("p90_nanos".to_string(), Value::Int(h.p90_nanos as i128)),
                            ("p99_nanos".to_string(), Value::Int(h.p99_nanos as i128)),
                        ]),
                    )
                })
                .collect(),
        );
        Value::Object(vec![
            ("counters".to_string(), int_map(&self.counters)),
            ("gauges".to_string(), int_map(&self.gauges)),
            ("histograms".to_string(), histograms),
        ])
    }

    /// The snapshot in Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        crate::prometheus::render(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_once_and_accumulate() {
        let r = MetricsRegistry::default();
        r.counter("t.a").add(3);
        r.counter("t.a").inc();
        r.counter("t.b").inc();
        let snap = r.snapshot();
        assert_eq!(snap.counters["t.a"], 4);
        assert_eq!(snap.counters["t.b"], 1);
    }

    #[test]
    fn histogram_quantiles_track_bucket_bounds() {
        let h = Histogram::default();
        for _ in 0..99 {
            h.observe(1_000); // first bucket (<= 1024 ns)
        }
        h.observe(1 << 20); // ~1 ms outlier
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.p50_nanos, 1024);
        assert_eq!(snap.p90_nanos, 1024);
        assert_eq!(snap.p99_nanos, 1024);
        let h2 = Histogram::default();
        for _ in 0..10 {
            h2.observe(1 << 20);
        }
        assert_eq!(h2.snapshot().p99_nanos, 1 << 20);
    }

    #[test]
    fn overflow_observations_land_in_the_last_bucket() {
        let h = Histogram::default();
        h.observe(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        assert_eq!(*snap.buckets.last().unwrap(), 1);
    }

    #[test]
    fn snapshot_json_is_name_sorted() {
        let r = MetricsRegistry::default();
        r.counter("z.last").inc();
        r.counter("a.first").inc();
        let json = serde_json::to_string(&r.snapshot().to_json()).unwrap();
        assert!(json.find("a.first").unwrap() < json.find("z.last").unwrap());
    }

    #[test]
    fn merged_gauges_do_not_touch_global_state() {
        let r = MetricsRegistry::default();
        let mut snap = r.snapshot();
        snap.set_gauge("cache.crit.hits", 7);
        assert_eq!(snap.gauges["cache.crit.hits"], 7);
        assert!(r.snapshot().gauges.is_empty());
    }
}
