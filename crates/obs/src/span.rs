//! RAII stage spans and the per-request trace.
//!
//! Tracing is gated by one process-global flag: when it is off,
//! [`Span::enter`] returns an inert guard without reading the clock, so
//! instrumentation points cost a single relaxed atomic load. When it is
//! on, each span records its elapsed monotonic time into the global
//! histogram named after its stage, and — if the current thread has a
//! [`TraceGuard`] installed — into the request's stage breakdown.

use crate::metrics::{registry, Histogram};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

static TRACING: AtomicBool = AtomicBool::new(false);
static NOTE_CAPTURE: AtomicBool = AtomicBool::new(false);

/// Turns span tracing on or off process-wide. Off by default; flipping it
/// never changes any response byte — it only starts/stops timing capture.
pub fn set_tracing(enabled: bool) {
    TRACING.store(enabled, Ordering::Relaxed);
}

/// Whether span tracing is currently enabled.
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Turns note capture on or off process-wide. Notes (request op, tenant,
/// canonical forms) only feed the slow-query log, and rendering them costs
/// real time per request — so instrumentation points that build note
/// values should check [`note_capture_enabled`] first. Off by default;
/// only meaningful while tracing is also on.
pub fn set_note_capture(enabled: bool) {
    NOTE_CAPTURE.store(enabled, Ordering::Relaxed);
}

/// Whether instrumentation points should build and attach note values.
pub fn note_capture_enabled() -> bool {
    NOTE_CAPTURE.load(Ordering::Relaxed)
}

#[derive(Debug, Default)]
struct TraceData {
    stages: Vec<(&'static str, u64)>,
    notes: Vec<(&'static str, String)>,
}

thread_local! {
    static TRACE: RefCell<Option<TraceData>> = const { RefCell::new(None) };
    /// Stage-name-pointer → histogram, resolved once per thread. Span
    /// drops are on the hot path of every traced request; this skips the
    /// registry's lock and name lookup after the first span per stage.
    static STAGE_HISTOGRAMS: RefCell<Vec<(usize, &'static Histogram)>> =
        const { RefCell::new(Vec::new()) };
}

/// The histogram for `stage`, via the per-thread pointer-keyed cache.
/// Stage names are `&'static str` literals, so the pointer identifies the
/// callsite; two literals with equal text still resolve to one histogram
/// because the registry interns by name.
fn stage_histogram(stage: &'static str) -> &'static Histogram {
    STAGE_HISTOGRAMS.with(|cache| {
        let mut cache = cache.borrow_mut();
        let key = stage.as_ptr() as usize;
        match cache.iter().find(|(k, _)| *k == key) {
            Some((_, histogram)) => histogram,
            None => {
                let histogram = registry().histogram(stage);
                cache.push((key, histogram));
                histogram
            }
        }
    })
}

/// An RAII stage timer. The stage name doubles as the histogram name
/// (e.g. `Span::enter("cq.parse")` feeds the `cq.parse` histogram).
#[derive(Debug)]
pub struct Span {
    live: Option<(&'static str, Instant)>,
}

impl Span {
    /// Starts timing `stage` if tracing is enabled; otherwise returns an
    /// inert guard without touching the clock.
    #[inline]
    pub fn enter(stage: &'static str) -> Span {
        if !tracing_enabled() {
            return Span { live: None };
        }
        Span {
            live: Some((stage, Instant::now())),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((stage, start)) = self.live.take() {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            stage_histogram(stage).observe(nanos);
            TRACE.with(|t| {
                if let Some(data) = t.borrow_mut().as_mut() {
                    data.stages.push((stage, nanos));
                }
            });
        }
    }
}

/// Attaches a string annotation (e.g. a request's canonical form) to the
/// current thread's request trace, if one is active. No-op otherwise.
pub fn annotate(key: &'static str, value: impl Into<String>) {
    TRACE.with(|t| {
        if let Some(data) = t.borrow_mut().as_mut() {
            data.notes.push((key, value.into()));
        }
    });
}

/// The per-request stage breakdown a [`TraceGuard`] collected.
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    /// `(stage, total nanos)` aggregated per stage, ordered by first
    /// completion of each stage on the request thread.
    pub stages: Vec<(String, u64)>,
    /// `(key, value)` annotations in the order they were attached.
    pub notes: Vec<(String, String)>,
}

impl TraceSummary {
    /// The total nanos recorded for `stage`, if any span closed under it.
    pub fn stage_nanos(&self, stage: &str) -> Option<u64> {
        self.stages
            .iter()
            .find(|(s, _)| s == stage)
            .map(|(_, n)| *n)
    }
}

/// Installs a per-request trace on the current thread. Spans closed while
/// the guard is live are collected; [`TraceGuard::finish`] returns the
/// summary. Dropping the guard without finishing discards the trace.
#[must_use = "finish() returns the collected trace"]
#[derive(Debug)]
pub struct TraceGuard {
    active: bool,
}

/// Starts a per-request trace if tracing is enabled (inert otherwise, so
/// the disabled path allocates nothing).
pub fn begin_request_trace() -> TraceGuard {
    if !tracing_enabled() {
        return TraceGuard { active: false };
    }
    TRACE.with(|t| *t.borrow_mut() = Some(TraceData::default()));
    TraceGuard { active: true }
}

impl TraceGuard {
    /// Ends the trace and returns its summary (`None` when tracing was
    /// disabled at [`begin_request_trace`] time). Repeated stages are
    /// aggregated by summing their nanos.
    pub fn finish(mut self) -> Option<TraceSummary> {
        if !self.active {
            return None;
        }
        self.active = false;
        let data = TRACE.with(|t| t.borrow_mut().take())?;
        let mut summary = TraceSummary::default();
        for (stage, nanos) in data.stages {
            match summary.stages.iter_mut().find(|(s, _)| s == stage) {
                Some((_, total)) => *total += nanos,
                None => summary.stages.push((stage.to_string(), nanos)),
            }
        }
        summary.notes = data
            .notes
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        Some(summary)
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if self.active {
            TRACE.with(|t| *t.borrow_mut() = None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Tracing is process-global, so tests that flip it serialize.
    static FLAG: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_spans_are_inert() {
        let _flag = FLAG.lock().unwrap();
        set_tracing(false);
        let before = registry().histogram("test.inert").count();
        drop(Span::enter("test.inert"));
        assert_eq!(registry().histogram("test.inert").count(), before);
        assert!(begin_request_trace().finish().is_none());
    }

    #[test]
    fn enabled_spans_feed_histograms_and_the_request_trace() {
        let _flag = FLAG.lock().unwrap();
        set_tracing(true);
        let guard = begin_request_trace();
        drop(Span::enter("test.stage_a"));
        drop(Span::enter("test.stage_a"));
        drop(Span::enter("test.stage_b"));
        annotate("canonical", "form-bytes");
        let summary = guard.finish().expect("tracing is on");
        set_tracing(false);
        assert_eq!(summary.stages.len(), 2, "repeated stages aggregate");
        assert!(summary.stage_nanos("test.stage_a").is_some());
        assert_eq!(
            summary.notes,
            vec![("canonical".to_string(), "form-bytes".to_string())]
        );
        assert!(registry().histogram("test.stage_a").count() >= 2);
    }

    #[test]
    fn dropped_guards_clear_the_thread_state() {
        let _flag = FLAG.lock().unwrap();
        set_tracing(true);
        drop(begin_request_trace());
        drop(Span::enter("test.orphan"));
        let guard = begin_request_trace();
        let summary = guard.finish().expect("tracing is on");
        set_tracing(false);
        assert!(
            summary.stage_nanos("test.orphan").is_none(),
            "spans outside a guard never leak into the next request"
        );
    }
}
