//! # qvsec-obs — the observability plane
//!
//! Every layer of the workspace (cq parsing, the crit kernel, the
//! probabilistic kernel's compile/exact/Monte-Carlo stages, the LRU memo
//! caches, the store journal, the serve request loop) reports into one
//! process-global [`MetricsRegistry`] through two primitives:
//!
//! * **Counters** — always-on relaxed atomics, bumped unconditionally.
//!   A counter bump is one atomic add; the registry lookup behind it is
//!   one `RwLock` read + `BTreeMap` walk, cheap enough for per-request
//!   paths (hot sites may cache the returned `&'static Counter`).
//! * **Spans** — RAII stage timers ([`Span::enter`]) recording elapsed
//!   monotonic time into fixed-bucket latency [`Histogram`]s. Spans are
//!   **zero-cost when tracing is disabled**: [`Span::enter`] reads one
//!   atomic flag and never touches the clock unless [`set_tracing`] turned
//!   tracing on.
//!
//! On top of spans sits a per-request trace: a thread installs a
//! [`TraceGuard`] around one request, every span closed on that thread
//! while the guard is live is appended to the request's stage breakdown,
//! and [`TraceGuard::finish`] returns the [`TraceSummary`] (stage → nanos,
//! plus string annotations like the request's canonical form). Work the
//! engine fans out to rayon workers reports only into the global
//! histograms — the per-request breakdown covers the dispatching thread.
//!
//! **Determinism contract.** Nothing in this crate may change the bytes of
//! a server response: counters and histograms are side channels, spans are
//! timing-only, and the wall clock is never read outside a span. The serve
//! layer's opt-in `timing` envelope member is the one surface where trace
//! data enters a response, and it is stripped by every determinism diff.
//!
//! Snapshots ([`MetricsRegistry::snapshot`]) are rendered two ways:
//! [`MetricsSnapshot::to_json`] for the NDJSON `metrics` op and
//! [`MetricsSnapshot::to_prometheus`] for the `--metrics-addr` HTTP
//! endpoint's text exposition.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod metrics;
mod prometheus;
mod span;

pub use metrics::{
    counter, gauge, histogram, registry, Counter, Gauge, Histogram, HistogramSnapshot,
    MetricsRegistry, MetricsSnapshot,
};
pub use span::{
    annotate, begin_request_trace, note_capture_enabled, set_note_capture, set_tracing,
    tracing_enabled, Span, TraceGuard, TraceSummary,
};
