//! The serve-layer telemetry bridge.
//!
//! [`collect_metrics`] folds the workspace's legacy counter bags — the
//! server's connection counters, the registry's lifecycle accounting and
//! the engine's cache statistics — into one [`MetricsSnapshot`] alongside
//! the process-global counters and span histograms, under the same dotted
//! naming scheme (`serve.*`, `registry.*`, `cache.*`, `kernel.*`,
//! `store.*`). The bags are merged as gauges *into the snapshot copy*, so
//! collection never mutates global state and two back-to-back scrapes of a
//! quiesced server render identical text.
//!
//! [`serve_metrics_http`] exposes that snapshot in Prometheus text
//! exposition format over a minimal HTTP/1.1 listener, for `--metrics-addr`.

use crate::registry::SessionRegistry;
use crate::server::ServerCounters;
use qvsec_obs::MetricsSnapshot;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::thread;

/// One unified snapshot: the global obs registry (counters + span
/// histograms) plus every legacy counter bag merged in as gauges.
pub fn collect_metrics(
    registry: &SessionRegistry,
    counters: Option<&ServerCounters>,
) -> MetricsSnapshot {
    let mut snap = qvsec_obs::registry().snapshot();

    let stats = registry.stats();
    snap.set_gauge("registry.tenants", stats.tenants.len() as u64);
    snap.set_gauge("registry.shards", stats.shard_count as u64);
    snap.set_gauge("registry.requests_served", stats.requests_served);
    snap.set_gauge("registry.sessions_expired", stats.sessions_expired);
    snap.set_gauge("store.journal.records", stats.journal_records);
    snap.set_gauge("store.journal.bytes", stats.journal_bytes);

    let cache = &stats.engine_cache;
    snap.set_gauge("cache.crit.hits", cache.crit_cache_hits);
    snap.set_gauge("cache.crit.misses", cache.crit_cache_misses);
    snap.set_gauge("cache.space.hits", cache.space_cache_hits);
    snap.set_gauge("cache.space.misses", cache.space_cache_misses);
    snap.set_gauge("cache.class.reused", cache.class_verdicts_reused);
    snap.set_gauge("cache.compile.hits", cache.compile_cache_hits);
    snap.set_gauge("cache.evictions", cache.evictions);
    snap.set_gauge("cache.evicted_bytes", cache.evicted_bytes);
    snap.set_gauge("cache.resident_bytes", cache.resident_bytes);
    snap.set_gauge("kernel.queries_compiled", cache.queries_compiled);
    snap.set_gauge("kernel.mc.samples_drawn", cache.mc_samples_drawn);
    snap.set_gauge("kernel.mc.samples_reused", cache.mc_samples_reused);
    snap.set_gauge("kernel.pool.columns_built", cache.pool_columns_built);
    snap.set_gauge("kernel.pool.column_hits", cache.pool_column_hits);
    snap.set_gauge("kernel.audit.hits", cache.kernel_audit_hits);

    if let Some(counters) = counters {
        let s = counters.snapshot();
        snap.set_gauge("serve.connections.accepted", s.accepted);
        snap.set_gauge("serve.connections.rejected_busy", s.rejected_busy);
        snap.set_gauge("serve.connections.active", s.active_connections);
        snap.set_gauge("serve.connections.dropped_idle", s.dropped_idle);
        snap.set_gauge(
            "serve.connections.closed_request_limit",
            s.closed_request_limit,
        );
        snap.set_gauge("serve.connections.closed_byte_limit", s.closed_byte_limit);
        snap.set_gauge("serve.requests_pipelined", s.requests_pipelined);
        snap.set_gauge("serve.responses_written", s.responses_written);
        snap.set_gauge("serve.queue_depth", s.queue_depth);
        snap.set_gauge("serve.inflight_peak", s.inflight_peak);
    }

    snap
}

/// Answers one HTTP exchange on `stream`: any well-formed GET gets a
/// `200 text/plain` Prometheus exposition; anything else gets a 400/405.
fn answer_scrape(
    stream: TcpStream,
    registry: &SessionRegistry,
    counters: &ServerCounters,
) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers so well-behaved clients see a clean close.
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header == "\r\n" || header == "\n" {
            break;
        }
    }
    let mut stream = reader.into_inner();
    let (status, body) = match request_line.split_whitespace().next() {
        Some("GET") => (
            "200 OK",
            collect_metrics(registry, Some(counters)).to_prometheus(),
        ),
        Some(_) => ("405 Method Not Allowed", String::from("GET only\n")),
        None => ("400 Bad Request", String::from("empty request\n")),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Binds `addr` and serves Prometheus scrapes on a detached thread for the
/// life of the process. Returns the bound address (so `:0` works in tests).
///
/// The scrape plane is deliberately independent of the NDJSON server: it
/// holds only `Arc`s, never touches tenant state, and cannot perturb any
/// response byte.
pub fn serve_metrics_http(
    addr: impl ToSocketAddrs,
    registry: Arc<SessionRegistry>,
    counters: Arc<ServerCounters>,
) -> std::io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    thread::Builder::new()
        .name("qvsec-metrics-http".to_string())
        .spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { continue };
                // One scrape at a time: scrapes are tiny and serializing
                // them keeps the plane at a single extra thread.
                let _ = answer_scrape(stream, &registry, &counters);
            }
        })?;
    Ok(bound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvsec::engine::AuditEngine;
    use qvsec_data::{Domain, Schema};
    use std::io::Read;

    fn sample_registry() -> SessionRegistry {
        let mut schema = Schema::new();
        schema.add_relation("Employee", &["name", "department", "phone"]);
        let engine = Arc::new(AuditEngine::builder(schema, Domain::new()).build());
        SessionRegistry::new(engine)
    }

    #[test]
    fn collect_merges_legacy_bags_as_gauges() {
        let registry = sample_registry();
        let snap = collect_metrics(&registry, None);
        assert_eq!(snap.gauges["registry.tenants"], 0);
        assert!(snap.gauges.contains_key("cache.crit.hits"));
        assert!(snap.gauges.contains_key("kernel.mc.samples_drawn"));
        assert!(
            !snap.gauges.contains_key("serve.requests_pipelined"),
            "server gauges only appear when counters are supplied"
        );
    }

    #[test]
    fn http_endpoint_serves_prometheus_text() {
        let registry = Arc::new(sample_registry());
        let counters = Arc::new(ServerCounters::default());
        let addr = serve_metrics_http("127.0.0.1:0", registry, counters).unwrap();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut body = String::new();
        stream.read_to_string(&mut body).unwrap();
        assert!(body.starts_with("HTTP/1.1 200 OK"));
        assert!(body.contains("text/plain"));
        assert!(body.contains("qvsec_registry_tenants 0"));
    }

    #[test]
    fn non_get_requests_are_refused() {
        let registry = Arc::new(sample_registry());
        let counters = Arc::new(ServerCounters::default());
        let addr = serve_metrics_http("127.0.0.1:0", registry, counters).unwrap();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut body = String::new();
        stream.read_to_string(&mut body).unwrap();
        assert!(body.starts_with("HTTP/1.1 405"));
    }
}
