//! The sharded, multi-tenant session registry.
//!
//! One [`SessionRegistry`] owns one shared [`AuditEngine`] and maps tenant
//! ids to live [`AuditSession`]s. The map is split into shards selected by
//! a deterministic hash of the tenant id; each shard is its own mutex, and
//! each tenant behind it is another — a shard lock is held only for the map
//! lookup (microseconds), the audit itself runs under the tenant's own
//! lock. Concurrent tenants therefore never serialize on each other, while
//! two racing requests for the *same* tenant are ordered by its lock (the
//! per-tenant report stream is a serial session history, exactly like the
//! single-node `AuditSession`).
//!
//! The registry also owns what the engine does not: per-tenant labelled
//! snapshots (the wire protocol's `snapshot`/`restore`), per-tenant request
//! and byte accounting, and idle expiry ([`SessionRegistry::sweep_idle`]) —
//! an expired tenant's next request simply reopens its session against the
//! still-warm engine caches. Eviction of engine artifacts is equally
//! transparent: a restored session re-derives anything evicted (see
//! `tests/eviction_equivalence.rs` in the workspace root).

use qvsec::engine::{AuditEngine, AuditOptions};
use qvsec::session::{AuditSession, SessionReport, SessionSnapshot};
use qvsec::QvsError;
use qvsec_cq::{canonical_form, ConjunctiveQuery};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Errors surfaced to serving clients.
#[derive(Debug)]
pub enum ServeError {
    /// A query failed to parse, or used constants the server's domain does
    /// not declare.
    Parse(String),
    /// An operation needed an existing session but the tenant has none.
    UnknownTenant(String),
    /// `publish`/`candidate` on a new tenant without a `secret`.
    SecretRequired(String),
    /// A `secret` that disagrees with the tenant's registered secret.
    SecretMismatch(String),
    /// `restore` of a label never snapshotted.
    UnknownSnapshot(String),
    /// The underlying audit failed.
    Audit(QvsError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Parse(m) => write!(f, "parse error: {m}"),
            ServeError::UnknownTenant(t) => {
                write!(
                    f,
                    "tenant `{t}` has no session (send a `secret` to open one)"
                )
            }
            ServeError::SecretRequired(t) => {
                write!(f, "tenant `{t}` is new: a `secret` query is required")
            }
            ServeError::SecretMismatch(t) => write!(
                f,
                "tenant `{t}` already audits a different secret (one secret per session)"
            ),
            ServeError::UnknownSnapshot(l) => write!(f, "no snapshot labelled `{l}`"),
            ServeError::Audit(e) => write!(f, "audit error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<QvsError> for ServeError {
    fn from(e: QvsError) -> Self {
        ServeError::Audit(e)
    }
}

/// Registry configuration.
#[derive(Debug, Clone, Copy)]
pub struct RegistryConfig {
    /// Number of shards the tenant map is split into (rounded up to a power
    /// of two, minimum 1).
    pub shards: usize,
    /// Sessions idle longer than this are removed by
    /// [`SessionRegistry::sweep_idle`] (and opportunistically on request
    /// dispatch). `None` keeps sessions forever.
    pub idle_timeout: Option<Duration>,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            shards: 16,
            idle_timeout: None,
        }
    }
}

/// One tenant's live state: the session plus registry-side bookkeeping.
#[derive(Debug)]
struct Tenant {
    session: AuditSession,
    snapshots: HashMap<String, SessionSnapshot>,
    last_used: Instant,
    requests: u64,
    /// Approximate bytes of published-view and snapshot state this tenant
    /// pins (serialized size; recomputed after each mutating operation).
    bytes: u64,
}

impl Tenant {
    /// Recomputes the byte estimate from scratch (used after `restore`,
    /// which rewinds the published prefix; the common ops account
    /// incrementally instead of re-serializing the whole prefix).
    fn recount_bytes(&mut self) {
        let published: usize = self
            .session
            .published()
            .iter()
            .map(|p| serde_json::to_string(p).map(|s| s.len()).unwrap_or(0))
            .sum();
        let snapshots: usize = self
            .snapshots
            .values()
            .map(|s| serde_json::to_string(s).map(|t| t.len()).unwrap_or(0))
            .sum();
        self.bytes = (published + snapshots) as u64;
    }
}

/// Serialized size of a value, as the registry's byte-accounting unit.
fn approx_bytes<T: serde::Serialize>(value: &T) -> u64 {
    serde_json::to_string(value).map(|s| s.len()).unwrap_or(0) as u64
}

type Shard = Mutex<HashMap<String, Arc<Mutex<Tenant>>>>;

/// An owned, `Send + Sync`, sharded registry of tenant sessions over one
/// shared engine. See the [module docs](self).
#[derive(Debug)]
pub struct SessionRegistry {
    engine: Arc<AuditEngine>,
    options: AuditOptions,
    shards: Box<[Shard]>,
    shard_mask: usize,
    idle_timeout: Option<Duration>,
    requests: AtomicU64,
    expired: AtomicU64,
}

// The registry is the shared state of the serving threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SessionRegistry>();
};

/// Deterministic FNV-1a over the tenant id (no per-process hash seeds, so a
/// request trace shards identically on every run).
fn shard_hash(tenant: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in tenant.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl SessionRegistry {
    /// A registry over `engine` with default configuration.
    pub fn new(engine: Arc<AuditEngine>) -> Self {
        Self::with_config(engine, RegistryConfig::default())
    }

    /// A registry over `engine`, sharded and expiring per `config`.
    pub fn with_config(engine: Arc<AuditEngine>, config: RegistryConfig) -> Self {
        let shards = config.shards.max(1).next_power_of_two();
        SessionRegistry {
            engine,
            options: AuditOptions::default(),
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            shard_mask: shards - 1,
            idle_timeout: config.idle_timeout,
            requests: AtomicU64::new(0),
            expired: AtomicU64::new(0),
        }
    }

    /// The shared engine every tenant audits against.
    pub fn engine(&self) -> &Arc<AuditEngine> {
        &self.engine
    }

    /// Number of shards the tenant map is split into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The configured idle timeout, if any (the server runs a background
    /// sweeper off this; in-dispatch sweeps only cover the shard a request
    /// hashes to).
    pub fn idle_timeout(&self) -> Option<Duration> {
        self.idle_timeout
    }

    /// Number of live tenant sessions.
    pub fn tenant_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").len())
            .sum()
    }

    /// Parses a runtime query against the engine's schema and domain,
    /// rejecting queries that mention constants the server never declared
    /// (the engine's domain is fixed at build time; silently growing a
    /// private copy would make verdicts depend on request order).
    pub fn parse(&self, text: &str) -> crate::Result<ConjunctiveQuery> {
        let mut domain = self.engine.domain().clone();
        let before = domain.len();
        let query = qvsec_cq::parse_query(text, self.engine.schema(), &mut domain)
            .map_err(|e| ServeError::Parse(format!("bad query `{text}`: {e}")))?;
        if domain.len() != before {
            return Err(ServeError::Parse(format!(
                "query `{text}` uses constants outside the server's declared domain"
            )));
        }
        Ok(query)
    }

    fn shard_of(&self, tenant: &str) -> &Shard {
        &self.shards[(shard_hash(tenant) as usize) & self.shard_mask]
    }

    /// Fetches the tenant's entry, opening a session when `secret` is given
    /// and none exists. Sweeps the shard's idle entries on the way when an
    /// idle timeout is configured — including the requesting tenant itself:
    /// a session idle past the timeout is expired and the request reopens a
    /// fresh one (secret required), exactly as the protocol documents.
    fn tenant_entry(
        &self,
        tenant: &str,
        secret: Option<&ConjunctiveQuery>,
    ) -> crate::Result<Arc<Mutex<Tenant>>> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let shard = self.shard_of(tenant);
        let mut map = shard.lock().expect("shard poisoned");
        if let Some(max_idle) = self.idle_timeout {
            let now = Instant::now();
            let before = map.len();
            map.retain(|_, entry| {
                entry
                    .try_lock()
                    .map(|t| now.duration_since(t.last_used) <= max_idle)
                    .unwrap_or(true)
            });
            self.expired
                .fetch_add((before - map.len()) as u64, Ordering::Relaxed);
        }
        if let Some(entry) = map.get(tenant) {
            if let Some(secret) = secret {
                let entry = Arc::clone(entry);
                drop(map);
                let t = entry.lock().expect("tenant poisoned");
                if canonical_form(t.session.secret()) != canonical_form(secret) {
                    return Err(ServeError::SecretMismatch(tenant.to_string()));
                }
                drop(t);
                return Ok(entry);
            }
            return Ok(Arc::clone(entry));
        }
        let Some(secret) = secret else {
            return Err(ServeError::UnknownTenant(tenant.to_string()));
        };
        let session = AuditSession::new(
            Arc::clone(&self.engine),
            secret.clone(),
            self.options.clone(),
        )
        .named(format!("tenant:{tenant}"));
        let entry = Arc::new(Mutex::new(Tenant {
            session,
            snapshots: HashMap::new(),
            last_used: Instant::now(),
            requests: 0,
            bytes: 0,
        }));
        map.insert(tenant.to_string(), Arc::clone(&entry));
        Ok(entry)
    }

    fn with_tenant<R>(
        &self,
        tenant: &str,
        secret: Option<&ConjunctiveQuery>,
        f: impl FnOnce(&mut Tenant) -> crate::Result<R>,
    ) -> crate::Result<R> {
        let entry = self.tenant_entry(tenant, secret)?;
        let mut t = entry.lock().expect("tenant poisoned");
        let out = f(&mut t)?;
        t.last_used = Instant::now();
        t.requests += 1;
        Ok(out)
    }

    /// Opens (or re-validates) `tenant`'s session for `secret` without
    /// auditing anything.
    pub fn open(&self, tenant: &str, secret: &ConjunctiveQuery) -> crate::Result<usize> {
        self.with_tenant(tenant, Some(secret), |t| Ok(t.session.views_published()))
    }

    /// Publishes `view` for `tenant`: audits the secret against everything
    /// the tenant already published plus `view`, commits it, and returns
    /// the step report. A `secret` opens the session on first contact.
    pub fn publish(
        &self,
        tenant: &str,
        secret: Option<&ConjunctiveQuery>,
        name: Option<String>,
        view: ConjunctiveQuery,
    ) -> crate::Result<SessionReport> {
        self.with_tenant(tenant, secret, |t| {
            let name = name.unwrap_or_else(|| view.name.clone());
            let report = t.session.publish_named(name, view)?;
            let committed = t.session.published().last().expect("just published");
            t.bytes += approx_bytes(committed);
            Ok(report)
        })
    }

    /// The what-if audit: [`SessionRegistry::publish`] without committing.
    pub fn audit_candidate(
        &self,
        tenant: &str,
        secret: Option<&ConjunctiveQuery>,
        view: &ConjunctiveQuery,
    ) -> crate::Result<SessionReport> {
        self.with_tenant(tenant, secret, |t| Ok(t.session.audit_candidate(view)?))
    }

    /// Saves `tenant`'s session state under `label`; returns the number of
    /// views in the captured state.
    pub fn snapshot(&self, tenant: &str, label: &str) -> crate::Result<usize> {
        self.with_tenant(tenant, None, |t| {
            let snap = t.session.snapshot();
            let views = snap.views_published();
            t.bytes += approx_bytes(&snap);
            if let Some(replaced) = t.snapshots.insert(label.to_string(), snap) {
                t.bytes = t.bytes.saturating_sub(approx_bytes(&replaced));
            }
            Ok(views)
        })
    }

    /// Rewinds `tenant`'s session to the labelled snapshot; returns the
    /// restored view count. Engine artifacts evicted since the snapshot are
    /// re-derived transparently on the next audit.
    pub fn restore(&self, tenant: &str, label: &str) -> crate::Result<usize> {
        self.with_tenant(tenant, None, |t| {
            let snap = t
                .snapshots
                .get(label)
                .ok_or_else(|| ServeError::UnknownSnapshot(label.to_string()))?
                .clone();
            t.session.restore(&snap);
            t.recount_bytes();
            Ok(t.session.views_published())
        })
    }

    /// Removes sessions idle longer than `max_idle`; returns how many were
    /// expired. A tenant mid-request (its lock held) is never expired.
    pub fn sweep_idle(&self, max_idle: Duration) -> usize {
        let now = Instant::now();
        let mut removed = 0;
        for shard in self.shards.iter() {
            let mut map = shard.lock().expect("shard poisoned");
            let before = map.len();
            map.retain(|_, entry| {
                entry
                    .try_lock()
                    .map(|t| now.duration_since(t.last_used) <= max_idle)
                    .unwrap_or(true)
            });
            removed += before - map.len();
        }
        self.expired.fetch_add(removed as u64, Ordering::Relaxed);
        removed
    }

    /// A deterministic snapshot of the registry: per-tenant accounting
    /// (sorted by tenant id) next to the engine's extended cache counters.
    pub fn stats(&self) -> RegistryStats {
        let mut tenants = Vec::new();
        for shard in self.shards.iter() {
            let map = shard.lock().expect("shard poisoned");
            for (id, entry) in map.iter() {
                let t = entry.lock().expect("tenant poisoned");
                tenants.push(TenantStats {
                    tenant: id.clone(),
                    views_published: t.session.views_published(),
                    snapshots_held: t.snapshots.len(),
                    requests: t.requests,
                    approx_bytes: t.bytes,
                    cache: *t.session.cumulative_cache(),
                });
            }
        }
        tenants.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        RegistryStats {
            tenants,
            shard_count: self.shards.len(),
            requests_served: self.requests.load(Ordering::Relaxed),
            sessions_expired: self.expired.load(Ordering::Relaxed),
            engine_cache: self.engine.cache_stats(),
        }
    }
}

/// Per-tenant accounting surfaced by [`SessionRegistry::stats`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TenantStats {
    /// The tenant id.
    pub tenant: String,
    /// Views the tenant has committed.
    pub views_published: usize,
    /// Labelled snapshots the tenant holds.
    pub snapshots_held: usize,
    /// Requests the tenant has issued (audits, snapshots, restores).
    pub requests: u64,
    /// Approximate bytes of published-view and snapshot state the tenant
    /// pins in the registry.
    pub approx_bytes: u64,
    /// The tenant's session-cumulative cache-reuse counters.
    pub cache: qvsec::engine::CacheStatsSnapshot,
}

/// A registry-wide accounting snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegistryStats {
    /// Per-tenant accounting, sorted by tenant id.
    pub tenants: Vec<TenantStats>,
    /// Number of shards the tenant map is split into.
    pub shard_count: usize,
    /// Requests dispatched over the registry's lifetime.
    pub requests_served: u64,
    /// Sessions removed by idle expiry.
    pub sessions_expired: u64,
    /// The shared engine's extended cache counters (hits, misses,
    /// evictions, evicted and resident bytes).
    pub engine_cache: qvsec::engine::CacheStatsSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvsec_data::{Domain, Schema};

    fn registry() -> SessionRegistry {
        let mut schema = Schema::new();
        schema.add_relation("Employee", &["name", "department", "phone"]);
        let mut domain = Domain::new();
        // Declare the constants runtime queries may use.
        domain.add("Mgmt");
        let engine = Arc::new(AuditEngine::builder(schema, domain).build());
        SessionRegistry::new(engine)
    }

    #[test]
    fn publish_routes_through_per_tenant_sessions() {
        let reg = registry();
        let secret = reg.parse("S(n, p) :- Employee(n, d, p)").unwrap();
        let bob = reg.parse("VBob(n, d) :- Employee(n, d, p)").unwrap();
        let carol = reg.parse("VCarol(d, p) :- Employee(n, d, p)").unwrap();

        let r1 = reg
            .publish("alice", Some(&secret), Some("bob".into()), bob.clone())
            .unwrap();
        assert_eq!(r1.step, 1);
        assert_eq!(r1.report.secure, Some(false));
        // A second tenant opens its own session; the engine's caches are
        // already warm from the first.
        let r2 = reg
            .publish("zoe", Some(&secret), Some("bob".into()), bob)
            .unwrap();
        assert_eq!(r2.step, 1);
        assert!(
            r2.cache.crit_cache_hits > 0,
            "shared artifacts: {:?}",
            r2.cache
        );
        // Established tenants need no secret.
        let r3 = reg.publish("alice", None, None, carol).unwrap();
        assert_eq!(r3.step, 2);
        assert_eq!(reg.tenant_count(), 2);

        let stats = reg.stats();
        assert_eq!(stats.tenants.len(), 2);
        assert_eq!(stats.tenants[0].tenant, "alice");
        assert_eq!(stats.tenants[0].views_published, 2);
        assert!(stats.tenants[0].approx_bytes > 0);
        assert_eq!(stats.requests_served, 3);
    }

    #[test]
    fn unknown_tenants_and_mismatched_secrets_are_rejected() {
        let reg = registry();
        let secret = reg.parse("S(n, p) :- Employee(n, d, p)").unwrap();
        let other = reg.parse("S2(d) :- Employee(n, d, p)").unwrap();
        let view = reg.parse("V(n, d) :- Employee(n, d, p)").unwrap();

        assert!(matches!(
            reg.audit_candidate("ghost", None, &view),
            Err(ServeError::UnknownTenant(_))
        ));
        reg.open("alice", &secret).unwrap();
        assert!(matches!(
            reg.publish("alice", Some(&other), None, view.clone()),
            Err(ServeError::SecretMismatch(_))
        ));
        // Re-presenting the same secret (α-renamed) is fine.
        let renamed = reg.parse("S(a, b) :- Employee(a, c, b)").unwrap();
        assert!(reg.publish("alice", Some(&renamed), None, view).is_ok());
    }

    #[test]
    fn undeclared_constants_are_rejected_at_parse() {
        let reg = registry();
        assert!(reg.parse("V(n) :- Employee(n, 'Mgmt', p)").is_ok());
        let err = reg
            .parse("V(n) :- Employee(n, 'Skunkworks', p)")
            .unwrap_err();
        assert!(matches!(err, ServeError::Parse(_)));
        assert!(err.to_string().contains("declared domain"));
    }

    #[test]
    fn snapshot_restore_round_trips_through_the_registry() {
        let reg = registry();
        let secret = reg.parse("S(n, p) :- Employee(n, d, p)").unwrap();
        let v1 = reg.parse("V1(n, d) :- Employee(n, d, p)").unwrap();
        let v2 = reg.parse("V2(d, p) :- Employee(n, d, p)").unwrap();
        reg.publish("t", Some(&secret), None, v1).unwrap();
        assert_eq!(reg.snapshot("t", "base").unwrap(), 1);
        reg.publish("t", None, None, v2.clone()).unwrap();
        assert_eq!(reg.restore("t", "base").unwrap(), 1);
        assert!(matches!(
            reg.restore("t", "nope"),
            Err(ServeError::UnknownSnapshot(_))
        ));
        // Replaying after the restore reaches the same cumulative verdict.
        let replay = reg.publish("t", None, None, v2).unwrap();
        assert_eq!(replay.step, 2);
        assert!(replay.cache.any_reuse(), "replay is served warm");
    }

    #[test]
    fn idle_sessions_expire_and_reopen_transparently() {
        let reg = registry();
        let secret = reg.parse("S(n, p) :- Employee(n, d, p)").unwrap();
        let view = reg.parse("V(n, d) :- Employee(n, d, p)").unwrap();
        let first = reg.publish("t", Some(&secret), None, view.clone()).unwrap();
        assert_eq!(reg.tenant_count(), 1);
        assert_eq!(reg.sweep_idle(Duration::ZERO), 1);
        assert_eq!(reg.tenant_count(), 0);
        assert_eq!(reg.stats().sessions_expired, 1);
        // The tenant's next request reopens at step 1, warm.
        let again = reg.publish("t", Some(&secret), None, view).unwrap();
        assert_eq!(again.step, 1);
        assert_eq!(
            serde_json::to_string(&again.report).unwrap(),
            serde_json::to_string(&first.report).unwrap(),
            "reopened session reproduces the same verdict"
        );
        assert!(again.cache.any_reuse(), "engine caches survived expiry");
    }

    #[test]
    fn a_stale_requesting_tenant_is_itself_expired() {
        // The in-dispatch sweep must not spare the requester: a session
        // idle past the timeout is gone, and the next request either
        // reopens fresh (secret present) or is told to.
        let mut schema = Schema::new();
        schema.add_relation("Employee", &["name", "department", "phone"]);
        let engine = Arc::new(AuditEngine::builder(schema, Domain::new()).build());
        let reg = SessionRegistry::with_config(
            engine,
            RegistryConfig {
                shards: 4,
                idle_timeout: Some(Duration::ZERO),
            },
        );
        let secret = reg.parse("S(n, p) :- Employee(n, d, p)").unwrap();
        let v1 = reg.parse("V1(n, d) :- Employee(n, d, p)").unwrap();
        let v2 = reg.parse("V2(d, p) :- Employee(n, d, p)").unwrap();
        let first = reg.publish("t", Some(&secret), None, v1).unwrap();
        assert_eq!(first.step, 1);
        // Without a secret the expired tenant is reported as unknown ...
        assert!(matches!(
            reg.publish("t", None, None, v2.clone()),
            Err(ServeError::UnknownTenant(_))
        ));
        // ... and with one, the session reopens at step 1, not step 2.
        let reopened = reg.publish("t", Some(&secret), None, v2).unwrap();
        assert_eq!(reopened.step, 1, "stale session must not survive");
        assert!(reg.stats().sessions_expired >= 1);
    }

    #[test]
    fn tenants_hash_to_stable_shards() {
        let reg = registry();
        assert_eq!(reg.shard_count(), 16);
        let a = shard_hash("alice");
        assert_eq!(a, shard_hash("alice"), "hash is deterministic");
        assert_ne!(a, shard_hash("alicf"));
    }
}
