//! The sharded, multi-tenant session registry.
//!
//! One [`SessionRegistry`] owns one shared [`AuditEngine`] and maps tenant
//! ids to live [`AuditSession`]s. The map is split into shards selected by
//! a deterministic hash of the tenant id; each shard is its own mutex, and
//! each tenant behind it is another — a shard lock is held only for the map
//! lookup (microseconds), the audit itself runs under the tenant's own
//! lock. Concurrent tenants therefore never serialize on each other, while
//! two racing requests for the *same* tenant are ordered by its lock (the
//! per-tenant report stream is a serial session history, exactly like the
//! single-node `AuditSession`).
//!
//! The registry also owns what the engine does not: per-tenant labelled
//! snapshots (the wire protocol's `snapshot`/`restore`), per-tenant request
//! and byte accounting, and idle expiry ([`SessionRegistry::sweep_idle`]) —
//! an expired tenant's next request simply reopens its session against the
//! still-warm engine caches. Eviction of engine artifacts is equally
//! transparent: a restored session re-derives anything evicted (see
//! `tests/eviction_equivalence.rs` in the workspace root).

use crate::journal::{decode_event, Journal, JournalEvent, NS_JOURNAL};
use qvsec::engine::{AuditEngine, AuditOptions};
use qvsec::session::{AuditSession, SessionReport, SessionSnapshot};
use qvsec::QvsError;
use qvsec_cq::{canonical_form, ConjunctiveQuery};
use qvsec_store::StoreBackend;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Errors surfaced to serving clients.
#[derive(Debug)]
pub enum ServeError {
    /// A query failed to parse, a required field was missing, or the
    /// request line was not a request at all.
    Parse(String),
    /// A SQL statement fell outside the safe subset or failed to compile;
    /// carries the structured reason and source span so the wire layer can
    /// attach a machine-readable `detail` object.
    Sql(qvsec_sql::SqlError),
    /// A query mentioned constants the server's build-time domain never
    /// declared (kept distinct from [`ServeError::Parse`] so clients can
    /// tell a typo from a policy rejection).
    UndeclaredConstant(String),
    /// An operation needed an existing session but the tenant has none.
    UnknownTenant(String),
    /// `publish`/`candidate` on a new tenant without a `secret`.
    SecretRequired(String),
    /// A `secret` that disagrees with the tenant's registered secret.
    SecretMismatch(String),
    /// `restore` of a label never snapshotted.
    UnknownSnapshot(String),
    /// The underlying audit failed.
    Audit(QvsError),
    /// The durable store failed (journal append/replay, demoted-tenant
    /// revival). Cache-artifact persistence never raises this — losing an
    /// artifact only costs a recomputation.
    Store(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Parse(m) => write!(f, "parse error: {m}"),
            ServeError::Sql(e) => write!(f, "sql rejected: {e}"),
            ServeError::UndeclaredConstant(q) => write!(
                f,
                "query `{q}` uses constants outside the server's declared domain"
            ),
            ServeError::UnknownTenant(t) => {
                write!(
                    f,
                    "tenant `{t}` has no session (send a `secret` to open one)"
                )
            }
            ServeError::SecretRequired(t) => {
                write!(f, "tenant `{t}` is new: a `secret` query is required")
            }
            ServeError::SecretMismatch(t) => write!(
                f,
                "tenant `{t}` already audits a different secret (one secret per session)"
            ),
            ServeError::UnknownSnapshot(l) => write!(f, "no snapshot labelled `{l}`"),
            ServeError::Audit(e) => write!(f, "audit error: {e}"),
            ServeError::Store(m) => write!(f, "store error: {m}"),
        }
    }
}

impl ServeError {
    /// The wire-protocol error kind this error maps onto (the `kind` field
    /// of a structured error response — see [`crate::protocol::ErrorKind`]).
    pub fn kind(&self) -> crate::protocol::ErrorKind {
        use crate::protocol::ErrorKind;
        match self {
            ServeError::Parse(_) | ServeError::Sql(_) => ErrorKind::BadRequest,
            ServeError::UndeclaredConstant(_) => ErrorKind::UndeclaredConstant,
            // A missing session means the tenant was never opened *or* was
            // retired (idle-swept without a store); either way the client's
            // remedy is the same — re-open with the secret.
            ServeError::UnknownTenant(_) => ErrorKind::TenantRetired,
            ServeError::SecretRequired(_)
            | ServeError::SecretMismatch(_)
            | ServeError::UnknownSnapshot(_) => ErrorKind::BadRequest,
            ServeError::Audit(_) | ServeError::Store(_) => ErrorKind::Internal,
        }
    }
}

impl std::error::Error for ServeError {}

impl From<QvsError> for ServeError {
    fn from(e: QvsError) -> Self {
        ServeError::Audit(e)
    }
}

/// Registry configuration.
#[derive(Debug, Clone, Copy)]
pub struct RegistryConfig {
    /// Number of shards the tenant map is split into (rounded up to a power
    /// of two, minimum 1).
    pub shards: usize,
    /// Sessions idle longer than this are removed by
    /// [`SessionRegistry::sweep_idle`] (and opportunistically on request
    /// dispatch). `None` keeps sessions forever.
    pub idle_timeout: Option<Duration>,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            shards: 16,
            idle_timeout: None,
        }
    }
}

/// One tenant's live state: the session plus registry-side bookkeeping.
#[derive(Debug)]
struct Tenant {
    session: AuditSession,
    snapshots: HashMap<String, SessionSnapshot>,
    last_used: Instant,
    requests: u64,
    /// Approximate bytes of published-view and snapshot state this tenant
    /// pins (serialized size; recomputed after each mutating operation).
    bytes: u64,
    /// Set (under the tenant lock) when idle expiry demotes this tenant:
    /// its state has already moved to the journal and the entry left the
    /// shard map, so any request that raced past the map lookup must
    /// re-dispatch instead of mutating this zombie — a mutation here would
    /// be silently lost at the next revival.
    retired: bool,
}

impl Tenant {
    /// Recomputes the byte estimate from scratch (used after `restore`,
    /// which rewinds the published prefix; the common ops account
    /// incrementally instead of re-serializing the whole prefix).
    fn recount_bytes(&mut self) {
        let published: usize = self
            .session
            .published()
            .iter()
            .map(|p| serde_json::to_string(p).map(|s| s.len()).unwrap_or(0))
            .sum();
        let snapshots: usize = self
            .snapshots
            .values()
            .map(|s| serde_json::to_string(s).map(|t| t.len()).unwrap_or(0))
            .sum();
        self.bytes = (published + snapshots) as u64;
    }
}

/// Serialized size of a value, as the registry's byte-accounting unit.
fn approx_bytes<T: serde::Serialize>(value: &T) -> u64 {
    serde_json::to_string(value).map(|s| s.len()).unwrap_or(0) as u64
}

type Shard = Mutex<HashMap<String, Arc<Mutex<Tenant>>>>;

/// An owned, `Send + Sync`, sharded registry of tenant sessions over one
/// shared engine. See the [module docs](self).
#[derive(Debug)]
pub struct SessionRegistry {
    engine: Arc<AuditEngine>,
    options: AuditOptions,
    shards: Box<[Shard]>,
    shard_mask: usize,
    idle_timeout: Option<Duration>,
    requests: AtomicU64,
    expired: AtomicU64,
    /// The durable lifecycle journal ([`SessionRegistry::with_store`]);
    /// `None` keeps today's purely in-memory behaviour.
    journal: Option<Journal>,
    /// Tenants demoted to the store by idle expiry: tenant id → sequence
    /// number of the self-contained `expire` journal record. Only the
    /// pointer stays resident; the state lives in the store until the
    /// tenant's next request revives it.
    demoted: Mutex<HashMap<String, u64>>,
}

// The registry is the shared state of the serving threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SessionRegistry>();
};

/// Deterministic FNV-1a over the tenant id (no per-process hash seeds, so a
/// request trace shards identically on every run).
fn shard_hash(tenant: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in tenant.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl SessionRegistry {
    /// A registry over `engine` with default configuration.
    pub fn new(engine: Arc<AuditEngine>) -> Self {
        Self::with_config(engine, RegistryConfig::default())
    }

    /// A registry over `engine`, sharded and expiring per `config`.
    pub fn with_config(engine: Arc<AuditEngine>, config: RegistryConfig) -> Self {
        let shards = config.shards.max(1).next_power_of_two();
        SessionRegistry {
            engine,
            options: AuditOptions::default(),
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            shard_mask: shards - 1,
            idle_timeout: config.idle_timeout,
            requests: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            journal: None,
            demoted: Mutex::new(HashMap::new()),
        }
    }

    /// A durable registry: rehydrates the engine's artifact caches and
    /// every journaled tenant from `store`, then journals all further
    /// lifecycle events to it.
    ///
    /// Replay restores, per tenant, the state after its last completed
    /// request — session prefix, labelled snapshots, request count — plus
    /// the registry-wide counters and the engine's cache-statistics
    /// baseline, so a SIGKILLed process restarted over the same store
    /// answers the remainder of a request script byte-identically to a
    /// process that never died. The engine should have been built with the
    /// same store (see `AuditEngineBuilder::store`) so cache artifacts
    /// rehydrate alongside tenant state.
    pub fn with_store(
        engine: Arc<AuditEngine>,
        config: RegistryConfig,
        store: Arc<dyn StoreBackend>,
    ) -> crate::Result<Self> {
        engine.rehydrate().map_err(ServeError::Audit)?;
        let replayed = Journal::replay(&store)?;

        #[derive(Default)]
        struct ReplayTenant {
            secret: Option<ConjunctiveQuery>,
            state: Option<SessionSnapshot>,
            snapshots: HashMap<String, SessionSnapshot>,
            requests: u64,
        }
        let mut live: HashMap<String, ReplayTenant> = HashMap::new();
        let mut demoted: HashMap<String, u64> = HashMap::new();
        // Snapshot maps of demoted tenants, for seeding a revival that
        // happened later in the journal.
        let mut expired_snapshots: HashMap<String, HashMap<String, SessionSnapshot>> =
            HashMap::new();
        for (seq, event) in &replayed.events {
            if event.op == "expire" {
                live.remove(&event.tenant);
                demoted.insert(event.tenant.clone(), *seq);
                expired_snapshots.insert(
                    event.tenant.clone(),
                    event.snapshots.clone().unwrap_or_default(),
                );
                continue;
            }
            demoted.remove(&event.tenant);
            let entry = live
                .entry(event.tenant.clone())
                .or_insert_with(|| ReplayTenant {
                    // A tenant reappearing after an `expire` event revived from
                    // the demoted record; its labelled snapshots carry over.
                    snapshots: expired_snapshots.remove(&event.tenant).unwrap_or_default(),
                    ..ReplayTenant::default()
                });
            if event.op == "snapshot" {
                if let Some(label) = &event.snapshot_label {
                    entry.snapshots.insert(label.clone(), event.state.clone());
                }
            }
            entry.secret = Some(event.secret.clone());
            entry.state = Some(event.state.clone());
            entry.requests = event.tenant_requests;
        }

        let mut registry = Self::with_config(engine, config);
        for (id, rt) in live {
            let (Some(secret), Some(state)) = (rt.secret, rt.state) else {
                continue;
            };
            let tenant = registry.tenant_from_parts(&id, secret, &state, rt.snapshots, rt.requests);
            registry
                .shard_of(&id)
                .lock()
                .expect("shard poisoned")
                .insert(id, Arc::new(Mutex::new(tenant)));
        }
        if let Some((_, last)) = replayed.events.last() {
            registry
                .requests
                .store(last.registry_requests, Ordering::Relaxed);
            registry
                .expired
                .store(last.registry_expired, Ordering::Relaxed);
            registry.engine.set_stats_baseline(last.engine_cache);
        }
        registry.demoted = Mutex::new(demoted);
        registry.journal = Some(Journal::new(store, &replayed));
        Ok(registry)
    }

    /// Rebuilds one tenant from journaled (or demoted) parts: a fresh
    /// session restored to the recorded state, byte accounting recounted.
    fn tenant_from_parts(
        &self,
        tenant: &str,
        secret: ConjunctiveQuery,
        state: &SessionSnapshot,
        snapshots: HashMap<String, SessionSnapshot>,
        requests: u64,
    ) -> Tenant {
        let mut session = AuditSession::new(Arc::clone(&self.engine), secret, self.options.clone())
            .named(format!("tenant:{tenant}"));
        session.restore(state);
        let mut t = Tenant {
            session,
            snapshots,
            last_used: Instant::now(),
            requests,
            bytes: 0,
            retired: false,
        };
        t.recount_bytes();
        t
    }

    /// The shared engine every tenant audits against.
    pub fn engine(&self) -> &Arc<AuditEngine> {
        &self.engine
    }

    /// Number of shards the tenant map is split into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The configured idle timeout, if any (the server runs a background
    /// sweeper off this; in-dispatch sweeps only cover the shard a request
    /// hashes to).
    pub fn idle_timeout(&self) -> Option<Duration> {
        self.idle_timeout
    }

    /// Number of live tenant sessions.
    pub fn tenant_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").len())
            .sum()
    }

    /// Parses a runtime query against the engine's schema and domain,
    /// rejecting queries that mention constants the server never declared
    /// (the engine's domain is fixed at build time; silently growing a
    /// private copy would make verdicts depend on request order).
    pub fn parse(&self, text: &str) -> crate::Result<ConjunctiveQuery> {
        let mut domain = self.engine.domain().clone();
        let before = domain.len();
        let query = qvsec_cq::parse_query(text, self.engine.schema(), &mut domain)
            .map_err(|e| ServeError::Parse(format!("bad query `{text}`: {e}")))?;
        if domain.len() != before {
            return Err(ServeError::UndeclaredConstant(text.to_string()));
        }
        Ok(query)
    }

    /// Compiles a safe-SQL statement against the engine's schema, applying
    /// the same closed-domain policy as [`SessionRegistry::parse`]: a
    /// statement whose constants were never declared is rejected rather
    /// than silently growing a private domain copy. `IN`-lists expand to
    /// one query per choice.
    pub fn parse_sql(&self, text: &str, name: &str) -> crate::Result<Vec<ConjunctiveQuery>> {
        let mut domain = self.engine.domain().clone();
        let before = domain.len();
        let queries = qvsec_sql::compile_query(text, self.engine.schema(), &mut domain, name)
            .map_err(ServeError::Sql)?;
        if domain.len() != before {
            return Err(ServeError::UndeclaredConstant(text.to_string()));
        }
        Ok(queries)
    }

    /// Like [`SessionRegistry::parse_sql`] but for contexts needing exactly
    /// one conjunctive query (secrets, `publish`, `candidate`): a statement
    /// that expands through `IN`-lists is rejected with a structured
    /// `multiple_queries` reason.
    pub fn parse_sql_single(&self, text: &str, name: &str) -> crate::Result<ConjunctiveQuery> {
        let mut domain = self.engine.domain().clone();
        let before = domain.len();
        let query = qvsec_sql::compile_query_single(text, self.engine.schema(), &mut domain, name)
            .map_err(ServeError::Sql)?;
        if domain.len() != before {
            return Err(ServeError::UndeclaredConstant(text.to_string()));
        }
        Ok(query)
    }

    fn shard_of(&self, tenant: &str) -> &Shard {
        &self.shards[(shard_hash(tenant) as usize) & self.shard_mask]
    }

    /// Fetches the tenant's entry, opening a session when `secret` is given
    /// and none exists. Sweeps the shard's idle entries on the way when an
    /// idle timeout is configured — including the requesting tenant itself:
    /// a session idle past the timeout is expired and the request reopens a
    /// fresh one (secret required), exactly as the protocol documents.
    fn tenant_entry(
        &self,
        tenant: &str,
        secret: Option<&ConjunctiveQuery>,
    ) -> crate::Result<Arc<Mutex<Tenant>>> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let shard = self.shard_of(tenant);
        let mut map = shard.lock().expect("shard poisoned");
        if let Some(max_idle) = self.idle_timeout {
            self.sweep_shard(&mut map, Instant::now(), max_idle);
        }
        if let Some(entry) = map.get(tenant) {
            if let Some(secret) = secret {
                let entry = Arc::clone(entry);
                drop(map);
                let t = entry.lock().expect("tenant poisoned");
                if canonical_form(t.session.secret()) != canonical_form(secret) {
                    return Err(ServeError::SecretMismatch(tenant.to_string()));
                }
                drop(t);
                return Ok(entry);
            }
            return Ok(Arc::clone(entry));
        }
        // A demoted tenant revives transparently from its `expire` record —
        // no secret required, exactly like a live session.
        let demoted_seq = self
            .demoted
            .lock()
            .expect("demoted index poisoned")
            .remove(tenant);
        if let Some(seq) = demoted_seq {
            match self.revive_demoted(tenant, seq, secret) {
                Ok(t) => {
                    let entry = Arc::new(Mutex::new(t));
                    map.insert(tenant.to_string(), Arc::clone(&entry));
                    return Ok(entry);
                }
                Err(e) => {
                    self.demoted
                        .lock()
                        .expect("demoted index poisoned")
                        .insert(tenant.to_string(), seq);
                    return Err(e);
                }
            }
        }
        let Some(secret) = secret else {
            return Err(ServeError::UnknownTenant(tenant.to_string()));
        };
        let session = AuditSession::new(
            Arc::clone(&self.engine),
            secret.clone(),
            self.options.clone(),
        )
        .named(format!("tenant:{tenant}"));
        let entry = Arc::new(Mutex::new(Tenant {
            session,
            snapshots: HashMap::new(),
            last_used: Instant::now(),
            requests: 0,
            bytes: 0,
            retired: false,
        }));
        map.insert(tenant.to_string(), Arc::clone(&entry));
        Ok(entry)
    }

    /// Fetches the demoted tenant's self-contained `expire` record and
    /// rebuilds the live tenant from it.
    fn revive_demoted(
        &self,
        tenant: &str,
        seq: u64,
        secret: Option<&ConjunctiveQuery>,
    ) -> crate::Result<Tenant> {
        let journal = self
            .journal
            .as_ref()
            .ok_or_else(|| ServeError::Store("demoted tenant without a journal".to_string()))?;
        let key = format!("{seq:016x}");
        let bytes = journal
            .store()
            .get(NS_JOURNAL, &key)
            .map_err(|e| ServeError::Store(format!("journal get: {e}")))?
            .ok_or_else(|| ServeError::Store(format!("missing journal record {key}")))?;
        let event = decode_event(&key, &bytes)?;
        if let Some(secret) = secret {
            if canonical_form(&event.secret) != canonical_form(secret) {
                return Err(ServeError::SecretMismatch(tenant.to_string()));
            }
        }
        Ok(self.tenant_from_parts(
            tenant,
            event.secret,
            &event.state,
            event.snapshots.unwrap_or_default(),
            event.tenant_requests,
        ))
    }

    /// Appends one lifecycle event for a completed operation. A no-op
    /// without a journal; with one, failures surface to the caller.
    fn journal_op(
        &self,
        op: &'static str,
        tenant: &str,
        t: &Tenant,
        snapshot_label: Option<String>,
    ) -> crate::Result<()> {
        let Some(journal) = &self.journal else {
            return Ok(());
        };
        journal
            .append(&JournalEvent {
                op: op.to_string(),
                tenant: tenant.to_string(),
                secret: t.session.secret().clone(),
                state: t.session.snapshot(),
                snapshot_label,
                snapshots: None,
                tenant_requests: t.requests,
                registry_requests: self.requests.load(Ordering::Relaxed),
                registry_expired: self.expired.load(Ordering::Relaxed),
                engine_cache: self.engine.cache_stats(),
            })
            .map(|_| ())
    }

    fn with_tenant<R>(
        &self,
        op: &'static str,
        tenant: &str,
        secret: Option<&ConjunctiveQuery>,
        f: impl FnOnce(&mut Tenant) -> crate::Result<(R, Option<String>)>,
    ) -> crate::Result<R> {
        let mut f = Some(f);
        loop {
            let entry = self.tenant_entry(tenant, secret)?;
            let mut t = entry.lock().expect("tenant poisoned");
            if t.retired {
                // An idle sweep demoted this tenant between the shard-map
                // lookup and the tenant lock. Its state already lives in
                // the journal and the entry left the map, so re-dispatch:
                // the next lookup revives the demoted state (or reopens),
                // and the operation lands on live state instead of being
                // silently dropped at the next revival.
                continue;
            }
            let (out, snapshot_label) =
                (f.take().expect("operation retried after success"))(&mut t)?;
            t.last_used = Instant::now();
            t.requests += 1;
            self.journal_op(op, tenant, &t, snapshot_label)?;
            return Ok(out);
        }
    }

    /// Opens (or re-validates) `tenant`'s session for `secret` without
    /// auditing anything.
    pub fn open(&self, tenant: &str, secret: &ConjunctiveQuery) -> crate::Result<usize> {
        self.with_tenant("open", tenant, Some(secret), |t| {
            Ok((t.session.views_published(), None))
        })
    }

    /// Publishes `view` for `tenant`: audits the secret against everything
    /// the tenant already published plus `view`, commits it, and returns
    /// the step report. A `secret` opens the session on first contact.
    pub fn publish(
        &self,
        tenant: &str,
        secret: Option<&ConjunctiveQuery>,
        name: Option<String>,
        view: ConjunctiveQuery,
    ) -> crate::Result<SessionReport> {
        self.with_tenant("publish", tenant, secret, |t| {
            let name = name.unwrap_or_else(|| view.name.clone());
            let report = t.session.publish_named(name, view)?;
            let committed = t.session.published().last().expect("just published");
            t.bytes += approx_bytes(committed);
            Ok((report, None))
        })
    }

    /// The what-if audit: [`SessionRegistry::publish`] without committing.
    pub fn audit_candidate(
        &self,
        tenant: &str,
        secret: Option<&ConjunctiveQuery>,
        view: &ConjunctiveQuery,
    ) -> crate::Result<SessionReport> {
        self.with_tenant("candidate", tenant, secret, |t| {
            Ok((t.session.audit_candidate(view)?, None))
        })
    }

    /// Saves `tenant`'s session state under `label`; returns the number of
    /// views in the captured state.
    pub fn snapshot(&self, tenant: &str, label: &str) -> crate::Result<usize> {
        self.with_tenant("snapshot", tenant, None, |t| {
            let snap = t.session.snapshot();
            let views = snap.views_published();
            t.bytes += approx_bytes(&snap);
            if let Some(replaced) = t.snapshots.insert(label.to_string(), snap) {
                t.bytes = t.bytes.saturating_sub(approx_bytes(&replaced));
            }
            Ok((views, Some(label.to_string())))
        })
    }

    /// Rewinds `tenant`'s session to the labelled snapshot; returns the
    /// restored view count. Engine artifacts evicted since the snapshot are
    /// re-derived transparently on the next audit.
    pub fn restore(&self, tenant: &str, label: &str) -> crate::Result<usize> {
        self.with_tenant("restore", tenant, None, |t| {
            let snap = t
                .snapshots
                .get(label)
                .ok_or_else(|| ServeError::UnknownSnapshot(label.to_string()))?
                .clone();
            t.session.restore(&snap);
            t.recount_bytes();
            Ok((t.session.views_published(), None))
        })
    }

    /// Demotes one expiring tenant to the store: appends a self-contained
    /// `expire` record and keeps only its sequence number resident. Append
    /// failures are swallowed — the tenant then replays as live from its
    /// last regular event, which is still correct, just not demoted.
    fn demote_expired(&self, tenant: &str, t: &Tenant) {
        let Some(journal) = &self.journal else {
            return;
        };
        let appended = journal.append(&JournalEvent {
            op: "expire".to_string(),
            tenant: tenant.to_string(),
            secret: t.session.secret().clone(),
            state: t.session.snapshot(),
            snapshot_label: None,
            snapshots: Some(t.snapshots.clone()),
            tenant_requests: t.requests,
            registry_requests: self.requests.load(Ordering::Relaxed),
            registry_expired: self.expired.load(Ordering::Relaxed),
            engine_cache: self.engine.cache_stats(),
        });
        if let Ok(seq) = appended {
            self.demoted
                .lock()
                .expect("demoted index poisoned")
                .insert(tenant.to_string(), seq);
        }
    }

    /// Expires idle entries of one shard map (demoting them when a store
    /// is configured). A tenant mid-request (its lock held) is spared.
    fn sweep_shard(
        &self,
        map: &mut HashMap<String, Arc<Mutex<Tenant>>>,
        now: Instant,
        max_idle: Duration,
    ) -> usize {
        let mut expired_ids = Vec::new();
        for (id, entry) in map.iter() {
            if let Ok(mut t) = entry.try_lock() {
                if now.duration_since(t.last_used) > max_idle {
                    // Counted before journaling, so the expire event's
                    // running total includes this very expiry.
                    self.expired.fetch_add(1, Ordering::Relaxed);
                    self.demote_expired(id, &t);
                    // Marked under the tenant lock: a request that cloned
                    // this entry out of the map before we removed it sees
                    // the flag when it finally locks, and re-dispatches.
                    t.retired = true;
                    expired_ids.push(id.clone());
                }
            }
        }
        for id in &expired_ids {
            map.remove(id);
        }
        expired_ids.len()
    }

    /// Removes sessions idle longer than `max_idle`; returns how many were
    /// expired. A tenant mid-request (its lock held) is never expired.
    /// With a store configured the expired tenants are demoted — their
    /// state moves to the journal and their next request revives them —
    /// instead of discarded.
    pub fn sweep_idle(&self, max_idle: Duration) -> usize {
        let now = Instant::now();
        let mut removed = 0;
        for shard in self.shards.iter() {
            let mut map = shard.lock().expect("shard poisoned");
            removed += self.sweep_shard(&mut map, now, max_idle);
        }
        removed
    }

    /// Flushes the durable store behind the journal (and, by construction,
    /// the engine's artifact write-throughs) to disk. Returns the backend
    /// name, or `None` when the registry has no store.
    pub fn flush_store(&self) -> crate::Result<Option<&'static str>> {
        let Some(journal) = &self.journal else {
            return Ok(None);
        };
        journal
            .store()
            .flush()
            .map_err(|e| ServeError::Store(format!("flush: {e}")))?;
        Ok(Some(journal.store().backend_name()))
    }

    /// A deterministic snapshot of the registry: per-tenant accounting
    /// (sorted by tenant id) next to the engine's extended cache counters.
    /// With a store configured, each tenant also reports its journal
    /// footprint, and demoted tenants — state in the store, nothing
    /// resident — appear alongside live ones with `demoted: true`.
    pub fn stats(&self) -> RegistryStats {
        let usage = |id: &str| {
            self.journal
                .as_ref()
                .map(|j| j.usage_of(id))
                .unwrap_or_default()
        };
        let mut tenants = Vec::new();
        for shard in self.shards.iter() {
            let map = shard.lock().expect("shard poisoned");
            for (id, entry) in map.iter() {
                let t = entry.lock().expect("tenant poisoned");
                let u = usage(id);
                tenants.push(TenantStats {
                    tenant: id.clone(),
                    views_published: t.session.views_published(),
                    snapshots_held: t.snapshots.len(),
                    requests: t.requests,
                    approx_bytes: t.bytes,
                    cache: *t.session.cumulative_cache(),
                    store_records: u.records,
                    store_bytes: u.bytes,
                    demoted: false,
                });
            }
        }
        // Demoted tenants report from their self-contained expire record; a
        // record that fails to fetch is skipped (it will fail the same way —
        // loudly — when the tenant's next request tries to revive it).
        let demoted: Vec<(String, u64)> = self
            .demoted
            .lock()
            .expect("demoted index poisoned")
            .iter()
            .map(|(id, seq)| (id.clone(), *seq))
            .collect();
        for (id, seq) in demoted {
            let Some(journal) = &self.journal else { break };
            let Ok(Some(bytes)) = journal.store().get(NS_JOURNAL, &format!("{seq:016x}")) else {
                continue;
            };
            let Ok(event) = decode_event(&format!("{seq:016x}"), &bytes) else {
                continue;
            };
            let u = usage(&id);
            tenants.push(TenantStats {
                tenant: id,
                views_published: event.state.views_published(),
                snapshots_held: event.snapshots.as_ref().map(|s| s.len()).unwrap_or(0),
                requests: event.tenant_requests,
                approx_bytes: 0,
                cache: *event.state.cumulative_cache(),
                store_records: u.records,
                store_bytes: u.bytes,
                demoted: true,
            });
        }
        tenants.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        let journal_totals = self
            .journal
            .as_ref()
            .map(|j| j.totals())
            .unwrap_or_default();
        RegistryStats {
            tenants,
            shard_count: self.shards.len(),
            requests_served: self.requests.load(Ordering::Relaxed),
            sessions_expired: self.expired.load(Ordering::Relaxed),
            engine_cache: self.engine.cache_stats(),
            store_backend: self
                .journal
                .as_ref()
                .map(|j| j.store().backend_name().to_string()),
            journal_records: journal_totals.records,
            journal_bytes: journal_totals.bytes,
        }
    }
}

/// Per-tenant accounting surfaced by [`SessionRegistry::stats`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TenantStats {
    /// The tenant id.
    pub tenant: String,
    /// Views the tenant has committed.
    pub views_published: usize,
    /// Labelled snapshots the tenant holds.
    pub snapshots_held: usize,
    /// Requests the tenant has issued (audits, snapshots, restores).
    pub requests: u64,
    /// Approximate bytes of published-view and snapshot state the tenant
    /// pins in the registry (zero while demoted — nothing is resident).
    pub approx_bytes: u64,
    /// The tenant's session-cumulative cache-reuse counters.
    pub cache: qvsec::engine::CacheStatsSnapshot,
    /// Journal records this tenant has accrued in the durable store.
    #[serde(default)]
    pub store_records: u64,
    /// Serialized bytes of those journal records.
    #[serde(default)]
    pub store_bytes: u64,
    /// `true` when the tenant's state lives only in the store (demoted by
    /// idle expiry); its next request revives it transparently.
    #[serde(default)]
    pub demoted: bool,
}

/// A registry-wide accounting snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegistryStats {
    /// Per-tenant accounting, sorted by tenant id.
    pub tenants: Vec<TenantStats>,
    /// Number of shards the tenant map is split into.
    pub shard_count: usize,
    /// Requests dispatched over the registry's lifetime.
    pub requests_served: u64,
    /// Sessions removed by idle expiry.
    pub sessions_expired: u64,
    /// The shared engine's extended cache counters (hits, misses,
    /// evictions, evicted and resident bytes).
    pub engine_cache: qvsec::engine::CacheStatsSnapshot,
    /// The durable store's backend name, when one is configured.
    #[serde(default)]
    pub store_backend: Option<String>,
    /// Lifecycle records journaled across all tenants.
    #[serde(default)]
    pub journal_records: u64,
    /// Serialized bytes of the journaled records.
    #[serde(default)]
    pub journal_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvsec_data::{Domain, Schema};

    fn registry() -> SessionRegistry {
        let mut schema = Schema::new();
        schema.add_relation("Employee", &["name", "department", "phone"]);
        let mut domain = Domain::new();
        // Declare the constants runtime queries may use.
        domain.add("Mgmt");
        let engine = Arc::new(AuditEngine::builder(schema, domain).build());
        SessionRegistry::new(engine)
    }

    #[test]
    fn publish_routes_through_per_tenant_sessions() {
        let reg = registry();
        let secret = reg.parse("S(n, p) :- Employee(n, d, p)").unwrap();
        let bob = reg.parse("VBob(n, d) :- Employee(n, d, p)").unwrap();
        let carol = reg.parse("VCarol(d, p) :- Employee(n, d, p)").unwrap();

        let r1 = reg
            .publish("alice", Some(&secret), Some("bob".into()), bob.clone())
            .unwrap();
        assert_eq!(r1.step, 1);
        assert_eq!(r1.report.secure, Some(false));
        // A second tenant opens its own session; the engine's caches are
        // already warm from the first.
        let r2 = reg
            .publish("zoe", Some(&secret), Some("bob".into()), bob)
            .unwrap();
        assert_eq!(r2.step, 1);
        assert!(
            r2.cache.crit_cache_hits > 0,
            "shared artifacts: {:?}",
            r2.cache
        );
        // Established tenants need no secret.
        let r3 = reg.publish("alice", None, None, carol).unwrap();
        assert_eq!(r3.step, 2);
        assert_eq!(reg.tenant_count(), 2);

        let stats = reg.stats();
        assert_eq!(stats.tenants.len(), 2);
        assert_eq!(stats.tenants[0].tenant, "alice");
        assert_eq!(stats.tenants[0].views_published, 2);
        assert!(stats.tenants[0].approx_bytes > 0);
        assert_eq!(stats.requests_served, 3);
    }

    #[test]
    fn unknown_tenants_and_mismatched_secrets_are_rejected() {
        let reg = registry();
        let secret = reg.parse("S(n, p) :- Employee(n, d, p)").unwrap();
        let other = reg.parse("S2(d) :- Employee(n, d, p)").unwrap();
        let view = reg.parse("V(n, d) :- Employee(n, d, p)").unwrap();

        assert!(matches!(
            reg.audit_candidate("ghost", None, &view),
            Err(ServeError::UnknownTenant(_))
        ));
        reg.open("alice", &secret).unwrap();
        assert!(matches!(
            reg.publish("alice", Some(&other), None, view.clone()),
            Err(ServeError::SecretMismatch(_))
        ));
        // Re-presenting the same secret (α-renamed) is fine.
        let renamed = reg.parse("S(a, b) :- Employee(a, c, b)").unwrap();
        assert!(reg.publish("alice", Some(&renamed), None, view).is_ok());
    }

    #[test]
    fn undeclared_constants_are_rejected_at_parse() {
        let reg = registry();
        assert!(reg.parse("V(n) :- Employee(n, 'Mgmt', p)").is_ok());
        let err = reg
            .parse("V(n) :- Employee(n, 'Skunkworks', p)")
            .unwrap_err();
        assert!(matches!(err, ServeError::UndeclaredConstant(_)));
        assert_eq!(err.kind(), crate::protocol::ErrorKind::UndeclaredConstant);
        assert!(err.to_string().contains("declared domain"));
    }

    #[test]
    fn snapshot_restore_round_trips_through_the_registry() {
        let reg = registry();
        let secret = reg.parse("S(n, p) :- Employee(n, d, p)").unwrap();
        let v1 = reg.parse("V1(n, d) :- Employee(n, d, p)").unwrap();
        let v2 = reg.parse("V2(d, p) :- Employee(n, d, p)").unwrap();
        reg.publish("t", Some(&secret), None, v1).unwrap();
        assert_eq!(reg.snapshot("t", "base").unwrap(), 1);
        reg.publish("t", None, None, v2.clone()).unwrap();
        assert_eq!(reg.restore("t", "base").unwrap(), 1);
        assert!(matches!(
            reg.restore("t", "nope"),
            Err(ServeError::UnknownSnapshot(_))
        ));
        // Replaying after the restore reaches the same cumulative verdict.
        let replay = reg.publish("t", None, None, v2).unwrap();
        assert_eq!(replay.step, 2);
        assert!(replay.cache.any_reuse(), "replay is served warm");
    }

    #[test]
    fn idle_sessions_expire_and_reopen_transparently() {
        let reg = registry();
        let secret = reg.parse("S(n, p) :- Employee(n, d, p)").unwrap();
        let view = reg.parse("V(n, d) :- Employee(n, d, p)").unwrap();
        let first = reg.publish("t", Some(&secret), None, view.clone()).unwrap();
        assert_eq!(reg.tenant_count(), 1);
        assert_eq!(reg.sweep_idle(Duration::ZERO), 1);
        assert_eq!(reg.tenant_count(), 0);
        assert_eq!(reg.stats().sessions_expired, 1);
        // The tenant's next request reopens at step 1, warm.
        let again = reg.publish("t", Some(&secret), None, view).unwrap();
        assert_eq!(again.step, 1);
        assert_eq!(
            serde_json::to_string(&again.report).unwrap(),
            serde_json::to_string(&first.report).unwrap(),
            "reopened session reproduces the same verdict"
        );
        assert!(again.cache.any_reuse(), "engine caches survived expiry");
    }

    #[test]
    fn a_stale_requesting_tenant_is_itself_expired() {
        // The in-dispatch sweep must not spare the requester: a session
        // idle past the timeout is gone, and the next request either
        // reopens fresh (secret present) or is told to.
        let mut schema = Schema::new();
        schema.add_relation("Employee", &["name", "department", "phone"]);
        let engine = Arc::new(AuditEngine::builder(schema, Domain::new()).build());
        let reg = SessionRegistry::with_config(
            engine,
            RegistryConfig {
                shards: 4,
                idle_timeout: Some(Duration::ZERO),
            },
        );
        let secret = reg.parse("S(n, p) :- Employee(n, d, p)").unwrap();
        let v1 = reg.parse("V1(n, d) :- Employee(n, d, p)").unwrap();
        let v2 = reg.parse("V2(d, p) :- Employee(n, d, p)").unwrap();
        let first = reg.publish("t", Some(&secret), None, v1).unwrap();
        assert_eq!(first.step, 1);
        // Without a secret the expired tenant is reported as unknown ...
        assert!(matches!(
            reg.publish("t", None, None, v2.clone()),
            Err(ServeError::UnknownTenant(_))
        ));
        // ... and with one, the session reopens at step 1, not step 2.
        let reopened = reg.publish("t", Some(&secret), None, v2).unwrap();
        assert_eq!(reopened.step, 1, "stale session must not survive");
        assert!(reg.stats().sessions_expired >= 1);
    }

    fn engine_with_store(store: &Arc<dyn StoreBackend>) -> Arc<AuditEngine> {
        let mut schema = Schema::new();
        schema.add_relation("Employee", &["name", "department", "phone"]);
        let mut domain = Domain::new();
        domain.add("Mgmt");
        Arc::new(
            AuditEngine::builder(schema, domain)
                .store(Arc::clone(store))
                .build(),
        )
    }

    fn durable_registry(store: &Arc<dyn StoreBackend>) -> SessionRegistry {
        SessionRegistry::with_store(
            engine_with_store(store),
            RegistryConfig::default(),
            Arc::clone(store),
        )
        .unwrap()
    }

    #[test]
    fn a_registry_rehydrated_from_its_store_reports_identical_stats() {
        let store: Arc<dyn StoreBackend> = Arc::new(qvsec_store::MemStore::new());
        let reg = durable_registry(&store);
        let secret = reg.parse("S(n, p) :- Employee(n, d, p)").unwrap();
        let v1 = reg.parse("V1(n, d) :- Employee(n, d, p)").unwrap();
        let v2 = reg.parse("V2(d, p) :- Employee(n, d, p)").unwrap();
        reg.publish("alice", Some(&secret), None, v1.clone())
            .unwrap();
        reg.snapshot("alice", "base").unwrap();
        reg.publish("alice", None, None, v2.clone()).unwrap();
        reg.publish("zoe", Some(&secret), None, v1).unwrap();
        let before = serde_json::to_string(&reg.stats()).unwrap();
        drop(reg);

        // A new process over the same store: replay, not re-audit.
        let reg2 = durable_registry(&store);
        assert_eq!(reg2.tenant_count(), 2);
        let after = serde_json::to_string(&reg2.stats()).unwrap();
        assert_eq!(after, before, "restart must be invisible in stats");
        // The rewind path survives too: the labelled snapshot replayed.
        assert_eq!(reg2.restore("alice", "base").unwrap(), 1);
        let replay = reg2.publish("alice", None, None, v2).unwrap();
        assert_eq!(replay.step, 2);
    }

    #[test]
    fn a_restarted_registry_continues_a_script_like_an_uninterrupted_one() {
        // Same script, two executions: one straight through, one SIGKILL-
        // shaped (drop the registry mid-script, rehydrate from the store).
        // The post-restart responses must serialize identically.
        let script = |reg: &SessionRegistry| {
            let secret = reg.parse("S(n, p) :- Employee(n, d, p)").unwrap();
            let v1 = reg.parse("V1(n, d) :- Employee(n, d, p)").unwrap();
            (secret, v1)
        };
        let continuous_store: Arc<dyn StoreBackend> = Arc::new(qvsec_store::MemStore::new());
        let continuous = durable_registry(&continuous_store);
        let (secret, v1) = script(&continuous);
        let v2 = continuous.parse("V2(d, p) :- Employee(n, d, p)").unwrap();
        continuous
            .publish("t", Some(&secret), None, v1.clone())
            .unwrap();
        let want = continuous.publish("t", None, None, v2.clone()).unwrap();

        let store: Arc<dyn StoreBackend> = Arc::new(qvsec_store::MemStore::new());
        let reg = durable_registry(&store);
        let (secret, v1) = script(&reg);
        reg.publish("t", Some(&secret), None, v1).unwrap();
        drop(reg); // the "kill" between requests
        let reg2 = durable_registry(&store);
        let got = reg2.publish("t", None, None, v2).unwrap();
        assert_eq!(
            serde_json::to_string(&got).unwrap(),
            serde_json::to_string(&want).unwrap(),
            "post-restart response must be byte-identical"
        );
    }

    #[test]
    fn expired_tenants_demote_to_the_store_and_revive_transparently() {
        let store: Arc<dyn StoreBackend> = Arc::new(qvsec_store::MemStore::new());
        let reg = durable_registry(&store);
        let secret = reg.parse("S(n, p) :- Employee(n, d, p)").unwrap();
        let v1 = reg.parse("V1(n, d) :- Employee(n, d, p)").unwrap();
        let v2 = reg.parse("V2(d, p) :- Employee(n, d, p)").unwrap();
        reg.publish("alice", Some(&secret), None, v1).unwrap();
        reg.snapshot("alice", "base").unwrap();
        assert_eq!(reg.sweep_idle(Duration::ZERO), 1);
        assert_eq!(reg.tenant_count(), 0, "nothing stays resident");

        // Demoted tenants still appear in stats, served from the store.
        let stats = reg.stats();
        assert_eq!(stats.store_backend.as_deref(), Some("mem"));
        let alice = &stats.tenants[0];
        assert!(alice.demoted);
        assert_eq!(alice.views_published, 1);
        assert_eq!(alice.snapshots_held, 1);
        assert_eq!(alice.approx_bytes, 0);
        assert!(alice.store_records >= 3, "open+snapshot+expire journaled");

        // Restart: the demoted index itself rehydrates ...
        drop(reg);
        let reg2 = durable_registry(&store);
        assert_eq!(reg2.tenant_count(), 0);
        assert!(reg2.stats().tenants[0].demoted);
        // ... and the next request revives, no secret needed, snapshots
        // intact.
        let r = reg2.publish("alice", None, None, v2).unwrap();
        assert_eq!(r.step, 2);
        assert!(!reg2.stats().tenants[0].demoted);
        assert_eq!(reg2.restore("alice", "base").unwrap(), 1);
    }

    #[test]
    fn tenants_hash_to_stable_shards() {
        let reg = registry();
        assert_eq!(reg.shard_count(), 16);
        let a = shard_hash("alice");
        assert_eq!(a, shard_hash("alice"), "hash is deterministic");
        assert_ne!(a, shard_hash("alicf"));
    }

    /// The sweep/dispatch race, replayed deterministically through the
    /// private dispatch path: a request's shard-map lookup hands it the
    /// tenant entry, an idle sweep demotes the tenant before the request
    /// locks it, and the request must re-dispatch onto the revived state
    /// instead of mutating the zombie (whose state already moved to the
    /// journal — a mutation there would vanish at the next revival).
    #[test]
    fn a_sweep_racing_a_dispatched_request_retires_the_entry() {
        let store: Arc<dyn StoreBackend> = Arc::new(qvsec_store::MemStore::new());
        let reg = durable_registry(&store);
        let secret = reg.parse("S(n, p) :- Employee(n, d, p)").unwrap();
        let v1 = reg.parse("V1(n, d) :- Employee(n, d, p)").unwrap();
        let v2 = reg.parse("V2(d, p) :- Employee(n, d, p)").unwrap();
        reg.publish("t", Some(&secret), None, v1).unwrap();

        // Interleaving step 1: the request's map lookup completes.
        let stale = reg.tenant_entry("t", None).unwrap();
        // Interleaving step 2: an idle sweep demotes the tenant.
        assert_eq!(reg.sweep_idle(Duration::ZERO), 1);
        assert_eq!(reg.tenant_count(), 0, "the entry left the shard map");
        // Interleaving step 3: the request locks the entry it was handed —
        // and finds it retired, the exact flag `with_tenant` re-dispatches
        // on.
        assert!(
            stale.lock().unwrap().retired,
            "the sweep must retire the demoted entry under its lock"
        );
        // The re-dispatched publish revives the demoted state and lands.
        let r = reg.publish("t", None, None, v2).unwrap();
        assert_eq!(r.step, 2, "the raced publish lands on the revived session");
        assert_eq!(reg.stats().tenants[0].views_published, 2);
    }

    /// The same race under real threads: a sweeper demoting the tenant as
    /// fast as it can while a client publishes view after view. Every
    /// publish must land on live state — step numbers advance by exactly
    /// one — no matter where the demotions interleave.
    #[test]
    fn concurrent_sweeps_never_lose_a_published_view() {
        use std::sync::atomic::AtomicBool;

        let store: Arc<dyn StoreBackend> = Arc::new(qvsec_store::MemStore::new());
        let reg = durable_registry(&store);
        let secret = reg.parse("S(n, p) :- Employee(n, d, p)").unwrap();
        let heads = [
            "V1(n, d)", "V2(d, p)", "V3(n)", "V4(p)", "V5(d)", "V6(n, p)",
        ];
        let views: Vec<ConjunctiveQuery> = heads
            .iter()
            .map(|h| reg.parse(&format!("{h} :- Employee(n, d, p)")).unwrap())
            .collect();

        let done = AtomicBool::new(false);
        let steps = std::thread::scope(|scope| {
            let reg = &reg;
            let done = &done;
            let sweeper = scope.spawn(move || {
                while !done.load(Ordering::Relaxed) {
                    reg.sweep_idle(Duration::ZERO);
                    std::thread::yield_now();
                }
            });
            let mut steps = Vec::new();
            for (i, v) in views.iter().enumerate() {
                let open_secret = (i == 0).then_some(&secret);
                steps.push(reg.publish("t", open_secret, None, v.clone()).unwrap().step);
            }
            done.store(true, Ordering::Relaxed);
            sweeper.join().unwrap();
            steps
        });
        assert_eq!(
            steps,
            (1..=views.len()).collect::<Vec<_>>(),
            "a published view was lost to a racing sweep"
        );
        let total: usize = reg.stats().tenants.iter().map(|t| t.views_published).sum();
        assert_eq!(total, views.len());
    }
}
