//! # qvsec-serve — the multi-tenant serving layer
//!
//! The paper's audit question is inherently *online*: a curator decides,
//! request after request, whether publishing the next view is safe. The
//! core crate's [`qvsec::AuditSession`] is the single-tenant handle for
//! that flow; this crate turns it into a **server**:
//!
//! * [`SessionRegistry`] — an owned, `Send + Sync`, sharded map of tenant
//!   id → [`qvsec::AuditSession`] over one shared [`qvsec::AuditEngine`].
//!   Tenants are hashed onto independent shard locks (and each tenant has
//!   its own session lock), so concurrent tenants never contend; idle
//!   sessions expire; per-tenant request and byte accounting is surfaced
//!   through [`registry::RegistryStats`] next to the engine's extended
//!   cache counters (hits, misses, evictions, resident bytes).
//! * a newline-delimited-JSON TCP front end ([`server::Server`]) — a
//!   `std::net::TcpListener` with a fixed worker-thread pool, speaking the
//!   request/response schema of [`protocol`] (`publish` / `candidate` /
//!   `snapshot` / `restore` / `stats`, mirroring the CLI session-script
//!   steps, plus the `qvsec-sql` front end: queries and secrets in safe-SQL
//!   form, a `sql` analysis op, and `show_tables` / `show_columns` schema
//!   introspection). No async runtime: plain blocking sockets and threads,
//!   like the rest of the workspace.
//!
//! Because every tenant shares the engine's compiled artifacts — crit sets,
//! candidate spaces, class verdicts, witness-mask compilations, the Monte-
//! Carlo pool — a warm registry serves a tenant's *first* request at the
//! cost of a stateless deployment's *hottest* one (measured in
//! `BENCH_serve.json`). Long-lived servers bound that sharing with the
//! engine's byte-budgeted caches (`cache_budget_bytes`): eviction is
//! transparent to every verdict, so the registry trades memory for
//! recomputation, never for correctness.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod journal;
pub mod metrics;
pub mod protocol;
pub mod registry;
pub mod server;

pub use journal::{Journal, JournalEvent, TenantStoreUsage, NS_JOURNAL};
pub use metrics::{collect_metrics, serve_metrics_http};
pub use protocol::{
    closing_notice, error_response, error_response_with_detail, handle_request,
    handle_request_traced, handle_request_with, ErrorKind, WireRequest, PROTOCOL_VERSION,
};
pub use registry::{RegistryConfig, RegistryStats, ServeError, SessionRegistry, TenantStats};
pub use server::{
    drive_scripts, is_notice, request_lines, request_lines_pipelined, DriveOutcome, Server,
    ServerConfig, ServerCounters, ServerHandle, ServerStats,
};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ServeError>;
