//! The durable tenant-lifecycle journal.
//!
//! Every successful registry operation — `open`, `publish`, `candidate`,
//! `snapshot`, `restore`, plus idle-expiry demotions — appends one
//! [`JournalEvent`] to the `registry/journal` namespace of a
//! [`StoreBackend`], keyed by a zero-padded hex sequence number so a plain
//! key-ordered scan replays the history in order.
//!
//! Events are *state-carrying*, not command-carrying: each one embeds the
//! tenant's full post-operation [`SessionSnapshot`], so replay never
//! re-runs an audit — it restores the last snapshot per tenant, rebuilds
//! the labelled-snapshot map from `snapshot` events, and re-installs the
//! registry-wide counters and the engine's cache-statistics baseline from
//! the final event. A process SIGKILLed mid-script therefore rehydrates to
//! byte-identical state for every *completed* request (the store backends
//! discard torn trailing records), and the remainder of the script answers
//! exactly as the uninterrupted process would have.
//!
//! Journal appends are the one place persistence failures are surfaced as
//! errors rather than swallowed: losing a cache artifact costs a
//! recomputation, losing a lifecycle event silently would cost tenant
//! state.

use crate::ServeError;
use qvsec::engine::CacheStatsSnapshot;
use qvsec::session::SessionSnapshot;
use qvsec_cq::ConjunctiveQuery;
use qvsec_store::{StoreBackend, StoreOp};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Store namespace holding the registry's lifecycle journal.
pub const NS_JOURNAL: &str = "registry/journal";

/// One journaled lifecycle event. Every event carries the tenant's full
/// post-operation state and the registry/engine counters at append time,
/// so the *last* event per tenant (and the last event overall) suffice to
/// rehydrate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JournalEvent {
    /// `open` | `publish` | `candidate` | `snapshot` | `restore` | `expire`.
    pub op: String,
    /// The tenant id.
    pub tenant: String,
    /// The tenant's registered secret.
    pub secret: ConjunctiveQuery,
    /// The tenant's session state after the operation.
    pub state: SessionSnapshot,
    /// The label of a `snapshot` operation (replay stores `state` under
    /// it, since capturing does not change the session).
    #[serde(default)]
    pub snapshot_label: Option<String>,
    /// An `expire` event's full labelled-snapshot map, making demotion
    /// self-contained: revival needs no earlier events.
    #[serde(default)]
    pub snapshots: Option<HashMap<String, SessionSnapshot>>,
    /// The tenant's request count after the operation.
    pub tenant_requests: u64,
    /// Registry-wide requests dispatched, at append time.
    pub registry_requests: u64,
    /// Registry-wide sessions expired, at append time.
    #[serde(default)]
    pub registry_expired: u64,
    /// The engine's absolute cache counters at append time (baseline
    /// included, so a restart-of-a-restart chains correctly).
    pub engine_cache: CacheStatsSnapshot,
}

/// Per-tenant journal usage, surfaced through registry stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantStoreUsage {
    /// Journal records appended for this tenant.
    pub records: u64,
    /// Serialized bytes of those records.
    pub bytes: u64,
}

/// Everything [`Journal::replay`] recovers from a store.
#[derive(Debug, Default)]
pub struct Replayed {
    /// `(sequence number, event)` pairs, in sequence order.
    pub events: Vec<(u64, JournalEvent)>,
    /// The next append sequence number.
    pub next_seq: u64,
    /// Per-tenant record/byte accounting over the scanned journal.
    pub usage: BTreeMap<String, TenantStoreUsage>,
}

/// Decodes one journal record; `key` only labels the error.
pub(crate) fn decode_event(key: &str, bytes: &[u8]) -> crate::Result<JournalEvent> {
    let text = std::str::from_utf8(bytes)
        .map_err(|_| ServeError::Store(format!("journal record {key}: not UTF-8")))?;
    let value = serde_json::parse(text)
        .map_err(|e| ServeError::Store(format!("journal record {key}: {e}")))?;
    serde_json::from_value(&value)
        .map_err(|e| ServeError::Store(format!("journal record {key}: {e}")))
}

/// An append-ordered event log over one store backend, with per-tenant
/// usage accounting.
#[derive(Debug)]
pub struct Journal {
    store: Arc<dyn StoreBackend>,
    seq: AtomicU64,
    usage: Mutex<BTreeMap<String, TenantStoreUsage>>,
}

impl Journal {
    /// A journal resuming after `replayed` (use `Replayed::default()` for
    /// a fresh store).
    pub fn new(store: Arc<dyn StoreBackend>, replayed: &Replayed) -> Self {
        Journal {
            store,
            seq: AtomicU64::new(replayed.next_seq),
            usage: Mutex::new(replayed.usage.clone()),
        }
    }

    /// The backing store.
    pub fn store(&self) -> &Arc<dyn StoreBackend> {
        &self.store
    }

    /// Appends one event durably, returning its sequence number; sequence
    /// numbers are allocated atomically so concurrent tenants never collide.
    pub fn append(&self, event: &JournalEvent) -> crate::Result<u64> {
        let _span = qvsec_obs::Span::enter("store.journal.append");
        qvsec_obs::counter("store.journal.appends").inc();
        let text = serde_json::to_string(event)
            .map_err(|e| ServeError::Store(format!("journal encode: {e}")))?;
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let key = format!("{seq:016x}");
        {
            let mut usage = self.usage.lock().expect("journal usage poisoned");
            let entry = usage.entry(event.tenant.clone()).or_default();
            entry.records += 1;
            entry.bytes += text.len() as u64;
        }
        self.store
            .append_batch(NS_JOURNAL, vec![StoreOp::put(&key, text.into_bytes())])
            .map_err(|e| ServeError::Store(format!("journal append: {e}")))?;
        Ok(seq)
    }

    /// This journal's per-tenant usage for `tenant`.
    pub fn usage_of(&self, tenant: &str) -> TenantStoreUsage {
        self.usage
            .lock()
            .expect("journal usage poisoned")
            .get(tenant)
            .copied()
            .unwrap_or_default()
    }

    /// Total records/bytes journaled across all tenants.
    pub fn totals(&self) -> TenantStoreUsage {
        let usage = self.usage.lock().expect("journal usage poisoned");
        usage
            .values()
            .fold(TenantStoreUsage::default(), |mut acc, u| {
                acc.records += u.records;
                acc.bytes += u.bytes;
                acc
            })
    }

    /// Scans a store's journal namespace in sequence order and decodes
    /// every event. Undecodable records are an error — the backends already
    /// discard torn trailing records, so a record that scans but does not
    /// decode means real corruption, not a crash artifact.
    pub fn replay(store: &Arc<dyn StoreBackend>) -> crate::Result<Replayed> {
        let records = store
            .scan(NS_JOURNAL)
            .map_err(|e| ServeError::Store(format!("journal scan: {e}")))?;
        let mut replayed = Replayed::default();
        for (key, bytes) in records {
            let seq = u64::from_str_radix(&key, 16).map_err(|_| {
                ServeError::Store(format!("journal record {key}: bad sequence key"))
            })?;
            let event = decode_event(&key, &bytes)?;
            let entry = replayed.usage.entry(event.tenant.clone()).or_default();
            entry.records += 1;
            entry.bytes += bytes.len() as u64;
            replayed.next_seq = replayed.next_seq.max(seq + 1);
            replayed.events.push((seq, event));
        }
        Ok(replayed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvsec::engine::{AuditEngine, AuditOptions};
    use qvsec::session::AuditSession;
    use qvsec_data::{Domain, Schema};

    fn sample_event(tenant: &str, op: &str) -> JournalEvent {
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        let mut domain = Domain::new();
        let secret = qvsec_cq::parse_query("S(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let engine = Arc::new(AuditEngine::builder(schema, domain).build());
        let session = AuditSession::new(engine, secret.clone(), AuditOptions::default());
        JournalEvent {
            op: op.to_string(),
            tenant: tenant.to_string(),
            secret,
            state: session.snapshot(),
            snapshot_label: None,
            snapshots: None,
            tenant_requests: 1,
            registry_requests: 1,
            registry_expired: 0,
            engine_cache: CacheStatsSnapshot::default(),
        }
    }

    #[test]
    fn append_then_replay_round_trips_in_order() {
        let store: Arc<dyn StoreBackend> = Arc::new(qvsec_store::MemStore::new());
        let journal = Journal::new(Arc::clone(&store), &Replayed::default());
        journal.append(&sample_event("a", "open")).unwrap();
        journal.append(&sample_event("b", "open")).unwrap();
        journal.append(&sample_event("a", "publish")).unwrap();
        assert_eq!(journal.usage_of("a").records, 2);
        assert!(journal.usage_of("a").bytes > 0);

        let replayed = Journal::replay(&store).unwrap();
        assert_eq!(replayed.next_seq, 3);
        let ops: Vec<(u64, &str, &str)> = replayed
            .events
            .iter()
            .map(|(seq, e)| (*seq, e.tenant.as_str(), e.op.as_str()))
            .collect();
        assert_eq!(
            ops,
            vec![(0, "a", "open"), (1, "b", "open"), (2, "a", "publish")]
        );
        assert_eq!(replayed.usage["a"], journal.usage_of("a"));

        // A successor journal continues the sequence without overwriting.
        let successor = Journal::new(Arc::clone(&store), &replayed);
        successor.append(&sample_event("a", "candidate")).unwrap();
        assert_eq!(Journal::replay(&store).unwrap().events.len(), 4);
    }

    #[test]
    fn corrupt_records_surface_as_store_errors() {
        let store: Arc<dyn StoreBackend> = Arc::new(qvsec_store::MemStore::new());
        store
            .append_batch(
                NS_JOURNAL,
                vec![StoreOp::put("0000000000000000", b"{not json".to_vec())],
            )
            .unwrap();
        assert!(matches!(Journal::replay(&store), Err(ServeError::Store(_))));
    }
}
