//! The concurrent TCP front end: blocking sockets, pipelined connections,
//! newline-delimited JSON.
//!
//! Each accepted connection gets two threads (the `std::thread` idiom the
//! workspace already uses — no async runtime, no extra dependencies):
//!
//! * a **reader** that keeps consuming request lines while earlier requests
//!   compute, feeding a bounded in-flight queue (a `sync_channel`, so a
//!   client that pipelines faster than the engine computes is backpressured
//!   at [`ServerConfig::max_inflight`] requests, never buffered without
//!   bound), and
//! * a **processor** that dequeues requests strictly in order, computes,
//!   and writes responses back in request order.
//!
//! The reader also owns the connection lifecycle: keep-alive request/byte
//! limits, idle drops, and shutdown draining all end with a structured
//! `connection_closing` notice (see [`crate::protocol::closing_notice`])
//! delivered *after* every queued response — the notice rides the same
//! in-order queue as the responses. An accept gate caps concurrent
//! connections at [`ServerConfig::max_connections`].
//!
//! A `{"op": "shutdown"}` request (or [`ServerHandle::shutdown`], which the
//! CLI wires to SIGTERM) answers, flips the shutdown flag and wakes the
//! accept loop with a loop-back connection; the server then stops
//! accepting, drains every connection's in-flight queue (responses are
//! still delivered), flushes the store journal, and returns. Requests a
//! client pipelines *behind its own* `shutdown` op are answered with a
//! structured `shutting_down` error rather than silence.

use crate::protocol::{closing_notice, error_response, handle_request_traced, ErrorKind};
use crate::registry::SessionRegistry;
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Hard cap on one request line, in bytes (the newline excluded). A longer
/// line is answered with a structured `line_too_long` error and discarded
/// up to its newline, so the connection — and the requests behind it —
/// survive; without the cap a single unterminated line would buffer without
/// bound.
pub const MAX_REQUEST_LINE_BYTES: usize = 1 << 20;

/// The reader's wake-up tick: how often a blocked read re-checks the
/// shutdown flag and advances the idle clock.
const READ_TICK: Duration = Duration::from_millis(50);

/// How long a draining connection keeps answering lines that are still
/// arriving before it closes anyway (bounds graceful shutdown against a
/// client that never pauses).
const DRAIN_WINDOW: Duration = Duration::from_secs(1);

/// How long the accept gate waits for a slot before rejecting a connection
/// (absorbs the close/accept race of back-to-back clients).
const ACCEPT_GATE_GRACE: Duration = Duration::from_millis(250);

/// Connection-lifecycle configuration for the TCP front end.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Accept gate: connections beyond this many concurrent ones are turned
    /// away with a `connection_closing` notice (after a short grace wait
    /// for a slot).
    pub max_connections: usize,
    /// Bound on one connection's in-flight queue: how many parsed-but-
    /// unanswered requests the reader may run ahead of the processor.
    pub max_inflight: usize,
    /// Keep-alive limit: close (with a notice) after this many requests.
    pub max_requests_per_conn: Option<u64>,
    /// Keep-alive limit: close (with a notice) after this many request
    /// bytes (newlines included).
    pub max_bytes_per_conn: Option<u64>,
    /// Drop connections idle (no bytes received) this long, with a notice.
    pub idle_timeout: Option<Duration>,
    /// Slow-query threshold: requests whose total handling time crosses
    /// this many milliseconds are logged as one NDJSON line on stderr,
    /// with the span stage breakdown and the view's canonical form.
    /// Requires span tracing ([`qvsec_obs::set_tracing`]) to be on, and
    /// the op/tenant/canonical context additionally needs note capture
    /// ([`qvsec_obs::set_note_capture`]) — the CLI's `--slow-ms` flag
    /// enables all of it together.
    pub slow_ms: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 1024,
            max_inflight: 64,
            max_requests_per_conn: None,
            max_bytes_per_conn: None,
            idle_timeout: None,
            slow_ms: None,
        }
    }
}

/// Live connection counters, shared by the accept loop and every
/// connection thread. Surfaced through the `stats` op (as a
/// [`ServerStats`] snapshot under `"server"`); process-local by design —
/// never journaled, so a restart zeroes them.
#[derive(Debug, Default)]
pub struct ServerCounters {
    accepted: AtomicU64,
    rejected_busy: AtomicU64,
    active_connections: AtomicU64,
    dropped_idle: AtomicU64,
    closed_request_limit: AtomicU64,
    closed_byte_limit: AtomicU64,
    requests_pipelined: AtomicU64,
    responses_written: AtomicU64,
    queue_depth: AtomicU64,
    inflight_peak: AtomicU64,
}

/// A point-in-time snapshot of [`ServerCounters`] (the `"server"` member of
/// a `stats` response).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Connections admitted past the accept gate.
    pub accepted: u64,
    /// Connections turned away by the accept gate.
    pub rejected_busy: u64,
    /// Connections currently being served.
    pub active_connections: u64,
    /// Connections dropped by the idle timeout.
    pub dropped_idle: u64,
    /// Connections closed by the keep-alive request limit.
    pub closed_request_limit: u64,
    /// Connections closed by the keep-alive byte limit.
    pub closed_byte_limit: u64,
    /// Requests enqueued onto in-flight queues (includes oversize and
    /// non-UTF-8 lines, which are answered with structured errors).
    pub requests_pipelined: u64,
    /// Responses written back (notices excluded).
    pub responses_written: u64,
    /// Requests currently parsed but unanswered, across all connections.
    pub queue_depth: u64,
    /// High-water mark of `queue_depth` over the server's lifetime.
    pub inflight_peak: u64,
}

impl ServerCounters {
    /// Snapshots every counter (relaxed loads; the snapshot is advisory).
    pub fn snapshot(&self) -> ServerStats {
        ServerStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected_busy: self.rejected_busy.load(Ordering::Relaxed),
            active_connections: self.active_connections.load(Ordering::Relaxed),
            dropped_idle: self.dropped_idle.load(Ordering::Relaxed),
            closed_request_limit: self.closed_request_limit.load(Ordering::Relaxed),
            closed_byte_limit: self.closed_byte_limit.load(Ordering::Relaxed),
            requests_pipelined: self.requests_pipelined.load(Ordering::Relaxed),
            responses_written: self.responses_written.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            inflight_peak: self.inflight_peak.load(Ordering::Relaxed),
        }
    }

    fn note_enqueued(&self) {
        self.requests_pipelined.fetch_add(1, Ordering::Relaxed);
        let depth = self.queue_depth.fetch_add(1, Ordering::SeqCst) + 1;
        self.inflight_peak.fetch_max(depth, Ordering::SeqCst);
    }

    fn note_dequeued(&self) {
        self.queue_depth.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A bound (but not yet running) server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    registry: Arc<SessionRegistry>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    counters: Arc<ServerCounters>,
}

/// A cloneable handle onto a running (or about-to-run) server: its address,
/// shutdown flag and counters. Used by tests, the bench harness and
/// embedders that run the server on a background thread.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    counters: Arc<ServerCounters>,
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful shutdown and wakes the accept loop: in-flight
    /// requests still get their responses, then the store journal is
    /// flushed. Idempotent.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // A loop-back connection unblocks the (blocking) accept call.
        let _ = TcpStream::connect(self.addr);
    }

    /// A snapshot of the server's connection counters.
    pub fn stats(&self) -> ServerStats {
        self.counters.snapshot()
    }
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7070`, or port 0 for an ephemeral
    /// port) over `registry`, admitting at most `max_connections`
    /// concurrent connections; the rest of the lifecycle keeps
    /// [`ServerConfig`] defaults (see [`Server::bind_with`]).
    pub fn bind(
        registry: Arc<SessionRegistry>,
        addr: &str,
        max_connections: usize,
    ) -> io::Result<Server> {
        Server::bind_with(
            registry,
            addr,
            ServerConfig {
                max_connections,
                ..ServerConfig::default()
            },
        )
    }

    /// [`Server::bind`] with the full connection-lifecycle configuration.
    pub fn bind_with(
        registry: Arc<SessionRegistry>,
        addr: &str,
        config: ServerConfig,
    ) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            registry,
            config: ServerConfig {
                max_connections: config.max_connections.max(1),
                max_inflight: config.max_inflight.max(1),
                ..config
            },
            shutdown: Arc::new(AtomicBool::new(false)),
            counters: Arc::new(ServerCounters::default()),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The server's shared connection counters — the metrics HTTP endpoint
    /// ([`crate::metrics::serve_metrics_http`]) folds them into scrapes.
    pub fn counters(&self) -> Arc<ServerCounters> {
        Arc::clone(&self.counters)
    }

    /// A handle for shutting the server down (and reading its counters)
    /// from another thread.
    pub fn handle(&self) -> io::Result<ServerHandle> {
        Ok(ServerHandle {
            addr: self.local_addr()?,
            shutdown: Arc::clone(&self.shutdown),
            counters: Arc::clone(&self.counters),
        })
    }

    /// Runs the accept loop until shutdown, spawning a pipelined
    /// reader/processor pair per connection. Blocks the calling thread.
    ///
    /// With an idle timeout configured on the registry, a background
    /// sweeper expires idle tenants in **every** shard — the in-dispatch
    /// sweeps only cover the shard a request happens to hash to, so without
    /// this a low-traffic shard would retain its sessions forever.
    ///
    /// On shutdown the accept loop stops, every connection drains its
    /// in-flight queue (responses are still delivered, each connection
    /// ending with a `connection_closing` notice), and the registry's
    /// durable store — when there is one — is flushed before returning, so
    /// a SIGTERM'd server can be restarted over its own journal.
    pub fn run(self) -> io::Result<()> {
        let addr = self.local_addr()?;
        let sweeper = self.registry.idle_timeout().map(|max_idle| {
            let registry = Arc::clone(&self.registry);
            let shutdown = Arc::clone(&self.shutdown);
            thread::spawn(move || {
                // Sweep a few times per timeout period; sleep in short
                // slices so shutdown is observed promptly.
                let tick = (max_idle / 4).clamp(Duration::from_millis(50), Duration::from_secs(10));
                let slice = tick.min(Duration::from_millis(200));
                let mut slept = Duration::ZERO;
                while !shutdown.load(Ordering::SeqCst) {
                    thread::sleep(slice);
                    slept += slice;
                    if slept >= tick {
                        registry.sweep_idle(max_idle);
                        slept = Duration::ZERO;
                    }
                }
            })
        });
        let gate = Arc::new((Mutex::new(0usize), Condvar::new()));
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(stream) => {
                    // Small newline-framed writes both ways: without
                    // TCP_NODELAY, Nagle + delayed ACKs put a ~40ms floor
                    // under every synchronous request.
                    let _ = stream.set_nodelay(true);
                    if !reserve_slot(&gate, self.config.max_connections) {
                        self.counters.rejected_busy.fetch_add(1, Ordering::Relaxed);
                        reject_busy(stream);
                        continue;
                    }
                    self.counters.accepted.fetch_add(1, Ordering::Relaxed);
                    self.counters
                        .active_connections
                        .fetch_add(1, Ordering::Relaxed);
                    let registry = Arc::clone(&self.registry);
                    let shutdown = Arc::clone(&self.shutdown);
                    let counters = Arc::clone(&self.counters);
                    let gate = Arc::clone(&gate);
                    let config = self.config;
                    thread::spawn(move || {
                        serve_connection(&registry, stream, &shutdown, addr, &config, &counters);
                        counters.active_connections.fetch_sub(1, Ordering::Relaxed);
                        let (slots, freed) = &*gate;
                        *slots.lock().expect("accept gate poisoned") -= 1;
                        freed.notify_all();
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
                Err(e) => return Err(e),
            }
        }
        // Drain: every connection observes the shutdown flag within a read
        // tick, delivers its queued responses, notices, and exits.
        {
            let (slots, freed) = &*gate;
            let mut live = slots.lock().expect("accept gate poisoned");
            while *live > 0 {
                let (guard, _) = freed
                    .wait_timeout(live, Duration::from_millis(200))
                    .expect("accept gate poisoned");
                live = guard;
            }
        }
        if let Some(sweeper) = sweeper {
            let _ = sweeper.join();
        }
        // Flush the journal so a restart over the same store resumes
        // exactly where this process stopped.
        self.registry
            .flush_store()
            .map_err(|e| io::Error::other(e.to_string()))?;
        Ok(())
    }
}

/// Claims an accept-gate slot, waiting briefly for one to free up.
fn reserve_slot(gate: &Arc<(Mutex<usize>, Condvar)>, max_connections: usize) -> bool {
    let (slots, freed) = &**gate;
    let deadline = Instant::now() + ACCEPT_GATE_GRACE;
    let mut live = slots.lock().expect("accept gate poisoned");
    loop {
        if *live < max_connections {
            *live += 1;
            return true;
        }
        let now = Instant::now();
        if now >= deadline {
            return false;
        }
        let (guard, _) = freed
            .wait_timeout(live, deadline - now)
            .expect("accept gate poisoned");
        live = guard;
    }
}

/// Turns a connection away at the accept gate with a structured notice.
fn reject_busy(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let mut text =
        serde_json::to_string(&closing_notice("server_at_capacity")).expect("JSON renders");
    text.push('\n');
    let _ = stream.write_all(text.as_bytes());
}

/// One message from a connection's reader to its processor. The channel is
/// the in-flight queue: FIFO, bounded, and the only path to the writer, so
/// responses and the final notice come out in request order.
enum ReaderMsg {
    /// A request line to answer (`Err` is a line the reader already
    /// rejected: too long, or not UTF-8).
    Request(Result<String, (ErrorKind, String)>),
    /// Close the connection after everything queued ahead has been
    /// answered, writing a `connection_closing` notice with this reason.
    Close(&'static str),
}

/// Serves one connection: spawns the reader, then processes its queue in
/// order until close, EOF, or a write failure.
fn serve_connection(
    registry: &SessionRegistry,
    stream: TcpStream,
    shutdown: &AtomicBool,
    addr: SocketAddr,
    config: &ServerConfig,
    counters: &ServerCounters,
) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    let (tx, rx): (SyncSender<ReaderMsg>, Receiver<ReaderMsg>) = sync_channel(config.max_inflight);
    thread::scope(|scope| {
        scope.spawn(move || read_loop(read_half, tx, shutdown, config, counters));
        let mut saw_shutdown_op = false;
        let mut writer_dead = false;
        while let Ok(msg) = rx.recv() {
            match msg {
                ReaderMsg::Request(item) => {
                    counters.note_dequeued();
                    if writer_dead {
                        // The client is gone; keep draining the queue so the
                        // reader is never wedged on a full channel, but skip
                        // the (possibly expensive) dispatch.
                        continue;
                    }
                    let (response, stop) = match item {
                        Ok(line) => {
                            if saw_shutdown_op {
                                (
                                    error_response(
                                        ErrorKind::ShuttingDown,
                                        "the server is draining after this connection's \
                                         `shutdown` request; pipeline no requests behind it"
                                            .to_string(),
                                    ),
                                    false,
                                )
                            } else {
                                let (response, stop, trace) =
                                    handle_request_traced(registry, Some(counters), &line);
                                if let (Some(slow_ms), Some(trace)) =
                                    (config.slow_ms, trace.as_ref())
                                {
                                    maybe_log_slow(slow_ms, trace);
                                }
                                (response, stop)
                            }
                        }
                        Err((kind, reason)) => (error_response(kind, reason), false),
                    };
                    if write_line(&mut writer, &response).is_err() {
                        writer_dead = true;
                        // Hanging up both halves turns the reader's next
                        // read into EOF, which unwinds the pair promptly.
                        let _ = writer.shutdown(std::net::Shutdown::Both);
                        continue;
                    }
                    counters.responses_written.fetch_add(1, Ordering::Relaxed);
                    if stop {
                        saw_shutdown_op = true;
                        shutdown.store(true, Ordering::SeqCst);
                        // Wake the accept loop so it observes the flag.
                        let _ = TcpStream::connect(addr);
                    }
                }
                ReaderMsg::Close(reason) => {
                    if !writer_dead {
                        let _ = write_line(&mut writer, &closing_notice(reason));
                    }
                    break; // the reader already returned after sending Close
                }
            }
        }
        let _ = writer.shutdown(std::net::Shutdown::Both);
    });
}

/// Emits one NDJSON slow-query line on stderr when the traced request's
/// total handling time (`serve.request` span) crossed `slow_ms`. The line
/// carries the op, the tenant, the total nanos, the per-stage breakdown,
/// and — for `publish`/`candidate` — the view's canonical form, so a slow
/// audit can be correlated with its cache identity without re-running it.
fn maybe_log_slow(slow_ms: u64, trace: &qvsec_obs::TraceSummary) {
    let total_nanos = trace.stage_nanos("serve.request").unwrap_or(0);
    if total_nanos < slow_ms.saturating_mul(1_000_000) {
        return;
    }
    qvsec_obs::counter("serve.slow_queries").inc();
    let note = |key: &str| {
        trace
            .notes
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
    };
    let mut entries = vec![
        ("slow_query".to_string(), Value::Bool(true)),
        (
            "total_nanos".to_string(),
            Value::Int(i128::from(total_nanos)),
        ),
    ];
    for key in ["op", "tenant", "canonical"] {
        if let Some(value) = note(key) {
            entries.push((key.to_string(), Value::Str(value)));
        }
    }
    entries.push((
        "stages".to_string(),
        Value::Array(
            trace
                .stages
                .iter()
                .map(|(stage, nanos)| {
                    Value::Object(vec![
                        ("stage".to_string(), Value::Str(stage.clone())),
                        ("nanos".to_string(), Value::Int(i128::from(*nanos))),
                    ])
                })
                .collect(),
        ),
    ));
    if let Ok(text) = serde_json::to_string(&Value::Object(entries)) {
        eprintln!("{text}");
    }
}

/// One step of the incremental, timeout-tolerant line reader.
enum ReadStep {
    /// Consumed `usize` bytes; `bool` says a newline completed the line.
    Data(usize, bool),
    /// The read timed out with no data (one [`READ_TICK`] elapsed).
    Quiet,
    /// End of stream (client closed, or a hard read error).
    Eof,
}

/// The per-connection reader: consumes request lines as fast as the client
/// sends them, enqueues them (blocking on the bounded channel for
/// backpressure), and enforces the connection lifecycle.
fn read_loop(
    stream: TcpStream,
    tx: SyncSender<ReaderMsg>,
    shutdown: &AtomicBool,
    config: &ServerConfig,
    counters: &ServerCounters,
) {
    if stream.set_read_timeout(Some(READ_TICK)).is_err() {
        return;
    }
    let mut reader = BufReader::new(stream);
    let mut line: Vec<u8> = Vec::new();
    let mut oversize = false;
    let mut idle = Duration::ZERO;
    let mut requests: u64 = 0;
    let mut bytes: u64 = 0;
    let mut drain_deadline: Option<Instant> = None;
    loop {
        if drain_deadline.is_none() && shutdown.load(Ordering::SeqCst) {
            // Graceful drain: keep answering lines already in flight, but
            // close at the first quiet tick (or the window's end).
            drain_deadline = Some(Instant::now() + DRAIN_WINDOW);
        }
        if let Some(deadline) = drain_deadline {
            if Instant::now() >= deadline {
                let _ = tx.send(ReaderMsg::Close("shutting_down"));
                return;
            }
        }
        let step = match reader.fill_buf() {
            Ok([]) => ReadStep::Eof,
            Ok(chunk) => match chunk.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    if !oversize {
                        line.extend_from_slice(&chunk[..pos]);
                    }
                    ReadStep::Data(pos + 1, true)
                }
                None => {
                    if !oversize {
                        line.extend_from_slice(chunk);
                    }
                    ReadStep::Data(chunk.len(), false)
                }
            },
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                ReadStep::Quiet
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => ReadStep::Eof,
        };
        match step {
            // EOF without a half-read line is the client's orderly close;
            // the processor finishes the queue when the channel hangs up.
            ReadStep::Eof => return,
            ReadStep::Quiet => {
                if drain_deadline.is_some() {
                    let _ = tx.send(ReaderMsg::Close("shutting_down"));
                    return;
                }
                idle += READ_TICK;
                if let Some(max) = config.idle_timeout {
                    if idle >= max {
                        counters.dropped_idle.fetch_add(1, Ordering::Relaxed);
                        let _ = tx.send(ReaderMsg::Close("idle_timeout"));
                        return;
                    }
                }
            }
            ReadStep::Data(consumed, complete) => {
                reader.consume(consumed);
                bytes = bytes.saturating_add(consumed as u64);
                idle = Duration::ZERO;
                if !oversize && line.len() > MAX_REQUEST_LINE_BYTES {
                    // Stop buffering: an unbounded line costs constant
                    // memory; the error goes out when its newline arrives.
                    oversize = true;
                    line = Vec::new();
                }
                if !complete {
                    continue;
                }
                let item = if oversize {
                    Err((
                        ErrorKind::LineTooLong,
                        format!("request line exceeds {MAX_REQUEST_LINE_BYTES} bytes"),
                    ))
                } else {
                    match String::from_utf8(std::mem::take(&mut line)) {
                        Ok(text) => {
                            if text.trim().is_empty() {
                                continue; // blank lines are keep-alive noise
                            }
                            Ok(text)
                        }
                        Err(_) => Err((
                            ErrorKind::BadRequest,
                            "request line is not UTF-8".to_string(),
                        )),
                    }
                };
                oversize = false;
                line.clear();
                counters.note_enqueued();
                if tx.send(ReaderMsg::Request(item)).is_err() {
                    counters.note_dequeued();
                    return; // processor is gone
                }
                requests += 1;
                if let Some(max) = config.max_requests_per_conn {
                    if requests >= max {
                        counters
                            .closed_request_limit
                            .fetch_add(1, Ordering::Relaxed);
                        let _ = tx.send(ReaderMsg::Close("request_limit"));
                        return;
                    }
                }
                if let Some(max) = config.max_bytes_per_conn {
                    if bytes >= max {
                        counters.closed_byte_limit.fetch_add(1, Ordering::Relaxed);
                        let _ = tx.send(ReaderMsg::Close("byte_limit"));
                        return;
                    }
                }
            }
        }
    }
}

/// Serializes `value` and writes it as one response line.
fn write_line(writer: &mut TcpStream, value: &Value) -> io::Result<()> {
    let mut text = serde_json::to_string(value).expect("JSON rendering is infallible");
    text.push('\n');
    writer.write_all(text.as_bytes())?;
    writer.flush()
}

/// True for server lines that answer no request (connection notices).
pub fn is_notice(line: &str) -> bool {
    line.starts_with(r#"{"notice""#)
}

/// Client helper: sends each request line over one connection and returns
/// the response lines, in order — strictly synchronous, one request in
/// flight. Used by `qvsec-cli request` and the smoke tests.
pub fn request_lines(addr: &str, lines: &[String]) -> io::Result<Vec<String>> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut responses = Vec::with_capacity(lines.len());
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        let mut response = String::new();
        if reader.read_line(&mut response)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-script",
            ));
        }
        let response = response.trim_end();
        if is_notice(response) {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                format!("connection closed by the server: {response}"),
            ));
        }
        responses.push(response.to_string());
    }
    Ok(responses)
}

/// Client helper: writes the whole script up front (pipelining through the
/// server's bounded in-flight queue), then reads one response per request,
/// in order. The response stream is byte-identical to [`request_lines`]
/// over the same script — pipelining changes scheduling, never answers.
pub fn request_lines_pipelined(addr: &str, lines: &[String]) -> io::Result<Vec<String>> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut expected = 0usize;
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
        expected += 1;
    }
    writer.flush()?;
    let _ = writer.shutdown(std::net::Shutdown::Write);
    let mut responses = Vec::with_capacity(expected);
    let mut response = String::new();
    while responses.len() < expected {
        response.clear();
        if reader.read_line(&mut response)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!(
                    "server closed after {} of {expected} responses",
                    responses.len()
                ),
            ));
        }
        let trimmed = response.trim_end();
        if is_notice(trimmed) {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                format!("connection closed by the server: {trimmed}"),
            ));
        }
        responses.push(trimmed.to_string());
    }
    Ok(responses)
}

/// What [`drive_scripts`] measured: per-connection response streams,
/// pooled per-request latencies, and how many requests never got answered.
#[derive(Debug, Default)]
pub struct DriveOutcome {
    /// Response lines per script, in request order.
    pub responses: Vec<Vec<String>>,
    /// One request→response round-trip time per answered request, pooled
    /// across connections (unordered).
    pub latencies_nanos: Vec<u64>,
    /// Requests that got no response (connection refused, closed early, or
    /// a `connection_closing` notice arrived instead).
    pub dropped: usize,
}

/// Drives `scripts` concurrently — one keep-alive connection per script,
/// each synchronous per request so a latency sample is one clean
/// request→response round trip. The saturation workhorse shared by
/// `qvsec-cli request --connections` and the bench harness.
pub fn drive_scripts(addr: &str, scripts: &[Vec<String>]) -> DriveOutcome {
    let mut outcome = DriveOutcome::default();
    let results: Vec<(Vec<String>, Vec<u64>, usize)> = thread::scope(|scope| {
        let handles: Vec<_> = scripts
            .iter()
            .map(|script| scope.spawn(move || drive_one(addr, script)))
            .collect();
        handles
            .into_iter()
            .zip(scripts)
            .map(|(handle, script)| {
                handle
                    .join()
                    .unwrap_or_else(|_| (Vec::new(), Vec::new(), live_lines(script)))
            })
            .collect()
    });
    for (responses, latencies, dropped) in results {
        outcome.responses.push(responses);
        outcome.latencies_nanos.extend(latencies);
        outcome.dropped += dropped;
    }
    outcome
}

fn live_lines(script: &[String]) -> usize {
    script.iter().filter(|l| !l.trim().is_empty()).count()
}

fn drive_one(addr: &str, script: &[String]) -> (Vec<String>, Vec<u64>, usize) {
    let expected = live_lines(script);
    let Ok(stream) = TcpStream::connect(addr) else {
        return (Vec::new(), Vec::new(), expected);
    };
    let _ = stream.set_nodelay(true);
    let Ok(mut writer) = stream.try_clone() else {
        return (Vec::new(), Vec::new(), expected);
    };
    let mut reader = BufReader::new(stream);
    let mut responses = Vec::with_capacity(expected);
    let mut latencies = Vec::with_capacity(expected);
    'script: for request in script {
        if request.trim().is_empty() {
            continue;
        }
        let start = Instant::now();
        if writer.write_all(request.as_bytes()).is_err()
            || writer.write_all(b"\n").is_err()
            || writer.flush().is_err()
        {
            break;
        }
        let mut response = String::new();
        match reader.read_line(&mut response) {
            Ok(0) | Err(_) => break,
            Ok(_) => {
                let trimmed = response.trim_end();
                if is_notice(trimmed) {
                    break 'script; // this request (and the rest) is dropped
                }
                latencies.push(start.elapsed().as_nanos() as u64);
                responses.push(trimmed.to_string());
            }
        }
    }
    let dropped = expected - responses.len();
    (responses, latencies, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvsec::engine::AuditEngine;
    use qvsec_data::{Domain, Schema};

    fn registry() -> Arc<SessionRegistry> {
        let mut schema = Schema::new();
        schema.add_relation("Employee", &["name", "department", "phone"]);
        let engine = Arc::new(AuditEngine::builder(schema, Domain::new()).build());
        Arc::new(SessionRegistry::new(engine))
    }

    fn spawn_server(max_connections: usize) -> (ServerHandle, thread::JoinHandle<io::Result<()>>) {
        spawn_server_with(ServerConfig {
            max_connections,
            ..ServerConfig::default()
        })
    }

    fn spawn_server_with(
        config: ServerConfig,
    ) -> (ServerHandle, thread::JoinHandle<io::Result<()>>) {
        let server = Server::bind_with(registry(), "127.0.0.1:0", config).unwrap();
        let handle = server.handle().unwrap();
        let join = thread::spawn(move || server.run());
        (handle, join)
    }

    /// Drops every `cache` member: interleaving-dependent counters are the
    /// one documented nondeterminism between warm and cold drives.
    fn strip_cache(value: &Value) -> Value {
        match value {
            Value::Object(fields) => Value::Object(
                fields
                    .iter()
                    .filter(|(key, _)| key != "cache")
                    .map(|(key, inner)| (key.clone(), strip_cache(inner)))
                    .collect(),
            ),
            Value::Array(items) => Value::Array(items.iter().map(strip_cache).collect()),
            other => other.clone(),
        }
    }

    #[test]
    fn serves_a_script_over_tcp_and_shuts_down() {
        let (handle, join) = spawn_server(2);
        let addr = handle.addr().to_string();
        let script: Vec<String> = [
            r#"{"op": "publish", "tenant": "a", "secret": "S(n, p) :- Employee(n, d, p)", "view": "V(n, d) :- Employee(n, d, p)"}"#,
            r#"{"op": "candidate", "tenant": "a", "view": "W(d, p) :- Employee(n, d, p)"}"#,
            r#"{"op": "stats"}"#,
        ]
        .into_iter()
        .map(String::from)
        .collect();
        let first = request_lines(&addr, &script).unwrap();
        assert_eq!(first.len(), 3);
        for response in &first {
            assert!(response.starts_with(r#"{"ok":true,"v":1"#), "{response}");
        }
        // Over TCP, `stats` surfaces the connection counters.
        assert!(
            first[2].contains(r#""server":{"accepted":"#),
            "{}",
            first[2]
        );
        // A second connection sees the same tenant state.
        let ping = request_lines(&addr, &[r#"{"op": "ping"}"#.to_string()]).unwrap();
        assert!(ping[0].contains(r#""tenants":1"#), "{}", ping[0]);
        // Shutdown over the wire stops the accept loop.
        let bye = request_lines(&addr, &[r#"{"op": "shutdown"}"#.to_string()]).unwrap();
        assert!(bye[0].contains(r#""shutdown":true"#));
        join.join().unwrap().unwrap();
        let stats = handle.stats();
        assert_eq!(stats.accepted, 3);
        assert_eq!(stats.responses_written, 5);
        assert_eq!(stats.queue_depth, 0, "the gauge must balance");
        assert!(stats.inflight_peak >= 1);
    }

    #[test]
    fn the_background_sweeper_expires_idle_tenants_in_every_shard() {
        use crate::registry::RegistryConfig;
        let mut schema = Schema::new();
        schema.add_relation("Employee", &["name", "department", "phone"]);
        let engine = Arc::new(
            qvsec::engine::AuditEngine::builder(schema, qvsec_data::Domain::new()).build(),
        );
        let registry = Arc::new(crate::registry::SessionRegistry::with_config(
            engine,
            RegistryConfig {
                shards: 16,
                idle_timeout: Some(std::time::Duration::from_millis(50)),
            },
        ));
        let server = Server::bind(Arc::clone(&registry), "127.0.0.1:0", 4).unwrap();
        let handle = server.handle().unwrap();
        let addr = handle.addr().to_string();
        let join = thread::spawn(move || server.run());
        // Open sessions for tenants landing (with near-certainty) in many
        // different shards, then go idle: the sweeper must clear them all,
        // not just whichever shard a later request touches.
        let opens: Vec<String> = (0..8)
            .map(|i| format!(
                r#"{{"op": "open", "tenant": "tenant-{i}", "secret": "S(n, p) :- Employee(n, d, p)"}}"#
            ))
            .collect();
        let responses = request_lines(&addr, &opens).unwrap();
        assert!(responses.iter().all(|r| r.starts_with(r#"{"ok":true"#)));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while registry.tenant_count() > 0 && std::time::Instant::now() < deadline {
            thread::sleep(std::time::Duration::from_millis(25));
        }
        assert_eq!(registry.tenant_count(), 0, "sweeper must clear all shards");
        handle.shutdown();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn oversized_lines_get_a_structured_error_and_the_connection_survives() {
        let (handle, join) = spawn_server(1);
        let addr = handle.addr().to_string();
        let stream = TcpStream::connect(&addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        // One line just over the cap (no valid JSON needed: the server must
        // reject on size alone, before parsing), then a normal request.
        let huge = vec![b'a'; MAX_REQUEST_LINE_BYTES + 16];
        writer.write_all(&huge).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.write_all(b"{\"op\": \"ping\"}\n").unwrap();
        writer.flush().unwrap();
        let mut first = String::new();
        reader.read_line(&mut first).unwrap();
        assert!(first.starts_with(r#"{"ok":false"#), "{first}");
        assert!(first.contains(r#""kind":"line_too_long""#), "{first}");
        assert!(first.contains("exceeds"), "{first}");
        let mut second = String::new();
        reader.read_line(&mut second).unwrap();
        assert!(second.starts_with(r#"{"ok":true"#), "{second}");
        drop(writer);
        drop(reader);
        handle.shutdown();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn malformed_lines_get_error_responses_without_killing_the_connection() {
        let (handle, join) = spawn_server(1);
        let addr = handle.addr().to_string();
        let script: Vec<String> = ["this is not json", r#"{"op": "ping"}"#]
            .into_iter()
            .map(String::from)
            .collect();
        let responses = request_lines(&addr, &script).unwrap();
        assert!(responses[0].starts_with(r#"{"ok":false"#));
        assert!(responses[0].contains(r#""kind":"bad_request""#));
        assert!(responses[1].starts_with(r#"{"ok":true"#));
        handle.shutdown();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn pipelined_scripts_get_the_same_responses_in_order() {
        let (handle, join) = spawn_server(2);
        let addr = handle.addr().to_string();
        let script: Vec<String> = [
            r#"{"op": "publish", "tenant": "p", "secret": "S(n, p) :- Employee(n, d, p)", "view": "V(n, d) :- Employee(n, d, p)"}"#,
            r#"{"op": "candidate", "tenant": "p", "view": "W(d, p) :- Employee(n, d, p)"}"#,
            r#"{"op": "snapshot", "tenant": "p", "label": "s1"}"#,
            r#"{"op": "candidate", "tenant": "p", "view": "X(n) :- Employee(n, d, p)"}"#,
            r#"{"op": "restore", "tenant": "p", "label": "s1"}"#,
        ]
        .into_iter()
        .map(String::from)
        .collect();
        let pipelined = request_lines_pipelined(&addr, &script).unwrap();
        assert_eq!(pipelined.len(), 5);
        // Ordering is observable through op-specific fields.
        assert!(
            pipelined[2].contains(r#""snapshot":"s1""#),
            "{}",
            pipelined[2]
        );
        assert!(pipelined[3].contains(r#""report""#), "{}", pipelined[3]);
        assert!(
            pipelined[4].contains(r#""restore":"s1""#),
            "{}",
            pipelined[4]
        );
        // And the stream matches a synchronous drive of the same script on
        // a fresh tenant (tenant-renamed so state does not overlap; cache
        // counters stripped — the second drive runs warm by design).
        let renamed: Vec<String> = script
            .iter()
            .map(|l| l.replace(r#""p""#, r#""q""#))
            .collect();
        let sync = request_lines(&addr, &renamed).unwrap();
        for (a, b) in pipelined.iter().zip(&sync) {
            let a = a
                .replace(r#""tenant":"p""#, r#""tenant":"q""#)
                .replace("tenant:p", "tenant:q");
            assert_eq!(
                strip_cache(&serde_json::parse(&a).unwrap()),
                strip_cache(&serde_json::parse(b).unwrap()),
                "pipelining changed a response"
            );
        }
        handle.shutdown();
        join.join().unwrap().unwrap();
        assert!(
            handle.stats().inflight_peak >= 2,
            "the reader never ran ahead"
        );
    }

    #[test]
    fn requests_pipelined_behind_shutdown_get_a_shutting_down_error() {
        let (handle, join) = spawn_server(1);
        let addr = handle.addr().to_string();
        let script: Vec<String> = [
            r#"{"op": "ping"}"#,
            r#"{"op": "shutdown"}"#,
            r#"{"op": "ping"}"#,
        ]
        .into_iter()
        .map(String::from)
        .collect();
        let responses = request_lines_pipelined(&addr, &script).unwrap();
        assert!(responses[0].starts_with(r#"{"ok":true"#));
        assert!(responses[1].contains(r#""shutdown":true"#));
        assert!(
            responses[2].contains(r#""kind":"shutting_down""#),
            "{}",
            responses[2]
        );
        join.join().unwrap().unwrap();
    }

    #[test]
    fn keep_alive_limits_close_with_a_structured_notice() {
        let (handle, join) = spawn_server_with(ServerConfig {
            max_connections: 2,
            max_requests_per_conn: Some(2),
            ..ServerConfig::default()
        });
        let addr = handle.addr().to_string();
        let stream = TcpStream::connect(&addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        for _ in 0..4 {
            writer.write_all(b"{\"op\": \"ping\"}\n").unwrap();
        }
        writer.flush().unwrap();
        let mut lines = Vec::new();
        let mut line = String::new();
        while reader.read_line(&mut line).unwrap() > 0 {
            lines.push(line.trim_end().to_string());
            line.clear();
        }
        // Two responses, then the closing notice, then EOF: the 3rd and
        // 4th requests were never read.
        assert_eq!(lines.len(), 3, "{lines:?}");
        assert!(lines[0].starts_with(r#"{"ok":true"#));
        assert!(lines[1].starts_with(r#"{"ok":true"#));
        assert!(is_notice(&lines[2]), "{}", lines[2]);
        assert!(
            lines[2].contains(r#""reason":"request_limit""#),
            "{}",
            lines[2]
        );
        handle.shutdown();
        join.join().unwrap().unwrap();
        assert_eq!(handle.stats().closed_request_limit, 1);
    }

    #[test]
    fn idle_connections_are_dropped_with_a_notice() {
        let (handle, join) = spawn_server_with(ServerConfig {
            max_connections: 2,
            idle_timeout: Some(Duration::from_millis(100)),
            ..ServerConfig::default()
        });
        let addr = handle.addr().to_string();
        let stream = TcpStream::connect(&addr).unwrap();
        let mut reader = BufReader::new(stream);
        // Send nothing: the first line the server ever sends is the notice.
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(is_notice(line.trim_end()), "{line}");
        assert!(line.contains(r#""reason":"idle_timeout""#), "{line}");
        handle.shutdown();
        join.join().unwrap().unwrap();
        assert_eq!(handle.stats().dropped_idle, 1);
    }

    #[test]
    fn the_accept_gate_turns_away_excess_connections() {
        let (handle, join) = spawn_server(1);
        let addr = handle.addr().to_string();
        // Hold the only slot open with a live, half-driven connection.
        let stream = TcpStream::connect(&addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writer.write_all(b"{\"op\": \"ping\"}\n").unwrap();
        writer.flush().unwrap();
        let mut first = String::new();
        reader.read_line(&mut first).unwrap();
        assert!(first.starts_with(r#"{"ok":true"#), "{first}");
        // The second connection is turned away (after the gate's grace).
        let extra = TcpStream::connect(&addr).unwrap();
        let mut extra_reader = BufReader::new(extra);
        let mut notice = String::new();
        extra_reader.read_line(&mut notice).unwrap();
        assert!(is_notice(notice.trim_end()), "{notice}");
        assert!(notice.contains("server_at_capacity"), "{notice}");
        drop(writer);
        drop(reader);
        handle.shutdown();
        join.join().unwrap().unwrap();
        let stats = handle.stats();
        assert_eq!(stats.rejected_busy, 1);
        assert_eq!(stats.accepted, 1);
    }

    #[test]
    fn drive_scripts_reports_latencies_and_drops() {
        let (handle, join) = spawn_server(8);
        let addr = handle.addr().to_string();
        let scripts: Vec<Vec<String>> = (0..4)
            .map(|i| {
                vec![
                    format!(
                        r#"{{"op": "open", "tenant": "d{i}", "secret": "S(n, p) :- Employee(n, d, p)"}}"#
                    ),
                    r#"{"op": "ping"}"#.to_string(),
                ]
            })
            .collect();
        let outcome = drive_scripts(&addr, &scripts);
        assert_eq!(outcome.dropped, 0);
        assert_eq!(outcome.responses.len(), 4);
        assert_eq!(outcome.latencies_nanos.len(), 8);
        assert!(outcome.responses.iter().all(|r| r.len() == 2));
        assert!(outcome.latencies_nanos.iter().all(|&n| n > 0));
        handle.shutdown();
        join.join().unwrap().unwrap();
    }
}
