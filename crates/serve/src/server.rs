//! The concurrent TCP front end: blocking sockets, a fixed worker pool,
//! newline-delimited JSON.
//!
//! Connections are accepted on one listener thread and handed to a fixed
//! pool of worker threads over a channel (the `std::thread` idiom the
//! workspace already uses — no async runtime, no extra dependencies). Each
//! worker owns a connection for its whole lifetime and serves its requests
//! strictly in order, so a client's request script sees deterministic
//! responses; different connections run on different workers and share
//! nothing but the [`SessionRegistry`] (whose shard/tenant locking keeps
//! concurrent tenants from contending).
//!
//! A `{"op": "shutdown"}` request answers, flips the shutdown flag and
//! wakes the accept loop with a loop-back connection; the server then stops
//! accepting, drains its workers and returns.

use crate::protocol::handle_request;
use crate::registry::SessionRegistry;
use serde_json::Value;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread;

/// Hard cap on one request line, in bytes (the newline excluded). A longer
/// line is answered with a structured `{"ok": false}` error and drained to
/// its newline, so the connection — and the requests behind it — survive;
/// without the cap a single unterminated line would buffer without bound.
pub const MAX_REQUEST_LINE_BYTES: usize = 1 << 20;

/// A bound (but not yet running) server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    registry: Arc<SessionRegistry>,
    workers: usize,
    shutdown: Arc<AtomicBool>,
}

/// A cloneable handle onto a running (or about-to-run) server: its address
/// and shutdown flag. Used by tests and embedders that run the server on a
/// background thread.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown and wakes the accept loop. Idempotent.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // A loop-back connection unblocks the (blocking) accept call.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7070`, or port 0 for an ephemeral
    /// port) over `registry` with `workers` connection-serving threads.
    pub fn bind(registry: Arc<SessionRegistry>, addr: &str, workers: usize) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            registry,
            workers: workers.max(1),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle for shutting the server down from another thread.
    pub fn handle(&self) -> io::Result<ServerHandle> {
        Ok(ServerHandle {
            addr: self.local_addr()?,
            shutdown: Arc::clone(&self.shutdown),
        })
    }

    /// Runs the accept loop until shutdown, dispatching connections to the
    /// worker pool. Blocks the calling thread. With an idle timeout
    /// configured on the registry, a background sweeper expires idle
    /// tenants in **every** shard — the in-dispatch sweeps only cover the
    /// shard a request happens to hash to, so without this a low-traffic
    /// shard would retain its sessions forever.
    pub fn run(self) -> io::Result<()> {
        let addr = self.local_addr()?;
        let sweeper = self.registry.idle_timeout().map(|max_idle| {
            let registry = Arc::clone(&self.registry);
            let shutdown = Arc::clone(&self.shutdown);
            thread::spawn(move || {
                use std::time::Duration;
                // Sweep a few times per timeout period; sleep in short
                // slices so shutdown is observed promptly.
                let tick = (max_idle / 4).clamp(Duration::from_millis(50), Duration::from_secs(10));
                let slice = tick.min(Duration::from_millis(200));
                let mut slept = Duration::ZERO;
                while !shutdown.load(Ordering::SeqCst) {
                    thread::sleep(slice);
                    slept += slice;
                    if slept >= tick {
                        registry.sweep_idle(max_idle);
                        slept = Duration::ZERO;
                    }
                }
            })
        });
        let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = channel();
        let rx = Arc::new(Mutex::new(rx));
        let mut pool = Vec::with_capacity(self.workers);
        for _ in 0..self.workers {
            let rx = Arc::clone(&rx);
            let registry = Arc::clone(&self.registry);
            let shutdown = Arc::clone(&self.shutdown);
            pool.push(thread::spawn(move || loop {
                let conn = rx.lock().expect("worker queue poisoned").recv();
                match conn {
                    Ok(stream) => serve_connection(&registry, stream, &shutdown, addr),
                    Err(_) => break, // sender dropped: server is draining
                }
            }));
        }
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(stream) => {
                    // A send only fails after drain started; drop the
                    // connection in that case.
                    let _ = tx.send(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
                Err(e) => return Err(e),
            }
        }
        drop(tx);
        for worker in pool {
            let _ = worker.join();
        }
        if let Some(sweeper) = sweeper {
            let _ = sweeper.join();
        }
        Ok(())
    }
}

/// Discards input up to and including the next newline (or EOF), in
/// buffer-sized steps so an arbitrarily long line costs constant memory.
fn drain_to_newline(reader: &mut impl BufRead) -> io::Result<()> {
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return Ok(());
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                reader.consume(pos + 1);
                return Ok(());
            }
            None => {
                let n = buf.len();
                reader.consume(n);
            }
        }
    }
}

/// Reads one bounded request line. `Ok(Some(Err(message)))` is a line the
/// server must answer with a structured error (too long, or not UTF-8);
/// `Ok(None)` is end-of-stream.
fn read_request_line(
    reader: &mut BufReader<TcpStream>,
) -> io::Result<Option<Result<String, String>>> {
    let mut buf = Vec::new();
    // One byte past the cap distinguishes "exactly at the cap" from "over".
    let mut limited = reader.by_ref().take((MAX_REQUEST_LINE_BYTES + 1) as u64);
    if limited.read_until(b'\n', &mut buf)? == 0 {
        return Ok(None);
    }
    if buf.last() == Some(&b'\n') {
        buf.pop();
    } else if buf.len() > MAX_REQUEST_LINE_BYTES {
        drain_to_newline(reader)?;
        return Ok(Some(Err(format!(
            "request line exceeds {MAX_REQUEST_LINE_BYTES} bytes"
        ))));
    }
    match String::from_utf8(buf) {
        Ok(line) => Ok(Some(Ok(line))),
        Err(_) => Ok(Some(Err("request line is not UTF-8".to_string()))),
    }
}

/// Serves one connection to completion: one JSON request per line, one JSON
/// response per line, in order.
fn serve_connection(
    registry: &SessionRegistry,
    stream: TcpStream,
    shutdown: &AtomicBool,
    addr: SocketAddr,
) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        let (response, stop) = match read_request_line(&mut reader) {
            Ok(Some(Ok(line))) => {
                if line.trim().is_empty() {
                    continue;
                }
                handle_request(registry, &line)
            }
            Ok(Some(Err(message))) => (
                Value::Object(vec![
                    ("ok".to_string(), Value::Bool(false)),
                    ("error".to_string(), Value::Str(message)),
                ]),
                false,
            ),
            Ok(None) | Err(_) => break,
        };
        let mut text = serde_json::to_string(&response).expect("JSON rendering is infallible");
        text.push('\n');
        if writer.write_all(text.as_bytes()).is_err() || writer.flush().is_err() {
            break;
        }
        if stop {
            shutdown.store(true, Ordering::SeqCst);
            // Wake the accept loop so it observes the flag.
            let _ = TcpStream::connect(addr);
            break;
        }
    }
}

/// Client helper: sends each request line over one connection and returns
/// the response lines, in order. Used by `qvsec-cli request` and the smoke
/// tests.
pub fn request_lines(addr: &str, lines: &[String]) -> io::Result<Vec<String>> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut responses = Vec::with_capacity(lines.len());
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        let mut response = String::new();
        if reader.read_line(&mut response)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-script",
            ));
        }
        responses.push(response.trim_end().to_string());
    }
    Ok(responses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvsec::engine::AuditEngine;
    use qvsec_data::{Domain, Schema};

    fn registry() -> Arc<SessionRegistry> {
        let mut schema = Schema::new();
        schema.add_relation("Employee", &["name", "department", "phone"]);
        let engine = Arc::new(AuditEngine::builder(schema, Domain::new()).build());
        Arc::new(SessionRegistry::new(engine))
    }

    fn spawn_server(workers: usize) -> (ServerHandle, thread::JoinHandle<io::Result<()>>) {
        let server = Server::bind(registry(), "127.0.0.1:0", workers).unwrap();
        let handle = server.handle().unwrap();
        let join = thread::spawn(move || server.run());
        (handle, join)
    }

    #[test]
    fn serves_a_script_over_tcp_and_shuts_down() {
        let (handle, join) = spawn_server(2);
        let addr = handle.addr().to_string();
        let script: Vec<String> = [
            r#"{"op": "publish", "tenant": "a", "secret": "S(n, p) :- Employee(n, d, p)", "view": "V(n, d) :- Employee(n, d, p)"}"#,
            r#"{"op": "candidate", "tenant": "a", "view": "W(d, p) :- Employee(n, d, p)"}"#,
            r#"{"op": "stats"}"#,
        ]
        .into_iter()
        .map(String::from)
        .collect();
        let first = request_lines(&addr, &script).unwrap();
        assert_eq!(first.len(), 3);
        for response in &first {
            assert!(response.starts_with(r#"{"ok":true"#), "{response}");
        }
        // A second connection sees the same tenant state.
        let ping = request_lines(&addr, &[r#"{"op": "ping"}"#.to_string()]).unwrap();
        assert!(ping[0].contains(r#""tenants":1"#), "{}", ping[0]);
        // Shutdown over the wire stops the accept loop.
        let bye = request_lines(&addr, &[r#"{"op": "shutdown"}"#.to_string()]).unwrap();
        assert!(bye[0].contains(r#""shutdown":true"#));
        join.join().unwrap().unwrap();
    }

    #[test]
    fn the_background_sweeper_expires_idle_tenants_in_every_shard() {
        use crate::registry::RegistryConfig;
        let mut schema = Schema::new();
        schema.add_relation("Employee", &["name", "department", "phone"]);
        let engine = Arc::new(
            qvsec::engine::AuditEngine::builder(schema, qvsec_data::Domain::new()).build(),
        );
        let registry = Arc::new(crate::registry::SessionRegistry::with_config(
            engine,
            RegistryConfig {
                shards: 16,
                idle_timeout: Some(std::time::Duration::from_millis(50)),
            },
        ));
        let server = Server::bind(Arc::clone(&registry), "127.0.0.1:0", 1).unwrap();
        let handle = server.handle().unwrap();
        let addr = handle.addr().to_string();
        let join = thread::spawn(move || server.run());
        // Open sessions for tenants landing (with near-certainty) in many
        // different shards, then go idle: the sweeper must clear them all,
        // not just whichever shard a later request touches.
        let opens: Vec<String> = (0..8)
            .map(|i| format!(
                r#"{{"op": "open", "tenant": "tenant-{i}", "secret": "S(n, p) :- Employee(n, d, p)"}}"#
            ))
            .collect();
        let responses = request_lines(&addr, &opens).unwrap();
        assert!(responses.iter().all(|r| r.starts_with(r#"{"ok":true"#)));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while registry.tenant_count() > 0 && std::time::Instant::now() < deadline {
            thread::sleep(std::time::Duration::from_millis(25));
        }
        assert_eq!(registry.tenant_count(), 0, "sweeper must clear all shards");
        handle.shutdown();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn oversized_lines_get_a_structured_error_and_the_connection_survives() {
        let (handle, join) = spawn_server(1);
        let addr = handle.addr().to_string();
        let stream = TcpStream::connect(&addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        // One line just over the cap (no valid JSON needed: the server must
        // reject on size alone, before parsing), then a normal request.
        let huge = vec![b'a'; MAX_REQUEST_LINE_BYTES + 16];
        writer.write_all(&huge).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.write_all(b"{\"op\": \"ping\"}\n").unwrap();
        writer.flush().unwrap();
        let mut first = String::new();
        reader.read_line(&mut first).unwrap();
        assert!(first.starts_with(r#"{"ok":false"#), "{first}");
        assert!(first.contains("exceeds"), "{first}");
        let mut second = String::new();
        reader.read_line(&mut second).unwrap();
        assert!(second.starts_with(r#"{"ok":true"#), "{second}");
        // Close the connection before shutdown: the drain joins the workers,
        // and a worker only releases a connection at its EOF.
        drop(writer);
        drop(reader);
        handle.shutdown();
        join.join().unwrap().unwrap();
    }

    #[test]
    fn malformed_lines_get_error_responses_without_killing_the_connection() {
        let (handle, join) = spawn_server(1);
        let addr = handle.addr().to_string();
        let script: Vec<String> = ["this is not json", r#"{"op": "ping"}"#]
            .into_iter()
            .map(String::from)
            .collect();
        let responses = request_lines(&addr, &script).unwrap();
        assert!(responses[0].starts_with(r#"{"ok":false"#));
        assert!(responses[1].starts_with(r#"{"ok":true"#));
        handle.shutdown();
        join.join().unwrap().unwrap();
    }
}
