//! The newline-delimited JSON wire protocol, v1.
//!
//! One request per line, one response per line, in order. Requests mirror
//! the CLI session-script steps, plus registry-level operations:
//!
//! ```json
//! {"op": "open",      "tenant": "alice", "secret": "S(n, p) :- Employee(n, d, p)"}
//! {"op": "publish",   "tenant": "alice", "view": "V(n, d) :- Employee(n, d, p)", "name": "bob"}
//! {"op": "candidate", "tenant": "alice", "view": "W(d) :- Employee(n, d, p)"}
//! {"op": "snapshot",  "tenant": "alice", "label": "pre-carol"}
//! {"op": "restore",   "tenant": "alice", "label": "pre-carol"}
//! {"op": "stats"}
//! {"op": "ping"}
//! {"op": "persist"}
//! {"op": "shutdown"}
//! ```
//!
//! ## The safe-SQL front end
//!
//! Wherever an op takes a datalog query, it alternatively takes a safe-SQL
//! statement (see `qvsec-sql`): `"sql"` replaces `"view"` on
//! `publish`/`candidate` (the compiled view is named by `"name"`, default
//! `V`), and `"secret_sql"` replaces `"secret"` (named by `"secret_name"`,
//! default `S`). Three ops serve the front end directly:
//!
//! ```json
//! {"op": "sql", "sql": "SELECT name FROM Employee WHERE department = 'HR'"}
//! {"op": "show_tables"}
//! {"op": "show_columns", "table": "Employee"}
//! ```
//!
//! `sql` is pure analysis — it compiles the statement (or answers a
//! `SHOW ...` statement passed as SQL text) and returns each resulting
//! conjunctive query's name, datalog rendering and canonical form, without
//! touching any session. A statement outside the subset fails as
//! `bad_request` whose `error.detail` carries the structured rejection
//! (see below). `show_tables`/`show_columns` answer from the engine's
//! schema.
//!
//! ## The telemetry plane
//!
//! Two read-only ops surface the observability plane (`qvsec-obs`):
//!
//! ```json
//! {"op": "metrics"}
//! {"op": "explain", "view": "V(n) :- Employee(n, d, p)"}
//! ```
//!
//! `metrics` returns the unified snapshot — process-global counters, span
//! histograms, and every legacy counter bag folded in as gauges (see
//! [`crate::metrics::collect_metrics`]). `explain` takes a query in either
//! spelling (`view` or `sql`, like `publish`) and reports, per resulting
//! conjunctive query, its canonical form and which cache tier
//! (`memory` | `store` | `uncached`) holds each compiled artifact — the
//! crit sets (with the cached active-domain sizes), the candidate space,
//! and the memoized symmetry-class verdicts. The probe is strictly
//! read-only: it promotes nothing, refreshes no LRU recency and bumps no
//! counter, so `explain` can never change a later verdict or an eviction.
//! `SHOW CANONICAL SELECT ...` through the `sql` op answers with the same
//! shape.
//!
//! Any request may additionally carry `"timing": true` to receive a
//! `"timing"` member on its response — total handling nanos plus, when
//! span tracing is enabled, the per-stage breakdown. Timing is off by
//! default and its values are nondeterministic, so byte-comparing scripts
//! strip the member (mirroring the `"server"` stats exception).
//!
//! ## The envelope
//!
//! Requests may carry a `"v"` field naming the protocol version they were
//! written against; a version this server does not speak is rejected with a
//! stated reason (a missing `"v"` means "current"). Every response opens
//! with the same two fields — `"ok"` and `"v"` — so clients can dispatch on
//! a fixed prefix:
//!
//! ```json
//! {"ok": true,  "v": 1, ...}
//! {"ok": false, "v": 1, "error": {"kind": "bad_request", "reason": "..."}}
//! ```
//!
//! Failures carry a structured error: a machine-readable [`ErrorKind`]
//! plus a human-readable reason, and — when the failure has machine-usable
//! structure, such as a SQL rejection — an *optional* `detail` object.
//! `detail` is additive: v1 clients that only read `kind`/`reason` keep
//! working unchanged. For SQL rejections it carries the closed-enum reason
//! code and the byte span of the offending construct:
//!
//! ```json
//! {"ok": false, "v": 1, "error": {"kind": "bad_request", "reason": "...",
//!   "detail": {"reason": "unsupported_or", "span": {"start": 38, "end": 40}}}}
//! ```
//!
//! The server may also emit a line that is
//! *not* a response to any request — a connection-lifecycle notice,
//! distinguished by its leading `"notice"` field:
//!
//! ```json
//! {"notice": "connection_closing", "v": 1, "reason": "idle_timeout"}
//! ```
//!
//! `persist` flushes the durable store (when the server was started with
//! one — see the CLI's `--store`) and reports the backend name; without a
//! store it answers `{"ok": true, "v": 1, "persisted": false}`.
//!
//! `publish`/`candidate` on a tenant with no session require a `secret`
//! field (which opens one); established tenants omit it. `report` carries
//! the full serialized [`qvsec::SessionReport`] for audits; `stats` carries
//! a [`crate::registry::RegistryStats`] plus — when served over TCP — the
//! [`crate::server::ServerStats`] connection counters under `"server"`.
//! Responses carry no timestamps, so replaying a request script is
//! byte-deterministic (the CI smoke job replays the committed two-tenant
//! script twice and diffs; the process-local `"server"` counters are the
//! one documented exception and are stripped before byte comparisons).

use crate::registry::SessionRegistry;
use crate::server::ServerCounters;
use crate::ServeError;
use qvsec_cq::ConjunctiveQuery;
use serde::Deserialize;
use serde_json::Value;

/// The protocol version this server speaks. Responses echo it; requests
/// naming any other version are rejected with [`ErrorKind::BadRequest`].
pub const PROTOCOL_VERSION: i128 = 1;

/// Machine-readable error classes for the `error.kind` field of a failure
/// response. One closed enum replaces the ad-hoc error strings of protocol
/// v0 — clients branch on the kind and show the reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// The line was not valid JSON, named an unknown op or protocol
    /// version, omitted a required field, or was otherwise malformed.
    BadRequest,
    /// The request line exceeded [`crate::server::MAX_REQUEST_LINE_BYTES`].
    LineTooLong,
    /// A query mentioned constants outside the server's declared domain.
    UndeclaredConstant,
    /// The tenant has no live session (never opened, or idle-retired);
    /// re-open it by re-sending the `secret`.
    TenantRetired,
    /// The server is draining after a `shutdown` request; this request was
    /// not processed.
    ShuttingDown,
    /// The audit engine or durable store failed; not the client's fault.
    Internal,
}

impl ErrorKind {
    /// The wire spelling (`snake_case`).
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::LineTooLong => "line_too_long",
            ErrorKind::UndeclaredConstant => "undeclared_constant",
            ErrorKind::TenantRetired => "tenant_retired",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::Internal => "internal",
        }
    }

    /// Parses the wire spelling back into the enum (for clients).
    pub fn from_wire(text: &str) -> Option<ErrorKind> {
        Some(match text {
            "bad_request" => ErrorKind::BadRequest,
            "line_too_long" => ErrorKind::LineTooLong,
            "undeclared_constant" => ErrorKind::UndeclaredConstant,
            "tenant_retired" => ErrorKind::TenantRetired,
            "shutting_down" => ErrorKind::ShuttingDown,
            "internal" => ErrorKind::Internal,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One parsed request line. Unknown *ops* produce an error response;
/// unknown (e.g. typo'd) *fields* are ignored by deserialization, like
/// most JSON APIs — clients must not rely on field-name validation.
#[derive(Debug, Clone, Default, Deserialize)]
pub struct WireRequest {
    /// The operation: `open` | `publish` | `candidate` | `snapshot` |
    /// `restore` | `sql` | `show_tables` | `show_columns` | `explain` |
    /// `metrics` | `stats` | `ping` | `persist` | `shutdown`.
    pub op: String,
    /// Protocol version the request was written against (optional; absent
    /// means [`PROTOCOL_VERSION`]).
    pub v: Option<i128>,
    /// Tenant id (required for every per-tenant op).
    pub tenant: Option<String>,
    /// Secret query, datalog syntax (opens a session on first contact).
    pub secret: Option<String>,
    /// Secret query, safe-SQL syntax — the front-end alternative to
    /// `secret`; exactly one of the two may be present.
    pub secret_sql: Option<String>,
    /// Query name for a `secret_sql` secret (defaults to `S`, matching the
    /// conventional datalog spelling `S(...) :- ...`).
    pub secret_name: Option<String>,
    /// View query, datalog syntax (`publish` / `candidate`).
    pub view: Option<String>,
    /// View query, safe-SQL syntax — the front-end alternative to `view`
    /// on `publish`/`candidate`, and the statement analysed by the `sql`
    /// op. Exactly one of `view`/`sql` may be present per request.
    pub sql: Option<String>,
    /// Recipient label for `publish` (defaults to the view's query name);
    /// also names the query a `sql` view compiles to (default `V`).
    pub name: Option<String>,
    /// Snapshot label (`snapshot` / `restore`).
    pub label: Option<String>,
    /// Relation name for `show_columns`.
    pub table: Option<String>,
    /// Opt-in per-response timing: when `true`, the response gains a
    /// `"timing"` member carrying the total handling nanos and — when span
    /// tracing is on — the per-stage breakdown. Off by default; timing
    /// values are nondeterministic, so byte-comparing scripts strip the
    /// member.
    pub timing: Option<bool>,
}

fn ok(fields: Vec<(String, Value)>) -> Value {
    let mut entries = vec![
        ("ok".to_string(), Value::Bool(true)),
        ("v".to_string(), Value::Int(PROTOCOL_VERSION)),
    ];
    entries.extend(fields);
    Value::Object(entries)
}

/// Builds a structured failure response:
/// `{"ok": false, "v": 1, "error": {"kind": ..., "reason": ...}}`.
pub fn error_response(kind: ErrorKind, reason: String) -> Value {
    error_response_with_detail(kind, reason, None)
}

/// [`error_response`] with an optional machine-usable `detail` member
/// inside `error` — e.g. the reason code and byte span of a SQL rejection.
/// `detail` is additive to the v1 envelope: clients that only read
/// `kind`/`reason` are unaffected when it appears.
pub fn error_response_with_detail(kind: ErrorKind, reason: String, detail: Option<Value>) -> Value {
    let mut error = vec![
        ("kind".to_string(), Value::Str(kind.as_str().to_string())),
        ("reason".to_string(), Value::Str(reason)),
    ];
    if let Some(detail) = detail {
        error.push(("detail".to_string(), detail));
    }
    Value::Object(vec![
        ("ok".to_string(), Value::Bool(false)),
        ("v".to_string(), Value::Int(PROTOCOL_VERSION)),
        ("error".to_string(), Value::Object(error)),
    ])
}

/// Builds a connection-lifecycle notice — a line that answers no request:
/// `{"notice": "connection_closing", "v": 1, "reason": ...}`. Clients
/// recognise notices by the leading `"notice"` field.
pub fn closing_notice(reason: &str) -> Value {
    Value::Object(vec![
        (
            "notice".to_string(),
            Value::Str("connection_closing".to_string()),
        ),
        ("v".to_string(), Value::Int(PROTOCOL_VERSION)),
        ("reason".to_string(), Value::Str(reason.to_string())),
    ])
}

fn err(e: &ServeError) -> Value {
    let detail = match e {
        ServeError::Sql(sql) => Some(Value::Object(vec![
            (
                "reason".to_string(),
                Value::Str(sql.reason.code().to_string()),
            ),
            (
                "span".to_string(),
                Value::Object(vec![
                    ("start".to_string(), Value::Int(sql.span.start as i128)),
                    ("end".to_string(), Value::Int(sql.span.end as i128)),
                ]),
            ),
        ])),
        _ => None,
    };
    error_response_with_detail(e.kind(), e.to_string(), detail)
}

fn require<'a>(field: &'a Option<String>, what: &str) -> crate::Result<&'a str> {
    field
        .as_deref()
        .ok_or_else(|| ServeError::Parse(format!("missing required field `{what}`")))
}

/// `{"name": ..., "columns": [...]}` for one relation of the schema.
fn relation_value(relation: &qvsec_data::RelationSchema) -> Value {
    Value::Object(vec![
        ("name".to_string(), Value::Str(relation.name.clone())),
        (
            "columns".to_string(),
            Value::Array(
                relation
                    .attributes
                    .iter()
                    .map(|a| Value::Str(a.clone()))
                    .collect(),
            ),
        ),
    ])
}

/// Response fields for `show_tables`: every relation with its columns, in
/// schema declaration order.
fn show_tables_fields(registry: &SessionRegistry) -> Vec<(String, Value)> {
    let schema = registry.engine().schema();
    let tables = schema
        .relation_ids()
        .map(|id| relation_value(schema.relation(id)))
        .collect();
    vec![("tables".to_string(), Value::Array(tables))]
}

/// Response fields for `show_columns`, resolving `table` the same way the
/// SQL compiler resolves relation names: exact match first, then a unique
/// case-insensitive match. `span` (present when the request arrived as a
/// `SHOW COLUMNS` statement) locates the table name in the SQL source so
/// an unknown table fails with the standard structured rejection.
fn show_columns_fields(
    registry: &SessionRegistry,
    table: &str,
    span: Option<qvsec_sql::Span>,
) -> crate::Result<Vec<(String, Value)>> {
    let schema = registry.engine().schema();
    let resolved = schema.relation_by_name(table).or_else(|| {
        let mut hits = schema
            .relation_ids()
            .filter(|id| schema.relation(*id).name.eq_ignore_ascii_case(table));
        match (hits.next(), hits.next()) {
            (Some(id), None) => Some(id),
            _ => None,
        }
    });
    match resolved {
        Some(id) => {
            let relation = schema.relation(id);
            Ok(vec![
                ("table".to_string(), Value::Str(relation.name.clone())),
                (
                    "columns".to_string(),
                    Value::Array(
                        relation
                            .attributes
                            .iter()
                            .map(|a| Value::Str(a.clone()))
                            .collect(),
                    ),
                ),
            ])
        }
        None => {
            let known: Vec<&str> = schema
                .relation_ids()
                .map(|id| schema.relation(id).name.as_str())
                .collect();
            let message = format!("unknown table `{table}` (schema has: {})", known.join(", "));
            Err(ServeError::Sql(qvsec_sql::SqlError::new(
                qvsec_sql::RejectReason::UnknownTable,
                span.unwrap_or_else(|| qvsec_sql::Span::point(0)),
                message,
            )))
        }
    }
}

/// Resolves the one view a `publish`/`candidate` request names, from
/// either its datalog (`view`) or safe-SQL (`sql`) spelling.
fn parse_view(
    registry: &SessionRegistry,
    request: &WireRequest,
) -> crate::Result<ConjunctiveQuery> {
    match (&request.view, &request.sql) {
        (Some(_), Some(_)) => Err(ServeError::Parse(
            "fields `view` and `sql` are mutually exclusive; send exactly one".to_string(),
        )),
        (Some(text), None) => registry.parse(text),
        (None, Some(text)) => {
            registry.parse_sql_single(text, request.name.as_deref().unwrap_or("V"))
        }
        (None, None) => Err(ServeError::Parse(
            "missing required field `view` (or its SQL form, `sql`)".to_string(),
        )),
    }
}

/// Renders one query's explain entry: name, datalog, canonical form and
/// the read-only artifact probe (`explain` op and `SHOW CANONICAL` share
/// this, so both surfaces answer identically).
fn explain_value(registry: &SessionRegistry, query: &ConjunctiveQuery) -> Value {
    let engine = registry.engine();
    let probe = engine.explain(query);
    Value::Object(vec![
        ("name".to_string(), Value::Str(query.name.clone())),
        (
            "datalog".to_string(),
            Value::Str(query.display(engine.schema(), engine.domain()).to_string()),
        ),
        ("canonical".to_string(), Value::Str(probe.form.clone())),
        (
            "artifacts".to_string(),
            Value::Object(vec![
                (
                    "crit".to_string(),
                    Value::Str(probe.crit.as_str().to_string()),
                ),
                (
                    "crit_domain_sizes".to_string(),
                    Value::Array(
                        probe
                            .crit_domain_sizes
                            .iter()
                            .map(|s| Value::Int(*s as i128))
                            .collect(),
                    ),
                ),
                (
                    "space".to_string(),
                    Value::Str(probe.space.as_str().to_string()),
                ),
                (
                    "class_verdicts".to_string(),
                    Value::Str(probe.class_verdicts.as_str().to_string()),
                ),
            ]),
        ),
    ])
}

/// `{"queries": [...]}` of explain entries.
fn explain_fields(
    registry: &SessionRegistry,
    queries: &[ConjunctiveQuery],
) -> Vec<(String, Value)> {
    vec![(
        "queries".to_string(),
        Value::Array(queries.iter().map(|q| explain_value(registry, q)).collect()),
    )]
}

/// Compiles the SELECT inside a `SHOW CANONICAL`, applying the registry's
/// closed-domain policy (spans in rejections reference the full statement
/// source, so carets land on the original text).
fn compile_show_canonical(
    registry: &SessionRegistry,
    stmt: &qvsec_sql::SelectStmt,
    source: &str,
    name: &str,
) -> crate::Result<Vec<ConjunctiveQuery>> {
    let engine = registry.engine();
    let mut domain = engine.domain().clone();
    let before = domain.len();
    let queries = qvsec_sql::compile_select(stmt, engine.schema(), &mut domain, name, source)
        .map_err(ServeError::Sql)?;
    if domain.len() != before {
        return Err(ServeError::UndeclaredConstant(source.to_string()));
    }
    Ok(queries)
}

fn dispatch(
    registry: &SessionRegistry,
    counters: Option<&ServerCounters>,
    request: &WireRequest,
) -> crate::Result<Value> {
    let parsed_secret = match (&request.secret, &request.secret_sql) {
        (Some(_), Some(_)) => {
            return Err(ServeError::Parse(
                "fields `secret` and `secret_sql` are mutually exclusive; send exactly one"
                    .to_string(),
            ))
        }
        (Some(text), None) => Some(registry.parse(text)?),
        (None, Some(text)) => {
            Some(registry.parse_sql_single(text, request.secret_name.as_deref().unwrap_or("S"))?)
        }
        (None, None) => None,
    };
    match request.op.as_str() {
        "ping" => Ok(ok(vec![(
            "tenants".to_string(),
            Value::Int(registry.tenant_count() as i128),
        )])),
        "stats" => {
            let stats = registry.stats();
            let mut fields = vec![(
                "stats".to_string(),
                serde_json::to_value(&stats).map_err(|e| ServeError::Parse(e.to_string()))?,
            )];
            // Connection counters only exist when serving over TCP; they
            // are process-local (never journaled), so byte-comparing smoke
            // scripts strip this member.
            if let Some(counters) = counters {
                fields.push((
                    "server".to_string(),
                    serde_json::to_value(&counters.snapshot())
                        .map_err(|e| ServeError::Parse(e.to_string()))?,
                ));
            }
            Ok(ok(fields))
        }
        "open" => {
            let tenant = require(&request.tenant, "tenant")?;
            let secret = parsed_secret
                .as_ref()
                .ok_or_else(|| ServeError::SecretRequired(tenant.to_string()))?;
            let views = registry.open(tenant, secret)?;
            Ok(ok(vec![
                ("tenant".to_string(), Value::Str(tenant.to_string())),
                ("views_published".to_string(), Value::Int(views as i128)),
            ]))
        }
        "publish" | "candidate" => {
            let tenant = require(&request.tenant, "tenant")?;
            let view = parse_view(registry, request)?;
            // Slow-query log context; rendering the canonical form costs
            // real time per request, so it waits for note capture (the
            // slow log's own switch), not just tracing.
            if qvsec_obs::note_capture_enabled() {
                qvsec_obs::annotate("canonical", qvsec_cq::canonical_form(&view));
            }
            let report = if request.op == "publish" {
                registry.publish(tenant, parsed_secret.as_ref(), request.name.clone(), view)?
            } else {
                registry.audit_candidate(tenant, parsed_secret.as_ref(), &view)?
            };
            Ok(ok(vec![
                ("tenant".to_string(), Value::Str(tenant.to_string())),
                (
                    "report".to_string(),
                    serde_json::to_value(&report).map_err(|e| ServeError::Parse(e.to_string()))?,
                ),
            ]))
        }
        "snapshot" | "restore" => {
            let tenant = require(&request.tenant, "tenant")?;
            let label = require(&request.label, "label")?;
            let views = if request.op == "snapshot" {
                registry.snapshot(tenant, label)?
            } else {
                registry.restore(tenant, label)?
            };
            Ok(ok(vec![
                ("tenant".to_string(), Value::Str(tenant.to_string())),
                (request.op.clone(), Value::Str(label.to_string())),
                ("views_published".to_string(), Value::Int(views as i128)),
            ]))
        }
        "persist" => match registry.flush_store()? {
            Some(backend) => Ok(ok(vec![
                ("persisted".to_string(), Value::Bool(true)),
                ("backend".to_string(), Value::Str(backend.to_string())),
            ])),
            None => Ok(ok(vec![("persisted".to_string(), Value::Bool(false))])),
        },
        "shutdown" => Ok(ok(vec![("shutdown".to_string(), Value::Bool(true))])),
        "metrics" => Ok(ok(vec![(
            "metrics".to_string(),
            crate::metrics::collect_metrics(registry, counters).to_json(),
        )])),
        "explain" => {
            let queries = match (&request.view, &request.sql) {
                (Some(_), Some(_)) => {
                    return Err(ServeError::Parse(
                        "fields `view` and `sql` are mutually exclusive; send exactly one"
                            .to_string(),
                    ))
                }
                (Some(text), None) => vec![registry.parse(text)?],
                (None, Some(text)) => {
                    registry.parse_sql(text, request.name.as_deref().unwrap_or("Q"))?
                }
                (None, None) => {
                    return Err(ServeError::Parse(
                        "missing required field `view` (or its SQL form, `sql`)".to_string(),
                    ))
                }
            };
            Ok(ok(explain_fields(registry, &queries)))
        }
        "sql" => {
            let text = require(&request.sql, "sql")?;
            match qvsec_sql::parse_statement(text).map_err(ServeError::Sql)? {
                // SHOW statements sent as SQL text answer exactly like the
                // dedicated introspection ops.
                qvsec_sql::Statement::ShowTables => Ok(ok(show_tables_fields(registry))),
                qvsec_sql::Statement::ShowColumns { table, table_span } => Ok(ok(
                    show_columns_fields(registry, &table, Some(table_span))?,
                )),
                qvsec_sql::Statement::ShowCanonical(stmt) => {
                    let name = request.name.as_deref().unwrap_or("Q");
                    let queries = compile_show_canonical(registry, &stmt, text, name)?;
                    Ok(ok(explain_fields(registry, &queries)))
                }
                qvsec_sql::Statement::Select(_) => {
                    let name = request.name.as_deref().unwrap_or("Q");
                    let queries = registry.parse_sql(text, name)?;
                    let engine = registry.engine();
                    let rendered = queries
                        .iter()
                        .map(|q| {
                            Value::Object(vec![
                                ("name".to_string(), Value::Str(q.name.clone())),
                                (
                                    "datalog".to_string(),
                                    Value::Str(
                                        q.display(engine.schema(), engine.domain()).to_string(),
                                    ),
                                ),
                                (
                                    "canonical".to_string(),
                                    Value::Str(qvsec_cq::canonical_form(q)),
                                ),
                            ])
                        })
                        .collect();
                    Ok(ok(vec![("queries".to_string(), Value::Array(rendered))]))
                }
            }
        }
        "show_tables" => Ok(ok(show_tables_fields(registry))),
        "show_columns" => {
            let table = require(&request.table, "table")?;
            Ok(ok(show_columns_fields(registry, table, None)?))
        }
        other => Err(ServeError::Parse(format!(
            "unknown op `{other}` (expected open | publish | candidate | snapshot | restore | sql | show_tables | show_columns | explain | metrics | stats | ping | persist | shutdown)"
        ))),
    }
}

/// Appends the opt-in `"timing"` member to a response object.
fn append_timing(
    response: &mut Value,
    total_nanos: u64,
    summary: Option<&qvsec_obs::TraceSummary>,
) {
    let stages = summary
        .map(|s| {
            s.stages
                .iter()
                .map(|(stage, nanos)| {
                    Value::Object(vec![
                        ("stage".to_string(), Value::Str(stage.clone())),
                        ("nanos".to_string(), Value::Int(*nanos as i128)),
                    ])
                })
                .collect()
        })
        .unwrap_or_default();
    let timing = Value::Object(vec![
        ("total_nanos".to_string(), Value::Int(total_nanos as i128)),
        ("stages".to_string(), Value::Array(stages)),
    ]);
    if let Value::Object(entries) = response {
        entries.push(("timing".to_string(), timing));
    }
}

/// Parses one request line and dispatches it, mapping every failure onto a
/// structured `{"ok": false}` response (a malformed line never tears down
/// the connection). `counters`, when given, surfaces the TCP front end's
/// connection counters through the `stats`/`metrics` ops. Returns the
/// response, whether the request asked the server to shut down, and — when
/// span tracing is enabled — the request's stage breakdown (the server's
/// slow-query log feeds off it).
///
/// Instrumentation here is side-channel only: the `serve.requests` /
/// `serve.errors` counters and the `serve.request` span never change a
/// response byte. The one response-visible addition is the `"timing"`
/// member, and only when the request carried `"timing": true`.
pub fn handle_request_traced(
    registry: &SessionRegistry,
    counters: Option<&ServerCounters>,
    line: &str,
) -> (Value, bool, Option<qvsec_obs::TraceSummary>) {
    qvsec_obs::counter("serve.requests").inc();
    let request: WireRequest =
        match serde_json::parse(line).and_then(|v| serde_json::from_value(&v)) {
            Ok(request) => request,
            Err(e) => {
                qvsec_obs::counter("serve.errors").inc();
                return (
                    error_response(ErrorKind::BadRequest, format!("bad request: {e}")),
                    false,
                    None,
                );
            }
        };
    if let Some(v) = request.v {
        if v != PROTOCOL_VERSION {
            qvsec_obs::counter("serve.errors").inc();
            return (
                error_response(
                    ErrorKind::BadRequest,
                    format!("unsupported protocol version {v} (this server speaks v={PROTOCOL_VERSION})"),
                ),
                false,
                None,
            );
        }
    }
    let timing_requested = request.timing.unwrap_or(false);
    let guard = qvsec_obs::begin_request_trace();
    // The clock is read here only when the caller opted into timing — the
    // merely-traced path gets its total from the serve.request span.
    let start = timing_requested.then(std::time::Instant::now);
    let span = qvsec_obs::Span::enter("serve.request");
    if qvsec_obs::note_capture_enabled() {
        qvsec_obs::annotate("op", request.op.clone());
        if let Some(tenant) = &request.tenant {
            qvsec_obs::annotate("tenant", tenant.clone());
        }
    }
    let shutdown = request.op == "shutdown";
    let (mut response, shutdown) = match dispatch(registry, counters, &request) {
        Ok(response) => (response, shutdown),
        Err(e) => {
            qvsec_obs::counter("serve.errors").inc();
            (err(&e), false)
        }
    };
    drop(span);
    let summary = guard.finish();
    if timing_requested {
        let total_nanos = start
            .map(|s| u64::try_from(s.elapsed().as_nanos()).unwrap_or(u64::MAX))
            .unwrap_or(0);
        append_timing(&mut response, total_nanos, summary.as_ref());
    }
    (response, shutdown, summary)
}

/// [`handle_request_traced`] without the trace summary — the plain
/// dispatch entry point.
pub fn handle_request_with(
    registry: &SessionRegistry,
    counters: Option<&ServerCounters>,
    line: &str,
) -> (Value, bool) {
    let (response, shutdown, _) = handle_request_traced(registry, counters, line);
    (response, shutdown)
}

/// [`handle_request_with`] without connection counters — the embedded
/// (in-process) entry point used by tests and the bench harness.
pub fn handle_request(registry: &SessionRegistry, line: &str) -> (Value, bool) {
    handle_request_with(registry, None, line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvsec::engine::AuditEngine;
    use qvsec_data::{Domain, Schema};
    use std::sync::Arc;

    fn registry() -> SessionRegistry {
        let mut schema = Schema::new();
        schema.add_relation("Employee", &["name", "department", "phone"]);
        let engine = Arc::new(AuditEngine::builder(schema, Domain::new()).build());
        SessionRegistry::new(engine)
    }

    fn error_kind(response: &Value) -> &str {
        response
            .field("error")
            .field("kind")
            .as_str()
            .expect("structured error carries a kind")
    }

    #[test]
    fn a_two_tenant_script_runs_end_to_end() {
        let reg = registry();
        let script = [
            r#"{"op": "ping"}"#,
            r#"{"op": "publish", "tenant": "a", "secret": "S(n, p) :- Employee(n, d, p)", "view": "VBob(n, d) :- Employee(n, d, p)", "name": "bob"}"#,
            r#"{"op": "publish", "tenant": "b", "secret": "S(n, p) :- Employee(n, d, p)", "view": "VCarol(d, p) :- Employee(n, d, p)"}"#,
            r#"{"op": "snapshot", "tenant": "a", "label": "s1"}"#,
            r#"{"op": "candidate", "tenant": "a", "view": "VCarol(d, p) :- Employee(n, d, p)"}"#,
            r#"{"op": "restore", "tenant": "a", "label": "s1"}"#,
            r#"{"op": "stats"}"#,
        ];
        let mut responses = Vec::new();
        for line in script {
            let (response, shutdown) = handle_request(&reg, line);
            assert!(!shutdown);
            assert_eq!(
                response.field("ok"),
                &Value::Bool(true),
                "{line} -> {response:?}"
            );
            assert_eq!(
                response.field("v"),
                &Value::Int(PROTOCOL_VERSION),
                "every response carries the envelope version"
            );
            responses.push(response);
        }
        assert_eq!(
            responses[1].field("report").field("report").field("secure"),
            &Value::Bool(false)
        );
        assert!(
            responses[2]
                .field("report")
                .field("cache")
                .field("crit_cache_hits")
                .as_int()
                .unwrap()
                > 0,
            "second tenant is served from the shared engine's warm caches"
        );
        let stats = responses[6].field("stats");
        assert_eq!(stats.field("tenants").as_array().unwrap().len(), 2);
        assert_eq!(stats.field("requests_served").as_int(), Some(5));
        // Embedded dispatch has no TCP front end, so no server counters.
        assert!(responses[6].field("server").is_null());
    }

    #[test]
    fn failures_map_onto_structured_error_kinds() {
        let reg = registry();
        // An established tenant, so unknown-snapshot is reachable below.
        let (opened, _) = handle_request(
            &reg,
            r#"{"op": "open", "tenant": "z", "secret": "S(n, p) :- Employee(n, d, p)"}"#,
        );
        assert_eq!(opened.field("ok"), &Value::Bool(true));
        for (line, kind) in [
            ("not json", "bad_request"),
            (r#"{"op": "warp"}"#, "bad_request"),
            (
                r#"{"op": "publish", "tenant": "a", "view": "V(n) :- Employee(n, d, p)"}"#,
                "tenant_retired",
            ),
            (
                r#"{"op": "publish", "tenant": "a", "secret": "S(n) :- Employee(n, d, p)"}"#,
                "bad_request",
            ),
            (
                r#"{"op": "restore", "tenant": "a", "label": "x"}"#,
                "tenant_retired",
            ),
            (
                r#"{"op": "restore", "tenant": "z", "label": "x"}"#,
                "bad_request",
            ),
            (
                r#"{"op": "candidate", "tenant": "ghost", "view": "V(n) :- Employee(n, d, p)"}"#,
                "tenant_retired",
            ),
            (
                r#"{"op": "open", "tenant": "a", "secret": "S(n) :- Employee(n, 'Skunkworks', p)"}"#,
                "undeclared_constant",
            ),
        ] {
            let (response, shutdown) = handle_request(&reg, line);
            assert!(!shutdown);
            assert_eq!(
                response.field("ok"),
                &Value::Bool(false),
                "{line} should fail: {response:?}"
            );
            assert_eq!(error_kind(&response), kind, "{line} -> {response:?}");
            assert!(
                !response.field("error").field("reason").is_null(),
                "every error states a reason: {response:?}"
            );
            assert!(
                ErrorKind::from_wire(error_kind(&response)).is_some(),
                "kinds round-trip through the enum"
            );
        }
        // The shutdown marker round-trips.
        let (response, shutdown) = handle_request(&reg, r#"{"op": "shutdown"}"#);
        assert!(shutdown);
        assert_eq!(response.field("ok"), &Value::Bool(true));
    }

    #[test]
    fn unknown_protocol_versions_are_rejected_with_a_stated_reason() {
        let reg = registry();
        // The current version is accepted, spelled explicitly or omitted.
        let (response, _) = handle_request(&reg, r#"{"op": "ping", "v": 1}"#);
        assert_eq!(response.field("ok"), &Value::Bool(true));
        // Any other version is a bad request naming both versions.
        let (response, shutdown) = handle_request(&reg, r#"{"op": "ping", "v": 2}"#);
        assert!(!shutdown);
        assert_eq!(response.field("ok"), &Value::Bool(false));
        assert_eq!(error_kind(&response), "bad_request");
        let reason = response.field("error").field("reason").as_str().unwrap();
        assert!(reason.contains("version 2"), "{reason}");
        assert!(reason.contains("v=1"), "{reason}");
        // Even a shutdown op under a wrong version does not shut down.
        let (_, shutdown) = handle_request(&reg, r#"{"op": "shutdown", "v": 99}"#);
        assert!(!shutdown);
    }

    fn registry_with_domain() -> SessionRegistry {
        let mut schema = Schema::new();
        schema.add_relation("Employee", &["name", "department", "phone"]);
        schema.add_relation("Dept", &["id", "floor"]);
        let engine =
            Arc::new(AuditEngine::builder(schema, Domain::with_constants(["HR", "Mgmt"])).build());
        SessionRegistry::new(engine)
    }

    #[test]
    fn sql_op_compiles_and_reports_canonical_forms() {
        let reg = registry_with_domain();
        let (response, _) = handle_request(
            &reg,
            r#"{"op": "sql", "sql": "SELECT name, phone FROM Employee WHERE department = 'HR'"}"#,
        );
        assert_eq!(response.field("ok"), &Value::Bool(true), "{response:?}");
        let queries = response.field("queries").as_array().unwrap();
        assert_eq!(queries.len(), 1);
        assert_eq!(queries[0].field("name").as_str(), Some("Q"));
        assert_eq!(
            queries[0].field("datalog").as_str(),
            Some("Q(name, phone) :- Employee(name, 'HR', phone)")
        );
        // The canonical form is exactly what the equivalent hand-written
        // datalog query canonicalises to — the cache-identity contract.
        let hand = reg.parse("Q(n, p) :- Employee(n, 'HR', p)").unwrap();
        assert_eq!(
            queries[0].field("canonical").as_str(),
            Some(qvsec_cq::canonical_form(&hand).as_str())
        );
        // An IN list expands to one query per member, names suffixed.
        let (response, _) = handle_request(
            &reg,
            r#"{"op": "sql", "sql": "SELECT name FROM Employee WHERE department IN ('HR', 'Mgmt')", "name": "W"}"#,
        );
        let queries = response.field("queries").as_array().unwrap();
        assert_eq!(queries.len(), 2);
        assert_eq!(queries[0].field("name").as_str(), Some("W_1"));
        assert_eq!(queries[1].field("name").as_str(), Some("W_2"));
    }

    #[test]
    fn sql_rejections_carry_detail_with_reason_and_span() {
        let reg = registry_with_domain();
        let sql_text = "SELECT name FROM Employee WHERE department = 'HR' OR phone = '5'";
        let line = format!(r#"{{"op": "sql", "sql": "{sql_text}"}}"#);
        let (response, _) = handle_request(&reg, &line);
        assert_eq!(response.field("ok"), &Value::Bool(false));
        assert_eq!(error_kind(&response), "bad_request");
        let detail = response.field("error").field("detail");
        assert_eq!(detail.field("reason").as_str(), Some("unsupported_or"));
        let start = detail.field("span").field("start").as_int().unwrap() as usize;
        let end = detail.field("span").field("end").as_int().unwrap() as usize;
        assert_eq!(&sql_text[start..end], "OR", "span locates the construct");
        // Constants outside the closed domain keep their dedicated kind.
        let (response, _) = handle_request(
            &reg,
            r#"{"op": "sql", "sql": "SELECT name FROM Employee WHERE department = 'Skunkworks'"}"#,
        );
        assert_eq!(error_kind(&response), "undeclared_constant");
        // Plain bad requests (no SQL structure) carry no detail member.
        let (response, _) = handle_request(&reg, r#"{"op": "warp"}"#);
        assert!(response.field("error").field("detail").is_null());
    }

    #[test]
    fn show_tables_and_show_columns_answer_from_the_schema() {
        let reg = registry_with_domain();
        let (response, _) = handle_request(&reg, r#"{"op": "show_tables"}"#);
        let tables = response.field("tables").as_array().unwrap();
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].field("name").as_str(), Some("Employee"));
        assert_eq!(
            tables[0].field("columns").as_array().unwrap().len(),
            3,
            "columns ride along in declaration order"
        );
        // Resolution is exact-first, then unique case-insensitive — the
        // same policy the SQL compiler applies to FROM clauses.
        let (response, _) = handle_request(&reg, r#"{"op": "show_columns", "table": "employee"}"#);
        assert_eq!(response.field("table").as_str(), Some("Employee"));
        let columns = response.field("columns").as_array().unwrap();
        assert_eq!(columns[1].as_str(), Some("department"));
        let (response, _) = handle_request(&reg, r#"{"op": "show_columns", "table": "Payroll"}"#);
        assert_eq!(error_kind(&response), "bad_request");
        assert_eq!(
            response
                .field("error")
                .field("detail")
                .field("reason")
                .as_str(),
            Some("unknown_table")
        );
        // SHOW statements through the `sql` op answer identically.
        let (via_sql, _) = handle_request(&reg, r#"{"op": "sql", "sql": "SHOW TABLES"}"#);
        assert_eq!(
            serde_json::to_string(&via_sql).unwrap(),
            serde_json::to_string(&handle_request(&reg, r#"{"op": "show_tables"}"#).0).unwrap()
        );
        let (via_sql, _) =
            handle_request(&reg, r#"{"op": "sql", "sql": "SHOW COLUMNS FROM Dept"}"#);
        assert_eq!(via_sql.field("table").as_str(), Some("Dept"));
    }

    #[test]
    fn sql_and_datalog_publishes_produce_identical_reports() {
        let datalog_reg = registry_with_domain();
        let sql_reg = registry_with_domain();
        let (datalog, _) = handle_request(
            &datalog_reg,
            r#"{"op": "publish", "tenant": "a", "secret": "S(n, p) :- Employee(n, d, p)", "view": "V(n, p) :- Employee(n, 'HR', p)", "name": "bob"}"#,
        );
        let (sql, _) = handle_request(
            &sql_reg,
            r#"{"op": "publish", "tenant": "a", "secret_sql": "SELECT name, phone FROM Employee", "sql": "SELECT name, phone FROM Employee WHERE department = 'HR'", "name": "bob"}"#,
        );
        assert_eq!(datalog.field("ok"), &Value::Bool(true), "{datalog:?}");
        assert_eq!(sql.field("ok"), &Value::Bool(true), "{sql:?}");
        assert_eq!(
            serde_json::to_string(&datalog.field("report")).unwrap(),
            serde_json::to_string(&sql.field("report")).unwrap(),
            "the front end compiles to the same audit, byte for byte"
        );
        // A SQL candidate against the SQL-opened session audits cleanly.
        let (candidate, _) = handle_request(
            &sql_reg,
            r#"{"op": "candidate", "tenant": "a", "sql": "SELECT department FROM Employee"}"#,
        );
        assert_eq!(candidate.field("ok"), &Value::Bool(true), "{candidate:?}");
        // view and sql at once is malformed, not silently resolved.
        let (both, _) = handle_request(
            &sql_reg,
            r#"{"op": "candidate", "tenant": "a", "view": "W(d) :- Employee(n, d, p)", "sql": "SELECT department FROM Employee"}"#,
        );
        assert_eq!(error_kind(&both), "bad_request");
    }

    #[test]
    fn explain_reports_canonical_forms_and_cache_tiers_without_perturbing() {
        let reg = registry_with_domain();
        let explain_line = r#"{"op": "explain", "view": "V(n, p) :- Employee(n, 'HR', p)"}"#;
        // Cold start: every artifact layer reports uncached.
        let (response, _) = handle_request(&reg, explain_line);
        assert_eq!(response.field("ok"), &Value::Bool(true), "{response:?}");
        let queries = response.field("queries").as_array().unwrap();
        assert_eq!(queries.len(), 1);
        let hand = reg.parse("V(n, p) :- Employee(n, 'HR', p)").unwrap();
        assert_eq!(
            queries[0].field("canonical").as_str(),
            Some(qvsec_cq::canonical_form(&hand).as_str())
        );
        let artifacts = queries[0].field("artifacts");
        assert_eq!(artifacts.field("crit").as_str(), Some("uncached"));
        assert_eq!(
            artifacts
                .field("crit_domain_sizes")
                .as_array()
                .unwrap()
                .len(),
            0
        );
        // Auditing the view warms its crit set; explain now sees it.
        let (published, _) = handle_request(
            &reg,
            r#"{"op": "publish", "tenant": "a", "secret": "S(n, p) :- Employee(n, d, p)", "view": "V(n, p) :- Employee(n, 'HR', p)"}"#,
        );
        assert_eq!(published.field("ok"), &Value::Bool(true), "{published:?}");
        let (response, _) = handle_request(&reg, explain_line);
        let queries = response.field("queries").as_array().unwrap();
        let artifacts = queries[0].field("artifacts");
        assert_eq!(artifacts.field("crit").as_str(), Some("memory"));
        assert!(!artifacts
            .field("crit_domain_sizes")
            .as_array()
            .unwrap()
            .is_empty());
        // The probe is strictly read-only: repeating it moves no counter.
        let before = reg.stats().engine_cache;
        for _ in 0..3 {
            handle_request(&reg, explain_line);
        }
        assert_eq!(
            reg.stats().engine_cache,
            before,
            "explain probes count nothing"
        );
    }

    #[test]
    fn show_canonical_matches_the_explain_op() {
        let reg = registry_with_domain();
        let (via_sql, _) = handle_request(
            &reg,
            r#"{"op": "sql", "sql": "SHOW CANONICAL SELECT name FROM Employee WHERE department = 'HR'"}"#,
        );
        assert_eq!(via_sql.field("ok"), &Value::Bool(true), "{via_sql:?}");
        let (via_explain, _) = handle_request(
            &reg,
            r#"{"op": "explain", "sql": "SELECT name FROM Employee WHERE department = 'HR'"}"#,
        );
        assert_eq!(
            serde_json::to_string(&via_sql).unwrap(),
            serde_json::to_string(&via_explain).unwrap(),
            "both surfaces share one rendering"
        );
        let queries = via_sql.field("queries").as_array().unwrap();
        assert!(queries[0].field("canonical").as_str().is_some());
        assert!(queries[0]
            .field("artifacts")
            .field("class_verdicts")
            .as_str()
            .is_some());
        // Rejections keep the structured SQL detail.
        let (rejected, _) = handle_request(
            &reg,
            r#"{"op": "sql", "sql": "SHOW CANONICAL SELECT name FROM Employee WHERE department = 'Skunkworks'"}"#,
        );
        assert_eq!(error_kind(&rejected), "undeclared_constant");
    }

    #[test]
    fn metrics_op_returns_the_unified_snapshot() {
        let reg = registry_with_domain();
        handle_request(&reg, r#"{"op": "ping"}"#);
        let (response, _) = handle_request(&reg, r#"{"op": "metrics"}"#);
        assert_eq!(response.field("ok"), &Value::Bool(true), "{response:?}");
        let metrics = response.field("metrics");
        assert!(!metrics.field("counters").is_null());
        assert!(!metrics.field("histograms").is_null());
        // Legacy bags are folded in as gauges, consistent with `stats`.
        let gauges = metrics.field("gauges");
        assert_eq!(
            gauges.field("registry.requests_served").as_int(),
            Some(reg.stats().requests_served as i128)
        );
        assert_eq!(
            gauges.field("cache.crit.hits").as_int(),
            Some(reg.stats().engine_cache.crit_cache_hits as i128)
        );
        // The process-global request counter has seen this test's traffic.
        assert!(
            metrics
                .field("counters")
                .field("serve.requests")
                .as_int()
                .unwrap()
                >= 2
        );
    }

    #[test]
    fn timing_member_appears_only_on_request() {
        let reg = registry_with_domain();
        let (untimed, _) = handle_request(&reg, r#"{"op": "ping"}"#);
        assert!(untimed.field("timing").is_null());
        let (timed, _) = handle_request(&reg, r#"{"op": "ping", "timing": true}"#);
        let timing = timed.field("timing");
        assert!(timing.field("total_nanos").as_int().is_some());
        assert!(!timing.field("stages").is_null());
        // Stripping the member recovers the untimed response, byte for
        // byte — the contract the CI diff relies on.
        let stripped = match &timed {
            Value::Object(entries) => Value::Object(
                entries
                    .iter()
                    .filter(|(name, _)| name != "timing")
                    .cloned()
                    .collect(),
            ),
            other => other.clone(),
        };
        assert_eq!(
            serde_json::to_string(&stripped).unwrap(),
            serde_json::to_string(&untimed).unwrap()
        );
        // `"timing": false` is the same as omitting it.
        let (off, _) = handle_request(&reg, r#"{"op": "ping", "timing": false}"#);
        assert!(off.field("timing").is_null());
    }

    #[test]
    fn persist_reports_the_store_backend_or_its_absence() {
        let reg = registry();
        let (response, _) = handle_request(&reg, r#"{"op": "persist"}"#);
        assert_eq!(response.field("ok"), &Value::Bool(true));
        assert_eq!(response.field("persisted"), &Value::Bool(false));

        let store: Arc<dyn qvsec_store::StoreBackend> = Arc::new(qvsec_store::MemStore::new());
        let mut schema = Schema::new();
        schema.add_relation("Employee", &["name", "department", "phone"]);
        let engine = Arc::new(
            AuditEngine::builder(schema, Domain::new())
                .store(Arc::clone(&store))
                .build(),
        );
        let durable =
            SessionRegistry::with_store(engine, crate::registry::RegistryConfig::default(), store)
                .unwrap();
        let (response, _) = handle_request(&durable, r#"{"op": "persist"}"#);
        assert_eq!(response.field("persisted"), &Value::Bool(true));
        assert_eq!(response.field("backend"), &Value::Str("mem".to_string()));
    }
}
