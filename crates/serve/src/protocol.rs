//! The newline-delimited JSON wire protocol.
//!
//! One request per line, one response per line, in order. Requests mirror
//! the CLI session-script steps, plus registry-level operations:
//!
//! ```json
//! {"op": "open",      "tenant": "alice", "secret": "S(n, p) :- Employee(n, d, p)"}
//! {"op": "publish",   "tenant": "alice", "view": "V(n, d) :- Employee(n, d, p)", "name": "bob"}
//! {"op": "candidate", "tenant": "alice", "view": "W(d) :- Employee(n, d, p)"}
//! {"op": "snapshot",  "tenant": "alice", "label": "pre-carol"}
//! {"op": "restore",   "tenant": "alice", "label": "pre-carol"}
//! {"op": "stats"}
//! {"op": "ping"}
//! {"op": "persist"}
//! {"op": "shutdown"}
//! ```
//!
//! `persist` flushes the durable store (when the server was started with
//! one — see the CLI's `--store`) and reports the backend name; without a
//! store it answers `{"ok": true, "persisted": false}`.
//!
//! `publish`/`candidate` on a tenant with no session require a `secret`
//! field (which opens one); established tenants omit it. Responses are
//! `{"ok": true, ...}` objects — `report` carries the full serialized
//! [`qvsec::SessionReport`] for audits, `stats` carries a
//! [`crate::registry::RegistryStats`] — or `{"ok": false, "error": "..."}`.
//! Responses carry no timestamps, so replaying a request script is
//! byte-deterministic (the CI smoke job replays the committed two-tenant
//! script twice and diffs).

use crate::registry::SessionRegistry;
use crate::ServeError;
use serde::Deserialize;
use serde_json::Value;

/// One parsed request line. Unknown *ops* produce an error response;
/// unknown (e.g. typo'd) *fields* are ignored by deserialization, like
/// most JSON APIs — clients must not rely on field-name validation.
#[derive(Debug, Clone, Default, Deserialize)]
pub struct WireRequest {
    /// The operation: `open` | `publish` | `candidate` | `snapshot` |
    /// `restore` | `stats` | `ping` | `persist` | `shutdown`.
    pub op: String,
    /// Tenant id (required for every per-tenant op).
    pub tenant: Option<String>,
    /// Secret query, datalog syntax (opens a session on first contact).
    pub secret: Option<String>,
    /// View query, datalog syntax (`publish` / `candidate`).
    pub view: Option<String>,
    /// Recipient label for `publish` (defaults to the view's query name).
    pub name: Option<String>,
    /// Snapshot label (`snapshot` / `restore`).
    pub label: Option<String>,
}

fn ok(fields: Vec<(String, Value)>) -> Value {
    let mut entries = vec![("ok".to_string(), Value::Bool(true))];
    entries.extend(fields);
    Value::Object(entries)
}

fn err(message: String) -> Value {
    Value::Object(vec![
        ("ok".to_string(), Value::Bool(false)),
        ("error".to_string(), Value::Str(message)),
    ])
}

fn require<'a>(field: &'a Option<String>, what: &str) -> crate::Result<&'a str> {
    field
        .as_deref()
        .ok_or_else(|| ServeError::Parse(format!("missing required field `{what}`")))
}

fn dispatch(registry: &SessionRegistry, request: &WireRequest) -> crate::Result<Value> {
    let parsed_secret = match &request.secret {
        Some(text) => Some(registry.parse(text)?),
        None => None,
    };
    match request.op.as_str() {
        "ping" => Ok(ok(vec![(
            "tenants".to_string(),
            Value::Int(registry.tenant_count() as i128),
        )])),
        "stats" => {
            let stats = registry.stats();
            Ok(ok(vec![(
                "stats".to_string(),
                serde_json::to_value(&stats).map_err(|e| ServeError::Parse(e.to_string()))?,
            )]))
        }
        "open" => {
            let tenant = require(&request.tenant, "tenant")?;
            let secret = parsed_secret
                .as_ref()
                .ok_or_else(|| ServeError::SecretRequired(tenant.to_string()))?;
            let views = registry.open(tenant, secret)?;
            Ok(ok(vec![
                ("tenant".to_string(), Value::Str(tenant.to_string())),
                ("views_published".to_string(), Value::Int(views as i128)),
            ]))
        }
        "publish" | "candidate" => {
            let tenant = require(&request.tenant, "tenant")?;
            let view = registry.parse(require(&request.view, "view")?)?;
            let report = if request.op == "publish" {
                registry.publish(tenant, parsed_secret.as_ref(), request.name.clone(), view)?
            } else {
                registry.audit_candidate(tenant, parsed_secret.as_ref(), &view)?
            };
            Ok(ok(vec![
                ("tenant".to_string(), Value::Str(tenant.to_string())),
                (
                    "report".to_string(),
                    serde_json::to_value(&report).map_err(|e| ServeError::Parse(e.to_string()))?,
                ),
            ]))
        }
        "snapshot" | "restore" => {
            let tenant = require(&request.tenant, "tenant")?;
            let label = require(&request.label, "label")?;
            let views = if request.op == "snapshot" {
                registry.snapshot(tenant, label)?
            } else {
                registry.restore(tenant, label)?
            };
            Ok(ok(vec![
                ("tenant".to_string(), Value::Str(tenant.to_string())),
                (request.op.clone(), Value::Str(label.to_string())),
                ("views_published".to_string(), Value::Int(views as i128)),
            ]))
        }
        "persist" => match registry.flush_store()? {
            Some(backend) => Ok(ok(vec![
                ("persisted".to_string(), Value::Bool(true)),
                ("backend".to_string(), Value::Str(backend.to_string())),
            ])),
            None => Ok(ok(vec![("persisted".to_string(), Value::Bool(false))])),
        },
        "shutdown" => Ok(ok(vec![(
            "shutdown".to_string(),
            Value::Bool(true),
        )])),
        other => Err(ServeError::Parse(format!(
            "unknown op `{other}` (expected open | publish | candidate | snapshot | restore | stats | ping | persist | shutdown)"
        ))),
    }
}

/// Parses one request line and dispatches it, mapping every failure onto an
/// `{"ok": false}` response (a malformed line never tears down the
/// connection). Returns the response plus whether the request asked the
/// server to shut down.
pub fn handle_request(registry: &SessionRegistry, line: &str) -> (Value, bool) {
    let request: WireRequest =
        match serde_json::parse(line).and_then(|v| serde_json::from_value(&v)) {
            Ok(request) => request,
            Err(e) => return (err(format!("bad request: {e}")), false),
        };
    let shutdown = request.op == "shutdown";
    match dispatch(registry, &request) {
        Ok(response) => (response, shutdown),
        Err(e) => (err(e.to_string()), false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvsec::engine::AuditEngine;
    use qvsec_data::{Domain, Schema};
    use std::sync::Arc;

    fn registry() -> SessionRegistry {
        let mut schema = Schema::new();
        schema.add_relation("Employee", &["name", "department", "phone"]);
        let engine = Arc::new(AuditEngine::builder(schema, Domain::new()).build());
        SessionRegistry::new(engine)
    }

    #[test]
    fn a_two_tenant_script_runs_end_to_end() {
        let reg = registry();
        let script = [
            r#"{"op": "ping"}"#,
            r#"{"op": "publish", "tenant": "a", "secret": "S(n, p) :- Employee(n, d, p)", "view": "VBob(n, d) :- Employee(n, d, p)", "name": "bob"}"#,
            r#"{"op": "publish", "tenant": "b", "secret": "S(n, p) :- Employee(n, d, p)", "view": "VCarol(d, p) :- Employee(n, d, p)"}"#,
            r#"{"op": "snapshot", "tenant": "a", "label": "s1"}"#,
            r#"{"op": "candidate", "tenant": "a", "view": "VCarol(d, p) :- Employee(n, d, p)"}"#,
            r#"{"op": "restore", "tenant": "a", "label": "s1"}"#,
            r#"{"op": "stats"}"#,
        ];
        let mut responses = Vec::new();
        for line in script {
            let (response, shutdown) = handle_request(&reg, line);
            assert!(!shutdown);
            assert_eq!(
                response.field("ok"),
                &Value::Bool(true),
                "{line} -> {response:?}"
            );
            responses.push(response);
        }
        assert_eq!(
            responses[1].field("report").field("report").field("secure"),
            &Value::Bool(false)
        );
        assert!(
            responses[2]
                .field("report")
                .field("cache")
                .field("crit_cache_hits")
                .as_int()
                .unwrap()
                > 0,
            "second tenant is served from the shared engine's warm caches"
        );
        let stats = responses[6].field("stats");
        assert_eq!(stats.field("tenants").as_array().unwrap().len(), 2);
        assert_eq!(stats.field("requests_served").as_int(), Some(5));
    }

    #[test]
    fn failures_map_onto_error_responses() {
        let reg = registry();
        for line in [
            "not json",
            r#"{"op": "warp"}"#,
            r#"{"op": "publish", "tenant": "a", "view": "V(n) :- Employee(n, d, p)"}"#,
            r#"{"op": "publish", "tenant": "a", "secret": "S(n) :- Employee(n, d, p)"}"#,
            r#"{"op": "restore", "tenant": "a", "label": "x"}"#,
        ] {
            let (response, shutdown) = handle_request(&reg, line);
            assert!(!shutdown);
            assert_eq!(
                response.field("ok"),
                &Value::Bool(false),
                "{line} should fail: {response:?}"
            );
            assert!(!response.field("error").is_null());
        }
        // The shutdown marker round-trips.
        let (response, shutdown) = handle_request(&reg, r#"{"op": "shutdown"}"#);
        assert!(shutdown);
        assert_eq!(response.field("ok"), &Value::Bool(true));
    }

    #[test]
    fn persist_reports_the_store_backend_or_its_absence() {
        let reg = registry();
        let (response, _) = handle_request(&reg, r#"{"op": "persist"}"#);
        assert_eq!(response.field("ok"), &Value::Bool(true));
        assert_eq!(response.field("persisted"), &Value::Bool(false));

        let store: Arc<dyn qvsec_store::StoreBackend> = Arc::new(qvsec_store::MemStore::new());
        let mut schema = Schema::new();
        schema.add_relation("Employee", &["name", "department", "phone"]);
        let engine = Arc::new(
            AuditEngine::builder(schema, Domain::new())
                .store(Arc::clone(&store))
                .build(),
        );
        let durable =
            SessionRegistry::with_store(engine, crate::registry::RegistryConfig::default(), store)
                .unwrap();
        let (response, _) = handle_request(&durable, r#"{"op": "persist"}"#);
        assert_eq!(response.field("persisted"), &Value::Bool(true));
        assert_eq!(response.field("backend"), &Value::Str("mem".to_string()));
    }
}
