//! The newline-delimited JSON wire protocol, v1.
//!
//! One request per line, one response per line, in order. Requests mirror
//! the CLI session-script steps, plus registry-level operations:
//!
//! ```json
//! {"op": "open",      "tenant": "alice", "secret": "S(n, p) :- Employee(n, d, p)"}
//! {"op": "publish",   "tenant": "alice", "view": "V(n, d) :- Employee(n, d, p)", "name": "bob"}
//! {"op": "candidate", "tenant": "alice", "view": "W(d) :- Employee(n, d, p)"}
//! {"op": "snapshot",  "tenant": "alice", "label": "pre-carol"}
//! {"op": "restore",   "tenant": "alice", "label": "pre-carol"}
//! {"op": "stats"}
//! {"op": "ping"}
//! {"op": "persist"}
//! {"op": "shutdown"}
//! ```
//!
//! ## The envelope
//!
//! Requests may carry a `"v"` field naming the protocol version they were
//! written against; a version this server does not speak is rejected with a
//! stated reason (a missing `"v"` means "current"). Every response opens
//! with the same two fields — `"ok"` and `"v"` — so clients can dispatch on
//! a fixed prefix:
//!
//! ```json
//! {"ok": true,  "v": 1, ...}
//! {"ok": false, "v": 1, "error": {"kind": "bad_request", "reason": "..."}}
//! ```
//!
//! Failures carry a structured error: a machine-readable [`ErrorKind`]
//! plus a human-readable reason. The server may also emit a line that is
//! *not* a response to any request — a connection-lifecycle notice,
//! distinguished by its leading `"notice"` field:
//!
//! ```json
//! {"notice": "connection_closing", "v": 1, "reason": "idle_timeout"}
//! ```
//!
//! `persist` flushes the durable store (when the server was started with
//! one — see the CLI's `--store`) and reports the backend name; without a
//! store it answers `{"ok": true, "v": 1, "persisted": false}`.
//!
//! `publish`/`candidate` on a tenant with no session require a `secret`
//! field (which opens one); established tenants omit it. `report` carries
//! the full serialized [`qvsec::SessionReport`] for audits; `stats` carries
//! a [`crate::registry::RegistryStats`] plus — when served over TCP — the
//! [`crate::server::ServerStats`] connection counters under `"server"`.
//! Responses carry no timestamps, so replaying a request script is
//! byte-deterministic (the CI smoke job replays the committed two-tenant
//! script twice and diffs; the process-local `"server"` counters are the
//! one documented exception and are stripped before byte comparisons).

use crate::registry::SessionRegistry;
use crate::server::ServerCounters;
use crate::ServeError;
use serde::Deserialize;
use serde_json::Value;

/// The protocol version this server speaks. Responses echo it; requests
/// naming any other version are rejected with [`ErrorKind::BadRequest`].
pub const PROTOCOL_VERSION: i128 = 1;

/// Machine-readable error classes for the `error.kind` field of a failure
/// response. One closed enum replaces the ad-hoc error strings of protocol
/// v0 — clients branch on the kind and show the reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// The line was not valid JSON, named an unknown op or protocol
    /// version, omitted a required field, or was otherwise malformed.
    BadRequest,
    /// The request line exceeded [`crate::server::MAX_REQUEST_LINE_BYTES`].
    LineTooLong,
    /// A query mentioned constants outside the server's declared domain.
    UndeclaredConstant,
    /// The tenant has no live session (never opened, or idle-retired);
    /// re-open it by re-sending the `secret`.
    TenantRetired,
    /// The server is draining after a `shutdown` request; this request was
    /// not processed.
    ShuttingDown,
    /// The audit engine or durable store failed; not the client's fault.
    Internal,
}

impl ErrorKind {
    /// The wire spelling (`snake_case`).
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::LineTooLong => "line_too_long",
            ErrorKind::UndeclaredConstant => "undeclared_constant",
            ErrorKind::TenantRetired => "tenant_retired",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::Internal => "internal",
        }
    }

    /// Parses the wire spelling back into the enum (for clients).
    pub fn from_wire(text: &str) -> Option<ErrorKind> {
        Some(match text {
            "bad_request" => ErrorKind::BadRequest,
            "line_too_long" => ErrorKind::LineTooLong,
            "undeclared_constant" => ErrorKind::UndeclaredConstant,
            "tenant_retired" => ErrorKind::TenantRetired,
            "shutting_down" => ErrorKind::ShuttingDown,
            "internal" => ErrorKind::Internal,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One parsed request line. Unknown *ops* produce an error response;
/// unknown (e.g. typo'd) *fields* are ignored by deserialization, like
/// most JSON APIs — clients must not rely on field-name validation.
#[derive(Debug, Clone, Default, Deserialize)]
pub struct WireRequest {
    /// The operation: `open` | `publish` | `candidate` | `snapshot` |
    /// `restore` | `stats` | `ping` | `persist` | `shutdown`.
    pub op: String,
    /// Protocol version the request was written against (optional; absent
    /// means [`PROTOCOL_VERSION`]).
    pub v: Option<i128>,
    /// Tenant id (required for every per-tenant op).
    pub tenant: Option<String>,
    /// Secret query, datalog syntax (opens a session on first contact).
    pub secret: Option<String>,
    /// View query, datalog syntax (`publish` / `candidate`).
    pub view: Option<String>,
    /// Recipient label for `publish` (defaults to the view's query name).
    pub name: Option<String>,
    /// Snapshot label (`snapshot` / `restore`).
    pub label: Option<String>,
}

fn ok(fields: Vec<(String, Value)>) -> Value {
    let mut entries = vec![
        ("ok".to_string(), Value::Bool(true)),
        ("v".to_string(), Value::Int(PROTOCOL_VERSION)),
    ];
    entries.extend(fields);
    Value::Object(entries)
}

/// Builds a structured failure response:
/// `{"ok": false, "v": 1, "error": {"kind": ..., "reason": ...}}`.
pub fn error_response(kind: ErrorKind, reason: String) -> Value {
    Value::Object(vec![
        ("ok".to_string(), Value::Bool(false)),
        ("v".to_string(), Value::Int(PROTOCOL_VERSION)),
        (
            "error".to_string(),
            Value::Object(vec![
                ("kind".to_string(), Value::Str(kind.as_str().to_string())),
                ("reason".to_string(), Value::Str(reason)),
            ]),
        ),
    ])
}

/// Builds a connection-lifecycle notice — a line that answers no request:
/// `{"notice": "connection_closing", "v": 1, "reason": ...}`. Clients
/// recognise notices by the leading `"notice"` field.
pub fn closing_notice(reason: &str) -> Value {
    Value::Object(vec![
        (
            "notice".to_string(),
            Value::Str("connection_closing".to_string()),
        ),
        ("v".to_string(), Value::Int(PROTOCOL_VERSION)),
        ("reason".to_string(), Value::Str(reason.to_string())),
    ])
}

fn err(e: &ServeError) -> Value {
    error_response(e.kind(), e.to_string())
}

fn require<'a>(field: &'a Option<String>, what: &str) -> crate::Result<&'a str> {
    field
        .as_deref()
        .ok_or_else(|| ServeError::Parse(format!("missing required field `{what}`")))
}

fn dispatch(
    registry: &SessionRegistry,
    counters: Option<&ServerCounters>,
    request: &WireRequest,
) -> crate::Result<Value> {
    let parsed_secret = match &request.secret {
        Some(text) => Some(registry.parse(text)?),
        None => None,
    };
    match request.op.as_str() {
        "ping" => Ok(ok(vec![(
            "tenants".to_string(),
            Value::Int(registry.tenant_count() as i128),
        )])),
        "stats" => {
            let stats = registry.stats();
            let mut fields = vec![(
                "stats".to_string(),
                serde_json::to_value(&stats).map_err(|e| ServeError::Parse(e.to_string()))?,
            )];
            // Connection counters only exist when serving over TCP; they
            // are process-local (never journaled), so byte-comparing smoke
            // scripts strip this member.
            if let Some(counters) = counters {
                fields.push((
                    "server".to_string(),
                    serde_json::to_value(&counters.snapshot())
                        .map_err(|e| ServeError::Parse(e.to_string()))?,
                ));
            }
            Ok(ok(fields))
        }
        "open" => {
            let tenant = require(&request.tenant, "tenant")?;
            let secret = parsed_secret
                .as_ref()
                .ok_or_else(|| ServeError::SecretRequired(tenant.to_string()))?;
            let views = registry.open(tenant, secret)?;
            Ok(ok(vec![
                ("tenant".to_string(), Value::Str(tenant.to_string())),
                ("views_published".to_string(), Value::Int(views as i128)),
            ]))
        }
        "publish" | "candidate" => {
            let tenant = require(&request.tenant, "tenant")?;
            let view = registry.parse(require(&request.view, "view")?)?;
            let report = if request.op == "publish" {
                registry.publish(tenant, parsed_secret.as_ref(), request.name.clone(), view)?
            } else {
                registry.audit_candidate(tenant, parsed_secret.as_ref(), &view)?
            };
            Ok(ok(vec![
                ("tenant".to_string(), Value::Str(tenant.to_string())),
                (
                    "report".to_string(),
                    serde_json::to_value(&report).map_err(|e| ServeError::Parse(e.to_string()))?,
                ),
            ]))
        }
        "snapshot" | "restore" => {
            let tenant = require(&request.tenant, "tenant")?;
            let label = require(&request.label, "label")?;
            let views = if request.op == "snapshot" {
                registry.snapshot(tenant, label)?
            } else {
                registry.restore(tenant, label)?
            };
            Ok(ok(vec![
                ("tenant".to_string(), Value::Str(tenant.to_string())),
                (request.op.clone(), Value::Str(label.to_string())),
                ("views_published".to_string(), Value::Int(views as i128)),
            ]))
        }
        "persist" => match registry.flush_store()? {
            Some(backend) => Ok(ok(vec![
                ("persisted".to_string(), Value::Bool(true)),
                ("backend".to_string(), Value::Str(backend.to_string())),
            ])),
            None => Ok(ok(vec![("persisted".to_string(), Value::Bool(false))])),
        },
        "shutdown" => Ok(ok(vec![("shutdown".to_string(), Value::Bool(true))])),
        other => Err(ServeError::Parse(format!(
            "unknown op `{other}` (expected open | publish | candidate | snapshot | restore | stats | ping | persist | shutdown)"
        ))),
    }
}

/// Parses one request line and dispatches it, mapping every failure onto a
/// structured `{"ok": false}` response (a malformed line never tears down
/// the connection). `counters`, when given, surfaces the TCP front end's
/// connection counters through the `stats` op. Returns the response plus
/// whether the request asked the server to shut down.
pub fn handle_request_with(
    registry: &SessionRegistry,
    counters: Option<&ServerCounters>,
    line: &str,
) -> (Value, bool) {
    let request: WireRequest =
        match serde_json::parse(line).and_then(|v| serde_json::from_value(&v)) {
            Ok(request) => request,
            Err(e) => {
                return (
                    error_response(ErrorKind::BadRequest, format!("bad request: {e}")),
                    false,
                )
            }
        };
    if let Some(v) = request.v {
        if v != PROTOCOL_VERSION {
            return (
                error_response(
                    ErrorKind::BadRequest,
                    format!("unsupported protocol version {v} (this server speaks v={PROTOCOL_VERSION})"),
                ),
                false,
            );
        }
    }
    let shutdown = request.op == "shutdown";
    match dispatch(registry, counters, &request) {
        Ok(response) => (response, shutdown),
        Err(e) => (err(&e), false),
    }
}

/// [`handle_request_with`] without connection counters — the embedded
/// (in-process) entry point used by tests and the bench harness.
pub fn handle_request(registry: &SessionRegistry, line: &str) -> (Value, bool) {
    handle_request_with(registry, None, line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvsec::engine::AuditEngine;
    use qvsec_data::{Domain, Schema};
    use std::sync::Arc;

    fn registry() -> SessionRegistry {
        let mut schema = Schema::new();
        schema.add_relation("Employee", &["name", "department", "phone"]);
        let engine = Arc::new(AuditEngine::builder(schema, Domain::new()).build());
        SessionRegistry::new(engine)
    }

    fn error_kind(response: &Value) -> &str {
        response
            .field("error")
            .field("kind")
            .as_str()
            .expect("structured error carries a kind")
    }

    #[test]
    fn a_two_tenant_script_runs_end_to_end() {
        let reg = registry();
        let script = [
            r#"{"op": "ping"}"#,
            r#"{"op": "publish", "tenant": "a", "secret": "S(n, p) :- Employee(n, d, p)", "view": "VBob(n, d) :- Employee(n, d, p)", "name": "bob"}"#,
            r#"{"op": "publish", "tenant": "b", "secret": "S(n, p) :- Employee(n, d, p)", "view": "VCarol(d, p) :- Employee(n, d, p)"}"#,
            r#"{"op": "snapshot", "tenant": "a", "label": "s1"}"#,
            r#"{"op": "candidate", "tenant": "a", "view": "VCarol(d, p) :- Employee(n, d, p)"}"#,
            r#"{"op": "restore", "tenant": "a", "label": "s1"}"#,
            r#"{"op": "stats"}"#,
        ];
        let mut responses = Vec::new();
        for line in script {
            let (response, shutdown) = handle_request(&reg, line);
            assert!(!shutdown);
            assert_eq!(
                response.field("ok"),
                &Value::Bool(true),
                "{line} -> {response:?}"
            );
            assert_eq!(
                response.field("v"),
                &Value::Int(PROTOCOL_VERSION),
                "every response carries the envelope version"
            );
            responses.push(response);
        }
        assert_eq!(
            responses[1].field("report").field("report").field("secure"),
            &Value::Bool(false)
        );
        assert!(
            responses[2]
                .field("report")
                .field("cache")
                .field("crit_cache_hits")
                .as_int()
                .unwrap()
                > 0,
            "second tenant is served from the shared engine's warm caches"
        );
        let stats = responses[6].field("stats");
        assert_eq!(stats.field("tenants").as_array().unwrap().len(), 2);
        assert_eq!(stats.field("requests_served").as_int(), Some(5));
        // Embedded dispatch has no TCP front end, so no server counters.
        assert!(responses[6].field("server").is_null());
    }

    #[test]
    fn failures_map_onto_structured_error_kinds() {
        let reg = registry();
        // An established tenant, so unknown-snapshot is reachable below.
        let (opened, _) = handle_request(
            &reg,
            r#"{"op": "open", "tenant": "z", "secret": "S(n, p) :- Employee(n, d, p)"}"#,
        );
        assert_eq!(opened.field("ok"), &Value::Bool(true));
        for (line, kind) in [
            ("not json", "bad_request"),
            (r#"{"op": "warp"}"#, "bad_request"),
            (
                r#"{"op": "publish", "tenant": "a", "view": "V(n) :- Employee(n, d, p)"}"#,
                "tenant_retired",
            ),
            (
                r#"{"op": "publish", "tenant": "a", "secret": "S(n) :- Employee(n, d, p)"}"#,
                "bad_request",
            ),
            (
                r#"{"op": "restore", "tenant": "a", "label": "x"}"#,
                "tenant_retired",
            ),
            (
                r#"{"op": "restore", "tenant": "z", "label": "x"}"#,
                "bad_request",
            ),
            (
                r#"{"op": "candidate", "tenant": "ghost", "view": "V(n) :- Employee(n, d, p)"}"#,
                "tenant_retired",
            ),
            (
                r#"{"op": "open", "tenant": "a", "secret": "S(n) :- Employee(n, 'Skunkworks', p)"}"#,
                "undeclared_constant",
            ),
        ] {
            let (response, shutdown) = handle_request(&reg, line);
            assert!(!shutdown);
            assert_eq!(
                response.field("ok"),
                &Value::Bool(false),
                "{line} should fail: {response:?}"
            );
            assert_eq!(error_kind(&response), kind, "{line} -> {response:?}");
            assert!(
                !response.field("error").field("reason").is_null(),
                "every error states a reason: {response:?}"
            );
            assert!(
                ErrorKind::from_wire(error_kind(&response)).is_some(),
                "kinds round-trip through the enum"
            );
        }
        // The shutdown marker round-trips.
        let (response, shutdown) = handle_request(&reg, r#"{"op": "shutdown"}"#);
        assert!(shutdown);
        assert_eq!(response.field("ok"), &Value::Bool(true));
    }

    #[test]
    fn unknown_protocol_versions_are_rejected_with_a_stated_reason() {
        let reg = registry();
        // The current version is accepted, spelled explicitly or omitted.
        let (response, _) = handle_request(&reg, r#"{"op": "ping", "v": 1}"#);
        assert_eq!(response.field("ok"), &Value::Bool(true));
        // Any other version is a bad request naming both versions.
        let (response, shutdown) = handle_request(&reg, r#"{"op": "ping", "v": 2}"#);
        assert!(!shutdown);
        assert_eq!(response.field("ok"), &Value::Bool(false));
        assert_eq!(error_kind(&response), "bad_request");
        let reason = response.field("error").field("reason").as_str().unwrap();
        assert!(reason.contains("version 2"), "{reason}");
        assert!(reason.contains("v=1"), "{reason}");
        // Even a shutdown op under a wrong version does not shut down.
        let (_, shutdown) = handle_request(&reg, r#"{"op": "shutdown", "v": 99}"#);
        assert!(!shutdown);
    }

    #[test]
    fn persist_reports_the_store_backend_or_its_absence() {
        let reg = registry();
        let (response, _) = handle_request(&reg, r#"{"op": "persist"}"#);
        assert_eq!(response.field("ok"), &Value::Bool(true));
        assert_eq!(response.field("persisted"), &Value::Bool(false));

        let store: Arc<dyn qvsec_store::StoreBackend> = Arc::new(qvsec_store::MemStore::new());
        let mut schema = Schema::new();
        schema.add_relation("Employee", &["name", "department", "phone"]);
        let engine = Arc::new(
            AuditEngine::builder(schema, Domain::new())
                .store(Arc::clone(&store))
                .build(),
        );
        let durable =
            SessionRegistry::with_store(engine, crate::registry::RegistryConfig::default(), store)
                .unwrap();
        let (response, _) = handle_request(&durable, r#"{"op": "persist"}"#);
        assert_eq!(response.field("persisted"), &Value::Bool(true));
        assert_eq!(response.field("backend"), &Value::Str("mem".to_string()));
    }
}
