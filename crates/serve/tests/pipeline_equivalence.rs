//! Differential proptests for the pipelined front end: a server driven by
//! concurrent, pipelined keep-alive connections must hand every tenant a
//! response stream **byte-identical** to a synchronous, one-request-at-a-
//! time drive of the same script against a fresh server.
//!
//! What makes this non-trivial: under pipelining a connection's reader
//! thread runs ahead of its processor, many connections' processors
//! interleave on one shared engine, and the accept loop, in-flight queues
//! and keep-alive bookkeeping all sit between the socket and the registry.
//! None of that machinery may reorder, drop, duplicate or rewrite a
//! response. The per-report `cache` counters are the one documented
//! nondeterminism (they bracket engine-global cache traffic, which depends
//! on interleaving), so they are stripped before comparison — everything
//! else must match byte for byte.
//!
//! A second property covers mid-stream connection drops: clients that
//! write a prefix of their script and vanish without reading must not
//! perturb the streams of the connections that stay.

#![recursion_limit = "256"]

use proptest::prelude::*;
use qvsec::engine::AuditEngine;
use qvsec_data::{Domain, Schema};
use qvsec_serve::{
    request_lines, request_lines_pipelined, Server, ServerConfig, ServerHandle, SessionRegistry,
};
use serde_json::Value;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;

/// Fixed view pool the scripts draw from; every constant is declared in
/// the server's domain, so all of these parse.
const VIEWS: &[&str] = &[
    "V(n) :- Employee(n, 'Mgmt', p)",
    "V(n, d) :- Employee(n, d, p)",
    "V(d) :- Employee(n, d, p)",
    "V(n, p) :- Employee(n, d, p)",
];

const SECRET: &str = "S(n) :- Employee(n, 'HR', p)";

fn spawn_server(config: ServerConfig) -> (ServerHandle, thread::JoinHandle<std::io::Result<()>>) {
    let mut schema = Schema::new();
    schema.add_relation("Employee", &["name", "department", "phone"]);
    let domain = Domain::with_constants(["Mgmt", "HR"]);
    let engine = Arc::new(AuditEngine::builder(schema, domain).build());
    let registry = Arc::new(SessionRegistry::new(engine));
    let server = Server::bind_with(registry, "127.0.0.1:0", config).unwrap();
    let handle = server.handle().unwrap();
    let join = thread::spawn(move || server.run());
    (handle, join)
}

/// One script step, pre-wire-format. `Restore` falls back to a candidate
/// op when the script has not snapshotted yet.
#[derive(Debug, Clone)]
enum Step {
    Publish(usize),
    Candidate(usize),
    Snapshot,
    Restore,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        3 => (0..VIEWS.len()).prop_map(Step::Publish),
        3 => (0..VIEWS.len()).prop_map(Step::Candidate),
        1 => Just(Step::Snapshot),
        1 => Just(Step::Restore),
    ]
}

/// Renders a tenant's steps as NDJSON request lines. Snapshot labels are
/// deterministic (`s<i>`), and a restore targets the latest snapshot so
/// the whole script is deterministic tenant-locally.
fn wire_script(tenant: &str, steps: &[Step]) -> Vec<String> {
    let mut lines = vec![format!(
        r#"{{"op": "open", "tenant": "{tenant}", "secret": "{SECRET}"}}"#
    )];
    let mut snapshots: Vec<String> = Vec::new();
    for (i, step) in steps.iter().enumerate() {
        let line = match step {
            Step::Publish(v) => format!(
                r#"{{"op": "publish", "tenant": "{tenant}", "view": "{}", "name": "v{i}"}}"#,
                VIEWS[*v]
            ),
            Step::Candidate(v) => format!(
                r#"{{"op": "candidate", "tenant": "{tenant}", "view": "{}"}}"#,
                VIEWS[*v]
            ),
            Step::Snapshot => {
                let label = format!("s{i}");
                let line =
                    format!(r#"{{"op": "snapshot", "tenant": "{tenant}", "label": "{label}"}}"#);
                snapshots.push(label);
                line
            }
            Step::Restore => match snapshots.last() {
                Some(label) => {
                    format!(r#"{{"op": "restore", "tenant": "{tenant}", "label": "{label}"}}"#)
                }
                None => format!(
                    r#"{{"op": "candidate", "tenant": "{tenant}", "view": "{}"}}"#,
                    VIEWS[0]
                ),
            },
        };
        lines.push(line);
    }
    lines
}

/// Drops every `cache` member: interleaving-dependent counters are the one
/// documented nondeterminism between differently-interleaved drives.
fn strip_cache(value: &Value) -> Value {
    match value {
        Value::Object(members) => Value::Object(
            members
                .iter()
                .filter(|(name, _)| name != "cache")
                .map(|(name, member)| (name.clone(), strip_cache(member)))
                .collect(),
        ),
        Value::Array(items) => Value::Array(items.iter().map(strip_cache).collect()),
        other => other.clone(),
    }
}

fn comparable(lines: &[String]) -> Vec<String> {
    lines
        .iter()
        .map(|line| {
            let value = serde_json::parse(line).expect("responses are JSON");
            serde_json::to_string(&strip_cache(&value)).unwrap()
        })
        .collect()
}

/// Synchronous ground truth: a fresh server answers every tenant's script
/// one request at a time, tenants in order.
fn sync_baseline(scripts: &[Vec<String>]) -> Vec<Vec<String>> {
    let (handle, join) = spawn_server(ServerConfig::default());
    let addr = handle.addr().to_string();
    let baseline = scripts
        .iter()
        .map(|script| comparable(&request_lines(&addr, script).unwrap()))
        .collect();
    handle.shutdown();
    join.join().unwrap().unwrap();
    baseline
}

/// Pipelined, concurrent drives are byte-identical (cache counters
/// stripped) to the synchronous baseline at 1, 2 and 4 client threads.
/// Plain function so the `proptest!` bodies stay macro-cheap.
fn check_pipelined_matches_sync(steps: &[Vec<Step>], inflight: usize) {
    let scripts: Vec<Vec<String>> = steps
        .iter()
        .enumerate()
        .map(|(t, steps)| wire_script(&format!("t{t}"), steps))
        .collect();
    let baseline = sync_baseline(&scripts);

    for clients in [1usize, 2, 4] {
        let (handle, join) = spawn_server(ServerConfig {
            max_inflight: inflight,
            ..ServerConfig::default()
        });
        let addr = handle.addr().to_string();
        // `clients` concurrent connections; each drives one or more
        // tenants' scripts pipelined, in tenant order.
        let streams: Vec<(usize, Vec<String>)> = thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let scripts = &scripts;
                    let addr = &addr;
                    scope.spawn(move || {
                        let mut answered = Vec::new();
                        for (t, script) in scripts.iter().enumerate() {
                            if t % clients == c {
                                let responses = request_lines_pipelined(addr, script).unwrap();
                                answered.push((t, responses));
                            }
                        }
                        answered
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("client thread"))
                .collect()
        });
        handle.shutdown();
        join.join().unwrap().unwrap();

        for (tenant, responses) in streams {
            prop_assert_eq!(
                &comparable(&responses),
                &baseline[tenant],
                "tenant {} diverged at {} clients (inflight {})",
                tenant,
                clients,
                inflight
            );
        }
    }
}

/// Connections that write a prefix of their script and drop without
/// reading leave the surviving connections' streams untouched.
fn check_drops_leave_survivors_intact(steps: &[Vec<Step>], cut: usize) {
    let scripts: Vec<Vec<String>> = steps
        .iter()
        .enumerate()
        .map(|(t, steps)| wire_script(&format!("t{t}"), steps))
        .collect();
    let baseline = sync_baseline(&scripts);

    let (handle, join) = spawn_server(ServerConfig::default());
    let addr = handle.addr().to_string();
    let survivors: Vec<(usize, Vec<String>)> = thread::scope(|scope| {
        let handles: Vec<_> = scripts
            .iter()
            .enumerate()
            .map(|(t, script)| {
                let addr = &addr;
                scope.spawn(move || {
                    if t % 2 == 1 {
                        // Dropper: write a prefix, vanish unread.
                        let mut stream = TcpStream::connect(addr).unwrap();
                        for line in script.iter().take(cut.min(script.len())) {
                            stream.write_all(line.as_bytes()).unwrap();
                            stream.write_all(b"\n").unwrap();
                        }
                        drop(stream);
                        None
                    } else {
                        Some((t, request_lines_pipelined(addr, script).unwrap()))
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .filter_map(|h| h.join().expect("client thread"))
            .collect()
    });

    // The server survives the drops: a fresh connection still works.
    let alive = request_lines(&addr, &[r#"{"op": "ping"}"#.to_string()]).unwrap();
    prop_assert!(alive[0].starts_with(r#"{"ok":true"#));

    handle.shutdown();
    join.join().unwrap().unwrap();

    for (tenant, responses) in survivors {
        prop_assert_eq!(
            &comparable(&responses),
            &baseline[tenant],
            "surviving tenant {} diverged past {} dropped connections",
            tenant,
            cut
        );
    }
}

proptest! {
    // Each case spins several servers; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn pipelined_streams_match_synchronous_drive(
        steps in proptest::collection::vec(
            proptest::collection::vec(step_strategy(), 3..8), 4),
        inflight in 1usize..5,
    ) {
        check_pipelined_matches_sync(&steps, inflight);
    }

    #[test]
    fn mid_stream_drops_do_not_perturb_survivors(
        steps in proptest::collection::vec(
            proptest::collection::vec(step_strategy(), 3..8), 4),
        cut in 1usize..4,
    ) {
        check_drops_leave_survivors_intact(&steps, cut);
    }
}
