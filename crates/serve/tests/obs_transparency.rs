//! Observability-transparency proptests: the telemetry plane must be a
//! pure side channel. With span tracing and the metrics registry fully
//! enabled, every response byte must be identical to a run with tracing
//! off; the opt-in `timing` member must be exactly additive (stripping it
//! recovers the untimed bytes); and the unified metrics snapshot must stay
//! monotone and sum-consistent with the legacy counter bags it unifies.
//!
//! Tracing is a process-global flag, so tests that flip it serialize on
//! one mutex and restore the flag before releasing it.

#![recursion_limit = "256"]

use proptest::prelude::*;
use qvsec::engine::AuditEngine;
use qvsec_data::{Domain, Schema};
use qvsec_serve::{collect_metrics, handle_request, SessionRegistry};
use serde_json::Value;
use std::sync::{Arc, Mutex};

/// Serializes tests that toggle the process-global tracing flag.
static TRACING_FLAG: Mutex<()> = Mutex::new(());

const VIEWS: &[&str] = &[
    "V(n) :- Employee(n, 'Mgmt', p)",
    "V(n, d) :- Employee(n, d, p)",
    "V(d) :- Employee(n, d, p)",
    "V(n, p) :- Employee(n, d, p)",
];

const SECRET: &str = "S(n) :- Employee(n, 'HR', p)";

fn fresh_registry() -> SessionRegistry {
    let mut schema = Schema::new();
    schema.add_relation("Employee", &["name", "department", "phone"]);
    let domain = Domain::with_constants(["Mgmt", "HR"]);
    let engine = Arc::new(AuditEngine::builder(schema, domain).build());
    SessionRegistry::new(engine)
}

/// One script step; indexes into [`VIEWS`].
#[derive(Debug, Clone)]
enum Step {
    Publish(usize),
    Candidate(usize),
    Snapshot,
    Restore,
    Explain(usize),
    Stats,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        3 => (0..VIEWS.len()).prop_map(Step::Publish),
        3 => (0..VIEWS.len()).prop_map(Step::Candidate),
        1 => Just(Step::Snapshot),
        1 => Just(Step::Restore),
        2 => (0..VIEWS.len()).prop_map(Step::Explain),
        1 => Just(Step::Stats),
    ]
}

/// Renders steps as one tenant's deterministic NDJSON script.
fn wire_script(tenant: &str, steps: &[Step]) -> Vec<String> {
    let mut lines = vec![format!(
        r#"{{"op": "open", "tenant": "{tenant}", "secret": "{SECRET}"}}"#
    )];
    let mut snapshots: Vec<String> = Vec::new();
    for (i, step) in steps.iter().enumerate() {
        let line = match step {
            Step::Publish(v) => format!(
                r#"{{"op": "publish", "tenant": "{tenant}", "view": "{}", "name": "v{i}"}}"#,
                VIEWS[*v]
            ),
            Step::Candidate(v) => format!(
                r#"{{"op": "candidate", "tenant": "{tenant}", "view": "{}"}}"#,
                VIEWS[*v]
            ),
            Step::Snapshot => {
                let label = format!("s{i}");
                let line =
                    format!(r#"{{"op": "snapshot", "tenant": "{tenant}", "label": "{label}"}}"#);
                snapshots.push(label);
                line
            }
            Step::Restore => match snapshots.last() {
                Some(label) => {
                    format!(r#"{{"op": "restore", "tenant": "{tenant}", "label": "{label}"}}"#)
                }
                None => format!(
                    r#"{{"op": "candidate", "tenant": "{tenant}", "view": "{}"}}"#,
                    VIEWS[0]
                ),
            },
            Step::Explain(v) => {
                format!(r#"{{"op": "explain", "view": "{}"}}"#, VIEWS[*v])
            }
            Step::Stats => r#"{"op": "stats"}"#.to_string(),
        };
        lines.push(line);
    }
    lines
}

/// Drives a fresh registry through `script` via the embedded dispatcher
/// and returns the exact response bytes.
fn drive(script: &[String]) -> Vec<String> {
    let registry = fresh_registry();
    script
        .iter()
        .map(|line| serde_json::to_string(&handle_request(&registry, line).0).unwrap())
        .collect()
}

/// Removes the opt-in `timing` member from a response object.
fn strip_timing(value: &Value) -> Value {
    match value {
        Value::Object(members) => Value::Object(
            members
                .iter()
                .filter(|(name, _)| name != "timing")
                .map(|(name, member)| (name.clone(), strip_timing(member)))
                .collect(),
        ),
        other => other.clone(),
    }
}

fn check_tracing_is_byte_transparent(steps: &[Step]) {
    let script = wire_script("t0", steps);
    let _flag = TRACING_FLAG.lock().unwrap();
    qvsec_obs::set_tracing(false);
    let untraced = drive(&script);
    qvsec_obs::set_tracing(true);
    let traced = drive(&script);
    qvsec_obs::set_tracing(false);
    prop_assert_eq!(&untraced, &traced, "span tracing changed a response byte");
}

fn check_timing_member_is_exactly_additive(steps: &[Step]) {
    let script = wire_script("t0", steps);
    let timed_script: Vec<String> = script
        .iter()
        .map(|line| {
            let mut value = serde_json::parse(line).unwrap();
            if let Value::Object(entries) = &mut value {
                entries.push(("timing".to_string(), Value::Bool(true)));
            }
            serde_json::to_string(&value).unwrap()
        })
        .collect();
    let _flag = TRACING_FLAG.lock().unwrap();
    qvsec_obs::set_tracing(true);
    let plain = drive(&script);
    let timed = drive(&timed_script);
    qvsec_obs::set_tracing(false);
    for (plain_line, timed_line) in plain.iter().zip(&timed) {
        let timed_value = serde_json::parse(timed_line).unwrap();
        prop_assert!(
            !timed_value.field("timing").field("total_nanos").is_null(),
            "opted-in response is missing its timing member: {}",
            timed_line
        );
        prop_assert_eq!(
            &serde_json::to_string(&strip_timing(&timed_value)).unwrap(),
            plain_line,
            "timing member is not purely additive"
        );
    }
}

fn check_metrics_monotone_and_sum_consistent(steps: &[Step]) {
    let registry = fresh_registry();
    let before = collect_metrics(&registry, None);
    for line in wire_script("t0", steps) {
        handle_request(&registry, &line);
    }
    let after = collect_metrics(&registry, None);
    // Global counters never decrease (other tests may bump them
    // concurrently, so only monotonicity is asserted).
    for (name, value) in &before.counters {
        let later = after.counters.get(name).copied().unwrap_or(0);
        prop_assert!(
            later >= *value,
            "counter {} went backwards: {} -> {}",
            name,
            value,
            later
        );
    }
    // Histogram observation counts are monotone too.
    for (name, snap) in &before.histograms {
        if let Some(later) = after.histograms.get(name) {
            prop_assert!(
                later.count >= snap.count,
                "histogram {} lost observations",
                name
            );
        }
    }
    // The merged gauges equal the legacy bags they unify, read at the
    // same quiesced moment.
    let stats = registry.stats();
    let snap = collect_metrics(&registry, None);
    prop_assert_eq!(
        snap.gauges["registry.requests_served"],
        stats.requests_served
    );
    prop_assert_eq!(snap.gauges["registry.tenants"], stats.tenants.len() as u64);
    prop_assert_eq!(
        snap.gauges["cache.crit.hits"],
        stats.engine_cache.crit_cache_hits
    );
    prop_assert_eq!(
        snap.gauges["cache.crit.misses"],
        stats.engine_cache.crit_cache_misses
    );
    prop_assert_eq!(
        snap.gauges["kernel.mc.samples_drawn"],
        stats.engine_cache.mc_samples_drawn
    );
    prop_assert_eq!(snap.gauges["store.journal.records"], stats.journal_records);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn tracing_is_byte_transparent(
        steps in proptest::collection::vec(step_strategy(), 3..10),
    ) {
        check_tracing_is_byte_transparent(&steps);
    }

    #[test]
    fn timing_member_is_exactly_additive(
        steps in proptest::collection::vec(step_strategy(), 3..8),
    ) {
        check_timing_member_is_exactly_additive(&steps);
    }

    #[test]
    fn metrics_stay_monotone_and_sum_consistent(
        steps in proptest::collection::vec(step_strategy(), 3..10),
    ) {
        check_metrics_monotone_and_sum_consistent(&steps);
    }
}

/// `explain` between every step of a script must not change any later
/// response byte: the probe never promotes a store entry, never refreshes
/// LRU recency, never bumps a counter that feeds a report.
#[test]
fn interleaved_explains_do_not_perturb_responses() {
    let steps: Vec<Step> = vec![
        Step::Publish(0),
        Step::Candidate(1),
        Step::Snapshot,
        Step::Publish(2),
        Step::Restore,
        Step::Candidate(3),
        Step::Stats,
    ];
    let script = wire_script("t0", &steps);
    let baseline = drive(&script);

    let registry = fresh_registry();
    let mut probed = Vec::new();
    for line in &script {
        for view in VIEWS {
            let explain = format!(r#"{{"op": "explain", "view": "{view}"}}"#);
            let (response, _) = handle_request(&registry, &explain);
            assert_eq!(response.field("ok"), &Value::Bool(true), "{response:?}");
        }
        probed.push(serde_json::to_string(&handle_request(&registry, line).0).unwrap());
    }
    assert_eq!(baseline, probed, "explain probes perturbed a response");
}
