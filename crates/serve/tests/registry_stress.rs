//! Registry concurrency stress: N worker threads drive M tenants with
//! interleaved publish/candidate requests through one shared
//! [`SessionRegistry`], and every tenant's report stream must be
//! **byte-identical** (audit verdicts, estimator metadata, marginal
//! disclosure) to a single-threaded replay of the same per-tenant script.
//!
//! What makes this non-trivial: all tenants share one engine — one artifact
//! store, one compile cache, one Monte-Carlo pool — so the test pins down
//! that cross-tenant cache traffic never leaks into verdicts. The per-step
//! `cache` delta is *excluded* from the comparison: it brackets the
//! engine's global counters and is explicitly documented as
//! attribution-fuzzy under concurrent audits.

use qvsec::engine::{AuditDepth, AuditEngine};
use qvsec::session::SessionReport;
use qvsec_cq::ConjunctiveQuery;
use qvsec_data::{Dictionary, Domain, Schema, TupleSpace};
use qvsec_serve::SessionRegistry;
use std::sync::Arc;

/// Strips the attribution-fuzzy cache delta: everything else in a
/// [`SessionReport`] must be deterministic.
fn comparable(report: &SessionReport) -> String {
    format!(
        "{}|{}|{}|{}|{}|{}",
        report.session,
        report.step,
        report.view,
        report.committed,
        serde_json::to_string(&report.report).unwrap(),
        serde_json::to_string(&report.marginal).unwrap(),
    )
}

/// The per-tenant script: interleaved candidate and publish steps over the
/// §6 collusion views, varied per tenant so different tenants exercise
/// different (but overlapping) artifact sets.
fn tenant_script(views: &[ConjunctiveQuery], tenant: usize) -> Vec<(bool, ConjunctiveQuery)> {
    let mut steps = Vec::new();
    for k in 0..views.len() {
        let view = views[(tenant + k) % views.len()].clone();
        steps.push((false, view.clone())); // what-if first
        steps.push((true, view)); // then commit
    }
    steps
}

fn run_script(
    registry: &SessionRegistry,
    tenant: &str,
    secret: &ConjunctiveQuery,
    script: &[(bool, ConjunctiveQuery)],
) -> Vec<String> {
    registry.open(tenant, secret).unwrap();
    script
        .iter()
        .map(|(commit, view)| {
            let report = if *commit {
                registry.publish(tenant, None, None, view.clone()).unwrap()
            } else {
                registry.audit_candidate(tenant, None, view).unwrap()
            };
            comparable(&report)
        })
        .collect()
}

fn probabilistic_engine() -> (Arc<AuditEngine>, ConjunctiveQuery, Vec<ConjunctiveQuery>) {
    let mut schema = Schema::new();
    schema.add_relation("R", &["x", "y"]);
    let mut domain = Domain::with_constants(["a", "b"]);
    let secret = qvsec_cq::parse_query("S(x, y) :- R(x, y)", &schema, &mut domain).unwrap();
    let views = vec![
        qvsec_cq::parse_query("V1(x) :- R(x, y)", &schema, &mut domain).unwrap(),
        qvsec_cq::parse_query("V2(y) :- R(x, y)", &schema, &mut domain).unwrap(),
        qvsec_cq::parse_query("V3(x) :- R(x, 'a')", &schema, &mut domain).unwrap(),
    ];
    let space = TupleSpace::full(&schema, &domain).unwrap();
    let engine = Arc::new(
        AuditEngine::builder(schema, domain)
            .dictionary(Dictionary::half(space))
            .default_depth(AuditDepth::Probabilistic)
            .mc_seed(11)
            .build(),
    );
    (engine, secret, views)
}

#[test]
fn concurrent_tenants_match_single_threaded_replays() {
    const THREADS: usize = 4;
    const TENANTS_PER_THREAD: usize = 3;

    let (engine, secret, views) = probabilistic_engine();
    let registry = Arc::new(SessionRegistry::new(Arc::clone(&engine)));

    // Concurrent run: THREADS workers, each driving its own tenants, all
    // interleaving on the shared engine.
    let concurrent: Vec<(String, Vec<String>)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for worker in 0..THREADS {
            let registry = Arc::clone(&registry);
            let secret = secret.clone();
            let views = views.clone();
            handles.push(scope.spawn(move || {
                let mut out = Vec::new();
                for slot in 0..TENANTS_PER_THREAD {
                    let tenant_no = worker * TENANTS_PER_THREAD + slot;
                    let tenant = format!("tenant-{tenant_no}");
                    let script = tenant_script(&views, tenant_no);
                    let stream = run_script(&registry, &tenant, &secret, &script);
                    out.push((tenant, stream));
                }
                out
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    assert_eq!(registry.tenant_count(), THREADS * TENANTS_PER_THREAD);

    // Single-threaded replay: a fresh engine and registry, same scripts,
    // tenants served one after another.
    let (replay_engine, _, _) = probabilistic_engine();
    let replay_registry = SessionRegistry::new(replay_engine);
    for (tenant, concurrent_stream) in &concurrent {
        let tenant_no: usize = tenant.trim_start_matches("tenant-").parse().unwrap();
        let script = tenant_script(&views, tenant_no);
        let replayed = run_script(&replay_registry, tenant, &secret, &script);
        assert_eq!(
            &replayed, concurrent_stream,
            "{tenant}: concurrent report stream diverged from the serial replay"
        );
    }

    // The shared engine really was shared: later tenants reused artifacts.
    let stats = registry.stats();
    assert!(
        stats.tenants.iter().any(|t| t.cache.any_reuse()),
        "no tenant saw cache reuse: {stats:?}"
    );
    assert_eq!(stats.requests_served as usize, {
        // open + 2 steps per view, per tenant
        THREADS * TENANTS_PER_THREAD * (1 + 2 * views.len())
    });
}

#[test]
fn concurrent_and_serial_registries_agree_under_a_tiny_cache_budget() {
    // The same property with eviction pressure: a 4 KiB engine budget keeps
    // caches churning while 4 threads interleave; verdicts must not move.
    const THREADS: usize = 4;
    let mut schema = Schema::new();
    schema.add_relation("Employee", &["name", "department", "phone"]);
    let budgeted = |budget: Option<usize>| {
        let mut builder = AuditEngine::builder(schema.clone(), Domain::new());
        if let Some(total) = budget {
            builder = builder.cache_budget_bytes(total);
        }
        Arc::new(builder.build())
    };
    let registry = Arc::new(SessionRegistry::new(budgeted(Some(4096))));
    let secret_text = "S(n, p) :- Employee(n, d, p)";
    let view_texts = [
        "VBob(n, d) :- Employee(n, d, p)",
        "VCarol(d, p) :- Employee(n, d, p)",
    ];
    let drive = |registry: &SessionRegistry, tenant: &str| -> Vec<String> {
        let secret = registry.parse(secret_text).unwrap();
        registry.open(tenant, &secret).unwrap();
        view_texts
            .iter()
            .map(|text| {
                let view = registry.parse(text).unwrap();
                comparable(&registry.publish(tenant, None, None, view).unwrap())
            })
            .collect()
    };
    let concurrent: Vec<(String, Vec<String>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|w| {
                let registry = Arc::clone(&registry);
                scope.spawn(move || {
                    let tenant = format!("t{w}");
                    let stream = drive(&registry, &tenant);
                    (tenant, stream)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // Serial replay on an UNBOUNDED engine: eviction must be invisible.
    let serial_registry = SessionRegistry::new(budgeted(None));
    for (tenant, stream) in &concurrent {
        assert_eq!(
            &drive(&serial_registry, tenant),
            stream,
            "{tenant}: budgeted concurrent verdicts diverged from unbounded serial ones"
        );
    }
}
