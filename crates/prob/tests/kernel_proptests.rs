//! Property-based validation of the shared-sample probabilistic kernel.
//!
//! On randomly generated query/view pairs over a tiny domain:
//!
//! * the kernel's exact path reproduces the preserved enumeration baseline
//!   — the signature distribution aggregates to exactly the
//!   `joint_distribution` of Eq. (2), and the Definition 4.1 independence
//!   report (violations, priors, posteriors, pair counts) is identical to
//!   `check_independence`;
//! * the kernel's Monte-Carlo path never contradicts an exact independence
//!   verdict (the 3σ significance filter suppresses sampling noise), and
//!   plain Monte-Carlo estimates converge to exact probabilities within 3σ.

use proptest::prelude::*;
use qvsec_cq::eval::AnswerSet;
use qvsec_cq::{parse_query, ConjunctiveQuery, ViewSet};
use qvsec_data::{Dictionary, Domain, Ratio, Schema, TupleSpace};
use qvsec_prob::independence::check_independence;
use qvsec_prob::kernel::{
    stream_exact, CompiledQuery, EstimatorMode, KernelConfig, ProbKernel, ProbStats,
};
use qvsec_prob::montecarlo::MonteCarloEstimator;
use qvsec_prob::probability::{boolean_probability, joint_distribution};
use std::collections::BTreeMap;
use std::sync::Arc;

fn schema() -> Schema {
    let mut s = Schema::new();
    s.add_relation("R", &["x", "y"]);
    s
}

fn domain() -> Domain {
    Domain::with_constants(["a", "b"])
}

/// Random conjunctive query text over R/2 (same shape as the core crate's
/// theorem proptests).
fn query_text() -> impl Strategy<Value = String> {
    let term = prop_oneof![
        3 => Just("x0".to_string()),
        3 => Just("x1".to_string()),
        2 => Just("x2".to_string()),
        2 => Just("'a'".to_string()),
        2 => Just("'b'".to_string()),
    ];
    let atom = (term.clone(), term).prop_map(|(a, b)| format!("R({a}, {b})"));
    (proptest::collection::vec(atom, 1..3), proptest::bool::ANY).prop_map(|(atoms, boolean)| {
        let body = atoms.join(", ");
        if boolean {
            return format!("Q() :- {body}");
        }
        let head_var = atoms[0]
            .trim_start_matches("R(")
            .trim_end_matches(')')
            .split(',')
            .map(|s| s.trim().to_string())
            .find(|t| t.starts_with('x'));
        match head_var {
            Some(v) => format!("Q({v}) :- {body}"),
            None => format!("Q() :- {body}"),
        }
    })
}

fn parse(text: &str, schema: &Schema, domain: &mut Domain) -> ConjunctiveQuery {
    parse_query(text, schema, domain).expect("generated query parses")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // The streamed signature distribution aggregates to exactly the
    // enumeration baseline's joint distribution of `(S(I), V̄(I))`.
    #[test]
    fn exact_signatures_reproduce_the_joint_distribution(
        s_text in query_text(),
        v_text in query_text(),
    ) {
        let schema = schema();
        let mut domain = domain();
        let s = parse(&s_text, &schema, &mut domain);
        let v = parse(&v_text, &schema, &mut domain);
        let space = TupleSpace::full(&schema, &domain).unwrap();
        let dict = Dictionary::half(space.clone());
        let views = ViewSet::single(v);

        let compiled: Vec<std::sync::Arc<CompiledQuery>> = std::iter::once(&s)
            .chain(views.iter())
            .map(|q| std::sync::Arc::new(CompiledQuery::compile(q, &space)))
            .collect();
        let stats = ProbStats::new();
        let dist = stream_exact(&dict, &compiled, &stats).unwrap();

        // Decode every signature and rebuild the joint distribution.
        let mut rebuilt: BTreeMap<(AnswerSet, Vec<AnswerSet>), Ratio> = BTreeMap::new();
        for (sig, p) in &dist.entries {
            let mut offset = 0usize;
            let mut parts: Vec<AnswerSet> = Vec::new();
            for q in &compiled {
                parts.push(q.decode(&sig[offset..offset + q.sig_words()]));
                offset += q.sig_words();
            }
            let s_ans = parts.remove(0);
            *rebuilt.entry((s_ans, parts)).or_insert(Ratio::ZERO) += *p;
        }

        let baseline = joint_distribution(&s, &views, &dict, |_| true).unwrap();
        let baseline_map: BTreeMap<(AnswerSet, Vec<AnswerSet>), Ratio> = baseline
            .iter()
            .map(|(k, p)| (k.clone(), p))
            .collect();
        prop_assert_eq!(rebuilt, baseline_map);
        prop_assert!(dist.total_mass().is_one());
    }

    // The kernel's exact independence report is identical to the literal
    // Definition 4.1 check.
    #[test]
    fn exact_kernel_independence_equals_the_enumeration_baseline(
        s_text in query_text(),
        v_text in query_text(),
    ) {
        let schema = schema();
        let mut domain = domain();
        let s = parse(&s_text, &schema, &mut domain);
        let v = parse(&v_text, &schema, &mut domain);
        let space = TupleSpace::full(&schema, &domain).unwrap();
        let dict = Arc::new(Dictionary::half(space));
        let views = ViewSet::single(v);

        let kernel = ProbKernel::new(Arc::clone(&dict), KernelConfig::default());
        let audit = kernel.evaluate(&s, &views).unwrap();
        prop_assert_eq!(audit.estimator.mode, EstimatorMode::Exact);
        let baseline = check_independence(&s, &views, &dict).unwrap();
        prop_assert_eq!(audit.independence.independent, baseline.independent);
        prop_assert_eq!(audit.independence.pairs_checked, baseline.pairs_checked);
        prop_assert_eq!(audit.independence.violations, baseline.violations);
    }

}

// A second block: the vendored proptest macro's expansion depth grows with
// the number of tests per block.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // The Monte-Carlo path never contradicts an exact "independent"
    // verdict: its 3σ filter suppresses sampling noise, and its leakage
    // entries vanish on secure pairs.
    #[test]
    fn monte_carlo_respects_exact_independence_verdicts(
        s_text in query_text(),
        v_text in query_text(),
    ) {
        let schema = schema();
        let mut domain = domain();
        let s = parse(&s_text, &schema, &mut domain);
        let v = parse(&v_text, &schema, &mut domain);
        let space = TupleSpace::full(&schema, &domain).unwrap();
        let dict = Arc::new(Dictionary::half(space));
        let views = ViewSet::single(v);

        let exact = ProbKernel::new(Arc::clone(&dict), KernelConfig::default())
            .evaluate(&s, &views)
            .unwrap();
        let mc_config = KernelConfig { exact_cutover: 0, samples: 4000, seed: 7, ..KernelConfig::default() };
        let mc = ProbKernel::new(Arc::clone(&dict), mc_config)
            .evaluate(&s, &views)
            .unwrap();
        prop_assert_eq!(mc.estimator.mode, EstimatorMode::MonteCarlo);
        if exact.independence.independent {
            prop_assert!(
                mc.independence.independent,
                "3σ filter flagged a secure pair: {:?}",
                mc.independence.violations
            );
            prop_assert!(mc.leakage.max_leak.is_zero());
        }
    }

    // Plain Monte-Carlo boolean-probability estimates converge within 3σ
    // of the exact value.
    #[test]
    fn monte_carlo_probability_estimates_converge_within_three_sigma(
        q_text in query_text(),
    ) {
        let schema = schema();
        let mut domain = domain();
        let q = parse(&q_text, &schema, &mut domain);
        let space = TupleSpace::full(&schema, &domain).unwrap();
        let dict = Dictionary::half(space);
        let exact = boolean_probability(&q, &dict).unwrap().to_f64();
        let samples = 6000usize;
        let mc = MonteCarloEstimator::new(&dict, samples, 13).with_threads(2);
        let est = mc.boolean_probability(&q);
        let sigma = (exact * (1.0 - exact) / samples as f64).sqrt();
        // The vendored proptest shim seeds by (test name, case), so the
        // generated queries and hence this assertion are deterministic.
        // The bound is still kept at 4σ (~6e-5 tail) rather than 3σ so a
        // future re-seeding (renamed test, real proptest) cannot introduce
        // a plausible flake.
        prop_assert!(
            (est - exact).abs() <= 4.0 * sigma + 1e-9,
            "estimate {est} vs exact {exact} (4σ = {})",
            4.0 * sigma
        );
    }
}
