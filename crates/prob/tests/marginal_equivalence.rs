//! Differential proptests: the packed-signature marginal analysis is
//! byte-identical to the preserved `AnswerSet`-decoding baseline.
//!
//! [`KernelConfig::decode_baseline`] keeps the historical decoding analysis
//! alive exactly so these tests can diff the two end to end. On randomly
//! generated secret/view pairs, two kernels differing only in that flag
//! must produce byte-identical [`KernelAudit`]s — independence report
//! (Def. 4.1 marginals, violations, priors, posteriors), §6.1 leakage
//! aggregates, total-disclosure verdict and estimator report — on:
//!
//! * the exact uniform-`1/2` path (packed integer counts vs decoded
//!   rational masses),
//! * the exact non-uniform path (packed mass-weighted marginals vs the
//!   decoded distribution analysis),
//! * the Monte-Carlo path, including a deliberately tiny sample pool whose
//!   noisy estimates push deviations right up against the 3σ significance
//!   filter — the packed path must classify every near-threshold pair
//!   exactly like the baseline.

use proptest::prelude::*;
use qvsec_cq::{parse_query, ConjunctiveQuery, ViewSet};
use qvsec_data::{Dictionary, Domain, Ratio, Schema, TupleSpace};
use qvsec_prob::kernel::{KernelConfig, ProbKernel};
use std::sync::Arc;

fn schema() -> Schema {
    let mut s = Schema::new();
    s.add_relation("R", &["x", "y"]);
    s
}

fn domain() -> Domain {
    Domain::with_constants(["a", "b"])
}

/// Random conjunctive query text over R/2 (same shape as the kernel
/// proptests).
fn query_text() -> impl Strategy<Value = String> {
    let term = prop_oneof![
        3 => Just("x0".to_string()),
        3 => Just("x1".to_string()),
        2 => Just("x2".to_string()),
        2 => Just("'a'".to_string()),
        2 => Just("'b'".to_string()),
    ];
    let atom = (term.clone(), term).prop_map(|(a, b)| format!("R({a}, {b})"));
    (proptest::collection::vec(atom, 1..3), proptest::bool::ANY).prop_map(|(atoms, boolean)| {
        let body = atoms.join(", ");
        if boolean {
            return format!("Q() :- {body}");
        }
        let head_var = atoms[0]
            .trim_start_matches("R(")
            .trim_end_matches(')')
            .split(',')
            .map(|s| s.trim().to_string())
            .find(|t| t.starts_with('x'));
        match head_var {
            Some(v) => format!("Q({v}) :- {body}"),
            None => format!("Q() :- {body}"),
        }
    })
}

fn parse(text: &str, schema: &Schema, domain: &mut Domain) -> ConjunctiveQuery {
    parse_query(text, schema, domain).expect("generated query parses")
}

/// Audits `(s, views)` on two fresh kernels differing only in
/// `decode_baseline` and returns both serialized audits. The audit memo
/// stays off (the default) so every evaluation runs the full analysis.
fn diff_audit(
    dict: &Arc<Dictionary>,
    base: KernelConfig,
    s: &ConjunctiveQuery,
    views: &ViewSet,
) -> (String, String) {
    let packed = ProbKernel::new(Arc::clone(dict), base);
    let decoded = ProbKernel::new(
        Arc::clone(dict),
        KernelConfig {
            decode_baseline: true,
            ..base
        },
    );
    (
        serde_json::to_string(&packed.evaluate(s, views).unwrap()).unwrap(),
        serde_json::to_string(&decoded.evaluate(s, views).unwrap()).unwrap(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // Exact path, uniform-1/2 dictionary: the packed integer-count
    // analysis vs the decoded rational-mass analysis.
    #[test]
    fn exact_uniform_half_audits_are_byte_identical(
        s_text in query_text(),
        v_text in query_text(),
    ) {
        let schema = schema();
        let mut domain = domain();
        let s = parse(&s_text, &schema, &mut domain);
        let v = parse(&v_text, &schema, &mut domain);
        let views = ViewSet::single(v);
        let space = TupleSpace::full(&schema, &domain).unwrap();
        let dict = Arc::new(Dictionary::half(space));

        let (packed, decoded) = diff_audit(&dict, KernelConfig::default(), &s, &views);
        prop_assert_eq!(packed, decoded);
    }

    // Exact path, non-uniform dictionary: every world carries a different
    // mass, so both kernels run the mass-weighted signature distribution —
    // the packed marginal accumulators vs the decoded analysis.
    #[test]
    fn exact_nonuniform_audits_are_byte_identical(
        s_text in query_text(),
        v_text in query_text(),
    ) {
        let schema = schema();
        let mut domain = domain();
        let s = parse(&s_text, &schema, &mut domain);
        let v = parse(&v_text, &schema, &mut domain);
        let views = ViewSet::single(v);
        let space = TupleSpace::full(&schema, &domain).unwrap();
        let probs: Vec<Ratio> = (0..space.len())
            .map(|i| Ratio::new(1 + (i as i128 % 3), 4))
            .collect();
        let dict = Arc::new(Dictionary::from_probabilities(space, probs).unwrap());

        let (packed, decoded) = diff_audit(&dict, KernelConfig::default(), &s, &views);
        prop_assert_eq!(packed, decoded);
    }

    // Monte-Carlo path (cutover forced): identical pool, identical
    // per-world signatures — the packed analysis must reproduce the
    // decoded verdicts bit for bit.
    #[test]
    fn monte_carlo_audits_are_byte_identical(
        s_text in query_text(),
        v_text in query_text(),
        seed in 0u64..1024,
    ) {
        let schema = schema();
        let mut domain = domain();
        let s = parse(&s_text, &schema, &mut domain);
        let v = parse(&v_text, &schema, &mut domain);
        let views = ViewSet::single(v);
        let space = TupleSpace::full(&schema, &domain).unwrap();
        let dict = Arc::new(Dictionary::half(space));

        let config = KernelConfig {
            exact_cutover: 0, // force the Monte-Carlo path
            samples: 2048,
            seed,
            ..KernelConfig::default()
        };
        let (packed, decoded) = diff_audit(&dict, config, &s, &views);
        prop_assert_eq!(packed, decoded);
    }

    // The 3σ significance edge: a deliberately tiny pool makes the
    // sampled deviations noisy, so many pairs land near the significance
    // threshold — the packed path must make the identical keep/suppress
    // call on every one of them.
    #[test]
    fn tiny_pool_three_sigma_edge_cases_are_byte_identical(
        s_text in query_text(),
        v_text in query_text(),
        seed in 0u64..4096,
        samples in 32usize..256,
    ) {
        let schema = schema();
        let mut domain = domain();
        let s = parse(&s_text, &schema, &mut domain);
        let v = parse(&v_text, &schema, &mut domain);
        let views = ViewSet::single(v);
        let space = TupleSpace::full(&schema, &domain).unwrap();
        let dict = Arc::new(Dictionary::half(space));

        let config = KernelConfig {
            exact_cutover: 0,
            samples,
            seed,
            ..KernelConfig::default()
        };
        let (packed, decoded) = diff_audit(&dict, config, &s, &views);
        prop_assert_eq!(packed, decoded);
    }
}
