//! The Monte-Carlo path: batched signature counting over the shared pool.
//!
//! Above the exact cutover the kernel estimates the same signature
//! distribution the exact path streams, from the worlds of the shared
//! [`super::SamplePool`]. Every world is evaluated **once** against every
//! compiled query (a few bitset containment tests), and the independence,
//! leakage and total-disclosure passes are all computed from the resulting
//! counts — the passes share one sample set by construction, where the
//! pre-kernel code re-sampled per pass and per view.

use super::compile::CompiledQuery;
use super::pool::SamplePool;
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// Signature → number of pooled worlds exhibiting it.
#[derive(Debug, Clone, Default)]
pub struct SignatureCounts {
    /// Distinct signatures with their multiplicities.
    pub counts: HashMap<Vec<u64>, u64>,
    /// Total number of worlds counted (the pool size).
    pub total: u64,
}

/// Evaluates every pooled world against the compiled queries, in parallel
/// chunks, and merges the per-chunk counts. The chunking is by world index,
/// so the result is independent of the worker-thread count.
pub fn count_signatures(pool: &SamplePool, compiled: &[Arc<CompiledQuery>]) -> SignatureCounts {
    let columns: Vec<Arc<Vec<u64>>> = compiled
        .iter()
        .map(|q| Arc::new(world_column(pool, q)))
        .collect();
    count_signatures_from_columns(&columns, compiled, pool.len())
}

/// One query's answer bits over every world of the pool, world-major
/// (`sig_words` words per world). A column depends only on (pool, query),
/// so the kernel memoizes it per canonical query form: republished views
/// and later session steps skip the per-world witness tests entirely and
/// their signatures become plain word concatenations.
pub fn world_column(pool: &SamplePool, q: &CompiledQuery) -> Vec<u64> {
    let worlds = pool.worlds();
    let chunk_len = super::pool::POOL_CHUNK;
    let chunks: Vec<usize> = (0..worlds.len().div_ceil(chunk_len.max(1))).collect();
    let per_chunk: Vec<Vec<u64>> = chunks
        .par_iter()
        .map(|&c| {
            let lo = c * chunk_len;
            let hi = (lo + chunk_len).min(worlds.len());
            let mut out = Vec::with_capacity((hi - lo) * q.sig_words());
            for world in &worlds[lo..hi] {
                q.push_answer_bits_world(world.bits(), &mut out);
            }
            out
        })
        .collect();
    per_chunk.into_iter().flatten().collect()
}

/// Counts signatures by concatenating the queries' precomputed world
/// columns — no witness test runs here, only word copies. Chunked by world
/// index, so the result is independent of the worker-thread count.
pub fn count_signatures_from_columns(
    columns: &[Arc<Vec<u64>>],
    compiled: &[Arc<CompiledQuery>],
    total_worlds: usize,
) -> SignatureCounts {
    debug_assert_eq!(columns.len(), compiled.len());
    let words: Vec<usize> = compiled.iter().map(|q| q.sig_words()).collect();
    let chunk_len = super::pool::POOL_CHUNK;
    let chunks: Vec<usize> = (0..total_worlds.div_ceil(chunk_len.max(1))).collect();
    let partials: Vec<HashMap<Vec<u64>, u64>> = chunks
        .par_iter()
        .map(|&c| {
            let lo = c * chunk_len;
            let hi = (lo + chunk_len).min(total_worlds);
            let mut local: HashMap<Vec<u64>, u64> = HashMap::new();
            let mut sig = Vec::new();
            for w in lo..hi {
                sig.clear();
                for (column, &n) in columns.iter().zip(&words) {
                    sig.extend_from_slice(&column[w * n..(w + 1) * n]);
                }
                *local.entry(sig.clone()).or_insert(0) += 1;
            }
            local
        })
        .collect();
    let mut out = SignatureCounts {
        counts: HashMap::new(),
        total: total_worlds as u64,
    };
    for partial in partials {
        for (sig, c) in partial {
            *out.counts.entry(sig).or_insert(0) += c;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvsec_cq::parse_query;
    use qvsec_data::{Dictionary, Domain, Schema, TupleSpace};
    use std::sync::Arc;

    #[test]
    fn counts_cover_the_whole_pool_and_are_deterministic() {
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        let mut domain = Domain::with_constants(["a", "b"]);
        let space = TupleSpace::full(&schema, &domain).unwrap();
        let dict = Dictionary::half(space.clone());
        let s = parse_query("S(y) :- R(x, y)", &schema, &mut domain).unwrap();
        let compiled = vec![Arc::new(CompiledQuery::compile(&s, &space))];
        let arc_space = Arc::new(space);
        let pool = SamplePool::generate(&dict, Arc::clone(&arc_space), 3000, 11);
        let a = count_signatures(&pool, &compiled);
        let b = count_signatures(&pool, &compiled);
        assert_eq!(a.total, 3000);
        assert_eq!(a.counts.values().sum::<u64>(), 3000);
        assert_eq!(a.counts, b.counts);
    }
}
