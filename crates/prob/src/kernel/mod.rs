//! The shared-sample probabilistic kernel behind `AuditDepth::Probabilistic`.
//!
//! The kernel serves the three dictionary-level checks of an audit — the
//! literal Definition 4.1 independence test, the Section 6.1 leakage
//! measure, and the total-disclosure (determinacy) test — from **one**
//! evaluation of the tuple space per audit:
//!
//! * **Exact path** (spaces up to the configured cutover): every world is
//!   streamed as a `u64` mask and evaluated against per-answer witness
//!   masks ([`compile`]), accumulating a *signature distribution* — the
//!   joint distribution of `(S(I), V̄(I))` keyed by packed answer bits
//!   ([`exact`]). No `Instance` is ever materialized and no homomorphism
//!   search runs per world; all three checks are aggregations over the
//!   (typically tiny) set of distinct signatures.
//! * **Monte-Carlo path** (larger spaces): the same signatures are counted
//!   over the worlds of a seeded, lazily-built [`SamplePool`] shared across
//!   the three passes *and* across every audit the kernel serves
//!   ([`montecarlo`]), with estimates reported as exact count ratios plus a
//!   standard-error bound.
//!
//! Every audit reports which estimator produced it ([`EstimatorReport`]),
//! and the kernel keeps lifetime counters of worlds streamed, samples
//! drawn/reused and exact→Monte-Carlo cutovers ([`ProbStats`]).

pub mod compile;
pub mod exact;
pub(crate) mod marginals;
pub mod montecarlo;
pub mod pool;
pub mod stats;

pub use compile::CompiledQuery;
pub use exact::{stream_exact, stream_exact_counts, SignatureDistribution};
pub use montecarlo::{
    count_signatures, count_signatures_from_columns, world_column, SignatureCounts,
};
pub use pool::{SamplePool, POOL_CHUNK};
pub use stats::{ProbStats, ProbStatsSnapshot};

use crate::independence::{analyse_capped, IndependenceReport, Violation};
use crate::probability::JointDistribution;
use qvsec_cq::eval::{Answer, AnswerSet};
use qvsec_cq::{canonical_form, ConjunctiveQuery, ViewSet};
use qvsec_data::bitset::MAX_ENUMERABLE;
use qvsec_data::{Dictionary, Ratio, Result, ShardedLruCache, TupleSpace};
use qvsec_store::{StoreBackend, StoreOp};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

/// Store namespace of persisted query compilations (answers + minimal
/// witnesses; the evaluation forms are derived on revival).
pub const NS_KERNEL_COMPILE: &str = "kernel/compile";
/// Store namespace of persisted pooled answer-bit columns. Keys carry the
/// pool identity (seed and sample count) ahead of the canonical form, so a
/// reconfigured kernel never revives columns drawn over a different pool.
pub const NS_KERNEL_COLUMNS: &str = "kernel/columns";
/// Store namespace of persisted whole-audit verdicts. Keys carry the full
/// estimator identity (seed, sample count, exact cutover, report cap) ahead
/// of the memo key, so a reconfigured kernel never revives a verdict
/// produced under different estimation settings.
pub const NS_KERNEL_AUDITS: &str = "kernel/audits";

/// Best-effort JSON decode of a persisted value; `None` on any mismatch.
fn decode_json<T: serde::Deserialize>(bytes: &[u8]) -> Option<T> {
    let text = std::str::from_utf8(bytes).ok()?;
    let value = serde_json::parse(text).ok()?;
    serde_json::from_value(&value).ok()
}

/// Kernel configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelConfig {
    /// Largest tuple-space size evaluated exactly; bigger spaces cut over
    /// to Monte-Carlo estimation. Clamped to [`MAX_ENUMERABLE`].
    pub exact_cutover: usize,
    /// Worlds drawn into the shared sample pool (Monte-Carlo path).
    pub samples: usize,
    /// Seed of the shared sample pool.
    pub seed: u64,
    /// Byte budget of the compile cache (`None` = append-only).
    #[serde(default)]
    pub compile_budget: Option<usize>,
    /// Byte budget of the pooled answer-bit-column cache (`None` =
    /// append-only).
    #[serde(default)]
    pub column_budget: Option<usize>,
    /// Cap on the *reported* leak-entry and independence-violation lists.
    /// Verdicts (`independent`, `max_leak`, the witness pair,
    /// `pairs_checked`) are computed over **all** pairs regardless; the cap
    /// only bounds how many entries are materialized and serialized —
    /// `Some(0)` keeps the witness and drops the lists entirely. `None`
    /// (the default) reports everything, byte-identical to the enumeration
    /// baseline.
    #[serde(default)]
    pub report_cap: Option<usize>,
    /// Use the historical `AnswerSet`-decoding analysis instead of the
    /// packed-marginal fast path (`marginals`). The two are byte-identical
    /// by construction (proptested in `tests/marginal_equivalence.rs`); the
    /// flag exists so the decoding path survives as a differential baseline.
    #[serde(default)]
    pub decode_baseline: bool,
    /// Memoize whole [`KernelAudit`]s keyed by the canonical forms of
    /// `(secret, views)`: a repeated audit — a warm session step, a second
    /// tenant running the same script — returns the cached verdict without
    /// streaming a single world. Off by default so the kernel's counters in
    /// unit tests reflect raw computation; the engine turns it on.
    #[serde(default)]
    pub audit_memo: bool,
    /// Byte budget of the audit memo (`None` = append-only).
    #[serde(default)]
    pub audit_budget: Option<usize>,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            exact_cutover: MAX_ENUMERABLE,
            samples: 8192,
            seed: 0x9ec4_51ec,
            compile_budget: None,
            column_budget: None,
            report_cap: None,
            decode_baseline: false,
            audit_memo: false,
            audit_budget: None,
        }
    }
}

/// Which estimator produced a probabilistic verdict. Serializes as the
/// variant name (`"Exact"` / `"MonteCarlo"`), like every other report enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EstimatorMode {
    /// Exhaustive mask streaming: probabilities are exact rationals.
    Exact,
    /// Shared-pool Monte-Carlo: probabilities are sample-count ratios.
    MonteCarlo,
}

/// Estimator metadata attached to every kernel verdict (and surfaced on
/// `AuditReport`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EstimatorReport {
    /// Exact streaming or Monte-Carlo.
    pub mode: EstimatorMode,
    /// Tuples in the dictionary's space.
    pub space_size: usize,
    /// Worlds streamed by the exact path (`2^space_size`), 0 for Monte-Carlo.
    pub worlds_streamed: u64,
    /// Pooled samples used, 0 for the exact path.
    pub sample_count: usize,
    /// Seed of the shared pool (Monte-Carlo only).
    pub seed: Option<u64>,
    /// Worst-case standard error of any estimated probability
    /// (`0.5 / √samples`); 0 for the exact path.
    pub std_error: f64,
}

/// One `(s, v̄)` leakage entry, kernel form (mirrors the core crate's
/// `LeakEntry` field-for-field; the engine converts).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelLeakEntry {
    /// The secret answer tuple `s`.
    pub query_answer: Answer,
    /// One answer tuple per view (`v̄`).
    pub view_answers: Vec<Answer>,
    /// `P[s ⊆ S(I)]`.
    pub prior: Ratio,
    /// `P[s ⊆ S(I) | v̄ ⊆ V̄(I)]`.
    pub posterior: Ratio,
    /// `(posterior − prior) / prior`.
    pub relative_increase: Ratio,
}

/// The kernel's Section 6.1 leakage verdict.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct KernelLeakage {
    /// `leak(S, V̄)` over the examined pairs.
    pub max_leak: Ratio,
    /// The pair attaining the supremum.
    pub witness: Option<KernelLeakEntry>,
    /// Every pair with a strictly positive (and, under Monte-Carlo,
    /// significant) relative increase, sorted by decreasing increase.
    pub positive_entries: Vec<KernelLeakEntry>,
    /// Number of `(s, v̄)` pairs examined.
    pub pairs_checked: usize,
}

/// Everything the Probabilistic stage needs, from one space evaluation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelAudit {
    /// The Definition 4.1 independence verdict.
    pub independence: IndependenceReport,
    /// The Section 6.1 leakage verdict.
    pub leakage: KernelLeakage,
    /// Whether the view answers determine the secret answer over the
    /// evaluated worlds.
    pub totally_disclosed: bool,
    /// Which estimator produced the verdicts above.
    pub estimator: EstimatorReport,
}

/// Shards each kernel cache layer is split into, keyed by a deterministic
/// hash of the canonical form so concurrent audits of unrelated queries
/// never contend on one memo lock.
const KERNEL_MEMO_SHARDS: usize = 8;

/// The shared-sample probabilistic kernel: owns the dictionary, the interned
/// tuple space, the lazily-built sample pool and the lifetime counters.
#[derive(Debug)]
pub struct ProbKernel {
    dict: Arc<Dictionary>,
    space: Arc<TupleSpace>,
    config: KernelConfig,
    stats: ProbStats,
    pool: OnceLock<Arc<SamplePool>>,
    /// Compiled-query memo: canonical query form → shared witness masks.
    /// The kernel owns exactly one tuple space, so the space key of the
    /// engine-wide artifact identity `(canonical form, space)` is implicit.
    /// Bounded by [`KernelConfig::compile_budget`] split across
    /// canonical-form-hash shards; eviction is transparent (a later audit
    /// of an evicted query recompiles).
    compiled: ShardedLruCache<String, Arc<CompiledQuery>>,
    /// Per-query answer-bit columns over the shared pool (Monte-Carlo
    /// path), keyed like [`ProbKernel::compiled`]: a query audited again —
    /// a later session step, a republished view — skips the per-world
    /// witness tests entirely. Bounded by [`KernelConfig::column_budget`],
    /// sharded like [`ProbKernel::compiled`].
    pool_columns: ShardedLruCache<String, Arc<Vec<u64>>>,
    /// Whole-audit memo (when [`KernelConfig::audit_memo`] is on), keyed by
    /// the `\u{1}`-joined canonical forms of `(secret, views…)` — order-
    /// sensitive, exactly like the verdict itself. Bounded by
    /// [`KernelConfig::audit_budget`] split across key-hash shards;
    /// eviction is transparent (the next identical audit recomputes and
    /// reinserts).
    audits: ShardedLruCache<String, Arc<KernelAudit>>,
    /// Optional durable backing: compilations and pool columns are written
    /// through at compute time and revived on a resident-cache miss, so
    /// LRU eviction demotes instead of discarding.
    store: Option<Arc<dyn StoreBackend>>,
}

impl ProbKernel {
    /// Builds a kernel over `dict` with the given configuration.
    pub fn new(dict: Arc<Dictionary>, config: KernelConfig) -> Self {
        Self::with_store(dict, config, None)
    }

    /// Builds a kernel whose compile and column caches are backed by a
    /// durable store (write-through on compute, revival on miss).
    pub fn with_store(
        dict: Arc<Dictionary>,
        config: KernelConfig,
        store: Option<Arc<dyn StoreBackend>>,
    ) -> Self {
        let space = Arc::new(dict.space().clone());
        ProbKernel {
            dict,
            space,
            config,
            stats: ProbStats::new(),
            pool: OnceLock::new(),
            compiled: ShardedLruCache::new(KERNEL_MEMO_SHARDS, config.compile_budget),
            pool_columns: ShardedLruCache::new(KERNEL_MEMO_SHARDS, config.column_budget),
            audits: ShardedLruCache::new(KERNEL_MEMO_SHARDS, config.audit_budget),
            store,
        }
    }

    /// Key of a pool column in [`NS_KERNEL_COLUMNS`]: the pool identity
    /// (seed, sample count) then the canonical form. The first two `:` end
    /// fixed-width fields, so forms containing `:` parse unambiguously.
    fn column_key(&self, form: &str) -> String {
        format!(
            "{:016x}:{:08}:{form}",
            self.config.seed, self.config.samples
        )
    }

    /// Key of a memoized audit in [`NS_KERNEL_AUDITS`]: the estimator
    /// identity (seed, samples, exact cutover, report cap) then the memo
    /// key. Fixed-width fields ahead of the first free-form byte, exactly
    /// like [`ProbKernel::column_key`].
    fn audit_key(&self, memo_key: &str) -> String {
        format!(
            "{:016x}:{:08}:{:08}:{:08}:{memo_key}",
            self.config.seed,
            self.config.samples,
            self.config.exact_cutover,
            self.config.report_cap.map_or(usize::MAX, |c| c),
        )
    }

    /// Best-effort write-through of one artifact. Persistence failures are
    /// deliberately swallowed: the durable journal of tenant state lives in
    /// the serving layer and *does* surface errors, whereas a kernel cache
    /// entry that fails to persist merely recompiles after a restart.
    fn persist(&self, ns: &str, key: &str, value: String) {
        if let Some(store) = &self.store {
            let _ = store.append_batch(ns, vec![StoreOp::put(key, value.into_bytes())]);
        }
    }

    fn fetch<T: serde::Deserialize>(&self, ns: &str, key: &str) -> Option<T> {
        let store = self.store.as_ref()?;
        decode_json(&store.get(ns, key).ok()??)
    }

    /// Rehydrates the resident caches from the store: every persisted
    /// compilation and matching pool column is decoded and inserted with
    /// the same byte weights the compute path charges. Counter-neutral —
    /// hits, misses and samples accrue only to live audits, so a restarted
    /// process layered on a journaled counter baseline reports the same
    /// per-step statistics a continuously-running process would. When any
    /// column matches this kernel's pool identity the shared pool is
    /// prebuilt (without counting a draw): the first Monte-Carlo audit
    /// after a restart then reuses worlds exactly like a warm process.
    pub fn prewarm_from_store(&self) -> qvsec_store::Result<()> {
        let Some(store) = &self.store else {
            return Ok(());
        };
        for (key, value) in store.scan(NS_KERNEL_COMPILE)? {
            let Some((answers, witnesses)) =
                decode_json::<(Vec<Answer>, Vec<Vec<Vec<usize>>>)>(&value)
            else {
                continue;
            };
            let revived = Arc::new(CompiledQuery::from_parts(
                answers,
                witnesses,
                self.space.len(),
            ));
            let bytes = revived.approx_bytes() + key.len();
            self.compiled
                .shard(key.as_str())
                .insert(key, revived, bytes);
        }
        let prefix = self.column_key("");
        let mut any_columns = false;
        for (key, value) in store.scan(NS_KERNEL_COLUMNS)? {
            if !key.starts_with(&prefix) {
                continue;
            }
            let Some(column) = decode_json::<Vec<u64>>(&value) else {
                continue;
            };
            any_columns = true;
            // The resident cache keys by bare canonical form (the pool
            // identity is implicit in the kernel); strip the store prefix
            // so byte weights and lookups match the compute path.
            let form = key[prefix.len()..].to_string();
            let column = Arc::new(column);
            let bytes = 8 * column.len() + form.len() + 24;
            self.pool_columns
                .shard(form.as_str())
                .insert(form, column, bytes);
        }
        if self.config.audit_memo {
            let audit_prefix = self.audit_key("");
            for (key, value) in store.scan(NS_KERNEL_AUDITS)? {
                if !key.starts_with(&audit_prefix) {
                    continue;
                }
                let Some(audit) = decode_json::<KernelAudit>(&value) else {
                    continue;
                };
                let memo_key = key[audit_prefix.len()..].to_string();
                let bytes = approx_audit_bytes(&audit) + memo_key.len();
                self.audits
                    .shard(memo_key.as_str())
                    .insert(memo_key, Arc::new(audit), bytes);
            }
        }
        if any_columns {
            self.pool.get_or_init(|| {
                Arc::new(SamplePool::generate(
                    &self.dict,
                    Arc::clone(&self.space),
                    self.config.samples,
                    self.config.seed,
                ))
            });
        }
        Ok(())
    }

    /// The dictionary the kernel evaluates against.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    /// The kernel's configuration.
    pub fn config(&self) -> &KernelConfig {
        &self.config
    }

    /// A snapshot of the lifetime counters, including the cache layers'
    /// eviction counters and resident bytes.
    pub fn stats(&self) -> ProbStatsSnapshot {
        let mut snap = self.stats.snapshot();
        for layer in [
            (
                self.compiled.evictions(),
                self.compiled.evicted_bytes(),
                self.compiled.resident_bytes(),
            ),
            (
                self.pool_columns.evictions(),
                self.pool_columns.evicted_bytes(),
                self.pool_columns.resident_bytes(),
            ),
            (
                self.audits.evictions(),
                self.audits.evicted_bytes(),
                self.audits.resident_bytes(),
            ),
        ] {
            snap.evictions += layer.0;
            snap.evicted_bytes += layer.1;
            snap.resident_bytes += layer.2 as u64;
        }
        snap
    }

    /// Whether audits against this dictionary run the exact path.
    pub fn is_exact(&self) -> bool {
        self.space.len() <= self.config.exact_cutover.min(MAX_ENUMERABLE)
    }

    /// The shared sample pool, built exactly once on first use
    /// (`get_or_init` serializes racing first callers, so concurrent batch
    /// audits never generate throwaway pools). Later calls — further
    /// passes, further audits, other threads — reuse the same worlds and
    /// are counted as reuses.
    pub fn shared_pool(&self) -> Arc<SamplePool> {
        let mut drawn_here = false;
        let pool = self.pool.get_or_init(|| {
            drawn_here = true;
            Arc::new(SamplePool::generate(
                &self.dict,
                Arc::clone(&self.space),
                self.config.samples,
                self.config.seed,
            ))
        });
        if drawn_here {
            self.stats.add_samples_drawn(pool.len() as u64);
        } else {
            self.stats.add_samples_reused(pool.len() as u64);
        }
        Arc::clone(pool)
    }

    /// Fetches (or compiles and memoizes) the witness masks of `query`
    /// against the kernel's tuple space. The memo key is the query's
    /// [`canonical_form`], so α-renamed republications of a view share one
    /// compilation; equal forms compile to identical masks because the
    /// homomorphism search sees the same structure. Number of hits and
    /// misses are exposed through [`ProbStats`].
    pub fn compile_cached(&self, query: &ConjunctiveQuery) -> Arc<CompiledQuery> {
        self.compile_cached_keyed(canonical_form(query), query)
    }

    fn compile_cached_keyed(&self, key: String, query: &ConjunctiveQuery) -> Arc<CompiledQuery> {
        if let Some(hit) = self.compiled.shard(key.as_str()).get(&key) {
            self.stats.add_compile_hit();
            return Arc::clone(hit);
        }
        // Store fallback: a compilation persisted by an earlier process (or
        // demoted by LRU eviction) is decoded instead of recompiled — no
        // homomorphism search runs, so it counts as a hit.
        if let Some((answers, witnesses)) =
            self.fetch::<(Vec<Answer>, Vec<Vec<Vec<usize>>>)>(NS_KERNEL_COMPILE, &key)
        {
            self.stats.add_compile_hit();
            let revived = Arc::new(CompiledQuery::from_parts(
                answers,
                witnesses,
                self.space.len(),
            ));
            let bytes = revived.approx_bytes() + key.len();
            let mut cache = self.compiled.shard(key.as_str());
            return Arc::clone(cache.insert(key.clone(), revived, bytes));
        }
        // Compile outside the lock; a racing duplicate insert is harmless.
        let compile_span = qvsec_obs::Span::enter("kernel.compile");
        let fresh = Arc::new(CompiledQuery::compile(query, &self.space));
        drop(compile_span);
        self.stats.add_query_compiled();
        if self.store.is_some() {
            if let Ok(text) = serde_json::to_string(&fresh.export_parts()) {
                self.persist(NS_KERNEL_COMPILE, &key, text);
            }
        }
        let bytes = fresh.approx_bytes() + key.len();
        let mut cache = self.compiled.shard(key.as_str());
        Arc::clone(cache.insert(key.clone(), fresh, bytes))
    }

    /// Fetches (or evaluates and memoizes) `query`'s answer-bit column over
    /// the shared pool — the per-world signatures every Monte-Carlo audit
    /// of this query concatenates from.
    fn column_cached(&self, key: &str, pool: &SamplePool, query: &CompiledQuery) -> Arc<Vec<u64>> {
        if let Some(hit) = self.pool_columns.shard(key).get(key) {
            self.stats.add_pool_column_hit();
            return Arc::clone(hit);
        }
        // Store fallback: a column drawn over the same pool identity in an
        // earlier process (or demoted by eviction) is revived instead of
        // re-tested per world, and counts as a hit.
        if let Some(column) = self.fetch::<Vec<u64>>(NS_KERNEL_COLUMNS, &self.column_key(key)) {
            self.stats.add_pool_column_hit();
            let column = Arc::new(column);
            let bytes = 8 * column.len() + key.len() + 24;
            let mut cache = self.pool_columns.shard(key);
            return Arc::clone(cache.insert(key.to_string(), column, bytes));
        }
        let fresh = Arc::new(montecarlo::world_column(pool, query));
        self.stats.add_pool_column_built();
        if self.store.is_some() {
            if let Ok(text) = serde_json::to_string(fresh.as_ref()) {
                self.persist(NS_KERNEL_COLUMNS, &self.column_key(key), text);
            }
        }
        let bytes = 8 * fresh.len() + key.len() + 24;
        let mut cache = self.pool_columns.shard(key);
        Arc::clone(cache.insert(key.to_string(), fresh, bytes))
    }

    /// Number of distinct compiled queries currently memoized.
    pub fn compiled_queries(&self) -> usize {
        self.compiled.len()
    }

    /// Runs the full Probabilistic stage for one audit: independence,
    /// leakage and total disclosure from a single space evaluation.
    pub fn evaluate(&self, secret: &ConjunctiveQuery, views: &ViewSet) -> Result<KernelAudit> {
        let queries: Vec<&ConjunctiveQuery> = std::iter::once(secret).chain(views.iter()).collect();
        let keys: Vec<String> = queries.iter().map(|q| canonical_form(q)).collect();
        // Whole-audit memo: an identical `(secret, views)` audit returns
        // the cached verdict before any compilation, streaming or sampling
        // accounting runs, so memoized audits honestly report zero work.
        let memo_key = self.config.audit_memo.then(|| keys.join("\u{1}"));
        if let Some(key) = &memo_key {
            if let Some(hit) = self.audits.shard(key.as_str()).get(key) {
                self.stats.add_audit_memo_hit();
                return Ok(KernelAudit::clone(hit));
            }
            // Store fallback: a verdict persisted by an earlier process (or
            // demoted by eviction) under the same estimator identity is
            // revived instead of recomputed, and counts as a hit.
            if let Some(audit) = self.fetch::<KernelAudit>(NS_KERNEL_AUDITS, &self.audit_key(key)) {
                self.stats.add_audit_memo_hit();
                let bytes = approx_audit_bytes(&audit) + key.len();
                let mut memo = self.audits.shard(key.as_str());
                return Ok(KernelAudit::clone(memo.insert(
                    key.clone(),
                    Arc::new(audit),
                    bytes,
                )));
            }
        }
        let audit = self.evaluate_fresh(&queries, &keys)?;
        if let Some(key) = memo_key {
            if self.store.is_some() {
                if let Ok(text) = serde_json::to_string(&audit) {
                    self.persist(NS_KERNEL_AUDITS, &self.audit_key(&key), text);
                }
            }
            let bytes = approx_audit_bytes(&audit) + key.len();
            self.audits
                .shard(key.as_str())
                .insert(key, Arc::new(audit.clone()), bytes);
        }
        Ok(audit)
    }

    fn evaluate_fresh(
        &self,
        queries: &[&ConjunctiveQuery],
        keys: &[String],
    ) -> Result<KernelAudit> {
        let compiled: Vec<Arc<CompiledQuery>> = queries
            .iter()
            .zip(keys)
            .map(|(q, k)| self.compile_cached_keyed(k.clone(), q))
            .collect();
        let offsets = sig_offsets(&compiled);
        if self.is_exact() {
            let _span = qvsec_obs::Span::enter("kernel.exact");
            // Uniform-`1/2` dictionaries (the paper's models) give every
            // world the same mass, so the signature distribution is a plain
            // count histogram and the whole analysis runs on integers.
            if !self.config.decode_baseline && self.uniform_half() {
                let counts = stream_exact_counts(&self.dict, &compiled, &self.stats)?;
                Ok(self.analyse_exact_counts(&compiled, &offsets, &counts))
            } else {
                let dist = stream_exact(&self.dict, &compiled, &self.stats)?;
                Ok(self.analyse_exact(&compiled, &offsets, dist))
            }
        } else {
            let _span = qvsec_obs::Span::enter("kernel.mc");
            self.stats.add_cutover();
            let pool = self.shared_pool();
            // Per-query world columns are memoized alongside the
            // compilations: only queries never audited against this pool
            // pay the per-world witness tests.
            let columns: Vec<Arc<Vec<u64>>> = compiled
                .iter()
                .zip(keys)
                .map(|(q, k)| self.column_cached(k, &pool, q))
                .collect();
            let counts = count_signatures_from_columns(&columns, &compiled, pool.len());
            // The leakage and total-disclosure passes are served from the
            // same per-world signatures the independence pass computed.
            self.stats.add_samples_reused(2 * pool.len() as u64);
            if self.config.decode_baseline {
                Ok(analyse_mc(
                    &compiled,
                    &offsets,
                    &counts,
                    &pool,
                    self.space.len(),
                    self.config.report_cap,
                ))
            } else {
                Ok(analyse_mc_packed(
                    &compiled,
                    &offsets,
                    &counts,
                    &pool,
                    self.space.len(),
                    self.config.report_cap,
                ))
            }
        }
    }

    /// Whether every tuple probability is exactly `1/2` — then all `2^n`
    /// worlds carry identical mass and the exact path can count instead of
    /// accumulating rationals. (The tuple-space size is already capped at
    /// [`MAX_ENUMERABLE`] ≤ 31, so counts fit the packed analysis bound.)
    fn uniform_half(&self) -> bool {
        let half = Ratio::new(1, 2);
        let probs = self.dict.probabilities();
        !probs.is_empty() && probs.iter().all(|&p| p == half)
    }

    fn exact_estimator(&self) -> EstimatorReport {
        EstimatorReport {
            mode: EstimatorMode::Exact,
            space_size: self.space.len(),
            worlds_streamed: 1u64 << self.space.len(),
            sample_count: 0,
            seed: None,
            std_error: 0.0,
        }
    }

    /// Exact analysis over mass-weighted signatures: the packed-marginal
    /// path by default, the historical `AnswerSet`-decoding analysis when
    /// [`KernelConfig::decode_baseline`] is set.
    fn analyse_exact(
        &self,
        compiled: &[Arc<CompiledQuery>],
        offsets: &[usize],
        dist: SignatureDistribution,
    ) -> KernelAudit {
        if self.config.decode_baseline {
            return self.analyse_exact_decoded(compiled, offsets, dist);
        }
        let entries: Vec<(Vec<u64>, Ratio)> = dist.entries.into_iter().collect();
        let borrowed: Vec<(&[u64], Ratio)> = entries
            .iter()
            .map(|(sig, p)| (sig.as_slice(), *p))
            .collect();
        let independence = marginals::independence_packed_masses(
            compiled,
            offsets,
            &borrowed,
            self.config.report_cap,
        );
        let leakage =
            leakage_from_signatures(compiled, offsets, &entries, None, self.config.report_cap);
        let totally_disclosed = determined(entries.iter().map(|(sig, _)| sig.as_slice()), offsets);
        KernelAudit {
            independence,
            leakage,
            totally_disclosed,
            estimator: self.exact_estimator(),
        }
    }

    /// Exact analysis over count-weighted signatures (uniform-`1/2`
    /// dictionaries): integer marginal accumulators end to end, `Ratio`s
    /// built only for the reported entries.
    fn analyse_exact_counts(
        &self,
        compiled: &[Arc<CompiledQuery>],
        offsets: &[usize],
        counts: &SignatureCounts,
    ) -> KernelAudit {
        let entries: Vec<(&[u64], u64)> = counts
            .counts
            .iter()
            .map(|(sig, &c)| (sig.as_slice(), c))
            .collect();
        let independence = marginals::independence_packed_counts(
            compiled,
            offsets,
            &entries,
            counts.total,
            false,
            self.config.report_cap,
        );
        let leakage = marginals::leakage_packed_counts(
            compiled,
            offsets,
            &entries,
            counts.total,
            false,
            self.config.report_cap,
        );
        let totally_disclosed = determined(entries.iter().map(|(sig, _)| *sig), offsets);
        KernelAudit {
            independence,
            leakage,
            totally_disclosed,
            estimator: self.exact_estimator(),
        }
    }

    /// The preserved decoding analysis: rebuild the joint distribution of
    /// Definition 4.1 over decoded answer sets and reuse the enumeration
    /// baseline's own walk, so the verdict is identical to
    /// `check_independence` by construction.
    fn analyse_exact_decoded(
        &self,
        compiled: &[Arc<CompiledQuery>],
        offsets: &[usize],
        dist: SignatureDistribution,
    ) -> KernelAudit {
        let entries: Vec<(Vec<u64>, Ratio)> = dist.entries.into_iter().collect();
        let mut joint: BTreeMap<(AnswerSet, Vec<AnswerSet>), Ratio> = BTreeMap::new();
        let mut total_mass = Ratio::ZERO;
        for (sig, p) in &entries {
            let (s_ans, v_ans) = decode_signature(sig, compiled, offsets);
            *joint.entry((s_ans, v_ans)).or_insert(Ratio::ZERO) += *p;
            total_mass += *p;
        }
        let independence = analyse_capped(
            &JointDistribution::from_parts(joint, total_mass),
            self.config.report_cap,
        );
        let leakage =
            leakage_from_signatures(compiled, offsets, &entries, None, self.config.report_cap);
        let totally_disclosed = determined(entries.iter().map(|(sig, _)| sig.as_slice()), offsets);
        KernelAudit {
            independence,
            leakage,
            totally_disclosed,
            estimator: self.exact_estimator(),
        }
    }
}

/// Approximate resident bytes of a memoized audit: a fixed overhead for
/// the report scaffolding plus a per-entry charge for the materialized
/// violation and leak lists (answer tuples, three/two `Ratio`s each).
fn approx_audit_bytes(audit: &KernelAudit) -> usize {
    256 + 160 * audit.independence.violations.len() + 200 * audit.leakage.positive_entries.len()
}

/// Word offsets of each compiled query's slice within a signature.
fn sig_offsets(compiled: &[Arc<CompiledQuery>]) -> Vec<usize> {
    let mut offsets = Vec::with_capacity(compiled.len() + 1);
    offsets.push(0);
    for q in compiled {
        offsets.push(offsets.last().unwrap() + q.sig_words());
    }
    offsets
}

/// Decodes a packed signature into the `(S(I), V̄(I))` answer sets.
fn decode_signature(
    sig: &[u64],
    compiled: &[Arc<CompiledQuery>],
    offsets: &[usize],
) -> (AnswerSet, Vec<AnswerSet>) {
    let s_ans = compiled[0].decode(&sig[offsets[0]..offsets[1]]);
    let v_ans = compiled[1..]
        .iter()
        .zip(offsets[1..].windows(2))
        .map(|(q, w)| q.decode(&sig[w[0]..w[1]]))
        .collect();
    (s_ans, v_ans)
}

/// Whether the secret slice of every signature is a function of the view
/// slices — determinacy over the evaluated worlds (the total-disclosure
/// test).
fn determined<'a>(sigs: impl Iterator<Item = &'a [u64]>, offsets: &[usize]) -> bool {
    let split = offsets[1];
    let mut by_view: std::collections::HashMap<&[u64], &[u64]> = std::collections::HashMap::new();
    for sig in sigs {
        let (secret_part, view_part) = sig.split_at(split);
        match by_view.get(view_part) {
            Some(&existing) if existing != secret_part => return false,
            Some(_) => {}
            None => {
                by_view.insert(view_part, secret_part);
            }
        }
    }
    true
}

/// All index combinations of one possible answer per view, in the same
/// order as the enumeration baseline's cartesian product (earlier views
/// vary more slowly).
pub(crate) fn view_combos(views: &[Arc<CompiledQuery>]) -> Vec<Vec<usize>> {
    let mut combos: Vec<Vec<usize>> = vec![Vec::new()];
    for v in views {
        let mut next = Vec::with_capacity(combos.len() * v.num_answers());
        for combo in &combos {
            for a in 0..v.num_answers() {
                let mut c = combo.clone();
                c.push(a);
                next.push(c);
            }
        }
        combos = next;
    }
    combos
}

/// The Section 6.1 leakage measure over a signature distribution. With
/// `mc_total = None` the weights are exact masses and every positive
/// relative increase is reported (matching `leakage_exact`); with
/// `mc_total = Some(n)` the weights are sample fractions and only increases
/// beyond three standard errors are reported.
///
/// The aggregation is near-linear in the signature list: the per-pair joint
/// masses `P[s ⊆ S ∧ v̄ ⊆ V̄]` are **indexed by secret-answer bit** in one
/// walk — each signature that matches a combo contributes its weight to
/// every set bit of its secret slice — instead of re-walking all signatures
/// once per `(answer, combo)` pair, which made many-answer workloads
/// (`collusion` in `BENCH_prob.json`) quadratic.
///
/// Entries are materialized **lazily**: the scan records only `(answer,
/// combo, ratios)` index triples, and the answer tuples are cloned for the
/// (at most `cap`) entries that survive the sort. `max_leak`, the witness
/// and `pairs_checked` always cover every pair; with `cap = None` the
/// reported list is byte-identical to the uncapped historical output (the
/// sort is stable over emission order, exactly like the old
/// `sort_by_key(Reverse(relative_increase))`).
fn leakage_from_signatures(
    compiled: &[Arc<CompiledQuery>],
    offsets: &[usize],
    entries: &[(Vec<u64>, Ratio)],
    mc_total: Option<u64>,
    cap: Option<usize>,
) -> KernelLeakage {
    let secret = &compiled[0];
    let views = &compiled[1..];
    let m_s = secret.num_answers();
    let combos = view_combos(views);

    fn secret_slice<'a>(sig: &'a [u64], offsets: &[usize]) -> &'a [u64] {
        &sig[offsets[0]..offsets[1]]
    }
    let combo_matches = |sig: &[u64], combo: &[usize]| {
        views
            .iter()
            .zip(combo)
            .zip(offsets[1..].windows(2))
            .all(|((v, &a), w)| v.answer_bit(&sig[w[0]..w[1]], a))
    };

    // One walk: priors per secret answer, conditioning mass per combo, and
    // the joint mass of every (answer, combo) pair via set-bit iteration
    // over the matching signature's secret slice.
    let mut priors = vec![Ratio::ZERO; m_s];
    let mut cond = vec![Ratio::ZERO; combos.len()];
    let mut joint = vec![Ratio::ZERO; m_s * combos.len()];
    for (sig, w) in entries {
        let slice = secret_slice(sig, offsets);
        let set_bits = |f: &mut dyn FnMut(usize)| {
            for (wi, &word) in slice.iter().enumerate() {
                let mut b = word;
                while b != 0 {
                    f(wi * 64 + b.trailing_zeros() as usize);
                    b &= b - 1;
                }
            }
        };
        set_bits(&mut |i| priors[i] += *w);
        for (ci, combo) in combos.iter().enumerate() {
            if combo_matches(sig, combo) {
                cond[ci] += *w;
                set_bits(&mut |i| joint[i * combos.len() + ci] += *w);
            }
        }
    }

    // Emission stays answer-major (then combo), exactly like the
    // enumeration baseline, so tie-breaking in the stable sort below is
    // byte-identical to `leakage_exact`. Nothing is cloned during the scan.
    struct Positive {
        answer: usize,
        combo: usize,
        prior: Ratio,
        posterior: Ratio,
        relative: Ratio,
    }
    let mut report = KernelLeakage::default();
    let mut positives: Vec<Positive> = Vec::new();
    for (i, &prior) in priors.iter().enumerate() {
        if prior.is_zero() {
            continue;
        }
        for (ci, _) in combos.iter().enumerate() {
            report.pairs_checked += 1;
            let c = cond[ci];
            if c.is_zero() {
                continue;
            }
            let posterior = joint[i * combos.len() + ci] / c;
            let relative = (posterior - prior) / prior;
            let include = match mc_total {
                None => relative > Ratio::ZERO,
                Some(n) => {
                    relative > Ratio::ZERO
                        && significant(prior, posterior, n as f64, (c.to_f64() * n as f64).max(1.0))
                }
            };
            if include {
                positives.push(Positive {
                    answer: i,
                    combo: ci,
                    prior,
                    posterior,
                    relative,
                });
            }
        }
    }
    // Stable sort over emission order — equal increases keep the
    // answer-major tie-break of the enumeration baseline, and the head of
    // the sorted list is the earliest-emitted maximum (the old witness).
    positives.sort_by_key(|p| std::cmp::Reverse(p.relative));
    let materialize = |p: &Positive| KernelLeakEntry {
        query_answer: secret.answers()[p.answer].clone(),
        view_answers: views
            .iter()
            .zip(&combos[p.combo])
            .map(|(v, &a)| v.answers()[a].clone())
            .collect(),
        prior: p.prior,
        posterior: p.posterior,
        relative_increase: p.relative,
    };
    if let Some(top) = positives.first() {
        report.max_leak = top.relative;
        report.witness = Some(materialize(top));
    }
    let keep = cap.unwrap_or(usize::MAX).min(positives.len());
    report.positive_entries = positives[..keep].iter().map(materialize).collect();
    report
}

/// Whether `posterior − prior` exceeds three combined standard errors for
/// binomial estimates over `n` (prior) and `n_cond` (posterior) samples.
fn significant(prior: Ratio, posterior: Ratio, n: f64, n_cond: f64) -> bool {
    significant_f64(prior.to_f64(), posterior.to_f64(), n, n_cond)
}

/// [`significant`] on pre-divided probabilities. The packed count path
/// feeds `c/n` divisions directly; they are bit-identical to `to_f64` of
/// the reduced `Ratio`s (IEEE division of the same rational value rounds
/// to the same double).
pub(crate) fn significant_f64(p: f64, q: f64, n: f64, n_cond: f64) -> bool {
    let sigma = (p * (1.0 - p) / n).sqrt() + (q * (1.0 - q) / n_cond).sqrt();
    (q - p).abs() > 3.0 * sigma
}

/// The packed Monte-Carlo analysis: identical verdicts to [`analyse_mc`]
/// (the preserved decoding baseline) computed straight over the packed
/// signature counts — integer marginals, `u128` cross-multiplied
/// independence tests, the same 3σ filter on bit-identical `f64`s, and no
/// `AnswerSet` decoded until a violation or leak entry is reported.
fn analyse_mc_packed(
    compiled: &[Arc<CompiledQuery>],
    offsets: &[usize],
    counts: &SignatureCounts,
    pool: &SamplePool,
    space_size: usize,
    report_cap: Option<usize>,
) -> KernelAudit {
    let n = counts.total.max(1);
    let entries: Vec<(&[u64], u64)> = counts
        .counts
        .iter()
        .map(|(sig, &c)| (sig.as_slice(), c))
        .collect();
    let independence =
        marginals::independence_packed_counts(compiled, offsets, &entries, n, true, report_cap);
    let leakage =
        marginals::leakage_packed_counts(compiled, offsets, &entries, n, true, report_cap);
    let totally_disclosed = determined(entries.iter().map(|(sig, _)| *sig), offsets);
    KernelAudit {
        independence,
        leakage,
        totally_disclosed,
        estimator: EstimatorReport {
            mode: EstimatorMode::MonteCarlo,
            space_size,
            worlds_streamed: 0,
            sample_count: pool.len(),
            seed: Some(pool.seed()),
            std_error: 0.5 / (n as f64).sqrt(),
        },
    }
}

/// The Monte-Carlo analysis: the same three verdicts, from pooled
/// signature counts, reported as exact count ratios with a 3σ
/// significance filter on violations and leak entries.
fn analyse_mc(
    compiled: &[Arc<CompiledQuery>],
    offsets: &[usize],
    counts: &SignatureCounts,
    pool: &SamplePool,
    space_size: usize,
    report_cap: Option<usize>,
) -> KernelAudit {
    let n = counts.total.max(1);
    // Decoded joint counts for the independence marginals.
    let mut joint: BTreeMap<(AnswerSet, Vec<AnswerSet>), u64> = BTreeMap::new();
    for (sig, c) in &counts.counts {
        let key = decode_signature(sig, compiled, offsets);
        *joint.entry(key).or_insert(0) += c;
    }
    let mut marginal_q: BTreeMap<&AnswerSet, u64> = BTreeMap::new();
    let mut marginal_v: BTreeMap<&Vec<AnswerSet>, u64> = BTreeMap::new();
    for ((s, v), &c) in &joint {
        *marginal_q.entry(s).or_insert(0) += c;
        *marginal_v.entry(v).or_insert(0) += c;
    }
    // Like `analyse_capped`: record violating pairs by reference, sort,
    // and clone answer sets only for the entries that survive the cap.
    let mut by_secret: BTreeMap<&AnswerSet, BTreeMap<&Vec<AnswerSet>, u64>> = BTreeMap::new();
    for ((s, v), &c) in &joint {
        by_secret.entry(s).or_default().insert(v, c);
    }
    let mut violating: Vec<(&AnswerSet, &Vec<AnswerSet>, Ratio, Ratio)> = Vec::new();
    let mut pairs = 0usize;
    for (s_ans, &c_s) in &marginal_q {
        let prior = Ratio::new(c_s as i128, n as i128);
        let row = by_secret.get(s_ans);
        for (v_ans, &c_v) in &marginal_v {
            if c_v == 0 {
                continue;
            }
            pairs += 1;
            let c_joint = row.and_then(|r| r.get(v_ans)).copied().unwrap_or(0);
            let posterior = Ratio::new(c_joint as i128, c_v as i128);
            if posterior != prior && significant(prior, posterior, n as f64, c_v as f64) {
                violating.push((*s_ans, *v_ans, prior, posterior));
            }
        }
    }
    violating
        .sort_by_key(|(_, _, prior, posterior)| std::cmp::Reverse((*posterior - *prior).abs()));
    let independent = violating.is_empty();
    let keep = report_cap.unwrap_or(usize::MAX).min(violating.len());
    let independence = IndependenceReport {
        independent,
        violations: violating[..keep]
            .iter()
            .map(|(s_ans, v_ans, prior, posterior)| Violation {
                query_answer: (*s_ans).clone(),
                view_answers: (*v_ans).clone(),
                prior: *prior,
                posterior: *posterior,
            })
            .collect(),
        pairs_checked: pairs,
    };

    let entries: Vec<(Vec<u64>, Ratio)> = counts
        .counts
        .iter()
        .map(|(sig, &c)| (sig.clone(), Ratio::new(c as i128, n as i128)))
        .collect();
    let leakage = leakage_from_signatures(compiled, offsets, &entries, Some(n), report_cap);
    let totally_disclosed = determined(counts.counts.keys().map(|s| s.as_slice()), offsets);
    KernelAudit {
        independence,
        leakage,
        totally_disclosed,
        estimator: EstimatorReport {
            mode: EstimatorMode::MonteCarlo,
            space_size,
            worlds_streamed: 0,
            sample_count: pool.len(),
            seed: Some(pool.seed()),
            std_error: 0.5 / (n as f64).sqrt(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::independence::check_independence;
    use qvsec_cq::parse_query;
    use qvsec_data::{Domain, Schema};

    fn setup() -> (Schema, Domain, Arc<Dictionary>) {
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        let domain = Domain::with_constants(["a", "b"]);
        let space = TupleSpace::full(&schema, &domain).unwrap();
        (schema, domain, Arc::new(Dictionary::half(space)))
    }

    #[test]
    fn exact_kernel_reproduces_the_example_4_2_independence_report() {
        let (schema, mut domain, dict) = setup();
        let s = parse_query("S(y) :- R(x, y)", &schema, &mut domain).unwrap();
        let v = parse_query("V(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let views = ViewSet::single(v);
        let kernel = ProbKernel::new(Arc::clone(&dict), KernelConfig::default());
        let audit = kernel.evaluate(&s, &views).unwrap();
        let baseline = check_independence(&s, &views, &dict).unwrap();
        assert_eq!(audit.independence.independent, baseline.independent);
        assert_eq!(audit.independence.pairs_checked, baseline.pairs_checked);
        assert_eq!(audit.independence.violations, baseline.violations);
        assert_eq!(audit.estimator.mode, EstimatorMode::Exact);
        assert_eq!(audit.estimator.worlds_streamed, 16);
        assert!(!audit.totally_disclosed);
        assert!(audit.leakage.max_leak > Ratio::ZERO);
        assert_eq!(kernel.stats().exact_worlds_streamed, 16);
        assert_eq!(kernel.stats().cutovers, 0);
    }

    #[test]
    fn exact_kernel_certifies_the_example_4_3_secure_pair() {
        let (schema, mut domain, dict) = setup();
        let s = parse_query("S(y) :- R(y, 'a')", &schema, &mut domain).unwrap();
        let v = parse_query("V(x) :- R(x, 'b')", &schema, &mut domain).unwrap();
        let kernel = ProbKernel::new(dict, KernelConfig::default());
        let audit = kernel.evaluate(&s, &ViewSet::single(v)).unwrap();
        assert!(audit.independence.independent);
        assert!(audit.leakage.max_leak.is_zero());
        assert!(audit.leakage.witness.is_none());
        assert!(!audit.totally_disclosed);
    }

    #[test]
    fn identity_view_is_totally_disclosing() {
        let (schema, mut domain, dict) = setup();
        let s = parse_query("S(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let v = parse_query("V(x, y) :- R(x, y)", &schema, &mut domain).unwrap();
        let kernel = ProbKernel::new(dict, KernelConfig::default());
        let audit = kernel.evaluate(&s, &ViewSet::single(v)).unwrap();
        assert!(audit.totally_disclosed);
    }

    #[test]
    fn cutover_runs_monte_carlo_and_reuses_the_pool() {
        let (schema, mut domain, dict) = setup();
        let s = parse_query("S(y) :- R(x, y)", &schema, &mut domain).unwrap();
        let v = parse_query("V(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let views = ViewSet::single(v);
        let config = KernelConfig {
            exact_cutover: 0, // force Monte-Carlo even on the tiny space
            samples: 4000,
            seed: 17,
            ..KernelConfig::default()
        };
        let kernel = ProbKernel::new(dict, config);
        assert!(!kernel.is_exact());
        let first = kernel.evaluate(&s, &views).unwrap();
        assert_eq!(first.estimator.mode, EstimatorMode::MonteCarlo);
        assert_eq!(first.estimator.sample_count, 4000);
        assert_eq!(first.estimator.seed, Some(17));
        assert!(first.estimator.std_error > 0.0);
        // Example 4.2 dependence is strong; 4000 samples find it.
        assert!(!first.independence.independent);
        let after_one = kernel.stats();
        assert_eq!(after_one.samples_drawn, 4000);
        assert_eq!(after_one.samples_reused, 2 * 4000);
        assert_eq!(after_one.cutovers, 1);
        let second = kernel.evaluate(&s, &views).unwrap();
        let after_two = kernel.stats();
        assert_eq!(after_two.samples_drawn, 4000, "pool drawn once");
        assert_eq!(after_two.samples_reused, 5 * 4000);
        assert_eq!(after_two.cutovers, 2);
        // Same pool, same signatures: the two audits are identical.
        assert_eq!(
            first.independence.violations,
            second.independence.violations
        );
        assert_eq!(first.leakage, second.leakage);
    }

    #[test]
    fn monte_carlo_does_not_flag_the_secure_pair() {
        let (schema, mut domain, dict) = setup();
        let s = parse_query("S(y) :- R(y, 'a')", &schema, &mut domain).unwrap();
        let v = parse_query("V(x) :- R(x, 'b')", &schema, &mut domain).unwrap();
        let config = KernelConfig {
            exact_cutover: 0,
            samples: 4000,
            seed: 23,
            ..KernelConfig::default()
        };
        let kernel = ProbKernel::new(dict, config);
        let audit = kernel.evaluate(&s, &ViewSet::single(v)).unwrap();
        assert!(
            audit.independence.independent,
            "3σ filter must not flag a perfectly secure pair: {:?}",
            audit.independence.violations
        );
        assert!(audit.leakage.max_leak.is_zero());
    }

    #[test]
    fn store_backed_kernel_rehydrates_compilations_columns_and_pool() {
        let (schema, mut domain, dict) = setup();
        let s = parse_query("S(y) :- R(x, y)", &schema, &mut domain).unwrap();
        let v = parse_query("V(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let views = ViewSet::single(v);
        let config = KernelConfig {
            exact_cutover: 0,
            samples: 2000,
            seed: 29,
            ..KernelConfig::default()
        };
        let store: Arc<dyn qvsec_store::StoreBackend> = Arc::new(qvsec_store::MemStore::new());
        let first = ProbKernel::with_store(Arc::clone(&dict), config, Some(Arc::clone(&store)));
        let before = first.evaluate(&s, &views).unwrap();
        assert_eq!(first.stats().queries_compiled, 2);
        assert_eq!(first.stats().pool_columns_built, 2);

        // "Restart": a fresh kernel over the same store revives everything.
        let second = ProbKernel::with_store(dict, config, Some(store));
        second.prewarm_from_store().unwrap();
        assert_eq!(second.compiled_queries(), 2);
        let after = second.evaluate(&s, &views).unwrap();
        assert_eq!(
            before.independence.violations,
            after.independence.violations
        );
        assert_eq!(before.leakage, after.leakage);
        let snap = second.stats();
        assert_eq!(
            snap.queries_compiled, 0,
            "prewarm revives, never recompiles"
        );
        assert_eq!(snap.compile_cache_hits, 2);
        assert_eq!(snap.pool_columns_built, 0);
        assert_eq!(snap.pool_column_hits, 2);
        assert_eq!(
            snap.samples_drawn, 0,
            "pool prebuilt without counting a draw"
        );
        assert_eq!(
            snap.samples_reused,
            3 * 2000,
            "shared_pool reuse + pass reuse"
        );
    }

    #[test]
    fn audit_memo_serves_repeats_and_evicts_transparently() {
        let (schema, mut domain, dict) = setup();
        let s = parse_query("S(y) :- R(x, y)", &schema, &mut domain).unwrap();
        let v = parse_query("V(x) :- R(x, y)", &schema, &mut domain).unwrap();
        let views = ViewSet::single(v);
        let config = KernelConfig {
            audit_memo: true,
            ..KernelConfig::default()
        };
        let kernel = ProbKernel::new(Arc::clone(&dict), config);
        let first = kernel.evaluate(&s, &views).unwrap();
        assert_eq!(kernel.stats().exact_worlds_streamed, 16);
        assert_eq!(kernel.stats().audit_memo_hits, 0);
        let second = kernel.evaluate(&s, &views).unwrap();
        let snap = kernel.stats();
        assert_eq!(snap.exact_worlds_streamed, 16, "memo hit streams nothing");
        assert_eq!(snap.audit_memo_hits, 1);
        assert_eq!(
            first.independence.violations,
            second.independence.violations
        );
        assert_eq!(first.leakage, second.leakage);
        assert_eq!(first.totally_disclosed, second.totally_disclosed);

        // A one-byte budget holds at most one resident audit per shard (an
        // oversized entry is admitted but evicted by the next insert), so
        // two alternating audits WHOSE MEMO KEYS SHARE A SHARD thrash the
        // memo: every evaluation recomputes, and the verdicts stay
        // identical (eviction transparency). Shard routing is a
        // deterministic hash, so we probe structurally distinct secrets
        // (chains of increasing length) until one collides with `s`.
        let tight = KernelConfig {
            audit_memo: true,
            audit_budget: Some(1),
            ..KernelConfig::default()
        };
        let evicting = ProbKernel::new(dict, tight);
        let view_form = canonical_form(views.iter().next().unwrap());
        let memo_key = |q: &ConjunctiveQuery| format!("{}\u{1}{view_form}", canonical_form(q));
        let home = evicting.audits.shard_index(memo_key(&s).as_str());
        let s2 = (1..64)
            .map(|n| {
                let body: Vec<String> = (0..n).map(|i| format!("R(v{i}, v{})", i + 1)).collect();
                let text = format!("S2(v0) :- {}", body.join(", "));
                parse_query(&text, &schema, &mut domain).unwrap()
            })
            .find(|q| evicting.audits.shard_index(memo_key(q).as_str()) == home)
            .expect("some chain secret shares a shard with s");
        let a = evicting.evaluate(&s, &views).unwrap();
        let _ = evicting.evaluate(&s2, &views).unwrap();
        let b = evicting.evaluate(&s, &views).unwrap();
        let snap = evicting.stats();
        assert_eq!(snap.audit_memo_hits, 0, "each insert evicts the other");
        assert_eq!(snap.exact_worlds_streamed, 48, "all three recompute");
        assert!(snap.evictions >= 2);
        assert_eq!(a.independence.violations, b.independence.violations);
        assert_eq!(a.leakage, b.leakage);
    }

    #[test]
    fn estimator_report_serializes() {
        let rep = EstimatorReport {
            mode: EstimatorMode::MonteCarlo,
            space_size: 36,
            worlds_streamed: 0,
            sample_count: 8192,
            seed: Some(42),
            std_error: 0.005,
        };
        let json = serde_json::to_string(&rep).unwrap();
        assert!(json.contains("MonteCarlo"));
        let back: EstimatorReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rep);
    }
}
