//! The shared sample pool: one seeded batch of sampled worlds, reused by
//! every Monte-Carlo pass of the kernel.
//!
//! Before the kernel existed, each estimation pass (independence, leakage,
//! total disclosure) — and each audit in a batch — re-sampled its own
//! instances, and every sample materialized an `Instance` (a `BTreeSet` of
//! heap-allocated `Tuple`s). The pool draws the batch **once** per
//! (dictionary, sample count, seed), keeps each world as a
//! [`CandidateSet`] bitset over a shared [`Arc<TupleSpace>`] (one bit per
//! tuple of the space, no tuple clones), and hands out borrowed worlds to
//! every pass that needs them.
//!
//! Sampling is parallelised in fixed-size chunks, each chunk re-seeded from
//! the pool seed and its chunk index, so the pool contents are **identical
//! for any worker-thread count** — the property the seed-determinism tests
//! pin down.

use qvsec_data::{CandidateSet, Dictionary, InstanceSampler, TupleSpace};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use std::sync::Arc;

/// Worlds sampled per parallel chunk. The chunk — not the worker — is the
/// unit of seeding, so results do not depend on how chunks are scheduled.
pub const POOL_CHUNK: usize = 1024;

/// A seeded batch of sampled worlds over one tuple space.
#[derive(Debug, Clone)]
pub struct SamplePool {
    space: Arc<TupleSpace>,
    worlds: Vec<CandidateSet>,
    seed: u64,
}

/// SplitMix64 finalizer used to decorrelate per-chunk RNG seeds.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-chunk RNG seed. The pool seed is mixed *before* the chunk index is
/// folded in, so pools drawn under nearby seeds (1, 2, 3, ...) share no
/// chunk streams — `mix(seed + c)` would make chunk `c` of seed `S` equal
/// chunk `c − 1` of seed `S + 1`, correlating ~all worlds of consecutive
/// seeds.
fn chunk_seed(seed: u64, chunk: u64) -> u64 {
    mix(mix(seed) ^ chunk)
}

impl SamplePool {
    /// Draws `samples` worlds from `dict` under `seed`. `space` must be the
    /// dictionary's own tuple space, shared so every world indexes into one
    /// interned universe.
    pub fn generate(
        dict: &Dictionary,
        space: Arc<TupleSpace>,
        samples: usize,
        seed: u64,
    ) -> SamplePool {
        assert_eq!(
            space.as_ref(),
            dict.space(),
            "pool space must be the dictionary's tuple space"
        );
        let sampler = InstanceSampler::new(dict);
        let chunks: Vec<usize> = (0..samples.div_ceil(POOL_CHUNK)).collect();
        let per_chunk: Vec<Vec<CandidateSet>> = chunks
            .par_iter()
            .map(|&c| {
                let mut rng = StdRng::seed_from_u64(chunk_seed(seed, c as u64));
                let lo = c * POOL_CHUNK;
                let hi = (lo + POOL_CHUNK).min(samples);
                (lo..hi)
                    .map(|_| {
                        CandidateSet::from_bits(Arc::clone(&space), sampler.sample_bitset(&mut rng))
                    })
                    .collect()
            })
            .collect();
        SamplePool {
            space,
            worlds: per_chunk.into_iter().flatten().collect(),
            seed,
        }
    }

    /// The sampled worlds, in draw order.
    pub fn worlds(&self) -> &[CandidateSet] {
        &self.worlds
    }

    /// Number of pooled worlds.
    pub fn len(&self) -> usize {
        self.worlds.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.worlds.is_empty()
    }

    /// The seed the pool was drawn under.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The shared tuple space the worlds index into.
    pub fn space(&self) -> &Arc<TupleSpace> {
        &self.space
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qvsec_data::{Domain, Schema};

    fn dict() -> Dictionary {
        let mut schema = Schema::new();
        schema.add_relation("R", &["x", "y"]);
        let domain = Domain::with_constants(["a", "b"]);
        let space = TupleSpace::full(&schema, &domain).unwrap();
        Dictionary::half(space)
    }

    #[test]
    fn pools_are_deterministic_for_a_fixed_seed() {
        let d = dict();
        let space = Arc::new(d.space().clone());
        let a = SamplePool::generate(&d, Arc::clone(&space), 2500, 7);
        let b = SamplePool::generate(&d, Arc::clone(&space), 2500, 7);
        assert_eq!(a.len(), 2500);
        assert_eq!(a.seed(), 7);
        for (wa, wb) in a.worlds().iter().zip(b.worlds()) {
            assert_eq!(wa.bits(), wb.bits());
        }
        let c = SamplePool::generate(&d, space, 2500, 8);
        assert!(
            a.worlds()
                .iter()
                .zip(c.worlds())
                .any(|(x, y)| x.bits() != y.bits()),
            "different seeds should draw different pools"
        );
    }

    #[test]
    fn consecutive_seeds_share_no_chunk_streams() {
        // Regression: seeding chunks from `mix(seed + chunk)` made chunk c
        // of seed S identical to chunk c-1 of seed S+1, so consecutive-seed
        // pools shared almost every world. With multi-chunk pools, no chunk
        // of seed S may reappear anywhere in seed S+1.
        let d = dict();
        let space = Arc::new(d.space().clone());
        let n = 3 * POOL_CHUNK;
        let a = SamplePool::generate(&d, Arc::clone(&space), n, 1);
        let b = SamplePool::generate(&d, space, n, 2);
        for (ca, chunk_a) in a.worlds().chunks(POOL_CHUNK).enumerate() {
            for (cb, chunk_b) in b.worlds().chunks(POOL_CHUNK).enumerate() {
                let identical = chunk_a
                    .iter()
                    .zip(chunk_b)
                    .all(|(x, y)| x.bits() == y.bits());
                assert!(
                    !identical,
                    "chunk {ca} of seed 1 equals chunk {cb} of seed 2"
                );
            }
        }
    }

    #[test]
    fn pool_sample_sizes_concentrate_around_expectation() {
        let d = dict();
        let space = Arc::new(d.space().clone());
        let pool = SamplePool::generate(&d, space, 4000, 3);
        let mean = pool.worlds().iter().map(|w| w.len()).sum::<usize>() as f64 / 4000.0;
        assert!((mean - 2.0).abs() < 0.15, "mean world size {mean}");
    }

    #[test]
    fn empty_pool_is_fine() {
        let d = dict();
        let space = Arc::new(d.space().clone());
        let pool = SamplePool::generate(&d, space, 0, 1);
        assert!(pool.is_empty());
        assert_eq!(pool.len(), 0);
    }
}
